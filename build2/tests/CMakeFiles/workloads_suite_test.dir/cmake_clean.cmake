file(REMOVE_RECURSE
  "CMakeFiles/workloads_suite_test.dir/workloads_suite_test.cc.o"
  "CMakeFiles/workloads_suite_test.dir/workloads_suite_test.cc.o.d"
  "workloads_suite_test"
  "workloads_suite_test.pdb"
  "workloads_suite_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_suite_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
