file(REMOVE_RECURSE
  "CMakeFiles/ir_scc_test.dir/ir_scc_test.cc.o"
  "CMakeFiles/ir_scc_test.dir/ir_scc_test.cc.o.d"
  "ir_scc_test"
  "ir_scc_test.pdb"
  "ir_scc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_scc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
