# Empty dependencies file for ir_scc_test.
# This may be replaced when dependencies are built.
