file(REMOVE_RECURSE
  "CMakeFiles/arch_area_test.dir/arch_area_test.cc.o"
  "CMakeFiles/arch_area_test.dir/arch_area_test.cc.o.d"
  "arch_area_test"
  "arch_area_test.pdb"
  "arch_area_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arch_area_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
