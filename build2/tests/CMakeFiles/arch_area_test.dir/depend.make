# Empty dependencies file for arch_area_test.
# This may be replaced when dependencies are built.
