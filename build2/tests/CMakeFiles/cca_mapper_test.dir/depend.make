# Empty dependencies file for cca_mapper_test.
# This may be replaced when dependencies are built.
