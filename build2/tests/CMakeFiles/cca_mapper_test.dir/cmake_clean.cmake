file(REMOVE_RECURSE
  "CMakeFiles/cca_mapper_test.dir/cca_mapper_test.cc.o"
  "CMakeFiles/cca_mapper_test.dir/cca_mapper_test.cc.o.d"
  "cca_mapper_test"
  "cca_mapper_test.pdb"
  "cca_mapper_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cca_mapper_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
