file(REMOVE_RECURSE
  "CMakeFiles/ir_transforms_test.dir/ir_transforms_test.cc.o"
  "CMakeFiles/ir_transforms_test.dir/ir_transforms_test.cc.o.d"
  "ir_transforms_test"
  "ir_transforms_test.pdb"
  "ir_transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
