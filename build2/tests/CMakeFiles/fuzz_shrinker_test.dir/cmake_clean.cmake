file(REMOVE_RECURSE
  "CMakeFiles/fuzz_shrinker_test.dir/fuzz_shrinker_test.cc.o"
  "CMakeFiles/fuzz_shrinker_test.dir/fuzz_shrinker_test.cc.o.d"
  "fuzz_shrinker_test"
  "fuzz_shrinker_test.pdb"
  "fuzz_shrinker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_shrinker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
