# Empty dependencies file for fuzz_shrinker_test.
# This may be replaced when dependencies are built.
