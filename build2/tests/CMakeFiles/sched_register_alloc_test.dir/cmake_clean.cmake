file(REMOVE_RECURSE
  "CMakeFiles/sched_register_alloc_test.dir/sched_register_alloc_test.cc.o"
  "CMakeFiles/sched_register_alloc_test.dir/sched_register_alloc_test.cc.o.d"
  "sched_register_alloc_test"
  "sched_register_alloc_test.pdb"
  "sched_register_alloc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_register_alloc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
