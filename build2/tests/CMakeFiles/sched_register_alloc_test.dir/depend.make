# Empty dependencies file for sched_register_alloc_test.
# This may be replaced when dependencies are built.
