file(REMOVE_RECURSE
  "CMakeFiles/vm_translator_test.dir/vm_translator_test.cc.o"
  "CMakeFiles/vm_translator_test.dir/vm_translator_test.cc.o.d"
  "vm_translator_test"
  "vm_translator_test.pdb"
  "vm_translator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_translator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
