# Empty dependencies file for vm_translator_test.
# This may be replaced when dependencies are built.
