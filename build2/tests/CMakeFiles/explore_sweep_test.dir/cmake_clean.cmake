file(REMOVE_RECURSE
  "CMakeFiles/explore_sweep_test.dir/explore_sweep_test.cc.o"
  "CMakeFiles/explore_sweep_test.dir/explore_sweep_test.cc.o.d"
  "explore_sweep_test"
  "explore_sweep_test.pdb"
  "explore_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/explore_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
