# Empty dependencies file for paper_figure5_test.
# This may be replaced when dependencies are built.
