file(REMOVE_RECURSE
  "CMakeFiles/paper_figure5_test.dir/paper_figure5_test.cc.o"
  "CMakeFiles/paper_figure5_test.dir/paper_figure5_test.cc.o.d"
  "paper_figure5_test"
  "paper_figure5_test.pdb"
  "paper_figure5_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_figure5_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
