# Empty dependencies file for fuzz_corpus_test.
# This may be replaced when dependencies are built.
