file(REMOVE_RECURSE
  "CMakeFiles/fuzz_corpus_test.dir/fuzz_corpus_test.cc.o"
  "CMakeFiles/fuzz_corpus_test.dir/fuzz_corpus_test.cc.o.d"
  "fuzz_corpus_test"
  "fuzz_corpus_test.pdb"
  "fuzz_corpus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_corpus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
