file(REMOVE_RECURSE
  "CMakeFiles/sim_execution_test.dir/sim_execution_test.cc.o"
  "CMakeFiles/sim_execution_test.dir/sim_execution_test.cc.o.d"
  "sim_execution_test"
  "sim_execution_test.pdb"
  "sim_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
