file(REMOVE_RECURSE
  "CMakeFiles/sched_mrt_test.dir/sched_mrt_test.cc.o"
  "CMakeFiles/sched_mrt_test.dir/sched_mrt_test.cc.o.d"
  "sched_mrt_test"
  "sched_mrt_test.pdb"
  "sched_mrt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_mrt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
