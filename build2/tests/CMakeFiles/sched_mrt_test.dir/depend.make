# Empty dependencies file for sched_mrt_test.
# This may be replaced when dependencies are built.
