# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for vm_code_cache_test.
