# Empty compiler generated dependencies file for vm_code_cache_test.
# This may be replaced when dependencies are built.
