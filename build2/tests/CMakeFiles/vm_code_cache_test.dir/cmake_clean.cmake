file(REMOVE_RECURSE
  "CMakeFiles/vm_code_cache_test.dir/vm_code_cache_test.cc.o"
  "CMakeFiles/vm_code_cache_test.dir/vm_code_cache_test.cc.o.d"
  "vm_code_cache_test"
  "vm_code_cache_test.pdb"
  "vm_code_cache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_code_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
