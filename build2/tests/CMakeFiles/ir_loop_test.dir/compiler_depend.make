# Empty compiler generated dependencies file for ir_loop_test.
# This may be replaced when dependencies are built.
