file(REMOVE_RECURSE
  "CMakeFiles/ir_loop_test.dir/ir_loop_test.cc.o"
  "CMakeFiles/ir_loop_test.dir/ir_loop_test.cc.o.d"
  "ir_loop_test"
  "ir_loop_test.pdb"
  "ir_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
