# Empty compiler generated dependencies file for vm_run_test.
# This may be replaced when dependencies are built.
