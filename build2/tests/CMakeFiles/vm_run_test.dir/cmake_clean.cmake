file(REMOVE_RECURSE
  "CMakeFiles/vm_run_test.dir/vm_run_test.cc.o"
  "CMakeFiles/vm_run_test.dir/vm_run_test.cc.o.d"
  "vm_run_test"
  "vm_run_test.pdb"
  "vm_run_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_run_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
