# Empty dependencies file for fuzz_driver_test.
# This may be replaced when dependencies are built.
