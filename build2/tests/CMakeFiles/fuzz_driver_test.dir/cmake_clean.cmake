file(REMOVE_RECURSE
  "CMakeFiles/fuzz_driver_test.dir/fuzz_driver_test.cc.o"
  "CMakeFiles/fuzz_driver_test.dir/fuzz_driver_test.cc.o.d"
  "fuzz_driver_test"
  "fuzz_driver_test.pdb"
  "fuzz_driver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_driver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
