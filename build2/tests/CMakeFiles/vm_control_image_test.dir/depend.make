# Empty dependencies file for vm_control_image_test.
# This may be replaced when dependencies are built.
