file(REMOVE_RECURSE
  "CMakeFiles/vm_control_image_test.dir/vm_control_image_test.cc.o"
  "CMakeFiles/vm_control_image_test.dir/vm_control_image_test.cc.o.d"
  "vm_control_image_test"
  "vm_control_image_test.pdb"
  "vm_control_image_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_control_image_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
