file(REMOVE_RECURSE
  "CMakeFiles/sim_la_timing_test.dir/sim_la_timing_test.cc.o"
  "CMakeFiles/sim_la_timing_test.dir/sim_la_timing_test.cc.o.d"
  "sim_la_timing_test"
  "sim_la_timing_test.pdb"
  "sim_la_timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_la_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
