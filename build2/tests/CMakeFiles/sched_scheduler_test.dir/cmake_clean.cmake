file(REMOVE_RECURSE
  "CMakeFiles/sched_scheduler_test.dir/sched_scheduler_test.cc.o"
  "CMakeFiles/sched_scheduler_test.dir/sched_scheduler_test.cc.o.d"
  "sched_scheduler_test"
  "sched_scheduler_test.pdb"
  "sched_scheduler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
