file(REMOVE_RECURSE
  "CMakeFiles/sched_priority_test.dir/sched_priority_test.cc.o"
  "CMakeFiles/sched_priority_test.dir/sched_priority_test.cc.o.d"
  "sched_priority_test"
  "sched_priority_test.pdb"
  "sched_priority_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_priority_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
