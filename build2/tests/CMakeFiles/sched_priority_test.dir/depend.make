# Empty dependencies file for sched_priority_test.
# This may be replaced when dependencies are built.
