file(REMOVE_RECURSE
  "CMakeFiles/vm_calibration_test.dir/vm_calibration_test.cc.o"
  "CMakeFiles/vm_calibration_test.dir/vm_calibration_test.cc.o.d"
  "vm_calibration_test"
  "vm_calibration_test.pdb"
  "vm_calibration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
