file(REMOVE_RECURSE
  "CMakeFiles/support_metrics_test.dir/support_metrics_test.cc.o"
  "CMakeFiles/support_metrics_test.dir/support_metrics_test.cc.o.d"
  "support_metrics_test"
  "support_metrics_test.pdb"
  "support_metrics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
