file(REMOVE_RECURSE
  "CMakeFiles/ir_random_loop_test.dir/ir_random_loop_test.cc.o"
  "CMakeFiles/ir_random_loop_test.dir/ir_random_loop_test.cc.o.d"
  "ir_random_loop_test"
  "ir_random_loop_test.pdb"
  "ir_random_loop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_random_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
