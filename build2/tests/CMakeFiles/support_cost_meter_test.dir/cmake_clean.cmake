file(REMOVE_RECURSE
  "CMakeFiles/support_cost_meter_test.dir/support_cost_meter_test.cc.o"
  "CMakeFiles/support_cost_meter_test.dir/support_cost_meter_test.cc.o.d"
  "support_cost_meter_test"
  "support_cost_meter_test.pdb"
  "support_cost_meter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_cost_meter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
