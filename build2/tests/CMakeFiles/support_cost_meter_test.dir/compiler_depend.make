# Empty compiler generated dependencies file for support_cost_meter_test.
# This may be replaced when dependencies are built.
