file(REMOVE_RECURSE
  "CMakeFiles/ir_analysis_test.dir/ir_analysis_test.cc.o"
  "CMakeFiles/ir_analysis_test.dir/ir_analysis_test.cc.o.d"
  "ir_analysis_test"
  "ir_analysis_test.pdb"
  "ir_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
