# Empty dependencies file for ir_analysis_test.
# This may be replaced when dependencies are built.
