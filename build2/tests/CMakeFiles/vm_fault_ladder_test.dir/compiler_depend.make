# Empty compiler generated dependencies file for vm_fault_ladder_test.
# This may be replaced when dependencies are built.
