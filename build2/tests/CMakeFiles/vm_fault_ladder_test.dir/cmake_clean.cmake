file(REMOVE_RECURSE
  "CMakeFiles/vm_fault_ladder_test.dir/vm_fault_ladder_test.cc.o"
  "CMakeFiles/vm_fault_ladder_test.dir/vm_fault_ladder_test.cc.o.d"
  "vm_fault_ladder_test"
  "vm_fault_ladder_test.pdb"
  "vm_fault_ladder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_fault_ladder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
