file(REMOVE_RECURSE
  "CMakeFiles/ir_parser_roundtrip_test.dir/ir_parser_roundtrip_test.cc.o"
  "CMakeFiles/ir_parser_roundtrip_test.dir/ir_parser_roundtrip_test.cc.o.d"
  "ir_parser_roundtrip_test"
  "ir_parser_roundtrip_test.pdb"
  "ir_parser_roundtrip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ir_parser_roundtrip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
