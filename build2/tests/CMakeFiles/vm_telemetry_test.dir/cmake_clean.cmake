file(REMOVE_RECURSE
  "CMakeFiles/vm_telemetry_test.dir/vm_telemetry_test.cc.o"
  "CMakeFiles/vm_telemetry_test.dir/vm_telemetry_test.cc.o.d"
  "vm_telemetry_test"
  "vm_telemetry_test.pdb"
  "vm_telemetry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vm_telemetry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
