file(REMOVE_RECURSE
  "CMakeFiles/sched_mii_test.dir/sched_mii_test.cc.o"
  "CMakeFiles/sched_mii_test.dir/sched_mii_test.cc.o.d"
  "sched_mii_test"
  "sched_mii_test.pdb"
  "sched_mii_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sched_mii_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
