# Empty dependencies file for sched_mii_test.
# This may be replaced when dependencies are built.
