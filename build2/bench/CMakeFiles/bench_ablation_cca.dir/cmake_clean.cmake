file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cca.dir/bench_ablation_cca.cc.o"
  "CMakeFiles/bench_ablation_cca.dir/bench_ablation_cca.cc.o.d"
  "bench_ablation_cca"
  "bench_ablation_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
