# Empty dependencies file for bench_ablation_cca.
# This may be replaced when dependencies are built.
