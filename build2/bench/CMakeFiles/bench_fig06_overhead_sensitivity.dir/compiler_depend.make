# Empty compiler generated dependencies file for bench_fig06_overhead_sensitivity.
# This may be replaced when dependencies are built.
