file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_tradeoff.dir/bench_fig10_tradeoff.cc.o"
  "CMakeFiles/bench_fig10_tradeoff.dir/bench_fig10_tradeoff.cc.o.d"
  "bench_fig10_tradeoff"
  "bench_fig10_tradeoff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
