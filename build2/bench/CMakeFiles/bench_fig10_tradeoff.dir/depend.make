# Empty dependencies file for bench_fig10_tradeoff.
# This may be replaced when dependencies are built.
