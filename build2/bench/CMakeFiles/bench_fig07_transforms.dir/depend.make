# Empty dependencies file for bench_fig07_transforms.
# This may be replaced when dependencies are built.
