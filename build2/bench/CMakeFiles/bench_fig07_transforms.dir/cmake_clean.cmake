file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_transforms.dir/bench_fig07_transforms.cc.o"
  "CMakeFiles/bench_fig07_transforms.dir/bench_fig07_transforms.cc.o.d"
  "bench_fig07_transforms"
  "bench_fig07_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
