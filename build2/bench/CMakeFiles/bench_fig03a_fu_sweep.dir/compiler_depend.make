# Empty compiler generated dependencies file for bench_fig03a_fu_sweep.
# This may be replaced when dependencies are built.
