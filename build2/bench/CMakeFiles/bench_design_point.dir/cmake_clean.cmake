file(REMOVE_RECURSE
  "CMakeFiles/bench_design_point.dir/bench_design_point.cc.o"
  "CMakeFiles/bench_design_point.dir/bench_design_point.cc.o.d"
  "bench_design_point"
  "bench_design_point.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_point.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
