# Empty dependencies file for bench_design_point.
# This may be replaced when dependencies are built.
