# Empty compiler generated dependencies file for bench_fig03b_register_sweep.
# This may be replaced when dependencies are built.
