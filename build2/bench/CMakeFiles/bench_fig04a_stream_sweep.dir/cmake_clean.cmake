file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04a_stream_sweep.dir/bench_fig04a_stream_sweep.cc.o"
  "CMakeFiles/bench_fig04a_stream_sweep.dir/bench_fig04a_stream_sweep.cc.o.d"
  "bench_fig04a_stream_sweep"
  "bench_fig04a_stream_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04a_stream_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
