# Empty dependencies file for bench_fig04a_stream_sweep.
# This may be replaced when dependencies are built.
