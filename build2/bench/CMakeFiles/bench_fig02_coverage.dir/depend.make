# Empty dependencies file for bench_fig02_coverage.
# This may be replaced when dependencies are built.
