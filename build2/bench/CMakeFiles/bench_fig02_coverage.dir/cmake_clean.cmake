file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_coverage.dir/bench_fig02_coverage.cc.o"
  "CMakeFiles/bench_fig02_coverage.dir/bench_fig02_coverage.cc.o.d"
  "bench_fig02_coverage"
  "bench_fig02_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
