# Empty compiler generated dependencies file for bench_fig08_translation_cost.
# This may be replaced when dependencies are built.
