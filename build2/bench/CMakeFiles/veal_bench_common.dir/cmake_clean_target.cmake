file(REMOVE_RECURSE
  "libveal_bench_common.a"
)
