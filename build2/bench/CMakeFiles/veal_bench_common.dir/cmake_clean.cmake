file(REMOVE_RECURSE
  "CMakeFiles/veal_bench_common.dir/common.cc.o"
  "CMakeFiles/veal_bench_common.dir/common.cc.o.d"
  "libveal_bench_common.a"
  "libveal_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
