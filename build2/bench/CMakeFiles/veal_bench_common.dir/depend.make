# Empty dependencies file for veal_bench_common.
# This may be replaced when dependencies are built.
