file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04b_maxii_sweep.dir/bench_fig04b_maxii_sweep.cc.o"
  "CMakeFiles/bench_fig04b_maxii_sweep.dir/bench_fig04b_maxii_sweep.cc.o.d"
  "bench_fig04b_maxii_sweep"
  "bench_fig04b_maxii_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04b_maxii_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
