# Empty compiler generated dependencies file for bench_fig04b_maxii_sweep.
# This may be replaced when dependencies are built.
