# Empty compiler generated dependencies file for adpcm_pipeline.
# This may be replaced when dependencies are built.
