file(REMOVE_RECURSE
  "CMakeFiles/adpcm_pipeline.dir/adpcm_pipeline.cpp.o"
  "CMakeFiles/adpcm_pipeline.dir/adpcm_pipeline.cpp.o.d"
  "adpcm_pipeline"
  "adpcm_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adpcm_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
