# Empty dependencies file for loop_fission_demo.
# This may be replaced when dependencies are built.
