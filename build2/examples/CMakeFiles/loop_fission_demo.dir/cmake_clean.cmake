file(REMOVE_RECURSE
  "CMakeFiles/loop_fission_demo.dir/loop_fission_demo.cpp.o"
  "CMakeFiles/loop_fission_demo.dir/loop_fission_demo.cpp.o.d"
  "loop_fission_demo"
  "loop_fission_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loop_fission_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
