
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/run_kernel.cpp" "examples/CMakeFiles/run_kernel.dir/run_kernel.cpp.o" "gcc" "examples/CMakeFiles/run_kernel.dir/run_kernel.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/veal/explore/CMakeFiles/veal_explore.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/fault/CMakeFiles/veal_faultsim.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/workloads/CMakeFiles/veal_workloads.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/fuzz/CMakeFiles/veal_fuzz.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/vm/CMakeFiles/veal_vm.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/sim/CMakeFiles/veal_sim.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/sched/CMakeFiles/veal_sched.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/cca/CMakeFiles/veal_cca.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/fault/CMakeFiles/veal_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/arch/CMakeFiles/veal_arch.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/ir/CMakeFiles/veal_ir.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/support/CMakeFiles/veal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
