file(REMOVE_RECURSE
  "CMakeFiles/run_kernel.dir/run_kernel.cpp.o"
  "CMakeFiles/run_kernel.dir/run_kernel.cpp.o.d"
  "run_kernel"
  "run_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
