# Empty dependencies file for run_kernel.
# This may be replaced when dependencies are built.
