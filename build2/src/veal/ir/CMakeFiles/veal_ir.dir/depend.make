# Empty dependencies file for veal_ir.
# This may be replaced when dependencies are built.
