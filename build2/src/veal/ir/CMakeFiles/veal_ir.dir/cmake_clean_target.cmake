file(REMOVE_RECURSE
  "libveal_ir.a"
)
