file(REMOVE_RECURSE
  "CMakeFiles/veal_ir.dir/loop.cc.o"
  "CMakeFiles/veal_ir.dir/loop.cc.o.d"
  "CMakeFiles/veal_ir.dir/loop_analysis.cc.o"
  "CMakeFiles/veal_ir.dir/loop_analysis.cc.o.d"
  "CMakeFiles/veal_ir.dir/loop_builder.cc.o"
  "CMakeFiles/veal_ir.dir/loop_builder.cc.o.d"
  "CMakeFiles/veal_ir.dir/loop_parser.cc.o"
  "CMakeFiles/veal_ir.dir/loop_parser.cc.o.d"
  "CMakeFiles/veal_ir.dir/opcode.cc.o"
  "CMakeFiles/veal_ir.dir/opcode.cc.o.d"
  "CMakeFiles/veal_ir.dir/operation.cc.o"
  "CMakeFiles/veal_ir.dir/operation.cc.o.d"
  "CMakeFiles/veal_ir.dir/random_loop.cc.o"
  "CMakeFiles/veal_ir.dir/random_loop.cc.o.d"
  "CMakeFiles/veal_ir.dir/scc.cc.o"
  "CMakeFiles/veal_ir.dir/scc.cc.o.d"
  "CMakeFiles/veal_ir.dir/transforms.cc.o"
  "CMakeFiles/veal_ir.dir/transforms.cc.o.d"
  "libveal_ir.a"
  "libveal_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
