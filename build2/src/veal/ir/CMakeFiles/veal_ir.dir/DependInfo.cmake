
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/veal/ir/loop.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/loop.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/loop.cc.o.d"
  "/root/repo/src/veal/ir/loop_analysis.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/loop_analysis.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/loop_analysis.cc.o.d"
  "/root/repo/src/veal/ir/loop_builder.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/loop_builder.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/loop_builder.cc.o.d"
  "/root/repo/src/veal/ir/loop_parser.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/loop_parser.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/loop_parser.cc.o.d"
  "/root/repo/src/veal/ir/opcode.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/opcode.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/opcode.cc.o.d"
  "/root/repo/src/veal/ir/operation.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/operation.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/operation.cc.o.d"
  "/root/repo/src/veal/ir/random_loop.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/random_loop.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/random_loop.cc.o.d"
  "/root/repo/src/veal/ir/scc.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/scc.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/scc.cc.o.d"
  "/root/repo/src/veal/ir/transforms.cc" "src/veal/ir/CMakeFiles/veal_ir.dir/transforms.cc.o" "gcc" "src/veal/ir/CMakeFiles/veal_ir.dir/transforms.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/veal/support/CMakeFiles/veal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
