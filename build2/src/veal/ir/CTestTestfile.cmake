# CMake generated Testfile for 
# Source directory: /root/repo/src/veal/ir
# Build directory: /root/repo/build2/src/veal/ir
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
