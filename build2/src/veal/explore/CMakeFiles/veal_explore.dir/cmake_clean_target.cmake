file(REMOVE_RECURSE
  "libveal_explore.a"
)
