file(REMOVE_RECURSE
  "CMakeFiles/veal_explore.dir/sweep.cc.o"
  "CMakeFiles/veal_explore.dir/sweep.cc.o.d"
  "libveal_explore.a"
  "libveal_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
