# Empty compiler generated dependencies file for veal_explore.
# This may be replaced when dependencies are built.
