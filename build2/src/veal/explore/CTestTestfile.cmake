# CMake generated Testfile for 
# Source directory: /root/repo/src/veal/explore
# Build directory: /root/repo/build2/src/veal/explore
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
