file(REMOVE_RECURSE
  "libveal_sim.a"
)
