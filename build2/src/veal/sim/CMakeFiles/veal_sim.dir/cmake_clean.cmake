file(REMOVE_RECURSE
  "CMakeFiles/veal_sim.dir/cpu_sim.cc.o"
  "CMakeFiles/veal_sim.dir/cpu_sim.cc.o.d"
  "CMakeFiles/veal_sim.dir/interpreter.cc.o"
  "CMakeFiles/veal_sim.dir/interpreter.cc.o.d"
  "CMakeFiles/veal_sim.dir/la_executor.cc.o"
  "CMakeFiles/veal_sim.dir/la_executor.cc.o.d"
  "CMakeFiles/veal_sim.dir/la_timing.cc.o"
  "CMakeFiles/veal_sim.dir/la_timing.cc.o.d"
  "libveal_sim.a"
  "libveal_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
