# Empty compiler generated dependencies file for veal_sim.
# This may be replaced when dependencies are built.
