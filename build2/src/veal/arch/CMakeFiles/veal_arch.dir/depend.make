# Empty dependencies file for veal_arch.
# This may be replaced when dependencies are built.
