file(REMOVE_RECURSE
  "libveal_arch.a"
)
