
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/veal/arch/area.cc" "src/veal/arch/CMakeFiles/veal_arch.dir/area.cc.o" "gcc" "src/veal/arch/CMakeFiles/veal_arch.dir/area.cc.o.d"
  "/root/repo/src/veal/arch/cpu_config.cc" "src/veal/arch/CMakeFiles/veal_arch.dir/cpu_config.cc.o" "gcc" "src/veal/arch/CMakeFiles/veal_arch.dir/cpu_config.cc.o.d"
  "/root/repo/src/veal/arch/fu.cc" "src/veal/arch/CMakeFiles/veal_arch.dir/fu.cc.o" "gcc" "src/veal/arch/CMakeFiles/veal_arch.dir/fu.cc.o.d"
  "/root/repo/src/veal/arch/la_config.cc" "src/veal/arch/CMakeFiles/veal_arch.dir/la_config.cc.o" "gcc" "src/veal/arch/CMakeFiles/veal_arch.dir/la_config.cc.o.d"
  "/root/repo/src/veal/arch/latency.cc" "src/veal/arch/CMakeFiles/veal_arch.dir/latency.cc.o" "gcc" "src/veal/arch/CMakeFiles/veal_arch.dir/latency.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/veal/ir/CMakeFiles/veal_ir.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/support/CMakeFiles/veal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
