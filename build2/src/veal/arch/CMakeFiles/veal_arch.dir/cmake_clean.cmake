file(REMOVE_RECURSE
  "CMakeFiles/veal_arch.dir/area.cc.o"
  "CMakeFiles/veal_arch.dir/area.cc.o.d"
  "CMakeFiles/veal_arch.dir/cpu_config.cc.o"
  "CMakeFiles/veal_arch.dir/cpu_config.cc.o.d"
  "CMakeFiles/veal_arch.dir/fu.cc.o"
  "CMakeFiles/veal_arch.dir/fu.cc.o.d"
  "CMakeFiles/veal_arch.dir/la_config.cc.o"
  "CMakeFiles/veal_arch.dir/la_config.cc.o.d"
  "CMakeFiles/veal_arch.dir/latency.cc.o"
  "CMakeFiles/veal_arch.dir/latency.cc.o.d"
  "libveal_arch.a"
  "libveal_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
