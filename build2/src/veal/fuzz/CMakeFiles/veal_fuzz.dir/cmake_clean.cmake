file(REMOVE_RECURSE
  "CMakeFiles/veal_fuzz.dir/corpus.cc.o"
  "CMakeFiles/veal_fuzz.dir/corpus.cc.o.d"
  "CMakeFiles/veal_fuzz.dir/driver.cc.o"
  "CMakeFiles/veal_fuzz.dir/driver.cc.o.d"
  "CMakeFiles/veal_fuzz.dir/oracle.cc.o"
  "CMakeFiles/veal_fuzz.dir/oracle.cc.o.d"
  "CMakeFiles/veal_fuzz.dir/shrinker.cc.o"
  "CMakeFiles/veal_fuzz.dir/shrinker.cc.o.d"
  "libveal_fuzz.a"
  "libveal_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
