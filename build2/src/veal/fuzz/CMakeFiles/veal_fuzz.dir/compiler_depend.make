# Empty compiler generated dependencies file for veal_fuzz.
# This may be replaced when dependencies are built.
