file(REMOVE_RECURSE
  "libveal_fuzz.a"
)
