# Empty dependencies file for veal_fault.
# This may be replaced when dependencies are built.
