
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/veal/fault/fault_injector.cc" "src/veal/fault/CMakeFiles/veal_fault.dir/fault_injector.cc.o" "gcc" "src/veal/fault/CMakeFiles/veal_fault.dir/fault_injector.cc.o.d"
  "/root/repo/src/veal/fault/fault_plan.cc" "src/veal/fault/CMakeFiles/veal_fault.dir/fault_plan.cc.o" "gcc" "src/veal/fault/CMakeFiles/veal_fault.dir/fault_plan.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/veal/support/CMakeFiles/veal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
