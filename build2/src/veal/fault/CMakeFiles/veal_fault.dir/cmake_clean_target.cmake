file(REMOVE_RECURSE
  "libveal_fault.a"
)
