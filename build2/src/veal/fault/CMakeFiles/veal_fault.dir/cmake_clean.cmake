file(REMOVE_RECURSE
  "CMakeFiles/veal_fault.dir/fault_injector.cc.o"
  "CMakeFiles/veal_fault.dir/fault_injector.cc.o.d"
  "CMakeFiles/veal_fault.dir/fault_plan.cc.o"
  "CMakeFiles/veal_fault.dir/fault_plan.cc.o.d"
  "libveal_fault.a"
  "libveal_fault.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_fault.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
