# Empty dependencies file for veal_faultsim.
# This may be replaced when dependencies are built.
