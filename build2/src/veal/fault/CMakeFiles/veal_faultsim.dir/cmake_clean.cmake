file(REMOVE_RECURSE
  "CMakeFiles/veal_faultsim.dir/campaign.cc.o"
  "CMakeFiles/veal_faultsim.dir/campaign.cc.o.d"
  "libveal_faultsim.a"
  "libveal_faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
