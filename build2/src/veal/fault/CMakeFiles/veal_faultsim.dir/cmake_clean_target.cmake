file(REMOVE_RECURSE
  "libveal_faultsim.a"
)
