file(REMOVE_RECURSE
  "libveal_sched.a"
)
