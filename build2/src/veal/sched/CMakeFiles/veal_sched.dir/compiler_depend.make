# Empty compiler generated dependencies file for veal_sched.
# This may be replaced when dependencies are built.
