
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/veal/sched/mii.cc" "src/veal/sched/CMakeFiles/veal_sched.dir/mii.cc.o" "gcc" "src/veal/sched/CMakeFiles/veal_sched.dir/mii.cc.o.d"
  "/root/repo/src/veal/sched/mrt.cc" "src/veal/sched/CMakeFiles/veal_sched.dir/mrt.cc.o" "gcc" "src/veal/sched/CMakeFiles/veal_sched.dir/mrt.cc.o.d"
  "/root/repo/src/veal/sched/priority.cc" "src/veal/sched/CMakeFiles/veal_sched.dir/priority.cc.o" "gcc" "src/veal/sched/CMakeFiles/veal_sched.dir/priority.cc.o.d"
  "/root/repo/src/veal/sched/register_alloc.cc" "src/veal/sched/CMakeFiles/veal_sched.dir/register_alloc.cc.o" "gcc" "src/veal/sched/CMakeFiles/veal_sched.dir/register_alloc.cc.o.d"
  "/root/repo/src/veal/sched/sched_graph.cc" "src/veal/sched/CMakeFiles/veal_sched.dir/sched_graph.cc.o" "gcc" "src/veal/sched/CMakeFiles/veal_sched.dir/sched_graph.cc.o.d"
  "/root/repo/src/veal/sched/schedule.cc" "src/veal/sched/CMakeFiles/veal_sched.dir/schedule.cc.o" "gcc" "src/veal/sched/CMakeFiles/veal_sched.dir/schedule.cc.o.d"
  "/root/repo/src/veal/sched/scheduler.cc" "src/veal/sched/CMakeFiles/veal_sched.dir/scheduler.cc.o" "gcc" "src/veal/sched/CMakeFiles/veal_sched.dir/scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build2/src/veal/cca/CMakeFiles/veal_cca.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/fault/CMakeFiles/veal_fault.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/arch/CMakeFiles/veal_arch.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/ir/CMakeFiles/veal_ir.dir/DependInfo.cmake"
  "/root/repo/build2/src/veal/support/CMakeFiles/veal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
