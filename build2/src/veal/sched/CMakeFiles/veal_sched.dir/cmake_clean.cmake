file(REMOVE_RECURSE
  "CMakeFiles/veal_sched.dir/mii.cc.o"
  "CMakeFiles/veal_sched.dir/mii.cc.o.d"
  "CMakeFiles/veal_sched.dir/mrt.cc.o"
  "CMakeFiles/veal_sched.dir/mrt.cc.o.d"
  "CMakeFiles/veal_sched.dir/priority.cc.o"
  "CMakeFiles/veal_sched.dir/priority.cc.o.d"
  "CMakeFiles/veal_sched.dir/register_alloc.cc.o"
  "CMakeFiles/veal_sched.dir/register_alloc.cc.o.d"
  "CMakeFiles/veal_sched.dir/sched_graph.cc.o"
  "CMakeFiles/veal_sched.dir/sched_graph.cc.o.d"
  "CMakeFiles/veal_sched.dir/schedule.cc.o"
  "CMakeFiles/veal_sched.dir/schedule.cc.o.d"
  "CMakeFiles/veal_sched.dir/scheduler.cc.o"
  "CMakeFiles/veal_sched.dir/scheduler.cc.o.d"
  "libveal_sched.a"
  "libveal_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
