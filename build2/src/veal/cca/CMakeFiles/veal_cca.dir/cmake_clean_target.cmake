file(REMOVE_RECURSE
  "libveal_cca.a"
)
