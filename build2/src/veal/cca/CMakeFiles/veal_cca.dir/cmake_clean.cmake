file(REMOVE_RECURSE
  "CMakeFiles/veal_cca.dir/cca_mapper.cc.o"
  "CMakeFiles/veal_cca.dir/cca_mapper.cc.o.d"
  "libveal_cca.a"
  "libveal_cca.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_cca.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
