# Empty dependencies file for veal_cca.
# This may be replaced when dependencies are built.
