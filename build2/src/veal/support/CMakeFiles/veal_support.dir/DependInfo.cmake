
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/veal/support/cost_meter.cc" "src/veal/support/CMakeFiles/veal_support.dir/cost_meter.cc.o" "gcc" "src/veal/support/CMakeFiles/veal_support.dir/cost_meter.cc.o.d"
  "/root/repo/src/veal/support/logging.cc" "src/veal/support/CMakeFiles/veal_support.dir/logging.cc.o" "gcc" "src/veal/support/CMakeFiles/veal_support.dir/logging.cc.o.d"
  "/root/repo/src/veal/support/metrics/metrics.cc" "src/veal/support/CMakeFiles/veal_support.dir/metrics/metrics.cc.o" "gcc" "src/veal/support/CMakeFiles/veal_support.dir/metrics/metrics.cc.o.d"
  "/root/repo/src/veal/support/table.cc" "src/veal/support/CMakeFiles/veal_support.dir/table.cc.o" "gcc" "src/veal/support/CMakeFiles/veal_support.dir/table.cc.o.d"
  "/root/repo/src/veal/support/thread_pool.cc" "src/veal/support/CMakeFiles/veal_support.dir/thread_pool.cc.o" "gcc" "src/veal/support/CMakeFiles/veal_support.dir/thread_pool.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
