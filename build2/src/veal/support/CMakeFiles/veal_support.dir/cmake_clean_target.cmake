file(REMOVE_RECURSE
  "libveal_support.a"
)
