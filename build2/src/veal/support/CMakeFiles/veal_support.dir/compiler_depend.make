# Empty compiler generated dependencies file for veal_support.
# This may be replaced when dependencies are built.
