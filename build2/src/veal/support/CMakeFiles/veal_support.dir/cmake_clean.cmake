file(REMOVE_RECURSE
  "CMakeFiles/veal_support.dir/cost_meter.cc.o"
  "CMakeFiles/veal_support.dir/cost_meter.cc.o.d"
  "CMakeFiles/veal_support.dir/logging.cc.o"
  "CMakeFiles/veal_support.dir/logging.cc.o.d"
  "CMakeFiles/veal_support.dir/metrics/metrics.cc.o"
  "CMakeFiles/veal_support.dir/metrics/metrics.cc.o.d"
  "CMakeFiles/veal_support.dir/table.cc.o"
  "CMakeFiles/veal_support.dir/table.cc.o.d"
  "CMakeFiles/veal_support.dir/thread_pool.cc.o"
  "CMakeFiles/veal_support.dir/thread_pool.cc.o.d"
  "libveal_support.a"
  "libveal_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
