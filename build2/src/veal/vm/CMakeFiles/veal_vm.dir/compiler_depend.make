# Empty compiler generated dependencies file for veal_vm.
# This may be replaced when dependencies are built.
