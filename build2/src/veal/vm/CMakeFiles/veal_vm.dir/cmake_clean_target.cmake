file(REMOVE_RECURSE
  "libveal_vm.a"
)
