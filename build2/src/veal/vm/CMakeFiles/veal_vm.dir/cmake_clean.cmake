file(REMOVE_RECURSE
  "CMakeFiles/veal_vm.dir/code_cache.cc.o"
  "CMakeFiles/veal_vm.dir/code_cache.cc.o.d"
  "CMakeFiles/veal_vm.dir/control_image.cc.o"
  "CMakeFiles/veal_vm.dir/control_image.cc.o.d"
  "CMakeFiles/veal_vm.dir/translator.cc.o"
  "CMakeFiles/veal_vm.dir/translator.cc.o.d"
  "CMakeFiles/veal_vm.dir/vm.cc.o"
  "CMakeFiles/veal_vm.dir/vm.cc.o.d"
  "libveal_vm.a"
  "libveal_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
