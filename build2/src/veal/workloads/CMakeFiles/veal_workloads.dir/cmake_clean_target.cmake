file(REMOVE_RECURSE
  "libveal_workloads.a"
)
