file(REMOVE_RECURSE
  "CMakeFiles/veal_workloads.dir/kernels.cc.o"
  "CMakeFiles/veal_workloads.dir/kernels.cc.o.d"
  "CMakeFiles/veal_workloads.dir/suite.cc.o"
  "CMakeFiles/veal_workloads.dir/suite.cc.o.d"
  "libveal_workloads.a"
  "libveal_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
