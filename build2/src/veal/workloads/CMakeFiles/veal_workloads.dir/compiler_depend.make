# Empty compiler generated dependencies file for veal_workloads.
# This may be replaced when dependencies are built.
