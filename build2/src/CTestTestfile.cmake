# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build2/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("veal/support")
subdirs("veal/fault")
subdirs("veal/ir")
subdirs("veal/arch")
subdirs("veal/cca")
subdirs("veal/sched")
subdirs("veal/sim")
subdirs("veal/vm")
subdirs("veal/workloads")
subdirs("veal/explore")
subdirs("veal/fuzz")
