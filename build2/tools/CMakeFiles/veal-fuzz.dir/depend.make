# Empty dependencies file for veal-fuzz.
# This may be replaced when dependencies are built.
