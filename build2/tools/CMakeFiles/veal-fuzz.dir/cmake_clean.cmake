file(REMOVE_RECURSE
  "CMakeFiles/veal-fuzz.dir/veal_fuzz_main.cc.o"
  "CMakeFiles/veal-fuzz.dir/veal_fuzz_main.cc.o.d"
  "veal-fuzz"
  "veal-fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal-fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
