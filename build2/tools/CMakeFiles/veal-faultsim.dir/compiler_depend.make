# Empty compiler generated dependencies file for veal-faultsim.
# This may be replaced when dependencies are built.
