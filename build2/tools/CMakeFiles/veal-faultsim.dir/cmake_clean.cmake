file(REMOVE_RECURSE
  "CMakeFiles/veal-faultsim.dir/veal_faultsim_main.cc.o"
  "CMakeFiles/veal-faultsim.dir/veal_faultsim_main.cc.o.d"
  "veal-faultsim"
  "veal-faultsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/veal-faultsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
