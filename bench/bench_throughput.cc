/**
 * Translation-throughput bench: the full suite through the VM, timed.
 *
 * Modeled quantities (translated-loop counts, phase-cycle totals) go to
 * stdout -- they are pure functions of the work, byte-identical for any
 * --threads or --runs.  Wall-clock throughput goes to stderr, like every
 * timing line in this repo, so determinism gates can diff stdout alone.
 * tools/veal-bench is the full driver (JSON trajectory, baselines); this
 * bench is the quick in-tree smoke over the same engine.
 */

#include <cinttypes>
#include <cstdio>

#include "bench/throughput.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    auto options = bench::parseThroughputCli(argc, argv);
    const auto report = bench::runTranslationThroughput(options);

    std::printf("VEAL bench: translation throughput, %s suite "
                "(fully dynamic, proposed LA)\n\n",
                report.suite.c_str());
    TextTable table({"quantity", "value"});
    table.addRow({"pieces/run", std::to_string(report.pieces_per_run)});
    table.addRow({"translated loops/run",
                  std::to_string(report.translated_loops_per_run)});
    table.addRow({"loop ops/run", std::to_string(report.ops_per_run)});
    for (const auto& [phase, cycles] : report.phase_cycles)
        table.addRow({"phase cycles: " + phase, std::to_string(cycles)});
    table.addRow({"phase cycles: total",
                  std::to_string(report.phase_cycles_per_run)});
    std::printf("%s", table.render().c_str());

    std::fprintf(stderr,
                 "veal-bench: %.1f translated loops/s, %.0f ops/s, "
                 "p50 %.2f ms, p95 %.2f ms (%d runs, %d threads)\n",
                 report.translated_loops_per_sec, report.ops_per_sec,
                 report.p50_wall_ms, report.p95_wall_ms, report.runs,
                 report.threads);
    return 0;
}
