/**
 * Figure 4(a): fraction of infinite-resource speedup attained while
 * sweeping the number of load / store memory streams.
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/support/table.h"

int
main()
{
    using namespace veal;
    const auto suite = mediaFpSuite();

    std::printf("VEAL reproduction: Figure 4(a) -- memory stream design "
                "space (fraction of infinite-resource speedup)\n\n");

    TextTable table({"streams", "load streams", "store streams"});
    for (const int streams : {1, 2, 4, 6, 8, 12, 16, 24, 32}) {
        LaConfig loads = LaConfig::infinite();
        loads.num_load_streams = streams;

        LaConfig stores = LaConfig::infinite();
        stores.num_store_streams = streams;

        table.addRow({std::to_string(streams),
                      TextTable::formatDouble(
                          bench::fractionOfInfinite(suite, loads), 3),
                      TextTable::formatDouble(
                          bench::fractionOfInfinite(suite, stores), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: loads matter more than stores (several loops have\n"
        "only scalar outputs), and a surprisingly large number of load\n"
        "streams is needed for the big (aggressively inlined) loops.\n");
    return 0;
}
