/**
 * Figure 4(a): fraction of infinite-resource speedup attained while
 * sweeping the number of load / store memory streams.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto runner = bench::makeRunner(options, mediaFpSuite());

    std::printf("VEAL reproduction: Figure 4(a) -- memory stream design "
                "space (fraction of infinite-resource speedup)\n\n");

    const std::vector<int> stream_counts{1, 2, 4, 6, 8, 12, 16, 24, 32};
    std::vector<LaConfig> configs;
    for (const int streams : stream_counts) {
        LaConfig loads = LaConfig::infinite();
        loads.num_load_streams = streams;
        configs.push_back(loads);

        LaConfig stores = LaConfig::infinite();
        stores.num_store_streams = streams;
        configs.push_back(stores);
    }
    const std::vector<double> fractions =
        runner.fractionOfInfinite(configs);

    TextTable table({"streams", "load streams", "store streams"});
    for (std::size_t row = 0; row < stream_counts.size(); ++row) {
        table.addRow({std::to_string(stream_counts[row]),
                      TextTable::formatDouble(fractions[2 * row], 3),
                      TextTable::formatDouble(fractions[2 * row + 1], 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: loads matter more than stores (several loops have\n"
        "only scalar outputs), and a surprisingly large number of load\n"
        "streams is needed for the big (aggressively inlined) loops.\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
