/**
 * Figure 6: mean speedup as a function of the per-loop translation
 * overhead, for several re-translation frequencies (translate once, and
 * 0.1% / 1% / 10% of invocations re-translate after code-cache misses).
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/support/table.h"

int
main()
{
    using namespace veal;
    const auto suite = mediaFpSuite();
    const LaConfig la = LaConfig::proposed();

    std::printf("VEAL reproduction: Figure 6 -- speedup vs per-loop "
                "translation overhead\n\n");

    TextTable table({"overhead (cycles)", "translate once", "0.1% miss",
                     "1% miss", "10% miss"});
    for (const double penalty :
         {0.0, 10000.0, 20000.0, 50000.0, 100000.0, 150000.0, 200000.0,
          300000.0}) {
        std::vector<std::string> row{
            std::to_string(static_cast<long>(penalty))};
        for (const double rate : {0.0, 0.001, 0.01, 0.1}) {
            VmOptions options;
            options.penalty_override = penalty;
            options.retranslation_rate = rate;
            row.push_back(TextTable::formatDouble(
                bench::meanSpeedup(suite, la,
                                   TranslationMode::kFullyDynamic,
                                   &options),
                2));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: with a 1%% miss rate, cutting the overhead from\n"
        "100k to 20k cycles recovers a large share of the speedup\n"
        "(paper: 1.47 -> 1.92); the translate-once line stays flat far\n"
        "longer.\n");
    return 0;
}
