/**
 * Figure 6: mean speedup as a function of the per-loop translation
 * overhead, for several re-translation frequencies (translate once, and
 * 0.1% / 1% / 10% of invocations re-translate after code-cache misses).
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto runner = bench::makeRunner(options, mediaFpSuite());
    const auto& suite = runner.suite();
    const LaConfig la = LaConfig::proposed();

    std::printf("VEAL reproduction: Figure 6 -- speedup vs per-loop "
                "translation overhead\n\n");

    const std::vector<double> penalties{0.0, 10000.0, 20000.0, 50000.0,
                                        100000.0, 150000.0, 200000.0,
                                        300000.0};
    const std::vector<double> rates{0.0, 0.001, 0.01, 0.1};

    // The grid rows vary VmOptions rather than the LaConfig, so this
    // bench decodes (penalty, rate, benchmark) straight from the cell
    // index instead of going through a config list.
    const int num_benchmarks = static_cast<int>(suite.size());
    const int cells_per_row = static_cast<int>(rates.size()) *
                              num_benchmarks;
    const int num_cells = static_cast<int>(penalties.size()) *
                          cells_per_row;
    const std::vector<double> cells =
        runner.evaluateCellsMetered(num_cells, [&](int i,
                                                   metrics::Registry&
                                                       registry) {
            VmOptions vm_options;
            vm_options.penalty_override =
                penalties[static_cast<std::size_t>(i / cells_per_row)];
            vm_options.retranslation_rate =
                rates[static_cast<std::size_t>((i / num_benchmarks) %
                                               static_cast<int>(
                                                   rates.size()))];
            const auto& benchmark =
                suite[static_cast<std::size_t>(i % num_benchmarks)];
            return explore::cellSpeedup(benchmark, la,
                                        TranslationMode::kFullyDynamic,
                                        &vm_options, &registry);
        });

    TextTable table({"overhead (cycles)", "translate once", "0.1% miss",
                     "1% miss", "10% miss"});
    for (std::size_t p = 0; p < penalties.size(); ++p) {
        std::vector<std::string> row{
            std::to_string(static_cast<long>(penalties[p]))};
        for (std::size_t r = 0; r < rates.size(); ++r) {
            double sum = 0.0;
            for (int b = 0; b < num_benchmarks; ++b) {
                sum += cells[p * static_cast<std::size_t>(cells_per_row) +
                             r * static_cast<std::size_t>(num_benchmarks) +
                             static_cast<std::size_t>(b)];
            }
            row.push_back(TextTable::formatDouble(
                sum / static_cast<double>(num_benchmarks), 2));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: with a 1%% miss rate, cutting the overhead from\n"
        "100k to 20k cycles recovers a large share of the speedup\n"
        "(paper: 1.47 -> 1.92); the translate-once line stays flat far\n"
        "longer.\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
