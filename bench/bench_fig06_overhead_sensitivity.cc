/**
 * Figure 6: mean speedup as a function of the per-loop translation
 * overhead, for several re-translation frequencies (translate once, and
 * 0.1% / 1% / 10% of invocations re-translate after code-cache misses).
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto runner = bench::makeRunner(options, mediaFpSuite());
    const auto& suite = runner.suite();
    const LaConfig la = LaConfig::proposed();

    std::printf("VEAL reproduction: Figure 6 -- speedup vs per-loop "
                "translation overhead\n\n");

    const std::vector<double> penalties{0.0, 10000.0, 20000.0, 50000.0,
                                        100000.0, 150000.0, 200000.0,
                                        300000.0};
    const std::vector<double> rates{0.0, 0.001, 0.01, 0.1};

    // The grid rows vary VmOptions rather than the LaConfig, so this
    // bench decodes (penalty, rate, benchmark) straight from the cell
    // index instead of going through a config list.
    const int num_benchmarks = static_cast<int>(suite.size());
    const int cells_per_row = static_cast<int>(rates.size()) *
                              num_benchmarks;
    const int num_cells = static_cast<int>(penalties.size()) *
                          cells_per_row;
    const std::vector<double> cells =
        runner.evaluateCellsMetered(num_cells, [&](int i,
                                                   metrics::Registry&
                                                       registry) {
            VmOptions vm_options;
            vm_options.penalty_override =
                penalties[static_cast<std::size_t>(i / cells_per_row)];
            vm_options.retranslation_rate =
                rates[static_cast<std::size_t>((i / num_benchmarks) %
                                               static_cast<int>(
                                                   rates.size()))];
            const auto& benchmark =
                suite[static_cast<std::size_t>(i % num_benchmarks)];
            return explore::cellSpeedup(benchmark, la,
                                        TranslationMode::kFullyDynamic,
                                        &vm_options, &registry);
        });

    TextTable table({"overhead (cycles)", "translate once", "0.1% miss",
                     "1% miss", "10% miss"});
    for (std::size_t p = 0; p < penalties.size(); ++p) {
        std::vector<std::string> row{
            std::to_string(static_cast<long>(penalties[p]))};
        for (std::size_t r = 0; r < rates.size(); ++r) {
            double sum = 0.0;
            for (int b = 0; b < num_benchmarks; ++b) {
                sum += cells[p * static_cast<std::size_t>(cells_per_row) +
                             r * static_cast<std::size_t>(num_benchmarks) +
                             static_cast<std::size_t>(b)];
            }
            row.push_back(TextTable::formatDouble(
                sum / static_cast<double>(num_benchmarks), 2));
        }
        table.addRow(std::move(row));
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: with a 1%% miss rate, cutting the overhead from\n"
        "100k to 20k cycles recovers a large share of the speedup\n"
        "(paper: 1.47 -> 1.92); the translate-once line stays flat far\n"
        "longer.\n");

    // Second axis (beyond the paper): stream-TLB pressure.  Page-walk
    // stalls ride on the LA invocation prices (sim/tlb_model.h), so a
    // too-small stream TLB erodes the speedup even when translation is
    // free -- the cross-run persistence study's companion knob.
    const std::vector<int> tlb_entries{0, 8, 16, 32, 64, 128};
    const int tlb_cells = static_cast<int>(tlb_entries.size()) *
                          num_benchmarks;
    const std::vector<double> tlb_cell_values =
        runner.evaluateCellsMetered(tlb_cells, [&](int i,
                                                   metrics::Registry&
                                                       registry) {
            VmOptions vm_options;
            const int entries =
                tlb_entries[static_cast<std::size_t>(i / num_benchmarks)];
            if (entries > 0) {
                vm_options.tlb = TlbConfig::proposed();
                vm_options.tlb.entries = entries;
            }
            const auto& benchmark =
                suite[static_cast<std::size_t>(i % num_benchmarks)];
            return explore::cellSpeedup(benchmark, la,
                                        TranslationMode::kFullyDynamic,
                                        &vm_options, &registry);
        });

    std::printf("TLB sensitivity (translate once, overhead as metered)\n\n");
    TextTable tlb_table({"stream-TLB entries", "mean speedup"});
    for (std::size_t e = 0; e < tlb_entries.size(); ++e) {
        double sum = 0.0;
        for (int b = 0; b < num_benchmarks; ++b) {
            sum += tlb_cell_values[e * static_cast<std::size_t>(
                                           num_benchmarks) +
                                   static_cast<std::size_t>(b)];
        }
        tlb_table.addRow(
            {tlb_entries[e] == 0 ? std::string("model off")
                                 : std::to_string(tlb_entries[e]),
             TextTable::formatDouble(
                 sum / static_cast<double>(num_benchmarks), 2)});
    }
    std::printf("%s\n", tlb_table.render().c_str());
    std::printf(
        "Expected shape: the model-off and large-TLB rows agree (the\n"
        "working sets fit), and shrinking the TLB below the hot loops'\n"
        "distinct-page span bends the mean speedup down.\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
