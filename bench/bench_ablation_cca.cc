/**
 * Ablation (beyond the paper's figures, supporting its §3.1 CCA claims):
 * what the CCA actually buys, measured per translation mode.  The CCA's
 * value is threefold -- fewer integer-unit slots (ResMII), fewer
 * registers (internalised temporaries), and *much* cheaper dynamic
 * translation when its mapping is statically encoded.
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/arch/area.h"
#include "veal/support/table.h"

int
main()
{
    using namespace veal;
    const auto suite = mediaFpSuite();

    LaConfig with_cca = LaConfig::proposed();
    LaConfig no_cca = LaConfig::proposed();
    no_cca.name = "no-cca";
    no_cca.num_cca_units = 0;
    no_cca.cca.reset();

    std::printf("VEAL ablation: the CCA's contribution per translation "
                "mode (mean speedup)\n\n");

    TextTable table({"mode", "with CCA", "no CCA", "delta"});
    for (const auto mode : {TranslationMode::kStatic,
                            TranslationMode::kFullyDynamic,
                            TranslationMode::kFullyDynamicHeight,
                            TranslationMode::kHybridStaticCcaPriority}) {
        const double with_value = bench::meanSpeedup(suite, with_cca,
                                                     mode);
        const double without_value =
            bench::meanSpeedup(suite, no_cca, mode);
        table.addRow({toString(mode),
                      TextTable::formatDouble(with_value, 2),
                      TextTable::formatDouble(without_value, 2),
                      TextTable::formatDouble(with_value - without_value,
                                              2)});
    }
    std::printf("%s\n", table.render().c_str());

    // Area context: what the CCA costs.
    AreaModel area;
    std::printf("CCA area cost: %.2f mm^2 of %.2f mm^2 total\n",
                area.totalArea(with_cca) - area.totalArea(no_cca),
                area.totalArea(with_cca));
    std::printf(
        "Expected shape: the CCA matters most under dynamic translation\n"
        "(fewer registers and cheaper schedules); with unlimited static\n"
        "compile time its raw-performance value is smaller (paper frames\n"
        "the CCA as an efficiency feature, not a peak-speed one).\n");
    return 0;
}
