/**
 * Ablation (beyond the paper's figures, supporting its §3.1 CCA claims):
 * what the CCA actually buys, measured per translation mode.  The CCA's
 * value is threefold -- fewer integer-unit slots (ResMII), fewer
 * registers (internalised temporaries), and *much* cheaper dynamic
 * translation when its mapping is statically encoded.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "veal/arch/area.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto runner = bench::makeRunner(options, mediaFpSuite());

    LaConfig with_cca = LaConfig::proposed();
    LaConfig no_cca = LaConfig::proposed();
    no_cca.name = "no-cca";
    no_cca.num_cca_units = 0;
    no_cca.cca.reset();

    std::printf("VEAL ablation: the CCA's contribution per translation "
                "mode (mean speedup)\n\n");

    const std::vector<TranslationMode> modes{
        TranslationMode::kStatic, TranslationMode::kFullyDynamic,
        TranslationMode::kFullyDynamicHeight,
        TranslationMode::kHybridStaticCcaPriority};

    // One meanSpeedup sweep per mode, each over both configs at once.
    TextTable table({"mode", "with CCA", "no CCA", "delta"});
    for (const auto mode : modes) {
        const std::vector<double> means =
            runner.meanSpeedup({with_cca, no_cca}, mode);
        table.addRow({toString(mode),
                      TextTable::formatDouble(means[0], 2),
                      TextTable::formatDouble(means[1], 2),
                      TextTable::formatDouble(means[0] - means[1], 2)});
    }
    std::printf("%s\n", table.render().c_str());

    // Area context: what the CCA costs.
    AreaModel area;
    std::printf("CCA area cost: %.2f mm^2 of %.2f mm^2 total\n",
                area.totalArea(with_cca) - area.totalArea(no_cca),
                area.totalArea(with_cca));
    std::printf(
        "Expected shape: the CCA matters most under dynamic translation\n"
        "(fewer registers and cheaper schedules); with unlimited static\n"
        "compile time its raw-performance value is smaller (paper frames\n"
        "the CCA as an efficiency feature, not a peak-speed one).\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
