/**
 * Figure 4(b): fraction of infinite-resource speedup attained while
 * sweeping the maximum II supported by the accelerator's control store.
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/support/table.h"

int
main()
{
    using namespace veal;
    const auto suite = mediaFpSuite();

    std::printf("VEAL reproduction: Figure 4(b) -- maximum supported II "
                "(fraction of infinite-resource speedup)\n\n");

    TextTable table({"max II", "fraction"});
    for (const int max_ii : {1, 2, 4, 6, 8, 12, 16, 24, 32}) {
        // Finite II alone; everything else unlimited, but the machine
        // keeps the proposed FU mix so the II values are meaningful.
        LaConfig la = LaConfig::infiniteWithCca();
        la.num_int_units = LaConfig::proposed().num_int_units;
        la.num_fp_units = LaConfig::proposed().num_fp_units;
        la.num_memory_ports = LaConfig::proposed().num_memory_ports;
        la.max_ii = max_ii;
        LaConfig baseline = la;
        baseline.max_ii = LaConfig::kUnlimited;

        double sum = 0.0;
        for (const auto& benchmark : suite) {
            const double finite =
                bench::appSpeedup(benchmark, la, TranslationMode::kStatic);
            const double unlimited = bench::appSpeedup(
                benchmark, baseline, TranslationMode::kStatic);
            sum += unlimited > 0.0 ? finite / unlimited : 1.0;
        }
        table.addRow({std::to_string(max_ii),
                      TextTable::formatDouble(
                          sum / static_cast<double>(suite.size()), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: the curve saturates by II = 16 -- the control store\n"
        "depth chosen for the proposed design; loops that need more II\n"
        "are rejected to the CPU (or statically fissioned).\n");
    return 0;
}
