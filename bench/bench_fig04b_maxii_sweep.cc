/**
 * Figure 4(b): fraction of infinite-resource speedup attained while
 * sweeping the maximum II supported by the accelerator's control store.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto runner = bench::makeRunner(options, mediaFpSuite());

    std::printf("VEAL reproduction: Figure 4(b) -- maximum supported II "
                "(fraction of infinite-resource speedup)\n\n");

    std::vector<int> ii_values{1, 2, 4, 6, 8, 12, 16, 24, 32};
    std::vector<LaConfig> configs;
    for (const int max_ii : ii_values) {
        // Finite II alone; everything else unlimited, but the machine
        // keeps the proposed FU mix so the II values are meaningful.
        LaConfig la = LaConfig::infiniteWithCca();
        la.num_int_units = LaConfig::proposed().num_int_units;
        la.num_fp_units = LaConfig::proposed().num_fp_units;
        la.num_memory_ports = LaConfig::proposed().num_memory_ports;
        la.max_ii = max_ii;
        configs.push_back(la);
    }

    // The baseline here is *this* machine with an unlimited control
    // store, not the generic infinite LA, so the cell derives it from
    // the swept config instead of going through fractionOfInfinite().
    const std::vector<double> fractions = runner.sweepMean(
        configs, [](const Benchmark& benchmark, const LaConfig& la) {
            LaConfig baseline = la;
            baseline.max_ii = LaConfig::kUnlimited;
            const double finite = explore::cellSpeedup(
                benchmark, la, TranslationMode::kStatic);
            const double unlimited = explore::cellSpeedup(
                benchmark, baseline, TranslationMode::kStatic);
            return unlimited > 0.0 ? finite / unlimited : 1.0;
        });

    TextTable table({"max II", "fraction"});
    for (std::size_t row = 0; row < ii_values.size(); ++row) {
        table.addRow({std::to_string(ii_values[row]),
                      TextTable::formatDouble(fractions[row], 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: the curve saturates by II = 16 -- the control store\n"
        "depth chosen for the proposed design; loops that need more II\n"
        "are rejected to the CPU (or statically fissioned).\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
