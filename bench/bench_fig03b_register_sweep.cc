/**
 * Figure 3(b): fraction of infinite-resource speedup attained while
 * sweeping register-file sizes (integer / FP, with and without a CCA).
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/support/table.h"

int
main()
{
    using namespace veal;
    const auto suite = mediaFpSuite();

    std::printf("VEAL reproduction: Figure 3(b) -- register design space "
                "(fraction of infinite-resource speedup)\n\n");

    TextTable table({"registers", "int regs", "int regs (1 CCA)",
                     "fp regs"});
    for (const int regs : {1, 2, 4, 8, 12, 16, 24, 32}) {
        LaConfig int_regs = LaConfig::infinite();
        int_regs.num_int_registers = regs;

        LaConfig int_regs_cca = LaConfig::infiniteWithCca();
        int_regs_cca.num_int_registers = regs;

        LaConfig fp_regs = LaConfig::infinite();
        fp_regs.num_fp_registers = regs;

        table.addRow(
            {std::to_string(regs),
             TextTable::formatDouble(
                 bench::fractionOfInfinite(suite, int_regs), 3),
             TextTable::formatDouble(
                 bench::fractionOfInfinite(suite, int_regs_cca), 3),
             TextTable::formatDouble(
                 bench::fractionOfInfinite(suite, fp_regs), 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: few registers support most loops (values read off\n"
        "the interconnect or through FIFOs need none), and the CCA lowers\n"
        "the requirement further by internalising temporaries.\n");
    return 0;
}
