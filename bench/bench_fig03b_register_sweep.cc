/**
 * Figure 3(b): fraction of infinite-resource speedup attained while
 * sweeping register-file sizes (integer / FP, with and without a CCA).
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto runner = bench::makeRunner(options, mediaFpSuite());

    std::printf("VEAL reproduction: Figure 3(b) -- register design space "
                "(fraction of infinite-resource speedup)\n\n");

    const std::vector<int> reg_counts{1, 2, 4, 8, 12, 16, 24, 32};
    std::vector<LaConfig> configs;
    for (const int regs : reg_counts) {
        LaConfig int_regs = LaConfig::infinite();
        int_regs.num_int_registers = regs;
        configs.push_back(int_regs);

        LaConfig int_regs_cca = LaConfig::infiniteWithCca();
        int_regs_cca.num_int_registers = regs;
        configs.push_back(int_regs_cca);

        LaConfig fp_regs = LaConfig::infinite();
        fp_regs.num_fp_registers = regs;
        configs.push_back(fp_regs);
    }
    const std::vector<double> fractions =
        runner.fractionOfInfinite(configs);

    TextTable table({"registers", "int regs", "int regs (1 CCA)",
                     "fp regs"});
    for (std::size_t row = 0; row < reg_counts.size(); ++row) {
        table.addRow(
            {std::to_string(reg_counts[row]),
             TextTable::formatDouble(fractions[3 * row], 3),
             TextTable::formatDouble(fractions[3 * row + 1], 3),
             TextTable::formatDouble(fractions[3 * row + 2], 3)});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: few registers support most loops (values read off\n"
        "the interconnect or through FIFOs need none), and the CCA lowers\n"
        "the requirement further by internalising temporaries.\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
