#include "bench/persist.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/support/assert.h"
#include "veal/support/logging.h"
#include "veal/vm/persist/store.h"

namespace veal::bench {

namespace {

/** The fixed study trace: big enough that every tenant's working set
    cycles through warm, coalesced, and persisted outcomes. */
constexpr int kRequests = 1024;
constexpr int kLoops = 24;
constexpr int kTenants = 4;
constexpr int kTickSize = 32;
constexpr std::uint64_t kTraceSeed = 0xbeefcafe17ull;

/** Warm-matrix shapes: the report must not care about any of these. */
struct Shape {
    int shards;
    int threads;
    int batch;
};
constexpr Shape kMatrix[] = {
    {1, 1, 1}, {2, 1, 16}, {4, 3, 5}, {8, 4, 64}};

/** Lifecycle churn: every key re-saved this many extra generations. */
constexpr int kChurnRounds = 3;

/** Small segments for the churn pass so compaction has real work. */
constexpr std::int64_t kChurnSegmentBytes = 4096;

std::uint64_t
fnv1a(const std::string& text)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (const char c : text) {
        hash ^= static_cast<unsigned char>(c);
        hash *= 0x100000001b3ull;
    }
    return hash;
}

std::string
hex(std::uint64_t value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

ServiceOptions
makeOptions(const std::string& cache_dir, const Shape& shape)
{
    ServiceOptions options;
    options.shards = shape.shards;
    options.threads = shape.threads;
    options.batch = shape.batch;
    options.cache_dir = cache_dir;
    return options;
}

/** One full service run; returns the rendered report. */
std::string
runOnce(const ServiceTrace& trace, const ServiceOptions& options,
        ServiceReport* report_out, double* wall_ms)
{
    using Clock = std::chrono::steady_clock;
    TranslationService service(options, nullptr);
    const auto start = Clock::now();
    service.run(trace);
    const double ms = std::chrono::duration<double, std::milli>(
                          Clock::now() - start)
                          .count();
    if (wall_ms != nullptr)
        *wall_ms = ms;
    service.flushPersistentStore();
    if (report_out != nullptr)
        *report_out = service.report();
    return service.report().render();
}

double
p50(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    return samples[(samples.size() - 1) / 2];
}

std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    return buffer;
}

}  // namespace

std::string
PersistReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"veal-persist-bench-v2\",\n";
    os << "  \"commit\": \"" << commit << "\",\n";
    os << "  \"runs\": " << runs << ",\n";
    os << "  \"requests\": " << requests << ",\n";
    os << "  \"loops\": " << loops << ",\n";
    os << "  \"tenants\": " << tenants << ",\n";
    os << "  \"cold_translation_cycles\": " << cold_translation_cycles
       << ",\n";
    os << "  \"warm_translation_cycles\": " << warm_translation_cycles
       << ",\n";
    os << "  \"translation_cycle_ratio\": " << translation_cycle_ratio
       << ",\n";
    os << "  \"cold_persisted\": " << cold_persisted << ",\n";
    os << "  \"warm_persisted\": " << warm_persisted << ",\n";
    os << "  \"cold_report_digest\": \"" << cold_report_digest << "\",\n";
    os << "  \"warm_report_digest\": \"" << warm_report_digest << "\",\n";
    os << "  \"recovered_entries\": " << recovered_entries << ",\n";
    os << "  \"churn_rounds\": " << churn_rounds << ",\n";
    os << "  \"churn_log_bytes\": " << churn_log_bytes << ",\n";
    os << "  \"compacted_log_bytes\": " << compacted_log_bytes << ",\n";
    os << "  \"compaction_reclaimed_bytes\": "
       << compaction_reclaimed_bytes << ",\n";
    os << "  \"compactions\": " << compactions << ",\n";
    os << "  \"wall_ms\": {\"cold_p50\": " << formatDouble(cold_p50_ms)
       << ", \"warm_p50\": " << formatDouble(warm_p50_ms)
       << ", \"recover_p50\": " << formatDouble(recover_p50_ms) << "}\n";
    os << "}\n";
    return os.str();
}

PersistReport
runPersistBench(const ThroughputOptions& options)
{
    namespace fs = std::filesystem;
    PersistReport report;
    report.commit = options.commit;
    report.runs = options.runs;
    report.requests = kRequests;
    report.loops = kLoops;
    report.tenants = kTenants;

    TraceGenOptions gen;
    gen.requests = kRequests;
    gen.loop_pool = kLoops;
    gen.tenants = kTenants;
    gen.tick_size = kTickSize;
    gen.seed = kTraceSeed;
    const ServiceTrace trace = generateTrace(gen);

    std::error_code ec;
    const fs::path cache_dir =
        fs::temp_directory_path(ec) /
        ("veal-persist-bench-" +
         std::to_string(static_cast<long long>(
             std::chrono::steady_clock::now().time_since_epoch().count())));
    fs::remove_all(cache_dir, ec);

    // Phase 1: cold.  Fresh directory; every key translates and is
    // saved.  Re-run --runs times from scratch for the timing sample
    // (the report must come out identical every time).
    ServiceReport cold;
    std::string cold_render;
    for (int run = 0; run < options.runs; ++run) {
        fs::remove_all(cache_dir, ec);
        double ms = 0.0;
        std::string render = runOnce(
            trace, makeOptions(cache_dir.string(), kMatrix[1]), &cold,
            &ms);
        report.cold_wall_ms.push_back(ms);
        std::fprintf(stderr,
                     "veal-bench: persist cold pass %d/%d %.2f ms\n",
                     run + 1, options.runs, ms);
        if (run == 0) {
            cold_render = std::move(render);
        } else {
            VEAL_ASSERT(render == cold_render,
                        "cold report drifted across bench runs");
        }
    }
    VEAL_ASSERT(cold.persisted == 0,
                "a cold run served from a fresh store");

    // Phase 2: warm.  Fresh service over the populated store, --runs
    // timed passes; every pass must render the same bytes.
    ServiceReport warm;
    std::string warm_render;
    for (int run = 0; run < options.runs; ++run) {
        double ms = 0.0;
        std::string render = runOnce(
            trace, makeOptions(cache_dir.string(), kMatrix[1]), &warm,
            &ms);
        report.warm_wall_ms.push_back(ms);
        std::fprintf(stderr,
                     "veal-bench: persist warm pass %d/%d %.2f ms\n",
                     run + 1, options.runs, ms);
        if (run == 0) {
            warm_render = std::move(render);
        } else {
            VEAL_ASSERT(render == warm_render,
                        "warm report drifted across restarts");
        }
    }

    // Phase 3: the warm matrix.  The service contract says the report
    // never depends on --shards/--threads/--batch; the persistent store
    // must not break that.
    for (const Shape& shape : kMatrix) {
        const std::string render = runOnce(
            trace, makeOptions(cache_dir.string(), shape), nullptr,
            nullptr);
        VEAL_ASSERT(render == warm_render,
                    "warm report depends on the service shape (shards=",
                    shape.shards, " threads=", shape.threads,
                    " batch=", shape.batch, ")");
    }

    // Phase 4a: recovery.  Time a bare store open over the populated
    // directory -- this is the warm-restart tax before the first
    // request can be served.
    std::int64_t recovered = 0;
    for (int run = 0; run < options.runs; ++run) {
        using Clock = std::chrono::steady_clock;
        const auto start = Clock::now();
        persist::PersistentStore store(cache_dir.string(),
                                       persist::StoreOptions{});
        const double ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - start)
                              .count();
        report.recover_wall_ms.push_back(ms);
        if (run == 0) {
            recovered = store.size();
        } else {
            VEAL_ASSERT(store.size() == recovered,
                        "recovery drifted across reopens");
        }
    }

    // Phase 4b: churn + compaction.  Re-save every live key for a few
    // generations over small segments (each re-save strands the prior
    // record as garbage).  At 100% the store auto-compacts only fully-
    // garbage segments, so the log tracks the live set through the
    // churn; compactNow() then drains the mixed stragglers.  The byte
    // counts are pure functions of the trace, so they are modeled.
    std::int64_t churn_log_bytes = 0;
    std::int64_t compacted_log_bytes = 0;
    std::int64_t reclaimed_bytes = 0;
    std::int64_t compactions = 0;
    {
        persist::StoreOptions store_options;
        store_options.segment_bytes = kChurnSegmentBytes;
        store_options.compact_garbage_percent = 100;
        persist::PersistentStore store(cache_dir.string(), store_options);
        for (int round = 0; round < kChurnRounds; ++round) {
            for (const std::string& key : store.keys()) {
                const auto image = store.load(key);
                VEAL_ASSERT(image.has_value(),
                            "a recovered key failed to load during churn");
                VEAL_ASSERT(store.save(*image),
                            "a churn re-save was not acked");
            }
        }
        churn_log_bytes = store.stats().log_bytes;
        while (store.compactNow()) {
        }
        const persist::StoreStats stats = store.stats();
        compacted_log_bytes = stats.log_bytes;
        reclaimed_bytes = stats.reclaimed_bytes;
        compactions = stats.compactions;
        VEAL_ASSERT(reclaimed_bytes > 0,
                    "compaction reclaimed nothing from a churned log");
        VEAL_ASSERT(compacted_log_bytes <= churn_log_bytes,
                    "the compacted log grew");
        VEAL_ASSERT(store.size() == recovered,
                    "churn + compaction changed the live set");
    }

    fs::remove_all(cache_dir, ec);

    // The warm-start contract: the store serves every translated key,
    // so a warm run performs no translation work at all.
    VEAL_ASSERT(warm.translation_cycles == 0,
                "warm run still translated (",
                warm.translation_cycles, " cycles)");
    VEAL_ASSERT(warm.persisted > 0, "warm run never hit the store");

    report.cold_translation_cycles = cold.translation_cycles;
    report.warm_translation_cycles = warm.translation_cycles;
    report.translation_cycle_ratio =
        cold.translation_cycles /
        std::max<std::int64_t>(warm.translation_cycles, 1);
    report.cold_persisted = cold.cold + cold.coalesced;
    report.warm_persisted = warm.persisted;
    report.cold_report_digest = hex(fnv1a(cold_render));
    report.warm_report_digest = hex(fnv1a(warm_render));
    report.recovered_entries = recovered;
    report.churn_rounds = kChurnRounds;
    report.churn_log_bytes = churn_log_bytes;
    report.compacted_log_bytes = compacted_log_bytes;
    report.compaction_reclaimed_bytes = reclaimed_bytes;
    report.compactions = compactions;
    report.cold_p50_ms = p50(report.cold_wall_ms);
    report.warm_p50_ms = p50(report.warm_wall_ms);
    report.recover_p50_ms = p50(report.recover_wall_ms);

    if (!options.json_path.empty()) {
        std::ofstream out(options.json_path);
        out << report.toJson();
        if (!out) {
            fatal("cannot write bench report to ", options.json_path);
        }
    }
    return report;
}

}  // namespace veal::bench
