/**
 * Figure 2: percent of baseline execution time spent in modulo-schedulable
 * loops, loops needing speculation support, loops with subroutine calls,
 * and acyclic code, for the media/FP suite (left) and the integer suite
 * (right).
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/arch/cpu_config.h"
#include "veal/sim/cpu_sim.h"
#include "veal/support/table.h"
#include "veal/workloads/suite.h"

namespace veal {
namespace {

void
report(const std::vector<Benchmark>& suite, const char* group,
       metrics::Registry& registry)
{
    const CpuConfig cpu = CpuConfig::arm11();
    TextTable table({"benchmark", "modulo%", "speculation%", "subroutine%",
                     "acyclic%"});
    for (const auto& benchmark : suite) {
        const auto& app = benchmark.transformed;
        double by_feature[3] = {0.0, 0.0, 0.0};
        for (const auto& site : app.sites) {
            const double cycles =
                static_cast<double>(
                    simulateLoopOnCpu(site.loop, cpu, site.iterations)
                        .total_cycles) *
                static_cast<double>(site.invocations);
            by_feature[static_cast<int>(site.loop.feature())] += cycles;
        }
        const double acyclic = static_cast<double>(app.acyclic_cycles);
        const double total =
            by_feature[0] + by_feature[1] + by_feature[2] + acyclic;
        registry.add("coverage.sites",
                     static_cast<std::int64_t>(app.sites.size()));
        registry.observe("coverage.modulo_percent",
                         static_cast<std::int64_t>(
                             100.0 * by_feature[0] / total));
        table.addRow(
            {benchmark.name,
             TextTable::formatDouble(100.0 * by_feature[0] / total, 1),
             TextTable::formatDouble(100.0 * by_feature[1] / total, 1),
             TextTable::formatDouble(100.0 * by_feature[2] / total, 1),
             TextTable::formatDouble(100.0 * acyclic / total, 1)});
    }
    std::printf("--- Figure 2 (%s) ---\n%s\n", group,
                table.render().c_str());
}

}  // namespace
}  // namespace veal

int
main(int argc, char** argv)
{
    const auto options = veal::bench::BenchOptions::parse(argc, argv);
    veal::metrics::Registry registry;
    std::printf("VEAL reproduction: Figure 2 -- execution time by code "
                "category (measured on the 1-issue baseline)\n\n");
    veal::report(veal::mediaFpSuite(), "media / floating point",
                 registry);
    veal::report(veal::integerSuite(), "integer / control-heavy",
                 registry);
    std::printf("Paper shape: the left group is dominated by "
                "modulo-schedulable loops; the right group is not.\n");
    veal::bench::finishBenchMetrics(options, registry);
    return 0;
}
