#include "bench/simulation.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <utility>

#include "veal/arch/cpu_config.h"
#include "veal/arch/la_config.h"
#include "veal/fuzz/driver.h"
#include "veal/fuzz/oracle.h"
#include "veal/sim/batch.h"
#include "veal/sim/reference.h"
#include "veal/support/assert.h"
#include "veal/support/logging.h"
#include "veal/support/thread_pool.h"
#include "veal/vm/translator.h"

namespace veal::bench {

namespace {

/** The fixed campaign: same fuzz-loop stream the campaign drivers run. */
constexpr std::uint64_t kCampaignSeed = 0x51bca5e5ull;
constexpr int kCases = 512;
constexpr std::int64_t kInterpretIterations = 64;

/** FNV-1a over every modeled quantity, mixed in case order. */
struct Fnv {
    std::uint64_t hash = 0xcbf29ce484222325ull;

    void
    mix(std::uint64_t value)
    {
        for (int b = 0; b < 8; ++b) {
            hash ^= (value >> (8 * b)) & 0xffu;
            hash *= 0x100000001b3ull;
        }
    }

    void
    mix(const std::string& text)
    {
        for (const char c : text) {
            hash ^= static_cast<unsigned char>(c);
            hash *= 0x100000001b3ull;
        }
        mix(text.size());
    }
};

std::string
hex(std::uint64_t value)
{
    char buffer[32];
    std::snprintf(buffer, sizeof buffer, "0x%016llx",
                  static_cast<unsigned long long>(value));
    return buffer;
}

/** Where a batch lane's architectural results live, post-pass. */
struct ExecRef {
    const BatchExecView* view = nullptr;
    std::size_t lane = 0;
};

/** Everything one case's simulations produced, for digesting.  The
    reference pass materializes `exec`; the batched pass points
    `exec_ref` into its engines' arenas instead (same quantities, same
    order, no map materialization). */
struct CaseOutput {
    CpuLoopTiming timing;
    ExecutionResult exec;
    ExecRef exec_ref;
    bool translated = false;
    LaInvocationCost first_cost;
    LaInvocationCost warm_cost;
};

/** The prepared case set; built once, outside the timed passes. */
struct CaseSet {
    std::vector<Loop> loops;
    std::vector<ExecutionInput> inputs;
    /** inputs[i].memory pre-flattened, the batch engine's input shape. */
    std::vector<FlatMemoryImage> flat_inputs;
    std::vector<TranslationResult> translations;  ///< ok=false lanes too.
    CpuConfig cpu = CpuConfig::arm11();
    LaConfig la = LaConfig::proposed();
};

CaseSet
makeCaseSet()
{
    CaseSet set;
    set.loops.reserve(kCases);
    set.inputs.reserve(kCases);
    set.translations.reserve(kCases);
    for (int i = 0; i < kCases; ++i) {
        set.loops.push_back(makeFuzzCaseLoop(kCampaignSeed, i));
        const Loop& loop = set.loops.back();
        VEAL_ASSERT(interpretable(loop),
                    "bench case fell outside the interpreter subset");
        set.inputs.push_back(makeFuzzInput(
            loop, makeFuzzCaseSeed(kCampaignSeed, i),
            kInterpretIterations));
        set.translations.push_back(translateLoop(
            loop, set.la, TranslationMode::kFullyDynamic));
    }
    set.flat_inputs.reserve(kCases);
    for (const ExecutionInput& input : set.inputs)
        set.flat_inputs.push_back(flattenMemoryImage(input.memory));
    return set;
}

bool
hasLaLanes(const TranslationResult& translation)
{
    return translation.ok && translation.graph.has_value();
}

/** One pass through the frozen scalar oracle, one case at a time. */
std::vector<CaseOutput>
referencePass(const CaseSet& set, ThreadPool& pool)
{
    std::vector<CaseOutput> outputs(kCases);
    pool.run(kCases, [&](int i) {
        const auto index = static_cast<std::size_t>(i);
        CaseOutput& out = outputs[index];
        const Loop& loop = set.loops[index];
        out.timing = reference::simulateLoopOnCpu(loop, set.cpu,
                                                  loop.tripCount());
        out.exec = reference::interpretLoop(loop, set.inputs[index]);
        const TranslationResult& tr = set.translations[index];
        if (hasLaLanes(tr)) {
            out.translated = true;
            out.first_cost = reference::acceleratorLoopCost(
                tr.schedule, *tr.graph, tr.analysis, tr.registers,
                set.la, loop.tripCount(), /*first_invocation=*/true);
            out.warm_cost = reference::acceleratorLoopCost(
                tr.schedule, *tr.graph, tr.analysis, tr.registers,
                set.la, loop.tripCount(), /*first_invocation=*/false);
        }
    });
    return outputs;
}

/**
 * One pass through the batch engine, @p batch lanes per call.
 * @p simulators holds one engine per block, owned by the caller: each
 * block always runs on its own simulator, so the returned exec_refs
 * stay valid until the next pass, and a simulator's arenas warm up
 * across passes exactly like a long-lived campaign worker's.
 */
std::vector<CaseOutput>
batchedPass(const CaseSet& set, ThreadPool& pool, int batch,
            std::vector<std::unique_ptr<BatchSimulator>>& simulators)
{
    const int blocks = (kCases + batch - 1) / batch;
    VEAL_ASSERT(static_cast<int>(simulators.size()) == blocks,
                "one simulator per block");
    std::vector<CaseOutput> outputs(kCases);
    pool.run(blocks, [&](int block) {
        const int begin = block * batch;
        const int end = std::min(begin + batch, kCases);
        BatchSimulator& simulator =
            *simulators[static_cast<std::size_t>(block)];

        std::vector<CpuSimRequest> cpu_lanes;
        std::vector<InterpretRequest> exec_lanes;
        std::vector<LaCostRequest> la_lanes;
        std::vector<int> la_owner;
        for (int i = begin; i < end; ++i) {
            const auto index = static_cast<std::size_t>(i);
            const Loop& loop = set.loops[index];
            cpu_lanes.push_back({&loop, loop.tripCount()});
            exec_lanes.push_back({&loop, &set.inputs[index],
                                  &set.flat_inputs[index]});
            const TranslationResult& tr = set.translations[index];
            if (hasLaLanes(tr)) {
                la_lanes.push_back({&tr.schedule, &*tr.graph,
                                    &tr.analysis, &tr.registers,
                                    loop.tripCount(),
                                    /*first_invocation=*/true});
                la_lanes.push_back({&tr.schedule, &*tr.graph,
                                    &tr.analysis, &tr.registers,
                                    loop.tripCount(),
                                    /*first_invocation=*/false});
                la_owner.push_back(i);
            }
        }
        const auto timings = simulator.simulateCpuBatch(set.cpu, cpu_lanes);
        const BatchExecView& view = simulator.interpretBatchFlat(
            exec_lanes);
        const auto charges = simulator.acceleratorCostBatch(set.la,
                                                            la_lanes);
        for (int i = begin; i < end; ++i) {
            const auto k = static_cast<std::size_t>(i - begin);
            outputs[static_cast<std::size_t>(i)].timing = timings[k];
            outputs[static_cast<std::size_t>(i)].exec_ref = {&view, k};
        }
        for (std::size_t k = 0; k < la_owner.size(); ++k) {
            CaseOutput& out =
                outputs[static_cast<std::size_t>(la_owner[k])];
            out.translated = true;
            out.first_cost = charges[2 * k];
            out.warm_cost = charges[2 * k + 1];
        }
    });
    return outputs;
}

/** The modeled summary of one pass, mixed strictly in case order. */
struct Modeled {
    std::int64_t translated_cases = 0;
    std::int64_t total_cpu_cycles = 0;
    std::uint64_t cpu_digest = 0;
    std::uint64_t exec_digest = 0;
    std::uint64_t la_digest = 0;

    bool
    operator==(const Modeled& other) const
    {
        return translated_cases == other.translated_cases &&
               total_cpu_cycles == other.total_cpu_cycles &&
               cpu_digest == other.cpu_digest &&
               exec_digest == other.exec_digest &&
               la_digest == other.la_digest;
    }
};

Modeled
digestOutputs(const std::vector<CaseOutput>& outputs)
{
    Modeled modeled;
    Fnv cpu;
    Fnv exec;
    Fnv la;
    for (const CaseOutput& out : outputs) {
        modeled.total_cpu_cycles += out.timing.total_cycles;
        cpu.mix(static_cast<std::uint64_t>(out.timing.total_cycles));
        cpu.mix(std::bit_cast<std::uint64_t>(
            out.timing.cycles_per_iteration));

        // Both branches visit the identical (live-out, region, cell)
        // sequence -- the digests matching IS the bit-identity claim.
        if (out.exec_ref.view) {
            const BatchExecView& view = *out.exec_ref.view;
            const auto& lane = view.lanes[out.exec_ref.lane];
            for (std::size_t lo = lane.live_out_begin;
                 lo < lane.live_out_end; ++lo) {
                exec.mix(static_cast<std::uint64_t>(
                    view.live_outs[lo].first));
                exec.mix(static_cast<std::uint64_t>(
                    view.live_outs[lo].second));
            }
            for (std::size_t r = lane.region_begin; r < lane.region_end;
                 ++r) {
                const BatchExecView::Region& region = view.regions[r];
                exec.mix(*region.name);
                forEachRegionCell(
                    region,
                    [&exec](std::int64_t address, std::int64_t value) {
                        exec.mix(static_cast<std::uint64_t>(address));
                        exec.mix(static_cast<std::uint64_t>(value));
                    });
            }
        } else {
            for (const auto& [op, value] : out.exec.live_outs) {
                exec.mix(static_cast<std::uint64_t>(op));
                exec.mix(static_cast<std::uint64_t>(value));
            }
            for (const auto& [symbol, cells] : out.exec.memory) {
                exec.mix(symbol);
                for (const auto& [address, value] : cells) {
                    exec.mix(static_cast<std::uint64_t>(address));
                    exec.mix(static_cast<std::uint64_t>(value));
                }
            }
        }

        if (out.translated) {
            ++modeled.translated_cases;
            for (const LaInvocationCost* cost :
                 {&out.first_cost, &out.warm_cost}) {
                la.mix(static_cast<std::uint64_t>(cost->setup_cycles));
                la.mix(static_cast<std::uint64_t>(cost->pipeline_cycles));
                la.mix(static_cast<std::uint64_t>(cost->drain_cycles));
            }
        }
    }
    modeled.cpu_digest = cpu.hash;
    modeled.exec_digest = exec.hash;
    modeled.la_digest = la.hash;
    return modeled;
}

/** Nearest-rank quantile over a sorted sample. */
double
quantile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto index = static_cast<std::size_t>(std::llround(
        q * static_cast<double>(sorted.size() - 1)));
    return sorted[std::min(index, sorted.size() - 1)];
}

std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    return buffer;
}

double
p50(std::vector<double> samples)
{
    std::sort(samples.begin(), samples.end());
    return quantile(samples, 0.50);
}

}  // namespace

std::string
SimulationReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"veal-sim-bench-v1\",\n";
    os << "  \"commit\": \"" << commit << "\",\n";
    os << "  \"threads\": " << threads << ",\n";
    os << "  \"batch\": " << batch << ",\n";
    os << "  \"runs\": " << runs << ",\n";
    os << "  \"cases\": " << cases << ",\n";
    os << "  \"iterations\": " << iterations << ",\n";
    os << "  \"translated_cases\": " << translated_cases << ",\n";
    os << "  \"total_cpu_cycles\": " << total_cpu_cycles << ",\n";
    os << "  \"cpu_digest\": \"" << cpu_digest << "\",\n";
    os << "  \"exec_digest\": \"" << exec_digest << "\",\n";
    os << "  \"la_digest\": \"" << la_digest << "\",\n";
    os << "  \"wall_ms\": {\"reference_p50\": "
       << formatDouble(reference_p50_ms)
       << ", \"batched_p50\": " << formatDouble(batched_p50_ms) << "},\n";
    os << "  \"reference_cases_per_sec\": "
       << formatDouble(reference_cases_per_sec) << ",\n";
    os << "  \"batched_cases_per_sec\": "
       << formatDouble(batched_cases_per_sec) << ",\n";
    os << "  \"speedup_vs_reference\": "
       << formatDouble(speedup_vs_reference) << "\n";
    os << "}\n";
    return os.str();
}

SimulationReport
runSimulationThroughput(const ThroughputOptions& options)
{
    SimulationReport report;
    report.commit = options.commit;
    report.runs = options.runs;
    report.batch = std::max(1, options.batch);
    report.cases = kCases;
    report.iterations = kInterpretIterations;

    const CaseSet set = makeCaseSet();
    ThreadPool pool(options.threads);
    report.threads = pool.numThreads();

    using Clock = std::chrono::steady_clock;
    const auto timed = [&](const auto& pass, const char* label,
                           std::vector<double>* wall_ms) {
        const auto start = Clock::now();
        auto outputs = pass();
        const double ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - start)
                              .count();
        wall_ms->push_back(ms);
        std::fprintf(stderr, "veal-bench: %s pass %zu/%d %.2f ms\n",
                     label, wall_ms->size(), options.runs, ms);
        return digestOutputs(outputs);
    };

    Modeled modeled;
    for (int run = 0; run < options.runs; ++run) {
        const Modeled pass = timed(
            [&] { return referencePass(set, pool); }, "reference",
            &report.reference_wall_ms);
        if (run == 0) {
            modeled = pass;
        } else {
            VEAL_ASSERT(pass == modeled,
                        "reference pass drifted across bench runs");
        }
    }
    const int blocks = (kCases + report.batch - 1) / report.batch;
    std::vector<std::unique_ptr<BatchSimulator>> simulators;
    simulators.reserve(static_cast<std::size_t>(blocks));
    for (int block = 0; block < blocks; ++block)
        simulators.push_back(std::make_unique<BatchSimulator>());
    for (int run = 0; run < options.runs; ++run) {
        const Modeled pass = timed(
            [&] {
                return batchedPass(set, pool, report.batch, simulators);
            },
            "batched", &report.batched_wall_ms);
        // The contract this bench exists to pin: the batch engine is
        // bit-identical to the frozen oracle on every modeled quantity.
        VEAL_ASSERT(pass == modeled,
                    "batched pass diverged from the reference oracle");
    }

    report.translated_cases = modeled.translated_cases;
    report.total_cpu_cycles = modeled.total_cpu_cycles;
    report.cpu_digest = hex(modeled.cpu_digest);
    report.exec_digest = hex(modeled.exec_digest);
    report.la_digest = hex(modeled.la_digest);

    report.reference_p50_ms = p50(report.reference_wall_ms);
    report.batched_p50_ms = p50(report.batched_wall_ms);
    if (report.reference_p50_ms > 0.0) {
        report.reference_cases_per_sec =
            kCases * 1000.0 / report.reference_p50_ms;
    }
    if (report.batched_p50_ms > 0.0) {
        report.batched_cases_per_sec =
            kCases * 1000.0 / report.batched_p50_ms;
    }
    if (report.reference_cases_per_sec > 0.0) {
        report.speedup_vs_reference = report.batched_cases_per_sec /
                                      report.reference_cases_per_sec;
    }

    if (!options.json_path.empty()) {
        std::ofstream out(options.json_path);
        out << report.toJson();
        if (!out) {
            fatal("cannot write bench report to ", options.json_path);
        }
    }
    return report;
}

}  // namespace veal::bench
