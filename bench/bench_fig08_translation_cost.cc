/**
 * Figure 8: the measured translation penalty per loop, broken into
 * modulo-scheduling phases, for the fully dynamic translator.
 *
 * The phase numbers are read back out of the metrics registry (raw work
 * units recorded by MeteredScope, weighted through a reconstructed
 * CostMeter), so the table and a --metrics-json snapshot can never
 * disagree.  Each benchmark is one sweep cell; the per-cell registries
 * merge in benchmark order, keeping stdout and the snapshot
 * byte-identical for any --threads value.
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/support/metrics/metrics.h"
#include "veal/support/table.h"
#include "veal/vm/translator.h"
#include "veal/workloads/suite.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    auto runner = bench::makeRunner(options, mediaFpSuite());
    const auto& suite = runner.suite();
    const LaConfig la = LaConfig::proposed();

    std::printf("VEAL reproduction: Figure 8 -- translation instructions "
                "per loop, by phase (fully dynamic, swing priority)\n\n");

    // One cell per benchmark: translate every piece, metering the phase
    // units into the cell's private registry, then run the VM so the
    // audited vm.phase_cycles.* attribution lands in the snapshot too.
    runner.evaluateCellsMetered(
        static_cast<int>(suite.size()),
        [&](int i, metrics::Registry& registry) {
            const auto& benchmark = suite[static_cast<std::size_t>(i)];
            CostMeter bench_meter;
            int loops = 0;
            {
                const metrics::MeteredScope scope(
                    registry, "translate." + benchmark.name, bench_meter);
                for (const auto& site : benchmark.transformed.sites) {
                    std::vector<const Loop*> pieces;
                    if (site.fissioned.empty()) {
                        pieces.push_back(&site.loop);
                    } else {
                        for (const auto& piece : site.fissioned)
                            pieces.push_back(&piece);
                    }
                    for (const Loop* loop : pieces) {
                        const auto result = translateLoop(
                            *loop, la, TranslationMode::kFullyDynamic);
                        if (!result.ok)
                            continue;  // Rejected loops never schedule.
                        bench_meter.add(result.meter);
                        ++loops;
                    }
                }
            }
            registry.add("translate." + benchmark.name + ".loops", loops);

            const VirtualMachine vm(la, CpuConfig::arm11(), VmOptions{});
            const AppRunResult run =
                vm.run(benchmark.transformed, &registry);
            registry.add("vm.app." + benchmark.name +
                             ".translation_cycles",
                         run.translation_cycles);
            return bench_meter.totalInstructions();
        });

    const metrics::Registry& metrics = runner.metrics();

    // Rebuild each benchmark's meter from the registry's unit counters:
    // units are exact integers, so the weighted numbers below are
    // identical to metering in place.
    const auto meterFor = [&](const std::string& prefix) {
        CostMeter meter;
        for (int p = 0; p < kNumTranslationPhases; ++p) {
            const auto phase = static_cast<TranslationPhase>(p);
            meter.charge(phase, static_cast<std::uint64_t>(metrics.counter(
                                    prefix + ".units." +
                                    toString(phase))));
        }
        return meter;
    };

    TextTable table({"benchmark", "loops", "analysis", "cca", "mii",
                     "priority", "sched", "regalloc", "total/loop"});

    CostMeter suite_total;
    int suite_loops = 0;
    for (const auto& benchmark : suite) {
        const auto loops = static_cast<int>(
            metrics.counter("translate." + benchmark.name + ".loops"));
        if (loops == 0)
            continue;
        const CostMeter per_benchmark =
            meterFor("translate." + benchmark.name);
        suite_total.add(per_benchmark);
        suite_loops += loops;
        auto phase = [&](TranslationPhase p) {
            return TextTable::formatDouble(
                per_benchmark.instructions(p) / loops, 0);
        };
        table.addRow({benchmark.name, std::to_string(loops),
                      phase(TranslationPhase::kLoopAnalysis),
                      phase(TranslationPhase::kCcaMapping),
                      phase(TranslationPhase::kMiiComputation),
                      phase(TranslationPhase::kPriority),
                      phase(TranslationPhase::kScheduling),
                      phase(TranslationPhase::kRegisterAssignment),
                      TextTable::formatDouble(
                          per_benchmark.totalInstructions() / loops, 0)});
    }

    const double total = suite_total.totalInstructions() / suite_loops;
    auto percent = [&](TranslationPhase p) {
        return 100.0 * suite_total.instructions(p) /
               suite_total.totalInstructions();
    };
    table.addRow(
        {"AVERAGE", std::to_string(suite_loops),
         TextTable::formatDouble(
             suite_total.instructions(TranslationPhase::kLoopAnalysis) /
                 suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(TranslationPhase::kCcaMapping) /
                 suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(
                 TranslationPhase::kMiiComputation) / suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(TranslationPhase::kPriority) /
                 suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(TranslationPhase::kScheduling) /
                 suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(
                 TranslationPhase::kRegisterAssignment) / suite_loops, 0),
         TextTable::formatDouble(total, 0)});
    std::printf("%s\n", table.render().c_str());

    std::printf("Suite average: %.0f instructions/loop "
                "(paper: ~99,716)\n", total);
    std::printf("Phase split: priority %.0f%%  (paper 69%%),  "
                "CCA %.0f%% (paper 20%%),  MII %.1f%%,  "
                "scheduling %.1f%% (paper <3%%),  "
                "register assignment %.1f%%\n",
                percent(TranslationPhase::kPriority),
                percent(TranslationPhase::kCcaMapping),
                percent(TranslationPhase::kMiiComputation),
                percent(TranslationPhase::kScheduling),
                percent(TranslationPhase::kRegisterAssignment));

    bench::finishBenchMetrics(options, metrics);
    bench::reportSweepStats(runner);
    return 0;
}
