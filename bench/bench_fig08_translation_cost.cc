/**
 * Figure 8: the measured translation penalty per loop, broken into
 * modulo-scheduling phases, for the fully dynamic translator.
 */

#include <cstdio>

#include "veal/arch/cpu_config.h"
#include "veal/support/table.h"
#include "veal/vm/translator.h"
#include "veal/workloads/suite.h"

int
main()
{
    using namespace veal;
    const auto suite = mediaFpSuite();
    const LaConfig la = LaConfig::proposed();

    std::printf("VEAL reproduction: Figure 8 -- translation instructions "
                "per loop, by phase (fully dynamic, swing priority)\n\n");

    TextTable table({"benchmark", "loops", "analysis", "cca", "mii",
                     "priority", "sched", "regalloc", "total/loop"});

    CostMeter suite_total;
    int suite_loops = 0;
    for (const auto& benchmark : suite) {
        CostMeter per_benchmark;
        int loops = 0;
        for (const auto& site : benchmark.transformed.sites) {
            std::vector<const Loop*> pieces;
            if (site.fissioned.empty()) {
                pieces.push_back(&site.loop);
            } else {
                for (const auto& piece : site.fissioned)
                    pieces.push_back(&piece);
            }
            for (const Loop* loop : pieces) {
                const auto result = translateLoop(
                    *loop, la, TranslationMode::kFullyDynamic);
                if (!result.ok)
                    continue;  // Rejected loops never reach scheduling.
                per_benchmark.add(result.meter);
                ++loops;
            }
        }
        if (loops == 0)
            continue;
        suite_total.add(per_benchmark);
        suite_loops += loops;
        auto phase = [&](TranslationPhase p) {
            return TextTable::formatDouble(
                per_benchmark.instructions(p) / loops, 0);
        };
        table.addRow({benchmark.name, std::to_string(loops),
                      phase(TranslationPhase::kLoopAnalysis),
                      phase(TranslationPhase::kCcaMapping),
                      phase(TranslationPhase::kMiiComputation),
                      phase(TranslationPhase::kPriority),
                      phase(TranslationPhase::kScheduling),
                      phase(TranslationPhase::kRegisterAssignment),
                      TextTable::formatDouble(
                          per_benchmark.totalInstructions() / loops, 0)});
    }

    const double total = suite_total.totalInstructions() / suite_loops;
    auto percent = [&](TranslationPhase p) {
        return 100.0 * suite_total.instructions(p) /
               suite_total.totalInstructions();
    };
    table.addRow(
        {"AVERAGE", std::to_string(suite_loops),
         TextTable::formatDouble(
             suite_total.instructions(TranslationPhase::kLoopAnalysis) /
                 suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(TranslationPhase::kCcaMapping) /
                 suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(
                 TranslationPhase::kMiiComputation) / suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(TranslationPhase::kPriority) /
                 suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(TranslationPhase::kScheduling) /
                 suite_loops, 0),
         TextTable::formatDouble(
             suite_total.instructions(
                 TranslationPhase::kRegisterAssignment) / suite_loops, 0),
         TextTable::formatDouble(total, 0)});
    std::printf("%s\n", table.render().c_str());

    std::printf("Suite average: %.0f instructions/loop "
                "(paper: ~99,716)\n", total);
    std::printf("Phase split: priority %.0f%%  (paper 69%%),  "
                "CCA %.0f%% (paper 20%%),  MII %.1f%%,  "
                "scheduling %.1f%% (paper <3%%),  "
                "register assignment %.1f%%\n",
                percent(TranslationPhase::kPriority),
                percent(TranslationPhase::kCcaMapping),
                percent(TranslationPhase::kMiiComputation),
                percent(TranslationPhase::kScheduling),
                percent(TranslationPhase::kRegisterAssignment));
    return 0;
}
