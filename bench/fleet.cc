#include "bench/fleet.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "veal/arch/cpu_config.h"
#include "veal/explore/sweep.h"
#include "veal/fleet/fleet.h"
#include "veal/support/assert.h"
#include "veal/workloads/suite.h"

namespace veal::bench {

namespace {

/** Scoring mode: the service default, and what the paper evaluates. */
constexpr TranslationMode kMode = TranslationMode::kFullyDynamic;

/** One priced unit: a transformed loop piece with its profile weight. */
struct Piece {
    const Loop* loop = nullptr;
    std::int64_t invocations = 1;
    std::int64_t iterations = 100;
    std::size_t benchmark = 0;
};

/** Every transformed-binary loop piece of the suite, in suite order
    (fissioned pieces expand in sequence -- the LA runs them back to
    back, so each is priced and steered independently). */
std::vector<Piece>
gatherPieces(const std::vector<Benchmark>& suite)
{
    std::vector<Piece> pieces;
    for (std::size_t b = 0; b < suite.size(); ++b) {
        for (const LoopSite& site : suite[b].transformed.sites) {
            if (site.fissioned.empty()) {
                pieces.push_back(
                    {&site.loop, site.invocations, site.iterations, b});
            } else {
                for (const Loop& piece : site.fissioned) {
                    pieces.push_back(
                        {&piece, site.invocations, site.iterations, b});
                }
            }
        }
    }
    return pieces;
}

std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    return buffer;
}

double
p50(std::vector<double> samples)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    return samples[(samples.size() - 1) / 2];
}

}  // namespace

std::string
FleetBenchReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"veal-fleet-bench-v1\",\n";
    os << "  \"commit\": \"" << commit << "\",\n";
    os << "  \"fleet\": \"" << fleet << "\",\n";
    os << "  \"runs\": " << runs << ",\n";
    os << "  \"pieces\": " << pieces << ",\n";
    os << "  \"scored_cells\": " << scored_cells << ",\n";
    os << "  \"cpu_steady_cycles\": " << cpu_steady_cycles << ",\n";
    os << "  \"baseline_steady_cycles\": " << baseline_steady_cycles
       << ",\n";
    os << "  \"fleet_steady_cycles\": " << fleet_steady_cycles << ",\n";
    os << "  \"cpu_win_pieces\": " << cpu_win_pieces << ",\n";
    os << "  \"speedup_milli\": " << speedup_milli << ",\n";
    os << "  \"backends\": [\n";
    for (std::size_t i = 0; i < backends.size(); ++i) {
        const auto& backend = backends[i];
        os << "    {\"name\": \"" << backend.name
           << "\", \"placed_pieces\": " << backend.placed_pieces
           << ", \"placed_invocations\": " << backend.placed_invocations
           << ", \"steady_cycles\": " << backend.steady_cycles << "}"
           << (i + 1 < backends.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"benchmarks\": [\n";
    for (std::size_t i = 0; i < benchmarks.size(); ++i) {
        const auto& bench = benchmarks[i];
        os << "    {\"name\": \"" << bench.name
           << "\", \"baseline_cycles\": " << bench.baseline_cycles
           << ", \"fleet_cycles\": " << bench.fleet_cycles
           << ", \"speedup_milli\": " << bench.speedup_milli << "}"
           << (i + 1 < benchmarks.size() ? "," : "") << "\n";
    }
    os << "  ],\n";
    os << "  \"wall_ms\": {\"p50\": " << formatDouble(p50_wall_ms)
       << "}\n";
    os << "}\n";
    return os.str();
}

FleetBenchReport
runFleetBench(const ThroughputOptions& options)
{
    using Clock = std::chrono::steady_clock;

    FleetBenchReport report;
    report.commit = options.commit;
    report.runs = options.runs;
    report.fleet = "standard";

    const fleet::FleetConfig config = fleet::FleetConfig::standard();
    std::vector<LaConfig> backends;
    backends.reserve(config.backends.size());
    for (const auto& backend : config.backends)
        backends.push_back(backend.la);
    const CpuConfig cpu;
    const TlbConfig tlb;  // Disabled: pure design-point comparison.

    // The suite as the service sees it: one set of binaries, fissioned
    // by the static toolchain for the baseline design point.  Fleet
    // members must win on the *same* pieces, never on friendlier ones.
    explore::SweepRunner runner(mediaFpSuite(), options.threads);
    report.threads = runner.threads();
    const std::vector<Piece> pieces = gatherPieces(runner.suite());
    report.pieces = static_cast<std::int64_t>(pieces.size());
    report.scored_cells =
        report.pieces * static_cast<std::int64_t>(backends.size());

    // Scoring grid, grouped by per-site iteration count (a score is
    // priced at the site's real trip count).  Repeated --runs times for
    // the wall-clock sample; every pass must agree bit for bit.
    std::vector<std::vector<explore::LoopScore>> scores(pieces.size());
    for (int run = 0; run < std::max(1, options.runs); ++run) {
        std::vector<std::vector<explore::LoopScore>> pass(pieces.size());
        const auto start = Clock::now();
        std::map<std::int64_t, std::vector<std::size_t>> by_iterations;
        for (std::size_t i = 0; i < pieces.size(); ++i)
            by_iterations[pieces[i].iterations].push_back(i);
        for (const auto& [iterations, members] : by_iterations) {
            std::vector<Loop> loops;
            loops.reserve(members.size());
            for (const std::size_t i : members)
                loops.push_back(*pieces[i].loop);
            const auto grid =
                runner.scoreLoops(loops, backends, kMode, iterations, tlb);
            for (std::size_t k = 0; k < members.size(); ++k)
                pass[members[k]] = grid[k];
        }
        const double ms = std::chrono::duration<double, std::milli>(
                              Clock::now() - start)
                              .count();
        report.wall_ms.push_back(ms);
        std::fprintf(stderr,
                     "veal-bench: fleet scoring pass %d/%d %.2f ms "
                     "(%lld cells, %d threads)\n",
                     run + 1, std::max(1, options.runs), ms,
                     static_cast<long long>(report.scored_cells),
                     report.threads);
        if (run == 0) {
            scores = std::move(pass);
        } else {
            for (std::size_t i = 0; i < pieces.size(); ++i) {
                for (std::size_t j = 0; j < backends.size(); ++j) {
                    VEAL_ASSERT(
                        pass[i][j].warm_cycles == scores[i][j].warm_cycles &&
                            pass[i][j].ok == scores[i][j].ok,
                        "fleet scores drifted across bench passes");
                }
            }
        }
    }
    report.p50_wall_ms = p50(report.wall_ms);

    // Steer every piece through the real FleetSteerer (unlimited
    // capacity: the study compares design points, not admission).
    fleet::FleetSteerer steerer(config);
    report.backends.resize(backends.size());
    for (std::size_t j = 0; j < backends.size(); ++j)
        report.backends[j].name = backends[j].name;
    report.benchmarks.resize(runner.suite().size());
    for (std::size_t b = 0; b < runner.suite().size(); ++b)
        report.benchmarks[b].name = runner.suite()[b].name;

    for (std::size_t i = 0; i < pieces.size(); ++i) {
        const Piece& piece = pieces[i];
        const std::int64_t weight = piece.invocations;
        const std::int64_t cpu_piece =
            weight * explore::scoreCpuCycles(*piece.loop, cpu,
                                             piece.iterations);
        report.cpu_steady_cycles += cpu_piece;

        // Baseline: the single proposed design point (fleet index 0).
        const explore::LoopScore& base = scores[i][0];
        const std::int64_t baseline_piece =
            base.ok ? std::min(cpu_piece, weight * base.warm_cycles)
                    : cpu_piece;
        report.baseline_steady_cycles += baseline_piece;
        report.benchmarks[piece.benchmark].baseline_cycles +=
            baseline_piece;

        // Fleet: steer, then serve from the placed backend (CPU when
        // the backend still loses at this piece's trip count).
        persist::FleetScoreSet set;
        set.scoring_iterations = piece.iterations;
        set.cpu_cycles = cpu_piece / std::max<std::int64_t>(1, weight);
        set.backends.reserve(backends.size());
        for (const auto& cell : scores[i]) {
            persist::FleetBackendScore score;
            score.ok = cell.ok;
            score.reject = cell.reject;
            score.ii = cell.ii;
            score.stage_count = cell.stage_count;
            score.first_cycles = cell.first_cycles;
            score.warm_cycles = cell.warm_cycles;
            set.backends.push_back(score);
        }
        const fleet::Placement placement =
            steerer.place("piece-" + std::to_string(i), set);

        std::int64_t fleet_piece = cpu_piece;
        if (placement.backend >= 0 && !placement.unscored) {
            const auto b = static_cast<std::size_t>(placement.backend);
            const std::int64_t la_piece =
                weight * scores[i][b].warm_cycles;
            ++report.backends[b].placed_pieces;
            report.backends[b].placed_invocations += weight;
            if (la_piece < cpu_piece) {
                fleet_piece = la_piece;
                report.backends[b].steady_cycles += la_piece;
            } else {
                ++report.cpu_win_pieces;
            }
        } else {
            ++report.cpu_win_pieces;
        }
        report.fleet_steady_cycles += fleet_piece;
        report.benchmarks[piece.benchmark].fleet_cycles += fleet_piece;
    }

    VEAL_ASSERT(report.fleet_steady_cycles > 0);
    report.speedup_milli =
        report.baseline_steady_cycles * 1000 / report.fleet_steady_cycles;
    for (auto& bench : report.benchmarks) {
        bench.speedup_milli =
            bench.fleet_cycles > 0
                ? bench.baseline_cycles * 1000 / bench.fleet_cycles
                : 1000;
    }

    if (!options.json_path.empty()) {
        std::ofstream out(options.json_path);
        VEAL_ASSERT(static_cast<bool>(out), "cannot write ",
                    options.json_path);
        out << report.toJson();
    }
    return report;
}

}  // namespace veal::bench
