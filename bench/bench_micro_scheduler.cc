/**
 * Micro-benchmarks (google-benchmark): host-side throughput of the
 * translator's phases on representative loops.  These complement the
 * Figure 8 instruction metering with real wall-clock numbers for this
 * implementation.
 */

#include <benchmark/benchmark.h>

#include "veal/ir/random_loop.h"
#include "veal/sched/mii.h"
#include "veal/sched/priority.h"
#include "veal/sched/scheduler.h"
#include "veal/vm/translator.h"
#include "veal/workloads/kernels.h"

namespace veal {
namespace {

Loop
benchLoop(int size_class)
{
    RandomLoopParams params;
    params.min_compute_ops = size_class;
    params.max_compute_ops = size_class;
    return makeRandomLoop(params, 42, "bench");
}

void
BM_FullTranslation_Swing(benchmark::State& state)
{
    const Loop loop = benchLoop(static_cast<int>(state.range(0)));
    const LaConfig la = LaConfig::proposed();
    for (auto _ : state) {
        auto result =
            translateLoop(loop, la, TranslationMode::kFullyDynamic);
        benchmark::DoNotOptimize(result.ok);
    }
}
BENCHMARK(BM_FullTranslation_Swing)->Arg(8)->Arg(16)->Arg(32);

void
BM_FullTranslation_Height(benchmark::State& state)
{
    const Loop loop = benchLoop(static_cast<int>(state.range(0)));
    const LaConfig la = LaConfig::proposed();
    for (auto _ : state) {
        auto result = translateLoop(loop, la,
                                    TranslationMode::kFullyDynamicHeight);
        benchmark::DoNotOptimize(result.ok);
    }
}
BENCHMARK(BM_FullTranslation_Height)->Arg(8)->Arg(16)->Arg(32);

void
BM_FullTranslation_Hybrid(benchmark::State& state)
{
    const Loop loop = benchLoop(static_cast<int>(state.range(0)));
    const LaConfig la = LaConfig::proposed();
    const auto annotations = precompileAnnotations(loop, la);
    for (auto _ : state) {
        auto result = translateLoop(
            loop, la, TranslationMode::kHybridStaticCcaPriority,
            &annotations);
        benchmark::DoNotOptimize(result.ok);
    }
}
BENCHMARK(BM_FullTranslation_Hybrid)->Arg(8)->Arg(16)->Arg(32);

void
BM_RecMii(benchmark::State& state)
{
    const Loop loop = makeShaMixLoop("sha", 3);
    const LaConfig la = LaConfig::proposed();
    const auto analysis = analyzeLoop(loop);
    const auto mapping = emptyCcaMapping(loop);
    const SchedGraph graph(loop, analysis, mapping, la);
    for (auto _ : state) {
        benchmark::DoNotOptimize(recMii(graph));
    }
}
BENCHMARK(BM_RecMii);

void
BM_SwingOrder(benchmark::State& state)
{
    const Loop loop = makeShaMixLoop("sha", 3);
    const LaConfig la = LaConfig::proposed();
    const auto analysis = analyzeLoop(loop);
    const auto mapping = emptyCcaMapping(loop);
    const SchedGraph graph(loop, analysis, mapping, la);
    const int mii = std::max(resMii(graph, la), recMii(graph));
    for (auto _ : state) {
        auto order = computeSwingOrder(graph, mii);
        benchmark::DoNotOptimize(order.sequence.data());
    }
}
BENCHMARK(BM_SwingOrder);

void
BM_HeightOrder(benchmark::State& state)
{
    const Loop loop = makeShaMixLoop("sha", 3);
    const LaConfig la = LaConfig::proposed();
    const auto analysis = analyzeLoop(loop);
    const auto mapping = emptyCcaMapping(loop);
    const SchedGraph graph(loop, analysis, mapping, la);
    const int mii = std::max(resMii(graph, la), recMii(graph));
    for (auto _ : state) {
        auto order = computeHeightOrder(graph, mii);
        benchmark::DoNotOptimize(order.sequence.data());
    }
}
BENCHMARK(BM_HeightOrder);

void
BM_CcaMapping(benchmark::State& state)
{
    const Loop loop = makeDct8Loop("dct", 1);
    const LaConfig la = LaConfig::proposed();
    const auto analysis = analyzeLoop(loop);
    for (auto _ : state) {
        auto mapping = mapToCca(loop, analysis, *la.cca, la.latencies);
        benchmark::DoNotOptimize(mapping.groups.data());
    }
}
BENCHMARK(BM_CcaMapping);

}  // namespace
}  // namespace veal

BENCHMARK_MAIN();
