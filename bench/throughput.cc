#include "bench/throughput.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

#include "veal/arch/la_config.h"
#include "veal/explore/sweep.h"
#include "veal/support/assert.h"
#include "veal/support/logging.h"
#include "veal/workloads/suite.h"

namespace veal::bench {

namespace {

void
printUsage(std::FILE* out, const char* argv0)
{
    std::fprintf(
        out,
        "usage: %s [--mode NAME] [--runs N] [--threads N] [--batch N]\n"
        "       [--suite NAME] [--json FILE] [--baseline-json FILE]\n"
        "       [--metrics-json FILE] [--commit SHA]\n"
        "  --mode NAME          translation (default), simulation (the\n"
        "                       batched-simulation engine bench, schema\n"
        "                       veal-sim-bench-v1), persist (the\n"
        "                       cold-vs-warm-start study, schema\n"
        "                       veal-persist-bench-v2), or fleet (the\n"
        "                       fleet-vs-single-design-point study,\n"
        "                       schema veal-fleet-bench-v1)\n"
        "  --batch N            lanes per batch-engine call in --mode\n"
        "                       simulation (default 64; never affects\n"
        "                       modeled output)\n"
        "  --runs N             timed passes of the suite through the VM "
        "(default 5)\n"
        "  --threads N          sweep worker threads (default: all "
        "hardware threads)\n"
        "  --suite NAME         media-fp (default) or integer\n"
        "  --json FILE          write the veal-bench-v1 report "
        "(BENCH_translation.json)\n"
        "  --baseline-json FILE previous veal-bench-v1 file to compare "
        "against\n"
        "  --metrics-json FILE  write a veal-metrics-v1 snapshot "
        "(byte-identical\n"
        "                       for any --threads at a fixed --runs)\n"
        "  --commit SHA         commit id recorded in the report\n",
        argv0);
}

[[noreturn]] void
usageError(const char* argv0, const std::string& message)
{
    std::fprintf(stderr, "%s: %s\n", argv0, message.c_str());
    printUsage(stderr, argv0);
    std::exit(2);
}

/** Strict decimal parse: "12abc" is an error, not 12. */
bool
parsePositiveInt(const char* text, int* out)
{
    const std::string token(text);
    if (token.empty() || token.size() > 9 ||
        token.find_first_not_of("0123456789") != std::string::npos)
        return false;
    *out = std::atoi(text);
    return *out > 0;
}

/** Nearest-rank quantile over a sorted sample. */
double
quantile(const std::vector<double>& sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const auto index = static_cast<std::size_t>(std::llround(
        q * static_cast<double>(sorted.size() - 1)));
    return sorted[std::min(index, sorted.size() - 1)];
}

/**
 * Extract `"key": <number>` from a veal-bench-v1 file.  veal-bench only
 * ever reads files it wrote itself, so a focused scan beats dragging a
 * JSON library into the tree; absent keys read as 0.
 */
double
extractNumber(const std::string& text, const std::string& key)
{
    const std::string needle = "\"" + key + "\":";
    const auto at = text.find(needle);
    if (at == std::string::npos)
        return 0.0;
    return std::strtod(text.c_str() + at + needle.size(), nullptr);
}

std::string
extractString(const std::string& text, const std::string& key)
{
    const std::string needle = "\"" + key + "\": \"";
    const auto at = text.find(needle);
    if (at == std::string::npos)
        return "";
    const auto start = at + needle.size();
    const auto end = text.find('"', start);
    return end == std::string::npos ? "" : text.substr(start, end - start);
}

std::string
formatDouble(double value)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.3f", value);
    return buffer;
}

}  // namespace

ThroughputOptions
parseThroughputCli(int argc, char** argv)
{
    ThroughputOptions options;
    const auto needsValue = [&](int i) {
        if (i + 1 >= argc) {
            usageError(argv[0],
                       std::string(argv[i]) + " needs a value");
        }
    };
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--mode") == 0) {
            needsValue(i);
            options.mode = argv[++i];
            if (options.mode != "translation" &&
                options.mode != "simulation" &&
                options.mode != "persist" &&
                options.mode != "fleet") {
                usageError(argv[0],
                           "--mode wants translation, simulation, "
                           "persist, or fleet, "
                           "got '" +
                               options.mode + "'");
            }
        } else if (std::strcmp(arg, "--batch") == 0) {
            needsValue(i);
            if (!parsePositiveInt(argv[++i], &options.batch)) {
                usageError(argv[0],
                           std::string("--batch wants a positive integer, "
                                       "got '") +
                               argv[i] + "'");
            }
        } else if (std::strcmp(arg, "--runs") == 0) {
            needsValue(i);
            if (!parsePositiveInt(argv[++i], &options.runs)) {
                usageError(argv[0],
                           std::string("--runs wants a positive integer, "
                                       "got '") +
                               argv[i] + "'");
            }
        } else if (std::strcmp(arg, "--threads") == 0) {
            needsValue(i);
            if (!parsePositiveInt(argv[++i], &options.threads)) {
                usageError(argv[0],
                           std::string("--threads wants a positive "
                                       "integer, got '") +
                               argv[i] + "'");
            }
        } else if (std::strcmp(arg, "--suite") == 0) {
            needsValue(i);
            options.suite = argv[++i];
            if (options.suite != "media-fp" && options.suite != "integer") {
                usageError(argv[0], "--suite wants media-fp or integer, "
                                    "got '" + options.suite + "'");
            }
        } else if (std::strcmp(arg, "--json") == 0) {
            needsValue(i);
            options.json_path = argv[++i];
        } else if (std::strcmp(arg, "--baseline-json") == 0) {
            needsValue(i);
            options.baseline_json = argv[++i];
        } else if (std::strcmp(arg, "--metrics-json") == 0) {
            needsValue(i);
            options.metrics_json = argv[++i];
        } else if (std::strcmp(arg, "--commit") == 0) {
            needsValue(i);
            options.commit = argv[++i];
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(stdout, argv[0]);
            std::exit(0);
        } else {
            usageError(argv[0],
                       std::string("unknown argument '") + arg + "'");
        }
    }
    return options;
}

std::string
ThroughputReport::toJson() const
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"schema\": \"veal-bench-v1\",\n";
    os << "  \"suite\": \"" << suite << "\",\n";
    os << "  \"commit\": \"" << commit << "\",\n";
    os << "  \"threads\": " << threads << ",\n";
    os << "  \"runs\": " << runs << ",\n";
    os << "  \"pieces_per_run\": " << pieces_per_run << ",\n";
    os << "  \"ops_per_run\": " << ops_per_run << ",\n";
    os << "  \"translated_loops_per_run\": " << translated_loops_per_run
       << ",\n";
    os << "  \"wall_ms\": {\"p50\": " << formatDouble(p50_wall_ms)
       << ", \"p95\": " << formatDouble(p95_wall_ms) << "},\n";
    os << "  \"translated_loops_per_sec\": "
       << formatDouble(translated_loops_per_sec) << ",\n";
    os << "  \"ops_per_sec\": " << formatDouble(ops_per_sec) << ",\n";
    os << "  \"cycles_per_translated_op\": "
       << formatDouble(cycles_per_translated_op) << ",\n";
    os << "  \"phase_cycles\": {";
    for (std::size_t i = 0; i < phase_cycles.size(); ++i) {
        os << (i == 0 ? "" : ", ") << "\"" << phase_cycles[i].first
           << "\": " << phase_cycles[i].second;
    }
    os << "},\n";
    os << "  \"phase_cycles_total\": " << phase_cycles_per_run << ",\n";
    os << "  \"baseline\": {\"commit\": \"" << baseline_commit
       << "\", \"translated_loops_per_sec\": "
       << formatDouble(baseline_loops_per_sec)
       << ", \"ops_per_sec\": " << formatDouble(baseline_ops_per_sec)
       << "},\n";
    os << "  \"speedup_vs_baseline\": "
       << formatDouble(speedup_vs_baseline) << "\n";
    os << "}\n";
    return os.str();
}

ThroughputReport
runTranslationThroughput(const ThroughputOptions& options)
{
    ThroughputReport report;
    report.suite = options.suite;
    report.commit = options.commit;
    report.runs = options.runs;

    explore::SweepRunner runner(options.suite == "integer"
                                    ? integerSuite()
                                    : mediaFpSuite(),
                                options.threads);
    const auto& suite = runner.suite();
    report.threads = runner.threads();

    for (const auto& benchmark : suite) {
        for (const auto& site : benchmark.transformed.sites) {
            if (site.fissioned.empty()) {
                report.pieces_per_run += 1;
                report.ops_per_run +=
                    static_cast<std::int64_t>(site.loop.size());
            } else {
                for (const auto& piece : site.fissioned) {
                    report.pieces_per_run += 1;
                    report.ops_per_run +=
                        static_cast<std::int64_t>(piece.size());
                }
            }
        }
    }

    const LaConfig la = LaConfig::proposed();
    const int cells = static_cast<int>(suite.size());
    for (int run = 0; run < options.runs; ++run) {
        const auto start = std::chrono::steady_clock::now();
        runner.evaluateCellsMetered(
            cells, [&](int i, metrics::Registry& registry) {
                return explore::cellSpeedup(
                    suite[static_cast<std::size_t>(i)], la,
                    TranslationMode::kFullyDynamic, nullptr, &registry);
            });
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - start)
                .count();
        report.run_wall_ms.push_back(ms);
        std::fprintf(stderr, "veal-bench: run %d/%d %.2f ms\n", run + 1,
                     options.runs, ms);

        if (run == 0) {
            // Modeled quantities are identical every run (the registry
            // is a pure function of the work); snapshot them once.
            const auto& metrics = runner.metrics();
            report.translated_loops_per_run =
                metrics.counter("vm.translate.ok");
            for (int p = 0; p < kNumTranslationPhases; ++p) {
                const char* phase =
                    toString(static_cast<TranslationPhase>(p));
                const std::int64_t cycles = metrics.counter(
                    std::string("vm.phase_cycles.") + phase);
                report.phase_cycles.emplace_back(phase, cycles);
                report.phase_cycles_per_run += cycles;
            }
        }
    }

    // Cross-run determinism audit: N identical passes must have charged
    // exactly N times the single-run counters.
    VEAL_ASSERT(runner.metrics().counter("vm.translate.ok") ==
                    report.translated_loops_per_run * options.runs,
                "translation outcomes drifted across bench runs");

    std::vector<double> sorted = report.run_wall_ms;
    std::sort(sorted.begin(), sorted.end());
    report.p50_wall_ms = quantile(sorted, 0.50);
    report.p95_wall_ms = quantile(sorted, 0.95);
    if (report.p50_wall_ms > 0.0) {
        report.translated_loops_per_sec =
            static_cast<double>(report.translated_loops_per_run) * 1000.0 /
            report.p50_wall_ms;
        report.ops_per_sec =
            static_cast<double>(report.ops_per_run) * 1000.0 /
            report.p50_wall_ms;
    }
    if (report.ops_per_run > 0) {
        report.cycles_per_translated_op =
            static_cast<double>(report.phase_cycles_per_run) /
            static_cast<double>(report.ops_per_run);
    }

    if (!options.baseline_json.empty()) {
        std::ifstream in(options.baseline_json);
        if (!in) {
            fatal("cannot read baseline report ", options.baseline_json);
        }
        std::ostringstream text;
        text << in.rdbuf();
        const std::string baseline = text.str();
        if (extractString(baseline, "schema") != "veal-bench-v1") {
            fatal(options.baseline_json,
                  " is not a veal-bench-v1 report");
        }
        report.baseline_commit = extractString(baseline, "commit");
        report.baseline_loops_per_sec =
            extractNumber(baseline, "translated_loops_per_sec");
        report.baseline_ops_per_sec =
            extractNumber(baseline, "ops_per_sec");
        if (report.baseline_loops_per_sec > 0.0) {
            report.speedup_vs_baseline =
                report.translated_loops_per_sec /
                report.baseline_loops_per_sec;
        }
    }

    if (!options.json_path.empty()) {
        std::ofstream out(options.json_path);
        out << report.toJson();
        if (!out) {
            fatal("cannot write bench report to ", options.json_path);
        }
    }
    if (!options.metrics_json.empty() &&
        !metrics::writeSnapshot(runner.metrics(), options.metrics_json)) {
        fatal("cannot write metrics snapshot to ", options.metrics_json);
    }
    return report;
}

}  // namespace veal::bench
