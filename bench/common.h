#ifndef VEAL_BENCH_COMMON_H_
#define VEAL_BENCH_COMMON_H_

/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harness.
 */

#include <string>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/vm/vm.h"
#include "veal/workloads/suite.h"

namespace veal::bench {

/** Whole-application speedup of @p benchmark on (la, arm11) in @p mode. */
double appSpeedup(const Benchmark& benchmark, const LaConfig& la,
                  TranslationMode mode,
                  const VmOptions* extra_options = nullptr);

/** Mean speedup across @p suite. */
double meanSpeedup(const std::vector<Benchmark>& suite, const LaConfig& la,
                   TranslationMode mode,
                   const VmOptions* extra_options = nullptr);

/**
 * The design-space-exploration metric of paper §3.1: the mean over the
 * suite of (speedup on @p la) / (speedup on the infinite-resource LA),
 * both measured with zero translation overhead.
 */
double fractionOfInfinite(const std::vector<Benchmark>& suite,
                          const LaConfig& la);

/** Infinite machine matching @p la's CCA presence (sweep baseline). */
LaConfig infiniteLike(const LaConfig& la);

}  // namespace veal::bench

#endif  // VEAL_BENCH_COMMON_H_
