#ifndef VEAL_BENCH_COMMON_H_
#define VEAL_BENCH_COMMON_H_

/**
 * @file
 * Shared helpers for the paper-reproduction benchmark harness.
 *
 * Every sweep bench fans its (config x benchmark) grid out over
 * veal::explore::SweepRunner.  Figure tables go to stdout and are
 * bit-identical for any --threads value; timing instrumentation goes to
 * stderr so determinism checks can diff stdout alone.
 */

#include <string>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/explore/sweep.h"
#include "veal/vm/vm.h"
#include "veal/workloads/suite.h"

namespace veal::bench {

/** Command-line knobs shared by all paper benches. */
struct BenchOptions {
    /** Sweep pool width; <= 0 selects ThreadPool::defaultThreads(). */
    int threads = 0;

    /**
     * When non-empty, write the runner's metrics registry here as a
     * veal-metrics-v1 JSON snapshot (byte-identical for any --threads).
     */
    std::string metrics_json;

    /**
     * veal-report mode: after the figure table, print a Figure-8-style
     * per-phase cycle table read straight from the metrics registry
     * (the "vm.phase_cycles.*" counters) instead of ad-hoc struct
     * fields.  Goes to stdout -- it is as deterministic as the figure.
     */
    bool report = false;

    /**
     * Parse --threads N, --metrics-json FILE, --report (and --help).
     * Unknown flags and malformed values ("12abc" is not an integer)
     * print the diagnostic plus the usage line to stderr and exit 2,
     * so a typo cannot silently fall back to a serial or default run.
     */
    static BenchOptions parse(int argc, char** argv);
};

/** A SweepRunner over @p suite honouring @p options. */
explore::SweepRunner makeRunner(const BenchOptions& options,
                                std::vector<Benchmark> suite);

/**
 * Print the runner's accumulated wall-clock, summed per-cell time, and
 * measured parallel speedup -- to stderr, keeping stdout deterministic.
 */
void reportSweepStats(const explore::SweepRunner& runner);

/**
 * End-of-bench observability epilogue: honour --report (print the
 * veal-report phase table from @p registry to stdout) and --metrics-json
 * (write the snapshot; fatal on I/O failure so CI cannot diff a stale
 * file).  A no-op when neither flag was given.
 */
void finishBenchMetrics(const BenchOptions& options,
                        const metrics::Registry& registry);

/** Whole-application speedup of @p benchmark on (la, arm11) in @p mode. */
double appSpeedup(const Benchmark& benchmark, const LaConfig& la,
                  TranslationMode mode,
                  const VmOptions* extra_options = nullptr);

/**
 * Mean speedup across @p suite: serial convenience for one-off
 * measurements; sweep benches batch configs through a SweepRunner
 * instead.
 */
double meanSpeedup(const std::vector<Benchmark>& suite, const LaConfig& la,
                   TranslationMode mode,
                   const VmOptions* extra_options = nullptr);

/**
 * The design-space-exploration metric of paper §3.1: the mean over the
 * suite of (speedup on @p la) / (speedup on the infinite-resource LA),
 * both measured with zero translation overhead.  Serial convenience;
 * equals explore::SweepRunner::fractionOfInfinite on a one-config grid.
 */
double fractionOfInfinite(const std::vector<Benchmark>& suite,
                          const LaConfig& la);

/** Infinite machine matching @p la's CCA presence (sweep baseline). */
LaConfig infiniteLike(const LaConfig& la);

}  // namespace veal::bench

#endif  // VEAL_BENCH_COMMON_H_
