#ifndef VEAL_BENCH_CLI_H_
#define VEAL_BENCH_CLI_H_

/**
 * @file
 * Shared strict command-line parsing for every VEAL tool and bench.
 *
 * One convention, one implementation (PR-4 introduced it, this file
 * de-duplicates it): numeric flag values must be entirely decimal
 * digits -- "12abc" is an error, never 12 -- and every usage error
 * prints a diagnostic plus the tool's usage text to stderr and exits
 * with status 2, distinct from exit 1 (a failed run/measurement).
 *
 * Tools hand the helpers a UsageFn so the failure path renders *their*
 * usage text; nothing here writes to stdout.
 */

#include <cstdint>
#include <functional>
#include <string>

namespace veal::bench::cli {

/** Prints the tool's usage text to stderr and returns the exit code (2). */
using UsageFn = std::function<int()>;

/**
 * Strict decimal parse of @p text for @p flag: the whole token must be
 * digits and fit in a uint64.  On failure, prints the diagnostic as
 * "<tool>: <flag> needs a non-negative integer, got '<text>'", invokes
 * @p usage, and exits with its return value.
 */
std::uint64_t parseU64(const std::string& tool, const std::string& flag,
                       const std::string& text, const UsageFn& usage);

/**
 * As parseU64(), additionally range-checked to [0, @p max] and returned
 * as int (for count-like flags: --runs, --threads, --batch, ...).
 */
int parseCount(const std::string& tool, const std::string& flag,
               const std::string& text, const UsageFn& usage,
               std::uint64_t max = 1000000ull);

/**
 * Fetch the value token following argv[*i] (advancing *i), or fail with
 * "<tool>: <flag> needs a value" through @p usage.
 */
const char* requireValue(const std::string& tool, int argc, char** argv,
                         int* i, const UsageFn& usage);

/**
 * The shared failure epilogue: "<tool>: <message>" to stderr, then
 * @p usage, then exit with its return value.  Exposed for non-numeric
 * errors (unknown flags, missing files) so they share the same path.
 */
[[noreturn]] void usageError(const std::string& tool,
                             const std::string& message,
                             const UsageFn& usage);

}  // namespace veal::bench::cli

#endif  // VEAL_BENCH_CLI_H_
