/**
 * Figure 10: whole-application speedup over the 1-issue baseline for
 * every static/dynamic translation split, plus the 2-issue and 4-issue
 * CPU comparison bars.
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/arch/cpu_config.h"
#include "veal/support/table.h"

int
main()
{
    using namespace veal;
    const auto suite = mediaFpSuite();
    const LaConfig la = LaConfig::proposed();

    std::printf("VEAL reproduction: Figure 10 -- static/dynamic trade-off "
                "(speedup over the 1-issue baseline)\n\n");

    TextTable table({"benchmark", "no overhead", "fully dynamic",
                     "dynamic height", "static CCA/prio", "2-issue",
                     "4-issue"});
    double sums[6] = {0, 0, 0, 0, 0, 0};
    for (const auto& benchmark : suite) {
        const double values[6] = {
            bench::appSpeedup(benchmark, la, TranslationMode::kStatic),
            bench::appSpeedup(benchmark, la,
                              TranslationMode::kFullyDynamic),
            bench::appSpeedup(benchmark, la,
                              TranslationMode::kFullyDynamicHeight),
            bench::appSpeedup(benchmark, la,
                              TranslationMode::kHybridStaticCcaPriority),
            static_cast<double>(cpuOnlyCycles(benchmark.transformed,
                                              CpuConfig::arm11())) /
                static_cast<double>(cpuOnlyCycles(benchmark.transformed,
                                                  CpuConfig::cortexA8())),
            static_cast<double>(cpuOnlyCycles(benchmark.transformed,
                                              CpuConfig::arm11())) /
                static_cast<double>(cpuOnlyCycles(
                    benchmark.transformed, CpuConfig::quadIssue()))};
        std::vector<std::string> row{benchmark.name};
        for (int i = 0; i < 6; ++i) {
            sums[i] += values[i];
            row.push_back(TextTable::formatDouble(values[i], 2));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> mean{"MEAN"};
    for (double sum : sums) {
        mean.push_back(TextTable::formatDouble(
            sum / static_cast<double>(suite.size()), 2));
    }
    table.addRow(std::move(mean));
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper means: 2.76 (no overhead), 2.27 (fully dynamic),\n"
        "2.41 (height), 2.66 (static CCA/priority); the 2-/4-issue CPUs\n"
        "trail the accelerator badly per mm^2 of die area.\n"
        "Reproduction shape: same ordering; mpeg2dec/pegwit/mgrid lose\n"
        "most of their benefit under fully dynamic translation.\n");
    return 0;
}
