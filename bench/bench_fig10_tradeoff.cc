/**
 * Figure 10: whole-application speedup over the 1-issue baseline for
 * every static/dynamic translation split, plus the 2-issue and 4-issue
 * CPU comparison bars.
 */

#include <array>
#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "veal/arch/cpu_config.h"
#include "veal/support/table.h"

namespace {

constexpr int kColumns = 6;

}  // namespace

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto runner = bench::makeRunner(options, mediaFpSuite());
    const auto& suite = runner.suite();
    const LaConfig la = LaConfig::proposed();

    std::printf("VEAL reproduction: Figure 10 -- static/dynamic trade-off "
                "(speedup over the 1-issue baseline)\n\n");

    // One cell per (benchmark, column): the four translation modes and
    // the two CPU comparison bars all parallelize alike.
    const int num_cells = static_cast<int>(suite.size()) * kColumns;
    const std::vector<double> cells =
        runner.evaluateCells(num_cells, [&](int i) {
            const auto& benchmark =
                suite[static_cast<std::size_t>(i / kColumns)];
            switch (i % kColumns) {
              case 0:
                return bench::appSpeedup(benchmark, la,
                                         TranslationMode::kStatic);
              case 1:
                return bench::appSpeedup(benchmark, la,
                                         TranslationMode::kFullyDynamic);
              case 2:
                return bench::appSpeedup(
                    benchmark, la, TranslationMode::kFullyDynamicHeight);
              case 3:
                return bench::appSpeedup(
                    benchmark, la,
                    TranslationMode::kHybridStaticCcaPriority);
              case 4:
                return static_cast<double>(cpuOnlyCycles(
                           benchmark.transformed, CpuConfig::arm11())) /
                       static_cast<double>(cpuOnlyCycles(
                           benchmark.transformed, CpuConfig::cortexA8()));
              default:
                return static_cast<double>(cpuOnlyCycles(
                           benchmark.transformed, CpuConfig::arm11())) /
                       static_cast<double>(cpuOnlyCycles(
                           benchmark.transformed,
                           CpuConfig::quadIssue()));
            }
        });

    TextTable table({"benchmark", "no overhead", "fully dynamic",
                     "dynamic height", "static CCA/prio", "2-issue",
                     "4-issue"});
    std::array<double, kColumns> sums{};
    for (std::size_t b = 0; b < suite.size(); ++b) {
        std::vector<std::string> row{suite[b].name};
        for (int i = 0; i < kColumns; ++i) {
            const double value =
                cells[b * kColumns + static_cast<std::size_t>(i)];
            sums[static_cast<std::size_t>(i)] += value;
            row.push_back(TextTable::formatDouble(value, 2));
        }
        table.addRow(std::move(row));
    }
    std::vector<std::string> mean{"MEAN"};
    for (double sum : sums) {
        mean.push_back(TextTable::formatDouble(
            sum / static_cast<double>(suite.size()), 2));
    }
    table.addRow(std::move(mean));
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper means: 2.76 (no overhead), 2.27 (fully dynamic),\n"
        "2.41 (height), 2.66 (static CCA/priority); the 2-/4-issue CPUs\n"
        "trail the accelerator badly per mm^2 of die area.\n"
        "Reproduction shape: same ordering; mpeg2dec/pegwit/mgrid lose\n"
        "most of their benefit under fully dynamic translation.\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
