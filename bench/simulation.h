#ifndef VEAL_BENCH_SIMULATION_H_
#define VEAL_BENCH_SIMULATION_H_

/**
 * @file
 * Batched-simulation throughput measurement (veal-bench --mode
 * simulation).
 *
 * One run pushes a fixed, seed-derived campaign case set -- the same
 * fuzz-loop stream the campaign drivers consume -- through both
 * simulation engines: the frozen scalar oracle (veal/sim/reference.h,
 * one invocation at a time, exactly the pre-batch campaign hot path)
 * and the batched data-parallel engine (veal/sim/batch.h, --batch lanes
 * per call).  Each case is a CPU-timing simulation, a functional
 * interpretation, and -- when the case translates -- the per-phase LA
 * charges.
 *
 * Everything modeled (case count, total cycles, and FNV digests over
 * every cycle count, architectural result, and LA charge in case order)
 * is asserted identical between the two engines inside the run, and is
 * byte-identical for any --threads and any --batch; wall-clock numbers
 * and the speedup go to stderr and the JSON only.  The JSON
 * (BENCH_simulation.json, schema veal-sim-bench-v1) pins the batching
 * win in the repo: CI fails if the committed modeled fields drift or
 * the committed speedup falls below the 4x floor.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bench/throughput.h"

namespace veal::bench {

/** Everything one --mode simulation invocation measured. */
struct SimulationReport {
    std::string commit;
    int runs = 0;
    int threads = 0;
    int batch = 0;

    /** Campaign cases per pass (fixed, seed-derived). */
    int cases = 0;
    /** Interpreter trip count per case. */
    std::int64_t iterations = 0;

    // --- Modeled fields: byte-identical for any --threads / --batch,
    // and asserted identical between the two engines.
    std::int64_t translated_cases = 0;  ///< Cases with LA-charge lanes.
    std::int64_t total_cpu_cycles = 0;  ///< Sum of modeled total_cycles.
    std::string cpu_digest;    ///< FNV over (total_cycles, cpi bits).
    std::string exec_digest;   ///< FNV over live-outs + memory images.
    std::string la_digest;     ///< FNV over per-phase LA charges.

    // --- Wall clock (stderr/JSON only; never deterministic).
    std::vector<double> reference_wall_ms;
    std::vector<double> batched_wall_ms;
    double reference_p50_ms = 0.0;
    double batched_p50_ms = 0.0;
    double reference_cases_per_sec = 0.0;
    double batched_cases_per_sec = 0.0;
    /** batched_cases_per_sec / reference_cases_per_sec. */
    double speedup_vs_reference = 0.0;

    /** The veal-sim-bench-v1 JSON rendering of this report. */
    std::string toJson() const;
};

/**
 * Run the measurement: @p options.runs timed passes of the case set
 * through each engine (reference first, then batched).  Honours
 * options.threads, options.batch, options.commit, and options.json_path
 * (fatal on I/O error); per-pass timing prints to stderr only.
 */
SimulationReport runSimulationThroughput(const ThroughputOptions& options);

}  // namespace veal::bench

#endif  // VEAL_BENCH_SIMULATION_H_
