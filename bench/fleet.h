#ifndef VEAL_BENCH_FLEET_H_
#define VEAL_BENCH_FLEET_H_

/**
 * @file
 * Fleet-vs-single-design-point study (veal-bench --mode fleet).
 *
 * Prices every transformed loop piece of the evaluation suite against
 * every backend of the standard heterogeneous fleet (baseline + the
 * four presets, see veal/fleet/fleet.h) through the SweepRunner
 * (loop x backend) scoring grid, steers each piece with the real
 * FleetSteerer, and compares two steady-state whole-suite totals:
 *
 *   baseline -- every piece served by the paper's single proposed
 *               design point (CPU when the LA loses or rejects), and
 *   fleet    -- every piece served by its steered backend (same CPU
 *               escape hatch).
 *
 * Totals are invocation-weighted warm (steady-state) cycles, entirely
 * modeled, so they are byte-stable across machines and --threads; the
 * committed BENCH_fleet.json (schema veal-fleet-bench-v1) pins the
 * fleet-level win and CI fails if the modeled fields drift or the
 * speedup falls below the 1.1x floor.  Wall-clock per scoring pass
 * goes to stderr and the JSON only.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bench/throughput.h"

namespace veal::bench {

/** One fleet backend's share of the steered suite. */
struct FleetBenchBackend {
    std::string name;
    std::int64_t placed_pieces = 0;       ///< Pieces steered here.
    std::int64_t placed_invocations = 0;  ///< Their profile weight.
    /** Weighted warm cycles this backend serves (CPU-win pieces
        excluded: those cycles live in the CPU total). */
    std::int64_t steady_cycles = 0;
};

/** One benchmark's baseline-vs-fleet comparison. */
struct FleetBenchBenchmark {
    std::string name;
    std::int64_t baseline_cycles = 0;
    std::int64_t fleet_cycles = 0;
    std::int64_t speedup_milli = 0;  ///< baseline * 1000 / fleet.
};

/** Everything one --mode fleet invocation measured. */
struct FleetBenchReport {
    std::string commit;
    std::string fleet;  ///< Fleet spec evaluated ("standard").
    int runs = 0;
    int threads = 0;

    // --- Modeled fields: byte-identical across machines and shapes.
    std::int64_t pieces = 0;        ///< Loop pieces priced.
    std::int64_t scored_cells = 0;  ///< pieces x backends evaluations.
    std::int64_t cpu_steady_cycles = 0;       ///< All-CPU strawman.
    std::int64_t baseline_steady_cycles = 0;  ///< Single design point.
    std::int64_t fleet_steady_cycles = 0;     ///< Steered fleet.
    std::int64_t cpu_win_pieces = 0;  ///< Pieces the CPU serves anyway.
    /** baseline_steady_cycles * 1000 / fleet_steady_cycles: the
        fleet-level speedup, gated at >= 1100 in CI. */
    std::int64_t speedup_milli = 0;
    std::vector<FleetBenchBackend> backends;
    std::vector<FleetBenchBenchmark> benchmarks;

    // --- Wall clock (stderr/JSON only; never deterministic).
    std::vector<double> wall_ms;
    double p50_wall_ms = 0.0;

    /** The veal-fleet-bench-v1 JSON rendering of this report. */
    std::string toJson() const;
};

/**
 * Run the study: --runs timed scoring passes over the media/FP suite
 * (each pass must produce identical modeled totals -- asserted), steer
 * once, and compare.  Honours options.runs, options.threads,
 * options.commit, and options.json_path (fatal on I/O error).
 */
FleetBenchReport runFleetBench(const ThroughputOptions& options);

}  // namespace veal::bench

#endif  // VEAL_BENCH_FLEET_H_
