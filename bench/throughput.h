#ifndef VEAL_BENCH_THROUGHPUT_H_
#define VEAL_BENCH_THROUGHPUT_H_

/**
 * @file
 * End-to-end translation-throughput measurement (the veal-bench engine).
 *
 * One *run* pushes the full workload suite through the VM exactly the
 * way the paper's figures do (one VirtualMachine per benchmark, fully
 * dynamic translation on the proposed LA), fanned over a SweepRunner so
 * --threads scales the measurement while the metrics snapshot stays
 * byte-identical.  Wall-clock timing wraps each run; everything modeled
 * (translated-loop counts, phase cycles) is read back from the PR-3
 * metrics registry, so veal-bench can never disagree with --metrics-json.
 *
 * The JSON this emits (BENCH_translation.json, schema veal-bench-v1) is
 * the unit of the repo's performance trajectory: each entry records
 * suite, commit, threads, throughput, p50/p95 wall ms, and the
 * phase-cycle totals, plus the baseline entry it was compared against.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "veal/support/metrics/metrics.h"

namespace veal::bench {

/** Knobs for one veal-bench invocation. */
struct ThroughputOptions {
    /**
     * "translation" (the PR-5 translation-throughput engine, default) or
     * "simulation" (the batched-simulation engine bench emitting
     * veal-sim-bench-v1 / BENCH_simulation.json).
     */
    std::string mode = "translation";

    /** Batch width for --mode simulation (lanes per engine call). */
    int batch = 64;

    /** Timed passes of the whole suite through the VM. */
    int runs = 5;

    /** Sweep pool width; <= 0 selects ThreadPool::defaultThreads(). */
    int threads = 0;

    /** "media-fp" (the evaluation suite) or "integer". */
    std::string suite = "media-fp";

    /** Recorded verbatim in the JSON ("unknown" when not provided). */
    std::string commit = "unknown";

    /** When non-empty, write BENCH_translation.json here. */
    std::string json_path;

    /**
     * When non-empty, a previous veal-bench-v1 file whose throughput
     * numbers are embedded as the "baseline" block (with the measured
     * speedup ratio), growing the trajectory one comparison at a time.
     */
    std::string baseline_json;

    /** When non-empty, write the veal-metrics-v1 snapshot here. */
    std::string metrics_json;
};

/** Everything one veal-bench invocation measured. */
struct ThroughputReport {
    std::string suite;
    std::string commit;
    int runs = 0;
    int threads = 0;

    /** Static suite shape: pieces the VM attempts per run. */
    std::int64_t pieces_per_run = 0;
    /** Total loop operations across those pieces. */
    std::int64_t ops_per_run = 0;

    /** vm.translate.ok for a single run (modeled, thread-independent). */
    std::int64_t translated_loops_per_run = 0;
    /** Sum of vm.phase_cycles.* for a single run. */
    std::int64_t phase_cycles_per_run = 0;
    /** Per-phase modeled translation cycles for a single run. */
    std::vector<std::pair<std::string, std::int64_t>> phase_cycles;

    /** Wall milliseconds per run, in execution order. */
    std::vector<double> run_wall_ms;
    double p50_wall_ms = 0.0;
    double p95_wall_ms = 0.0;

    /** translated_loops_per_run / p50 wall seconds. */
    double translated_loops_per_sec = 0.0;
    /** ops_per_run / p50 wall seconds. */
    double ops_per_sec = 0.0;
    /** phase_cycles_per_run / ops_per_run: modeled cost density. */
    double cycles_per_translated_op = 0.0;

    /** Baseline comparison (zeros until --baseline-json is given). */
    std::string baseline_commit;
    double baseline_loops_per_sec = 0.0;
    double baseline_ops_per_sec = 0.0;
    /** translated_loops_per_sec / baseline_loops_per_sec (0 = none). */
    double speedup_vs_baseline = 0.0;

    /** The veal-bench-v1 JSON rendering of this report. */
    std::string toJson() const;
};

/**
 * Run the measurement: @p options.runs timed passes of the suite through
 * the VM.  Writes the JSON / metrics snapshots when the paths are set
 * (fatal on I/O error) and prints per-run timing to stderr only.
 */
ThroughputReport runTranslationThroughput(const ThroughputOptions& options);

/**
 * Parse a veal-bench CLI (--runs, --threads, --suite, --json,
 * --baseline-json, --metrics-json, --commit).  Unknown flags and
 * malformed values print usage to stderr and exit 2, like every other
 * bench in this repo.
 */
ThroughputOptions parseThroughputCli(int argc, char** argv);

}  // namespace veal::bench

#endif  // VEAL_BENCH_THROUGHPUT_H_
