/**
 * Figure 3(a): fraction of infinite-resource speedup attained while
 * sweeping the number of function units -- integer units without a CCA,
 * integer units with one CCA, and FP units.
 */

#include <cstdio>
#include <vector>

#include "bench/common.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const auto runner = bench::makeRunner(options, mediaFpSuite());

    std::printf("VEAL reproduction: Figure 3(a) -- FU design space "
                "(fraction of infinite-resource speedup)\n\n");

    // Build the whole grid up front so one parallel sweep covers every
    // cell; rows are reassembled from the flat result vector afterwards.
    const std::vector<int> unit_counts{1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
    std::vector<LaConfig> configs;
    for (const int units : unit_counts) {
        LaConfig int_only = LaConfig::infinite();
        int_only.num_int_units = units;
        configs.push_back(int_only);

        LaConfig int_with_cca = LaConfig::infiniteWithCca();
        int_with_cca.num_int_units = units;
        configs.push_back(int_with_cca);

        if (units <= 4) {
            LaConfig fp_sweep = LaConfig::infinite();
            fp_sweep.num_fp_units = units;
            configs.push_back(fp_sweep);
        }
    }
    const std::vector<double> fractions =
        runner.fractionOfInfinite(configs);

    TextTable table({"units", "IEx (no CCA)", "IEx (1 CCA)", "FEx"});
    std::size_t next = 0;
    for (const int units : unit_counts) {
        const double int_only = fractions[next++];
        const double int_with_cca = fractions[next++];
        table.addRow({std::to_string(units),
                      TextTable::formatDouble(int_only, 3),
                      TextTable::formatDouble(int_with_cca, 3),
                      units <= 4 ? TextTable::formatDouble(
                                       fractions[next++], 3)
                                 : "-"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: few FP units suffice (they are fully pipelined);\n"
        "integer units show diminishing returns late (paper: ~24) unless\n"
        "a CCA absorbs the simple arithmetic, which moves the knee left.\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
