/**
 * Figure 3(a): fraction of infinite-resource speedup attained while
 * sweeping the number of function units -- integer units without a CCA,
 * integer units with one CCA, and FP units.
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/support/table.h"

int
main()
{
    using namespace veal;
    const auto suite = mediaFpSuite();

    std::printf("VEAL reproduction: Figure 3(a) -- FU design space "
                "(fraction of infinite-resource speedup)\n\n");

    TextTable table({"units", "IEx (no CCA)", "IEx (1 CCA)", "FEx"});
    for (const int units : {1, 2, 3, 4, 6, 8, 12, 16, 24, 32}) {
        LaConfig int_only = LaConfig::infinite();
        int_only.num_int_units = units;

        LaConfig int_with_cca = LaConfig::infiniteWithCca();
        int_with_cca.num_int_units = units;

        LaConfig fp_sweep = LaConfig::infinite();
        fp_sweep.num_fp_units = units;

        table.addRow(
            {std::to_string(units),
             TextTable::formatDouble(
                 bench::fractionOfInfinite(suite, int_only), 3),
             TextTable::formatDouble(
                 bench::fractionOfInfinite(suite, int_with_cca), 3),
             units <= 4 ? TextTable::formatDouble(
                              bench::fractionOfInfinite(suite, fp_sweep),
                              3)
                        : "-"});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: few FP units suffice (they are fully pipelined);\n"
        "integer units show diminishing returns late (paper: ~24) unless\n"
        "a CCA absorbs the simple arithmetic, which moves the knee left.\n");
    return 0;
}
