#include "bench/common.h"

#include <algorithm>

#include "veal/arch/cpu_config.h"

namespace veal::bench {

double
appSpeedup(const Benchmark& benchmark, const LaConfig& la,
           TranslationMode mode, const VmOptions* extra_options)
{
    VmOptions options;
    if (extra_options != nullptr)
        options = *extra_options;
    options.mode = mode;
    VirtualMachine vm(la, CpuConfig::arm11(), options);
    return vm.run(benchmark.transformed).speedup;
}

double
meanSpeedup(const std::vector<Benchmark>& suite, const LaConfig& la,
            TranslationMode mode, const VmOptions* extra_options)
{
    double sum = 0.0;
    for (const auto& benchmark : suite)
        sum += appSpeedup(benchmark, la, mode, extra_options);
    return sum / static_cast<double>(suite.size());
}

LaConfig
infiniteLike(const LaConfig& la)
{
    return la.hasCca() ? LaConfig::infiniteWithCca() : LaConfig::infinite();
}

double
fractionOfInfinite(const std::vector<Benchmark>& suite, const LaConfig& la)
{
    const LaConfig infinite = infiniteLike(la);
    double sum = 0.0;
    for (const auto& benchmark : suite) {
        const double finite =
            appSpeedup(benchmark, la, TranslationMode::kStatic);
        const double unlimited =
            appSpeedup(benchmark, infinite, TranslationMode::kStatic);
        sum += unlimited > 0.0 ? finite / unlimited : 1.0;
    }
    return sum / static_cast<double>(suite.size());
}

}  // namespace veal::bench
