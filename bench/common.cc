#include "bench/common.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "bench/cli.h"
#include "veal/support/logging.h"
#include "veal/support/table.h"

namespace veal::bench {

namespace {

void
printUsage(std::FILE* out, const char* argv0)
{
    std::fprintf(out,
                 "usage: %s [--threads N] [--metrics-json FILE] "
                 "[--report]\n"
                 "  --threads N          sweep worker threads (default: "
                 "all hardware threads)\n"
                 "  --metrics-json FILE  write a veal-metrics-v1 JSON "
                 "snapshot (byte-identical\n"
                 "                       for any --threads)\n"
                 "  --report             print the per-phase translation-"
                 "cycle table from the\n"
                 "                       metrics registry (veal-report "
                 "mode)\n",
                 argv0);
}

/** Shared failure path (bench/cli.h) with the bench usage text. */
[[noreturn]] void
usageError(const char* argv0, const std::string& message)
{
    cli::usageError(argv0, message, [argv0]() {
        printUsage(stderr, argv0);
        return 2;
    });
}

/** Strict positive parse on the shared digit-only path. */
int
parsePositiveInt(const char* argv0, const char* flag, const char* text)
{
    const int value = cli::parseCount(argv0, flag, text, [argv0]() {
        printUsage(stderr, argv0);
        return 2;
    });
    if (value < 1) {
        usageError(argv0, std::string(flag) +
                              " wants a positive integer, got '" + text +
                              "'");
    }
    return value;
}

}  // namespace

BenchOptions
BenchOptions::parse(int argc, char** argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc)
                usageError(argv[0], "--threads needs a value");
            options.threads =
                parsePositiveInt(argv[0], "--threads", argv[++i]);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads =
                parsePositiveInt(argv[0], "--threads", arg + 10);
        } else if (std::strcmp(arg, "--metrics-json") == 0) {
            if (i + 1 >= argc)
                usageError(argv[0], "--metrics-json needs a file path");
            options.metrics_json = argv[++i];
        } else if (std::strncmp(arg, "--metrics-json=", 15) == 0) {
            options.metrics_json = arg + 15;
            if (options.metrics_json.empty())
                usageError(argv[0], "--metrics-json needs a file path");
        } else if (std::strcmp(arg, "--report") == 0) {
            options.report = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            printUsage(stdout, argv[0]);
            std::exit(0);
        } else {
            usageError(argv[0], std::string("unknown argument '") + arg +
                                    "'");
        }
    }
    return options;
}

explore::SweepRunner
makeRunner(const BenchOptions& options, std::vector<Benchmark> suite)
{
    return explore::SweepRunner(std::move(suite), options.threads);
}

void
finishBenchMetrics(const BenchOptions& options,
                   const metrics::Registry& registry)
{
    if (options.report) {
        // veal-report mode: the Figure-8-style phase table, read straight
        // from the registry's vm.phase_cycles.* counters -- the audited
        // numbers the VM actually charged, not ad-hoc struct fields.
        std::int64_t total = 0;
        for (int i = 0; i < kNumTranslationPhases; ++i) {
            total += registry.counter(
                std::string("vm.phase_cycles.") +
                toString(static_cast<TranslationPhase>(i)));
        }
        const std::int64_t override_cycles =
            registry.counter("vm.phase_cycles.override");
        total += override_cycles;

        TextTable table({"phase", "cycles", "share"});
        const auto share = [&](std::int64_t cycles) {
            return total > 0 ? TextTable::formatDouble(
                                   100.0 * static_cast<double>(cycles) /
                                       static_cast<double>(total),
                                   1) +
                                   "%"
                             : "-";
        };
        for (int i = 0; i < kNumTranslationPhases; ++i) {
            const char* phase =
                toString(static_cast<TranslationPhase>(i));
            const std::int64_t cycles = registry.counter(
                std::string("vm.phase_cycles.") + phase);
            table.addRow({phase, std::to_string(cycles), share(cycles)});
        }
        if (override_cycles > 0) {
            table.addRow({"override", std::to_string(override_cycles),
                          share(override_cycles)});
        }
        table.addRow({"total", std::to_string(total), share(total)});

        std::cout << "\nveal-report: translation cycles by phase "
                     "(vm.phase_cycles.*)\n"
                  << table;
        std::printf("veal-report: %" PRId64 " ok / %" PRId64
                    " translations, cache %" PRId64 " hit / %" PRId64
                    " miss, %" PRId64 " IIs attempted\n",
                    registry.counter("vm.translate.ok"),
                    registry.counter("vm.translations"),
                    registry.counter("vm.cache.hits"),
                    registry.counter("vm.cache.misses"),
                    registry.counter("vm.sched.attempted_iis"));
    }
    if (!options.metrics_json.empty() &&
        !metrics::writeSnapshot(registry, options.metrics_json)) {
        fatal("cannot write metrics snapshot to ", options.metrics_json);
    }
}

void
reportSweepStats(const explore::SweepRunner& runner)
{
    const auto& stats = runner.stats();
    std::fprintf(stderr,
                 "sweep: %lld cells on %d thread%s, wall %.2fs, "
                 "cell-time %.2fs, parallel speedup %.2fx\n",
                 static_cast<long long>(stats.cells), stats.threads,
                 stats.threads == 1 ? "" : "s", stats.wall_seconds,
                 stats.cell_seconds, stats.parallelSpeedup());
}

double
appSpeedup(const Benchmark& benchmark, const LaConfig& la,
           TranslationMode mode, const VmOptions* extra_options)
{
    return explore::cellSpeedup(benchmark, la, mode, extra_options);
}

double
meanSpeedup(const std::vector<Benchmark>& suite, const LaConfig& la,
            TranslationMode mode, const VmOptions* extra_options)
{
    double sum = 0.0;
    for (const auto& benchmark : suite)
        sum += appSpeedup(benchmark, la, mode, extra_options);
    return sum / static_cast<double>(suite.size());
}

LaConfig
infiniteLike(const LaConfig& la)
{
    return explore::infiniteLike(la);
}

double
fractionOfInfinite(const std::vector<Benchmark>& suite, const LaConfig& la)
{
    const LaConfig infinite = infiniteLike(la);
    double sum = 0.0;
    for (const auto& benchmark : suite) {
        const double finite =
            appSpeedup(benchmark, la, TranslationMode::kStatic);
        const double unlimited =
            appSpeedup(benchmark, infinite, TranslationMode::kStatic);
        sum += unlimited > 0.0 ? finite / unlimited : 1.0;
    }
    return sum / static_cast<double>(suite.size());
}

}  // namespace veal::bench
