#include "bench/common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "veal/support/logging.h"

namespace veal::bench {

BenchOptions
BenchOptions::parse(int argc, char** argv)
{
    BenchOptions options;
    for (int i = 1; i < argc; ++i) {
        const char* arg = argv[i];
        if (std::strcmp(arg, "--threads") == 0) {
            if (i + 1 >= argc)
                fatal("--threads needs a value");
            options.threads = std::atoi(argv[++i]);
            if (options.threads <= 0)
                fatal("--threads wants a positive integer, got ",
                      argv[i]);
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            options.threads = std::atoi(arg + 10);
            if (options.threads <= 0)
                fatal("--threads wants a positive integer, got ",
                      arg + 10);
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::printf(
                "usage: %s [--threads N]\n"
                "  --threads N  sweep worker threads (default: all "
                "hardware threads)\n",
                argv[0]);
            std::exit(0);
        } else {
            fatal("unknown argument '", arg, "' (try --help)");
        }
    }
    return options;
}

explore::SweepRunner
makeRunner(const BenchOptions& options, std::vector<Benchmark> suite)
{
    return explore::SweepRunner(std::move(suite), options.threads);
}

void
reportSweepStats(const explore::SweepRunner& runner)
{
    const auto& stats = runner.stats();
    std::fprintf(stderr,
                 "sweep: %lld cells on %d thread%s, wall %.2fs, "
                 "cell-time %.2fs, parallel speedup %.2fx\n",
                 static_cast<long long>(stats.cells), stats.threads,
                 stats.threads == 1 ? "" : "s", stats.wall_seconds,
                 stats.cell_seconds, stats.parallelSpeedup());
}

double
appSpeedup(const Benchmark& benchmark, const LaConfig& la,
           TranslationMode mode, const VmOptions* extra_options)
{
    return explore::cellSpeedup(benchmark, la, mode, extra_options);
}

double
meanSpeedup(const std::vector<Benchmark>& suite, const LaConfig& la,
            TranslationMode mode, const VmOptions* extra_options)
{
    double sum = 0.0;
    for (const auto& benchmark : suite)
        sum += appSpeedup(benchmark, la, mode, extra_options);
    return sum / static_cast<double>(suite.size());
}

LaConfig
infiniteLike(const LaConfig& la)
{
    return explore::infiniteLike(la);
}

double
fractionOfInfinite(const std::vector<Benchmark>& suite, const LaConfig& la)
{
    const LaConfig infinite = infiniteLike(la);
    double sum = 0.0;
    for (const auto& benchmark : suite) {
        const double finite =
            appSpeedup(benchmark, la, TranslationMode::kStatic);
        const double unlimited =
            appSpeedup(benchmark, infinite, TranslationMode::kStatic);
        sum += unlimited > 0.0 ? finite / unlimited : 1.0;
    }
    return sum / static_cast<double>(suite.size());
}

}  // namespace veal::bench
