/**
 * Paper §3.2: the proposed generalized loop accelerator -- its resources,
 * die-area breakdown (~3.8 mm^2 at 90 nm), the fraction of
 * infinite-resource speedup it attains (~83%), and the CPU comparison
 * points.
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/arch/area.h"
#include "veal/support/table.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto options = bench::BenchOptions::parse(argc, argv);
    const LaConfig la = LaConfig::proposed();
    const AreaModel area;

    std::printf("VEAL reproduction: the proposed loop accelerator "
                "(paper section 3.2)\n\n");

    TextTable resources({"resource", "count"});
    resources.addRow({"CCA", std::to_string(la.num_cca_units)});
    resources.addRow({"integer units", std::to_string(la.num_int_units)});
    resources.addRow({"double-precision FP units",
                      std::to_string(la.num_fp_units)});
    resources.addRow({"integer registers",
                      std::to_string(la.num_int_registers)});
    resources.addRow({"fp registers",
                      std::to_string(la.num_fp_registers)});
    resources.addRow({"load streams",
                      std::to_string(la.num_load_streams)});
    resources.addRow({"store streams",
                      std::to_string(la.num_store_streams)});
    resources.addRow({"load address generators",
                      std::to_string(la.num_load_addr_gens)});
    resources.addRow({"store address generators",
                      std::to_string(la.num_store_addr_gens)});
    resources.addRow({"maximum II", std::to_string(la.max_ii)});
    std::printf("%s\n", resources.render().c_str());

    TextTable breakdown({"component", "mm^2 (90 nm)"});
    for (const auto& item : area.breakdown(la))
        breakdown.addRow({item.component,
                          TextTable::formatDouble(item.mm2, 3)});
    breakdown.addRow({"TOTAL",
                      TextTable::formatDouble(area.totalArea(la), 2)});
    std::printf("%s\n", breakdown.render().c_str());

    const auto runner = bench::makeRunner(options, mediaFpSuite());
    const double fraction = runner.fractionOfInfinite({la}).front();
    std::printf("Fraction of infinite-resource speedup attained: %.1f%% "
                "(paper: 83%%)\n\n",
                100.0 * fraction);

    TextTable cpus({"design", "mm^2"});
    cpus.addRow({"proposed LA",
                 TextTable::formatDouble(area.totalArea(la), 2)});
    cpus.addRow({"ARM11-like 1-issue (baseline)",
                 TextTable::formatDouble(AreaModel::kArm11Mm2, 2)});
    cpus.addRow({"ARM11 + LA",
                 TextTable::formatDouble(
                     AreaModel::kArm11Mm2 + area.totalArea(la), 2)});
    cpus.addRow({"Cortex-A8-like 2-issue",
                 TextTable::formatDouble(AreaModel::kCortexA8Mm2, 2)});
    cpus.addRow({"hypothetical 4-issue",
                 TextTable::formatDouble(AreaModel::kQuadIssueMm2, 2)});
    std::printf("%s", cpus.render().c_str());
    std::printf("\nThe LA costs less than a second simple core (paper's "
                "cost argument).\n");
    bench::finishBenchMetrics(options, runner.metrics());
    bench::reportSweepStats(runner);
    return 0;
}
