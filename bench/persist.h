#ifndef VEAL_BENCH_PERSIST_H_
#define VEAL_BENCH_PERSIST_H_

/**
 * @file
 * Cold-vs-warm-start persistence study (veal-bench --mode persist).
 *
 * One invocation runs a fixed, seed-derived service trace three ways
 * against one on-disk code cache (vm/persist/store.h):
 *
 *   1. *cold* -- a fresh cache directory; every distinct key pays full
 *      translation and the store is populated,
 *   2. *warm* -- a fresh TranslationService process-equivalent over the
 *      populated store, --runs timed passes, and
 *   3. a warm *matrix* pass across several --shards/--threads/--batch
 *      shapes, and
 *   4. a log-structured *lifecycle* pass: timed recovery opens over the
 *      populated directory, then a churn-and-compact study (every key
 *      re-saved for several generations, then compacted to a fixpoint)
 *      whose byte counts are modeled.
 *
 * The contracts this bench pins, asserted in-process every run:
 * every warm report renders byte-identical to every other warm report
 * (including the whole matrix), warm translation cycles are *zero*
 * (every key is served from the store), and the cold/warm
 * translation-cycle ratio clears the committed floor.  The JSON
 * (BENCH_persist.json, schema veal-persist-bench-v2) pins the warm-start
 * win in the repo: CI fails if the committed modeled fields drift or
 * the ratio falls below the floor.
 *
 * Wall-clock per-phase timings go to stderr and the JSON only; every
 * other field is modeled and byte-stable.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "bench/throughput.h"

namespace veal::bench {

/** Everything one --mode persist invocation measured. */
struct PersistReport {
    std::string commit;
    int runs = 0;

    /** Fixed trace shape (seed-derived; recorded for the record). */
    int requests = 0;
    int loops = 0;
    int tenants = 0;

    // --- Modeled fields: byte-identical across machines and shapes.
    std::int64_t cold_translation_cycles = 0;
    std::int64_t warm_translation_cycles = 0;  ///< Asserted zero.
    /** cold / max(warm, 1): the warm-start win, gated in CI. */
    std::int64_t translation_cycle_ratio = 0;
    std::int64_t cold_persisted = 0;  ///< Store entries the cold run saved.
    std::int64_t warm_persisted = 0;  ///< Requests served from the store.
    std::string cold_report_digest;   ///< FNV over the cold render.
    std::string warm_report_digest;   ///< FNV over the (shared) warm render.

    // --- Lifecycle study (modeled: byte counts from the segment log).
    std::int64_t recovered_entries = 0;  ///< Entries a recovery open sees.
    std::int64_t churn_rounds = 0;       ///< Re-save generations applied.
    /** Log size after churn (fully-garbage segments auto-compacted). */
    std::int64_t churn_log_bytes = 0;
    std::int64_t compacted_log_bytes = 0;  ///< Log size at compaction fixpoint.
    std::int64_t compaction_reclaimed_bytes = 0;  ///< Garbage deleted.
    std::int64_t compactions = 0;        ///< Segment compactions performed.

    // --- Wall clock (stderr/JSON only; never deterministic).
    std::vector<double> cold_wall_ms;
    std::vector<double> warm_wall_ms;
    std::vector<double> recover_wall_ms;
    double cold_p50_ms = 0.0;
    double warm_p50_ms = 0.0;
    double recover_p50_ms = 0.0;

    /** The veal-persist-bench-v2 JSON rendering of this report. */
    std::string toJson() const;
};

/**
 * Run the study against a scratch cache directory under the system temp
 * dir (created fresh, removed on exit).  Honours options.runs,
 * options.commit, and options.json_path (fatal on I/O error); per-phase
 * timing prints to stderr only.
 */
PersistReport runPersistBench(const ThroughputOptions& options);

}  // namespace veal::bench

#endif  // VEAL_BENCH_PERSIST_H_
