/**
 * Figure 7: percentage of the accelerator speedup attained by plain
 * binaries (no aggressive inlining / fission / tuned unrolling) relative
 * to statically transformed binaries.
 */

#include <cstdio>

#include "bench/common.h"
#include "veal/arch/cpu_config.h"
#include "veal/support/table.h"
#include "veal/vm/vm.h"
#include "veal/workloads/suite.h"

int
main(int argc, char** argv)
{
    using namespace veal;
    const auto bench_options = bench::BenchOptions::parse(argc, argv);
    metrics::Registry registry;
    const auto suite = mediaFpSuite();
    const LaConfig la = LaConfig::proposed();
    VmOptions options;
    options.mode = TranslationMode::kHybridStaticCcaPriority;

    std::printf("VEAL reproduction: Figure 7 -- speedup attained without "
                "static loop transformations\n\n");

    TextTable table({"benchmark", "transformed", "plain",
                     "% of speedup attained"});
    double fraction_sum = 0.0;
    int counted = 0;
    for (const auto& benchmark : suite) {
        VirtualMachine vm(la, CpuConfig::arm11(), options);
        const double transformed =
            vm.run(benchmark.transformed, &registry).speedup;
        const double plain =
            vm.run(benchmark.untransformed, &registry).speedup;
        double fraction = 0.0;
        if (transformed > 1.0) {
            fraction = std::max(0.0, plain - 1.0) / (transformed - 1.0);
            fraction_sum += fraction;
            ++counted;
        }
        table.addRow({benchmark.name,
                      TextTable::formatDouble(transformed, 2),
                      TextTable::formatDouble(plain, 2),
                      TextTable::formatDouble(100.0 * fraction, 1)});
    }
    table.addRow({"AVERAGE", "-", "-",
                  TextTable::formatDouble(
                      100.0 * fraction_sum / counted, 1)});
    std::printf("%s\n", table.render().c_str());
    std::printf(
        "Paper shape: many benchmarks attain 0%% without the transforms\n"
        "(their key loops keep calls or exceed stream limits), and the\n"
        "average loss is large (paper: 75%% of the speedup lost).\n");
    bench::finishBenchMetrics(bench_options, registry);
    return 0;
}
