#include "bench/cli.h"

#include <cstdlib>
#include <iostream>

namespace veal::bench::cli {

[[noreturn]] void
usageError(const std::string& tool, const std::string& message,
           const UsageFn& usage)
{
    std::cerr << tool << ": " << message << "\n";
    std::exit(usage());
}

std::uint64_t
parseU64(const std::string& tool, const std::string& flag,
         const std::string& text, const UsageFn& usage)
{
    // 20 digits can overflow uint64; reject before strtoull saturates.
    if (text.empty() || text.size() > 19 ||
        text.find_first_not_of("0123456789") != std::string::npos) {
        usageError(tool, flag + " needs a non-negative integer, got '" +
                             text + "'",
                   usage);
    }
    return std::strtoull(text.c_str(), nullptr, 10);
}

int
parseCount(const std::string& tool, const std::string& flag,
           const std::string& text, const UsageFn& usage,
           std::uint64_t max)
{
    const std::uint64_t wide = parseU64(tool, flag, text, usage);
    if (wide > max) {
        usageError(tool, flag + " value " + std::to_string(wide) +
                             " is out of range (max " +
                             std::to_string(max) + ")",
                   usage);
    }
    return static_cast<int>(wide);
}

const char*
requireValue(const std::string& tool, int argc, char** argv, int* i,
             const UsageFn& usage)
{
    if (*i + 1 >= argc)
        usageError(tool, std::string(argv[*i]) + " needs a value", usage);
    return argv[++*i];
}

}  // namespace veal::bench::cli
