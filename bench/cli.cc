#include "bench/cli.h"

#include <cstdlib>
#include <iostream>

#include "veal/support/parse.h"

namespace veal::bench::cli {

[[noreturn]] void
usageError(const std::string& tool, const std::string& message,
           const UsageFn& usage)
{
    std::cerr << tool << ": " << message << "\n";
    std::exit(usage());
}

std::uint64_t
parseU64(const std::string& tool, const std::string& flag,
         const std::string& text, const UsageFn& usage)
{
    // parseU64Strict checks overflow exactly, so all of [0, 2^64-1]
    // parses (including 20-digit values) and anything larger fails.
    const auto parsed = parseU64Strict(text);
    if (!parsed.has_value()) {
        usageError(tool, flag + " needs a non-negative integer, got '" +
                             text + "'",
                   usage);
    }
    return *parsed;
}

int
parseCount(const std::string& tool, const std::string& flag,
           const std::string& text, const UsageFn& usage,
           std::uint64_t max)
{
    const std::uint64_t wide = parseU64(tool, flag, text, usage);
    if (wide > max) {
        usageError(tool, flag + " value " + std::to_string(wide) +
                             " is out of range (max " +
                             std::to_string(max) + ")",
                   usage);
    }
    return static_cast<int>(wide);
}

const char*
requireValue(const std::string& tool, int argc, char** argv, int* i,
             const UsageFn& usage)
{
    if (*i + 1 >= argc)
        usageError(tool, std::string(argv[*i]) + " needs a value", usage);
    return argv[++*i];
}

}  // namespace veal::bench::cli
