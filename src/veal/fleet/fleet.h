#ifndef VEAL_FLEET_FLEET_H_
#define VEAL_FLEET_FLEET_H_

/**
 * @file
 * Heterogeneous loop-accelerator fleet: configs, scoring, steering.
 *
 * The paper evaluates one LA design point, but its Figure-10 tradeoff
 * analysis shows the winning (CCA depth, FU mix, stream capacity) shape
 * varies sharply by loop: a production deployment runs a *fleet* of
 * differently-shaped backends and steers each loop to the one where it
 * wins.  Three pieces (DESIGN.md §17):
 *
 *  - FleetConfig: N named LaConfig backends with per-backend capacity.
 *    Ships the paper baseline plus four presets (cca-heavy, fp-heavy,
 *    stream-heavy, tiny-ii).
 *  - BackendScorer: prices one loop against every backend through the
 *    explore/scoreLoopCell kernel -- modeled first/warm invocation
 *    cycles via the summary cost model (bit-identical to the live
 *    scheduler's pricing, TLB-aware when the service runs --tlb), plus
 *    the scalar-CPU price of the same loop.  Scores are pure data
 *    (persist::FleetScoreSet), cacheable in the warm tier and
 *    persistable in version-2 blobs.
 *  - FleetSteerer: places keys greedily on the cheapest-warm-cycles
 *    backend, index-ordered tie-breaks, spilling to the strictly
 *    next-best backend when one saturates its capacity, with the CPU as
 *    the last rung when every viable backend is full.  Placements are
 *    sticky per key, so steering is a deterministic left-fold over the
 *    admission order -- the property the service's shard/thread/batch
 *    determinism contract rides on.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "veal/arch/cpu_config.h"
#include "veal/arch/la_config.h"
#include "veal/ir/loop.h"
#include "veal/sim/tlb_model.h"
#include "veal/vm/persist/blob.h"
#include "veal/vm/translator.h"

namespace veal::fleet {

/** One fleet member: a design point plus its admission capacity. */
struct Backend {
    LaConfig la;

    /**
     * Maximum number of distinct keys resident on this backend
     * (control-store / stream-table slots in a real deployment).
     * <= 0 means unlimited.
     */
    int capacity = 0;
};

/** The whole fleet, in steering index order. */
struct FleetConfig {
    std::string name = "fleet";
    std::vector<Backend> backends;

    bool enabled() const { return !backends.empty(); }
    int size() const { return static_cast<int>(backends.size()); }

    /** The §3.2 design point alone -- degenerates to today's service. */
    static FleetConfig baselineOnly();

    /**
     * The preset fleet: baseline + cca-heavy + fp-heavy + stream-heavy
     * + tiny-ii, unlimited capacity.
     */
    static FleetConfig standard();

    /**
     * Parse a --fleet spec: a preset fleet name ("standard",
     * "baseline") or a comma-separated list of backend preset names
     * ("baseline,cca-heavy,tiny-ii").  @p capacity applies to every
     * backend (<= 0 unlimited).  nullopt on an unknown name.
     */
    static std::optional<FleetConfig> parse(const std::string& spec,
                                            int capacity = 0);
};

/** Single-backend design-point presets (also valid --fleet members). */
LaConfig ccaHeavyConfig();
LaConfig fpHeavyConfig();
LaConfig streamHeavyConfig();
LaConfig tinyIiConfig();

/**
 * FNV-1a fold of every score-relevant knob of every backend (shape,
 * latencies, bus) -- NOT capacity, which affects steering but never a
 * score, so resizing capacity keeps persisted scores valid.
 */
std::uint64_t fleetSignature(const FleetConfig& config);

/**
 * Prices loops against the whole fleet.  Pure: one score() call per
 * (loop, mode) computes every backend column independently, so results
 * never depend on scoring order -- the steering property battery
 * recomputes single cells and byte-compares.
 */
class BackendScorer {
  public:
    BackendScorer(FleetConfig config, CpuConfig cpu, TlbConfig tlb,
                  std::int64_t scoring_iterations);

    const FleetConfig& config() const { return config_; }
    std::int64_t scoringIterations() const { return scoring_iterations_; }

    /**
     * Full signature a cached/persisted score set must match: the fleet
     * signature folded with the CPU model, TLB knobs, and the canonical
     * scoring iteration count.
     */
    std::uint64_t signature() const { return signature_; }

    /** Price @p loop on every backend plus the scalar CPU. */
    persist::FleetScoreSet score(const Loop& loop,
                                 TranslationMode mode) const;

  private:
    FleetConfig config_;
    CpuConfig cpu_;
    TlbConfig tlb_;
    std::int64_t scoring_iterations_;
    std::uint64_t signature_;
};

/** Where one key landed. */
struct Placement {
    /** Backend index, or -1 for the CPU-fallback rung. */
    int backend = -1;

    /**
     * 0 = got its best-scoring backend; k > 0 = spilled past k better
     * backends that were saturated.
     */
    int spill_rank = 0;

    /** True when no backend scored ok (nominal translation rejected
     *  everywhere); the key still lands on backend 0 so the PR-4
     *  ladder can climb there, but holds no capacity slot. */
    bool unscored = false;
};

/**
 * Greedy capacity-aware placement with sticky per-key decisions.
 *
 * Deterministic by construction: candidates are ordered (warm_cycles
 * ascending, backend index ascending), capacity is consumed in call
 * order, and a key's first placement is final -- so any replay of the
 * same key sequence reproduces the same placements bit-exactly.
 */
class FleetSteerer {
  public:
    explicit FleetSteerer(const FleetConfig& config);

    /**
     * Place @p key given its @p scores (index-aligned with the fleet).
     * Repeated calls with the same key return the original placement
     * without consuming further capacity.
     */
    Placement place(const std::string& key,
                    const persist::FleetScoreSet& scores);

    /** The sticky placement of @p key, if it was ever placed. */
    std::optional<Placement> lookup(const std::string& key) const;

    /** Resident (capacity-consuming) key count per backend. */
    const std::vector<int>& residents() const { return residents_; }

    std::int64_t spills() const { return spills_; }
    std::int64_t cpuFallbacks() const { return cpu_fallbacks_; }

  private:
    FleetConfig config_;
    std::map<std::string, Placement> placements_;
    std::vector<int> residents_;
    std::int64_t spills_ = 0;
    std::int64_t cpu_fallbacks_ = 0;
};

}  // namespace veal::fleet

#endif  // VEAL_FLEET_FLEET_H_
