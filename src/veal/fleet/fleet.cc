#include "veal/fleet/fleet.h"

#include <algorithm>
#include <utility>

#include "veal/explore/sweep.h"
#include "veal/support/assert.h"

namespace veal::fleet {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

void
fold(std::uint64_t& digest, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        digest ^= (value >> (byte * 8)) & 0xffu;
        digest *= kFnvPrime;
    }
}

void
foldLa(std::uint64_t& digest, const LaConfig& la)
{
    for (const char c : la.name)
        fold(digest, static_cast<std::uint8_t>(c));
    fold(digest, static_cast<std::uint64_t>(la.num_int_units));
    fold(digest, static_cast<std::uint64_t>(la.num_fp_units));
    fold(digest, static_cast<std::uint64_t>(la.num_cca_units));
    fold(digest, la.hasCca() ? 1u : 0u);
    if (la.cca.has_value()) {
        fold(digest, static_cast<std::uint64_t>(la.cca->num_inputs));
        fold(digest, static_cast<std::uint64_t>(la.cca->num_outputs));
        fold(digest, static_cast<std::uint64_t>(la.cca->num_rows));
        fold(digest, static_cast<std::uint64_t>(la.cca->max_ops));
        fold(digest, static_cast<std::uint64_t>(la.cca->latency));
        fold(digest,
             static_cast<std::uint64_t>(la.cca->initiation_interval));
    }
    fold(digest, static_cast<std::uint64_t>(la.num_int_registers));
    fold(digest, static_cast<std::uint64_t>(la.num_fp_registers));
    fold(digest, static_cast<std::uint64_t>(la.num_load_streams));
    fold(digest, static_cast<std::uint64_t>(la.num_store_streams));
    fold(digest, static_cast<std::uint64_t>(la.num_load_addr_gens));
    fold(digest, static_cast<std::uint64_t>(la.num_store_addr_gens));
    fold(digest, static_cast<std::uint64_t>(la.num_memory_ports));
    fold(digest, static_cast<std::uint64_t>(la.max_ii));
    fold(digest, static_cast<std::uint64_t>(la.bus_latency));
}

/** Lookup table the --fleet spec parser and the presets share. */
std::optional<LaConfig>
backendByName(const std::string& name)
{
    if (name == "baseline" || name == "veal-proposed")
        return LaConfig::proposed();
    if (name == "cca-heavy")
        return ccaHeavyConfig();
    if (name == "fp-heavy")
        return fpHeavyConfig();
    if (name == "stream-heavy")
        return streamHeavyConfig();
    if (name == "tiny-ii")
        return tinyIiConfig();
    return std::nullopt;
}

}  // namespace

LaConfig
ccaHeavyConfig()
{
    // Doubles down on subgraph acceleration: two CCAs soak the integer
    // dataflow that dominates the media kernels, at the cost of scalar
    // FU width.
    LaConfig config = LaConfig::proposed();
    config.name = "cca-heavy";
    config.num_cca_units = 2;
    config.num_int_units = 1;
    config.num_fp_units = 1;
    return config;
}

LaConfig
fpHeavyConfig()
{
    // For the FP-dominated kernels the CCA is dead silicon (it only
    // executes integer subgraphs); trade it for FP issue width and a
    // deeper FP file.
    LaConfig config = LaConfig::proposed();
    config.name = "fp-heavy";
    config.num_cca_units = 0;
    config.cca = std::nullopt;
    config.num_int_units = 1;
    config.num_fp_units = 4;
    config.num_fp_registers = 32;
    return config;
}

LaConfig
streamHeavyConfig()
{
    // Memory-bound loops: double the stream tables and address
    // generators and quadruple the ports, which is the ResMII limiter
    // on the paper's single-port baseline.
    LaConfig config = LaConfig::proposed();
    config.name = "stream-heavy";
    config.num_load_streams = 32;
    config.num_store_streams = 16;
    config.num_load_addr_gens = 8;
    config.num_store_addr_gens = 4;
    config.num_memory_ports = 4;
    return config;
}

LaConfig
tinyIiConfig()
{
    // A shallow-control-store part: only II <= 4 loops fit, but wide
    // integer issue and a short bus make those loops cheap -- the
    // "express" member of the zoo.
    LaConfig config = LaConfig::proposed();
    config.name = "tiny-ii";
    config.max_ii = 4;
    config.num_int_units = 4;
    config.bus_latency = 6;
    return config;
}

FleetConfig
FleetConfig::baselineOnly()
{
    FleetConfig config;
    config.name = "baseline";
    config.backends.push_back(Backend{LaConfig::proposed(), 0});
    return config;
}

FleetConfig
FleetConfig::standard()
{
    FleetConfig config;
    config.name = "standard";
    config.backends.push_back(Backend{LaConfig::proposed(), 0});
    config.backends.push_back(Backend{ccaHeavyConfig(), 0});
    config.backends.push_back(Backend{fpHeavyConfig(), 0});
    config.backends.push_back(Backend{streamHeavyConfig(), 0});
    config.backends.push_back(Backend{tinyIiConfig(), 0});
    return config;
}

std::optional<FleetConfig>
FleetConfig::parse(const std::string& spec, int capacity)
{
    if (spec.empty())
        return std::nullopt;
    FleetConfig config;
    if (spec == "standard") {
        config = standard();
    } else if (spec == "baseline") {
        config = baselineOnly();
    } else {
        config.name = spec;
        std::size_t start = 0;
        while (start <= spec.size()) {
            const std::size_t comma = spec.find(',', start);
            const std::string token =
                spec.substr(start, comma == std::string::npos
                                       ? std::string::npos
                                       : comma - start);
            const auto la = backendByName(token);
            if (!la.has_value())
                return std::nullopt;
            config.backends.push_back(Backend{*la, 0});
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }
    for (Backend& backend : config.backends)
        backend.capacity = capacity;
    return config;
}

std::uint64_t
fleetSignature(const FleetConfig& config)
{
    std::uint64_t digest = kFnvOffset;
    fold(digest, static_cast<std::uint64_t>(config.backends.size()));
    for (const Backend& backend : config.backends)
        foldLa(digest, backend.la);
    return digest;
}

BackendScorer::BackendScorer(FleetConfig config, CpuConfig cpu,
                             TlbConfig tlb,
                             std::int64_t scoring_iterations)
    : config_(std::move(config)),
      cpu_(std::move(cpu)),
      tlb_(tlb),
      scoring_iterations_(scoring_iterations)
{
    VEAL_ASSERT(scoring_iterations_ >= 1,
                "scoring needs >= 1 iteration");
    std::uint64_t digest = fleetSignature(config_);
    for (const char c : cpu_.name)
        fold(digest, static_cast<std::uint8_t>(c));
    fold(digest, static_cast<std::uint64_t>(cpu_.issue_width));
    fold(digest, static_cast<std::uint64_t>(cpu_.branch_penalty));
    fold(digest, static_cast<std::uint64_t>(cpu_.load_latency));
    fold(digest, tlb_.enabled ? 1u : 0u);
    if (tlb_.enabled) {
        fold(digest, static_cast<std::uint64_t>(tlb_.page_bytes));
        fold(digest, static_cast<std::uint64_t>(tlb_.element_bytes));
        fold(digest, static_cast<std::uint64_t>(tlb_.entries));
        fold(digest, static_cast<std::uint64_t>(tlb_.walk_cycles));
    }
    fold(digest, static_cast<std::uint64_t>(scoring_iterations_));
    signature_ = digest;
}

persist::FleetScoreSet
BackendScorer::score(const Loop& loop, TranslationMode mode) const
{
    persist::FleetScoreSet scores;
    scores.signature = signature_;
    scores.scoring_iterations = scoring_iterations_;
    scores.cpu_cycles =
        explore::scoreCpuCycles(loop, cpu_, scoring_iterations_);
    scores.backends.reserve(config_.backends.size());
    for (const Backend& backend : config_.backends) {
        const explore::LoopScore cell = explore::scoreLoopCell(
            loop, backend.la, mode, scoring_iterations_, tlb_);
        persist::FleetBackendScore score;
        score.ok = cell.ok;
        score.reject = cell.reject;
        score.ii = cell.ii;
        score.stage_count = cell.stage_count;
        score.first_cycles = cell.first_cycles;
        score.warm_cycles = cell.warm_cycles;
        scores.backends.push_back(score);
    }
    return scores;
}

FleetSteerer::FleetSteerer(const FleetConfig& config)
    : config_(config),
      residents_(config.backends.size(), 0)
{
}

Placement
FleetSteerer::place(const std::string& key,
                    const persist::FleetScoreSet& scores)
{
    const auto existing = placements_.find(key);
    if (existing != placements_.end())
        return existing->second;
    VEAL_ASSERT(scores.backends.size() == config_.backends.size(),
                "score set shape does not match the fleet");

    // Candidates: ok backends by (warm price asc, index asc).  The
    // steady-state warm price is the ranking metric -- setup amortizes
    // across reuse, which is the service's whole premise.
    std::vector<std::pair<std::int64_t, int>> candidates;
    for (int i = 0; i < config_.size(); ++i) {
        const persist::FleetBackendScore& score =
            scores.backends[static_cast<std::size_t>(i)];
        if (score.ok)
            candidates.emplace_back(score.warm_cycles, i);
    }
    std::sort(candidates.begin(), candidates.end());

    Placement placement;
    if (candidates.empty()) {
        // Nominal translation rejected everywhere: park the key on
        // backend 0 without a capacity slot so the degradation ladder
        // can still climb there (bit-exact with the single-design-point
        // service, which also climbs on its one config).
        placement.backend = config_.backends.empty() ? -1 : 0;
        placement.unscored = true;
        placements_.emplace(key, placement);
        return placement;
    }

    for (std::size_t rank = 0; rank < candidates.size(); ++rank) {
        const int index = candidates[rank].second;
        const int capacity =
            config_.backends[static_cast<std::size_t>(index)].capacity;
        if (capacity > 0 &&
            residents_[static_cast<std::size_t>(index)] >= capacity)
            continue;
        placement.backend = index;
        placement.spill_rank = static_cast<int>(rank);
        ++residents_[static_cast<std::size_t>(index)];
        if (rank > 0)
            ++spills_;
        placements_.emplace(key, placement);
        return placement;
    }

    // Every viable backend is saturated: the CPU is the last rung.
    placement.backend = -1;
    ++cpu_fallbacks_;
    placements_.emplace(key, placement);
    return placement;
}

std::optional<Placement>
FleetSteerer::lookup(const std::string& key) const
{
    const auto it = placements_.find(key);
    if (it == placements_.end())
        return std::nullopt;
    return it->second;
}

}  // namespace veal::fleet
