#include "veal/arch/latency.h"

#include "veal/support/assert.h"

namespace veal {

LatencyModel::LatencyModel()
{
    cycles_.fill(1);
}

int
LatencyModel::latency(Opcode opcode) const
{
    const int index = static_cast<int>(opcode);
    VEAL_ASSERT(index >= 0 && index < kNumOpcodes);
    return cycles_[static_cast<std::size_t>(index)];
}

void
LatencyModel::set(Opcode opcode, int cycles)
{
    VEAL_ASSERT(cycles >= 0);
    cycles_[static_cast<std::size_t>(static_cast<int>(opcode))] = cycles;
}

LatencyModel
LatencyModel::accelerator()
{
    LatencyModel m;
    m.set(Opcode::kMul, 3);
    m.set(Opcode::kDiv, 8);
    m.set(Opcode::kCca, 2);
    // Loads read FIFOs filled by decoupled address generators; the value is
    // available one cycle after issue.
    m.set(Opcode::kLoad, 1);
    // Double-precision FP, fully pipelined (paper §3.1 assumption).
    m.set(Opcode::kFAdd, 4);
    m.set(Opcode::kFSub, 4);
    m.set(Opcode::kFMul, 4);
    m.set(Opcode::kFDiv, 12);
    m.set(Opcode::kFSqrt, 16);
    m.set(Opcode::kFCmp, 2);
    m.set(Opcode::kFAbs, 1);
    m.set(Opcode::kItoF, 2);
    m.set(Opcode::kFtoI, 2);
    return m;
}

LatencyModel
LatencyModel::cpu()
{
    LatencyModel m = accelerator();
    // The CPU pays an L1 hit on every load instead of reading a FIFO.
    m.set(Opcode::kLoad, 2);
    m.set(Opcode::kCca, 2);  // Never used on the CPU; kept for symmetry.
    return m;
}

}  // namespace veal
