#ifndef VEAL_ARCH_AREA_H_
#define VEAL_ARCH_AREA_H_

/**
 * @file
 * Die-area estimation for loop accelerator configurations.
 *
 * The paper collected component estimates with Cadence tools and an IBM
 * 90 nm standard-cell library (§3.2): the proposed LA occupies ~3.8 mm^2,
 * of which the two double-precision FPUs consume 2.38 mm^2.  We back out
 * per-component constants consistent with those totals so that arbitrary
 * configurations can be costed in the design-space exploration.
 */

#include <string>
#include <vector>

#include "veal/arch/la_config.h"

namespace veal {

/** Per-component areas at 90 nm, in mm^2. */
struct AreaCoefficients {
    double per_int_unit = 0.10;
    double per_fp_unit = 1.19;       ///< 2 FPUs = 2.38 mm^2 (paper §3.2).
    double per_cca = 0.35;
    double per_register = 0.008;     ///< Register file bit-cells + ports.
    double per_addr_gen = 0.05;
    double per_stream_context = 0.004;  ///< Base/stride/count storage.
    double per_control_entry = 0.0025;  ///< Control store: max_ii x FU.
    double bus_interface = 0.02;
};

/** One line of an area report. */
struct AreaItem {
    std::string component;
    double mm2 = 0.0;
};

/** Estimates LA die area from component coefficients. */
class AreaModel {
  public:
    AreaModel() = default;
    explicit AreaModel(const AreaCoefficients& coefficients)
        : coefficients_(coefficients)
    {}

    /** Total area of @p config in mm^2. */
    double totalArea(const LaConfig& config) const;

    /** Itemised breakdown (sums to totalArea()). */
    std::vector<AreaItem> breakdown(const LaConfig& config) const;

    /** Reference CPU areas from the paper, for the §4.3 comparison. */
    static constexpr double kArm11Mm2 = 4.34;
    static constexpr double kCortexA8Mm2 = 10.2;
    static constexpr double kQuadIssueMm2 = 14.0;

  private:
    AreaCoefficients coefficients_;
};

}  // namespace veal

#endif  // VEAL_ARCH_AREA_H_
