#include "veal/arch/fu.h"

namespace veal {

const char*
toString(FuClass fu_class)
{
    switch (fu_class) {
      case FuClass::kInt: return "int";
      case FuClass::kFp: return "fp";
      case FuClass::kCca: return "cca";
      case FuClass::kNone: return "none";
      case FuClass::kCount: break;
    }
    return "unknown";
}

FuClass
fuClassFor(Opcode opcode)
{
    if (opcode == Opcode::kCca)
        return FuClass::kCca;
    const OpcodeInfo& info = opcodeInfo(opcode);
    if (info.is_float)
        return FuClass::kFp;
    if (info.is_integer)
        return FuClass::kInt;
    return FuClass::kNone;
}

}  // namespace veal
