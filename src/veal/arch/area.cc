#include "veal/arch/area.h"

namespace veal {

std::vector<AreaItem>
AreaModel::breakdown(const LaConfig& config) const
{
    const auto& c = coefficients_;
    std::vector<AreaItem> items;
    items.push_back({"integer units",
                     c.per_int_unit * config.num_int_units});
    items.push_back({"fp units", c.per_fp_unit * config.num_fp_units});
    if (config.hasCca())
        items.push_back({"cca", c.per_cca * config.num_cca_units});
    items.push_back({"registers",
                     c.per_register * (config.num_int_registers +
                                       config.num_fp_registers)});
    items.push_back({"address generators",
                     c.per_addr_gen * (config.num_load_addr_gens +
                                       config.num_store_addr_gens)});
    items.push_back({"stream contexts",
                     c.per_stream_context * (config.num_load_streams +
                                             config.num_store_streams)});
    const int num_fus = config.num_int_units + config.num_fp_units +
                        (config.hasCca() ? config.num_cca_units : 0);
    items.push_back({"control store",
                     c.per_control_entry * config.max_ii * num_fus});
    items.push_back({"bus interface", c.bus_interface});
    return items;
}

double
AreaModel::totalArea(const LaConfig& config) const
{
    double total = 0.0;
    for (const auto& item : breakdown(config))
        total += item.mm2;
    return total;
}

}  // namespace veal
