#ifndef VEAL_ARCH_FU_H_
#define VEAL_ARCH_FU_H_

/**
 * @file
 * Function-unit classes of the loop accelerator datapath.
 *
 * The LA template (paper Figure 1) has three FU classes that appear as
 * modulo-reservation-table columns: integer units (which also execute
 * shifts and multiplies, §3.1), double-precision FP units, and the CCA.
 * Memory, control, and address operations never occupy an FU: they are
 * folded into the address generators and loop-control hardware.
 */

#include "veal/ir/opcode.h"

namespace veal {

/** Accelerator FU classes (MRT column kinds). */
enum class FuClass : int {
    kInt = 0,  ///< Integer ALU (including shift/multiply/divide).
    kFp,       ///< Double-precision floating-point unit.
    kCca,      ///< Configurable compute accelerator.
    kNone,     ///< No FU needed (memory/control/address/value sources).
    kCount,
};

/** Number of real FU classes (excludes kNone). */
inline constexpr int kNumFuClasses = 3;

/** Class name, e.g. "int". */
const char* toString(FuClass fu_class);

/** The FU class that executes @p opcode (kCca only for collapsed ops). */
FuClass fuClassFor(Opcode opcode);

}  // namespace veal

#endif  // VEAL_ARCH_FU_H_
