#ifndef VEAL_ARCH_LATENCY_H_
#define VEAL_ARCH_LATENCY_H_

/**
 * @file
 * Per-opcode execution latencies.
 *
 * Two presets exist: the accelerator model (paper Figure 5: multiplies take
 * 3 cycles, the CCA takes 2, everything else 1; FP ops are long-latency and
 * fully pipelined) and the baseline CPU model (same compute latencies, but
 * loads pay an L1 access).
 */

#include <array>

#include "veal/ir/opcode.h"

namespace veal {

/** Latency lookup table, one entry per opcode. */
class LatencyModel {
  public:
    /** All-ones model; customise with set(). */
    LatencyModel();

    /** Latency of @p opcode in cycles (>= 1 for value-producing ops). */
    int latency(Opcode opcode) const;

    /** Override the latency for one opcode. */
    void set(Opcode opcode, int cycles);

    /** The loop-accelerator latency preset (paper Figure 5 rules). */
    static LatencyModel accelerator();

    /** The baseline in-order CPU preset. */
    static LatencyModel cpu();

  private:
    std::array<int, kNumOpcodes> cycles_;
};

}  // namespace veal

#endif  // VEAL_ARCH_LATENCY_H_
