#ifndef VEAL_ARCH_CPU_CONFIG_H_
#define VEAL_ARCH_CPU_CONFIG_H_

/**
 * @file
 * Baseline in-order CPU configurations.
 *
 * The paper's baseline is a single-issue embedded core modelled after the
 * ARM 11; the die-area comparison points are a dual-issue Cortex-A8-like
 * core and a hypothetical quad-issue variant with a larger L2 (§4.3).
 */

#include <string>

#include "veal/arch/latency.h"

namespace veal {

/** An in-order CPU design point for the veal/sim pipeline model. */
struct CpuConfig {
    std::string name = "cpu";

    /** Instructions issued per cycle (in order). */
    int issue_width = 1;

    /** Taken-branch redirect penalty in cycles. */
    int branch_penalty = 3;

    /** Per-opcode latencies. */
    LatencyModel latencies = LatencyModel::cpu();

    /**
     * Average load latency in cycles.  Wider parts in the paper also carry
     * bigger caches; we fold that into a lower average load latency.
     */
    int load_latency = 2;

    /** Die area in mm^2 at 90 nm (reported constants; see veal/arch/area). */
    double area_mm2 = 4.34;

    /**
     * Speedup of *acyclic* (non-loop) code relative to the 1-issue
     * baseline.  Wider in-order machines extract limited ILP from acyclic
     * regions; loop regions are simulated directly instead.
     */
    double acyclic_speedup = 1.0;

    /** Single-issue ARM11-like baseline (4.34 mm^2). */
    static CpuConfig arm11();

    /** Dual-issue Cortex-A8-like core (10.2 mm^2). */
    static CpuConfig cortexA8();

    /** Hypothetical quad-issue A8 with larger L2 (14.0 mm^2). */
    static CpuConfig quadIssue();
};

}  // namespace veal

#endif  // VEAL_ARCH_CPU_CONFIG_H_
