#ifndef VEAL_ARCH_CCA_SPEC_H_
#define VEAL_ARCH_CCA_SPEC_H_

/**
 * @file
 * The configurable compute accelerator (CCA) function unit.
 *
 * From paper §3.1: the CCA "supports 4 inputs, 2 outputs, and can execute
 * as many as 15 standard RISC ops atomically in 2 clock cycles.  The 15
 * RISC ops are organized into 4 rows, where the first and third row can
 * execute simple arithmetic (add, subtract, comparison) and bitwise logical
 * ops, and the second and fourth rows execute only bitwise ops."
 */

#include <array>
#include <vector>

#include "veal/ir/opcode.h"

namespace veal {

/** Structural description of one CCA design. */
struct CcaSpec {
    int num_inputs = 4;
    int num_outputs = 2;
    int num_rows = 4;
    int max_ops = 15;

    /** Whether each row can execute arithmetic (true) or only logic. */
    std::array<bool, 8> row_allows_arith = {true, false, true, false,
                                            false, false, false, false};

    /** Ops per row; the classic CCA is 4/4/4/3 (15 total). */
    std::array<int, 8> row_width = {4, 4, 4, 3, 0, 0, 0, 0};

    /** Execution latency in cycles (combinational across 2 cycles). */
    int latency = 2;

    /**
     * Cycles between back-to-back issues.  The CCA is a combinational
     * structure without internal pipeline latches, so a new subgraph can
     * only start once the previous one finishes.
     */
    int initiation_interval = 2;

    /** Can a single op with @p cls execute in @p row (0-based)? */
    bool
    rowSupports(int row, CcaOpClass cls) const
    {
        if (row < 0 || row >= num_rows || cls == CcaOpClass::kNone)
            return false;
        if (cls == CcaOpClass::kArith)
            return row_allows_arith[static_cast<std::size_t>(row)];
        return true;  // Logic runs in every row.
    }

    /** Is @p opcode executable on *some* row of this CCA? */
    bool
    supports(Opcode opcode) const
    {
        const CcaOpClass cls = opcodeInfo(opcode).cca_class;
        for (int row = 0; row < num_rows; ++row) {
            if (rowSupports(row, cls))
                return true;
        }
        return false;
    }

    /** The paper's CCA design point. */
    static CcaSpec classic() { return CcaSpec{}; }
};

}  // namespace veal

#endif  // VEAL_ARCH_CCA_SPEC_H_
