#ifndef VEAL_ARCH_LA_CONFIG_H_
#define VEAL_ARCH_LA_CONFIG_H_

/**
 * @file
 * Loop accelerator configuration: the knobs explored in paper §3.
 */

#include <optional>
#include <string>

#include "veal/arch/cca_spec.h"
#include "veal/arch/fu.h"
#include "veal/arch/latency.h"

namespace veal {

/**
 * One loop accelerator design point.
 *
 * "Infinite" resources are modelled with a large sentinel (kUnlimited);
 * the design-space exploration sweeps individual fields while holding the
 * rest unlimited, exactly as in §3.1.
 */
struct LaConfig {
    /** Effectively-infinite resource count for exploration baselines. */
    static constexpr int kUnlimited = 1 << 20;

    std::string name = "la";

    // Function units ----------------------------------------------------
    int num_int_units = 2;
    int num_fp_units = 2;
    int num_cca_units = 1;
    std::optional<CcaSpec> cca = CcaSpec::classic();

    // Registers (paper Figure 3(b): separate integer / FP files) --------
    int num_int_registers = 16;
    int num_fp_registers = 16;

    // Memory streams (paper Figure 4(a)) ---------------------------------
    int num_load_streams = 16;
    int num_store_streams = 8;
    int num_load_addr_gens = 4;   ///< Time-multiplexed across load streams.
    int num_store_addr_gens = 2;  ///< Time-multiplexed across store streams.

    /**
     * Memory ports shared by all address generators (paper §2.1: streams
     * time-multiplex a small number of ports).  Bounds the aggregate
     * load+store rate to num_memory_ports accesses per cycle, which the
     * scheduler sees as a ResMII component.
     */
    int num_memory_ports = 1;

    // Control -------------------------------------------------------------
    int max_ii = 16;  ///< Control-store depth: each FU holds II instructions.

    /** Execution latencies inside the accelerator. */
    LatencyModel latencies = LatencyModel::accelerator();

    /** Cycles to cross the system bus to/from the host CPU (paper: 10). */
    int bus_latency = 10;

    /** True when a CCA FU exists. */
    bool hasCca() const { return num_cca_units > 0 && cca.has_value(); }

    /** Number of FU instances in @p fu_class. */
    int
    fuCount(FuClass fu_class) const
    {
        switch (fu_class) {
          case FuClass::kInt: return num_int_units;
          case FuClass::kFp: return num_fp_units;
          case FuClass::kCca: return hasCca() ? num_cca_units : 0;
          default: return 0;
        }
    }

    /** The design point proposed in paper §3.2. */
    static LaConfig proposed();

    /** The infinite-resource exploration baseline (no CCA by default). */
    static LaConfig infinite();

    /** Infinite resources plus one classic CCA. */
    static LaConfig infiniteWithCca();
};

}  // namespace veal

#endif  // VEAL_ARCH_LA_CONFIG_H_
