#include "veal/arch/cpu_config.h"

namespace veal {

CpuConfig
CpuConfig::arm11()
{
    CpuConfig config;
    config.name = "arm11-1issue";
    config.issue_width = 1;
    config.branch_penalty = 3;
    config.load_latency = 2;
    config.area_mm2 = 4.34;
    return config;
}

CpuConfig
CpuConfig::cortexA8()
{
    CpuConfig config;
    config.name = "cortexa8-2issue";
    config.issue_width = 2;
    config.branch_penalty = 3;
    config.load_latency = 2;
    config.area_mm2 = 10.2;
    config.acyclic_speedup = 1.35;
    return config;
}

CpuConfig
CpuConfig::quadIssue()
{
    CpuConfig config;
    config.name = "hypothetical-4issue";
    config.issue_width = 4;
    config.branch_penalty = 3;
    // Larger L2 folds into a slightly better average load latency.
    config.load_latency = 2;
    config.area_mm2 = 14.0;
    config.acyclic_speedup = 1.6;
    return config;
}

}  // namespace veal
