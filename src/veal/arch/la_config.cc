#include "veal/arch/la_config.h"

namespace veal {

LaConfig
LaConfig::proposed()
{
    LaConfig config;
    config.name = "veal-proposed";
    // Paper §3.2: 1 CCA, 2 integer units, 2 double-precision FP units,
    // 16 FP and integer registers, 16 load streams (4 address generators),
    // 8 store streams (2 address generators), maximum II of 16.
    config.num_int_units = 2;
    config.num_fp_units = 2;
    config.num_cca_units = 1;
    config.cca = CcaSpec::classic();
    config.num_int_registers = 16;
    config.num_fp_registers = 16;
    config.num_load_streams = 16;
    config.num_store_streams = 8;
    config.num_load_addr_gens = 4;
    config.num_store_addr_gens = 2;
    config.max_ii = 16;
    return config;
}

LaConfig
LaConfig::infinite()
{
    LaConfig config;
    config.name = "infinite";
    config.num_int_units = kUnlimited;
    config.num_fp_units = kUnlimited;
    config.num_cca_units = 0;
    config.cca = std::nullopt;
    config.num_int_registers = kUnlimited;
    config.num_fp_registers = kUnlimited;
    config.num_load_streams = kUnlimited;
    config.num_store_streams = kUnlimited;
    config.num_load_addr_gens = kUnlimited;
    config.num_store_addr_gens = kUnlimited;
    config.num_memory_ports = kUnlimited;
    config.max_ii = kUnlimited;
    return config;
}

LaConfig
LaConfig::infiniteWithCca()
{
    LaConfig config = infinite();
    config.name = "infinite+cca";
    config.num_cca_units = 1;
    config.cca = CcaSpec::classic();
    return config;
}

}  // namespace veal
