#include "veal/fault/faulty_vfs.h"

namespace veal::fault {

namespace {

/** splitmix64: the repo-standard cheap deterministic mixer. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

const char*
toString(VfsFaultMode mode)
{
    switch (mode) {
      case VfsFaultMode::kCrash: return "crash";
      case VfsFaultMode::kShortWrite: return "short-write";
      case VfsFaultMode::kBitFlip: return "bit-flip";
      case VfsFaultMode::kEnospc: return "enospc";
    }
    return "unknown";
}

FaultyVfs::FaultyVfs(std::shared_ptr<persist::Vfs> base,
                     FaultyVfsOptions options)
    : base_(std::move(base)), options_(options)
{
}

std::uint64_t
FaultyVfs::draw() const
{
    return mix(options_.seed ^
               mix(static_cast<std::uint64_t>(options_.trigger_op)));
}

FaultyVfs::Verdict
FaultyVfs::classifyMutation(bool is_write)
{
    if (dead_)
        return Verdict::kFail;
    if (enospc_)
        return Verdict::kFail;
    const std::int64_t op = mutation_ops_++;
    const bool trigger =
        options_.trigger_op >= 0 && op == options_.trigger_op;
    if (!trigger)
        return Verdict::kPass;
    fired_ = true;
    switch (options_.mode) {
        case VfsFaultMode::kCrash:
            dead_ = true;
            return is_write ? Verdict::kTornWrite : Verdict::kDropOp;
        case VfsFaultMode::kShortWrite:
            return is_write ? Verdict::kTornWrite : Verdict::kDropOp;
        case VfsFaultMode::kBitFlip:
            // Only writes carry bytes to flip; a non-write trigger
            // passes through untouched (the campaign still covers the
            // point -- it just has no payload to corrupt).
            return is_write ? Verdict::kFlip : Verdict::kPass;
        case VfsFaultMode::kEnospc:
            enospc_ = true;
            return Verdict::kFail;
    }
    return Verdict::kPass;
}

std::optional<std::vector<std::uint8_t>>
FaultyVfs::readFile(const std::string& path)
{
    if (dead_)
        return std::nullopt;
    return base_->readFile(path);
}

std::optional<std::vector<std::uint8_t>>
FaultyVfs::readRange(const std::string& path, std::int64_t offset,
                     std::int64_t size)
{
    if (dead_)
        return std::nullopt;
    return base_->readRange(path, offset, size);
}

bool
FaultyVfs::exists(const std::string& path)
{
    if (dead_)
        return false;
    return base_->exists(path);
}

std::optional<std::int64_t>
FaultyVfs::fileSize(const std::string& path)
{
    if (dead_)
        return std::nullopt;
    return base_->fileSize(path);
}

std::vector<std::string>
FaultyVfs::listDir(const std::string& dir)
{
    if (dead_)
        return {};
    return base_->listDir(dir);
}

bool
FaultyVfs::append(const std::string& path,
                  const std::vector<std::uint8_t>& bytes)
{
    switch (classifyMutation(/*is_write=*/true)) {
        case Verdict::kPass:
            return base_->append(path, bytes);
        case Verdict::kTornWrite: {
            // A deterministic strict prefix lands -- the torn tail the
            // recovery path must truncate.  An empty prefix is a valid
            // draw (the crash beat the first byte).
            const std::size_t cut =
                bytes.empty()
                    ? 0
                    : static_cast<std::size_t>(draw() % bytes.size());
            if (cut > 0) {
                base_->append(path, std::vector<std::uint8_t>(
                                        bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(
                                                cut)));
            }
            return false;
        }
        case Verdict::kFlip: {
            std::vector<std::uint8_t> flipped = bytes;
            if (!flipped.empty()) {
                const std::uint64_t bit = draw() % (flipped.size() * 8);
                flipped[bit / 8] ^=
                    static_cast<std::uint8_t>(1u << (bit % 8));
            }
            return base_->append(path, flipped);
        }
        case Verdict::kDropOp:
        case Verdict::kFail:
            return false;
    }
    return false;
}

bool
FaultyVfs::writeFile(const std::string& path,
                     const std::vector<std::uint8_t>& bytes)
{
    switch (classifyMutation(/*is_write=*/true)) {
        case Verdict::kPass:
            return base_->writeFile(path, bytes);
        case Verdict::kTornWrite: {
            const std::size_t cut =
                bytes.empty()
                    ? 0
                    : static_cast<std::size_t>(draw() % bytes.size());
            // The truncating open happened before the crash: the file
            // holds only the prefix.
            base_->writeFile(path, std::vector<std::uint8_t>(
                                       bytes.begin(),
                                       bytes.begin() +
                                           static_cast<std::ptrdiff_t>(
                                               cut)));
            return false;
        }
        case Verdict::kFlip: {
            std::vector<std::uint8_t> flipped = bytes;
            if (!flipped.empty()) {
                const std::uint64_t bit = draw() % (flipped.size() * 8);
                flipped[bit / 8] ^=
                    static_cast<std::uint8_t>(1u << (bit % 8));
            }
            return base_->writeFile(path, flipped);
        }
        case Verdict::kDropOp:
        case Verdict::kFail:
            return false;
    }
    return false;
}

bool
FaultyVfs::renameFile(const std::string& from, const std::string& to)
{
    switch (classifyMutation(/*is_write=*/false)) {
        case Verdict::kPass:
        case Verdict::kFlip:
            return base_->renameFile(from, to);
        default:
            return false;  // rename(2) is atomic: it happened or not.
    }
}

bool
FaultyVfs::removeFile(const std::string& path)
{
    switch (classifyMutation(/*is_write=*/false)) {
        case Verdict::kPass:
        case Verdict::kFlip:
            return base_->removeFile(path);
        default:
            return false;
    }
}

bool
FaultyVfs::truncateFile(const std::string& path, std::int64_t size)
{
    switch (classifyMutation(/*is_write=*/false)) {
        case Verdict::kPass:
        case Verdict::kFlip:
            return base_->truncateFile(path, size);
        default:
            return false;
    }
}

bool
FaultyVfs::syncFile(const std::string& path)
{
    switch (classifyMutation(/*is_write=*/false)) {
        case Verdict::kPass:
        case Verdict::kFlip:
            return base_->syncFile(path);
        default:
            return false;
    }
}

bool
FaultyVfs::createDirectories(const std::string& dir)
{
    switch (classifyMutation(/*is_write=*/false)) {
        case Verdict::kPass:
        case Verdict::kFlip:
            return base_->createDirectories(dir);
        default:
            return false;
    }
}

std::unique_ptr<persist::VfsLock>
FaultyVfs::tryLockExclusive(const std::string& path)
{
    if (dead_ || options_.fail_lock)
        return nullptr;
    return base_->tryLockExclusive(path);
}

}  // namespace veal::fault
