#ifndef VEAL_FAULT_CAMPAIGN_H_
#define VEAL_FAULT_CAMPAIGN_H_

/**
 * @file
 * The fault-injection campaign driver behind tools/veal-faultsim.
 *
 * One campaign samples a stream of FaultPlans from a seed, runs each plan
 * through the hardened VM on a benchmark application, and checks two
 * invariants per plan:
 *
 *  - Architectural fidelity: every translation the hardened VM dispatches
 *    executes bit-identically to the reference interpreter, no matter
 *    what the plan injected.  Faults may only cost cycles, never results.
 *  - Taxonomy closure: every injected fault lands in exactly one recovery
 *    counter (a cache-corruption fire is one checksum invalidation; any
 *    pipeline fire forces the site off the nominal rung).
 *
 * Determinism contract (same as the fuzz driver): every case is a pure
 * function of (campaign seed, plan index), and results reduce in index
 * order, so render() is byte-identical for any thread count.
 */

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "veal/fault/fault_plan.h"
#include "veal/vm/translator.h"

namespace veal {

namespace metrics {
class Registry;
}  // namespace metrics

/** Campaign parameters (mirrors the veal-faultsim CLI). */
struct FaultCampaignOptions {
    int plans = 200;
    int threads = 1;
    std::uint64_t seed = 1;

    /**
     * Plans dispatched per worker block: each block shares one batch
     * simulator, and every case's differential interpretations ride one
     * data-parallel interpretBatch() call.  Purely a throughput knob --
     * the report is byte-identical for any width (same contract as the
     * fuzz driver's --batch).
     */
    int batch = 64;

    /** Benchmark names to rotate over; empty = the whole media suite. */
    std::vector<std::string> apps;

    TranslationMode mode = TranslationMode::kFullyDynamic;

    /** Trip count for the differential interpreter check. */
    std::int64_t iterations = 12;

    /**
     * Per-site invocation clamp applied to the benchmark applications
     * (the dispatch simulation is per-invocation; the suite's calibrated
     * counts are far larger than fault coverage needs).  <= 0 = no clamp.
     */
    std::int64_t max_invocations = 32;

    /** Small cache so eviction interacts with quarantine state. */
    int code_cache_entries = 4;
};

/** Everything one plan's run concluded. */
struct FaultCaseResult {
    int plan_index = 0;
    std::uint64_t plan_seed = 0;
    std::string app_name;
    std::string plan_text;

    /** Deepest degradation rung any site needed, by name. */
    std::string deepest_rung;

    /** Injector taxonomy counters, by FaultSite index. */
    std::array<std::int64_t, kNumFaultSites> fired{};

    std::int64_t invalidations = 0;
    std::int64_t retranslations = 0;
    std::int64_t quarantines = 0;
    std::int64_t la_dispatches = 0;
    std::int64_t cpu_dispatches = 0;

    /** Dispatched translations differentially executed / skipped
        (skips = loops outside the functional executor's stream-base
        subset; reported, never silent). */
    std::int64_t differential_checks = 0;
    std::int64_t differential_skips = 0;

    /** Accelerator result differed from the interpreter (a VEAL bug). */
    bool diverged = false;
    std::string divergence_detail;

    /** A fired fault escaped the recovery taxonomy (a VEAL bug). */
    bool taxonomy_ok = true;
    std::string taxonomy_detail;
};

/** Aggregated campaign results. */
struct FaultCampaignSummary {
    int total_plans = 0;
    std::uint64_t seed = 0;

    /** Deepest-rung name -> number of plans that ended there. */
    std::map<std::string, std::int64_t> rung_counts;

    std::array<std::int64_t, kNumFaultSites> fired{};
    std::int64_t invalidations = 0;
    std::int64_t retranslations = 0;
    std::int64_t quarantines = 0;
    std::int64_t la_dispatches = 0;
    std::int64_t cpu_dispatches = 0;
    std::int64_t differential_checks = 0;
    std::int64_t differential_skips = 0;

    /** Failing cases, in plan-index order. */
    std::vector<FaultCaseResult> divergences;
    std::vector<FaultCaseResult> taxonomy_violations;

    bool
    clean() const
    {
        return divergences.empty() && taxonomy_violations.empty();
    }

    /** Deterministic text report (identical for any thread count). */
    std::string render() const;
};

/**
 * Derive plan @p plan_index of campaign @p campaign_seed.  Exposed so a
 * single plan can be replayed outside the driver.
 */
FaultPlan makeCampaignPlan(std::uint64_t campaign_seed, int plan_index);

/**
 * Run a campaign.  Creates its own pool of @p options.threads workers.
 *
 * When @p registry is non-null the campaign reports into it during the
 * index-ordered reduction ("fault.plans", "fault.rung.*", "fault.fired.*",
 * recovery counters, and one trace event per failure), so the snapshot is
 * byte-identical for any options.threads.
 */
FaultCampaignSummary runFaultCampaign(const FaultCampaignOptions& options,
                                      metrics::Registry* registry =
                                          nullptr);

}  // namespace veal

#endif  // VEAL_FAULT_CAMPAIGN_H_
