#include "veal/fault/persist_campaign.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "veal/service/service.h"
#include "veal/service/trace.h"
#include "veal/support/metrics/metrics.h"
#include "veal/support/thread_pool.h"
#include "veal/vm/persist/store.h"

namespace veal {

namespace fs = std::filesystem;

namespace {

using fault::FaultyVfs;
using fault::FaultyVfsOptions;
using fault::VfsFaultMode;

// --- Shared plumbing ------------------------------------------------

std::vector<VfsFaultMode>
allModes()
{
    return {VfsFaultMode::kCrash, VfsFaultMode::kShortWrite,
            VfsFaultMode::kBitFlip, VfsFaultMode::kEnospc};
}

/**
 * Store sizing shared by every phase: tiny segments so even the small
 * campaign workloads rotate, seal, and compact -- the crash points
 * must cover the compactor, not just the append path.
 */
persist::StoreOptions
campaignStoreOptions(std::shared_ptr<persist::Vfs> vfs)
{
    persist::StoreOptions store;
    store.max_entries = 256;
    store.segment_bytes = 1024;
    store.compact_garbage_percent = 40;
    store.vfs = std::move(vfs);
    return store;
}

// --- The service workload -------------------------------------------

ServiceTrace
campaignTrace(const PersistCampaignOptions& options)
{
    TraceGenOptions gen;
    gen.seed = options.seed;
    gen.tenants = std::max(1, options.tenants);
    gen.requests = std::max(1, options.requests);
    gen.loop_pool = std::max(1, options.loop_pool);
    gen.tick_size = std::max(1, options.tick_size);
    gen.iterations = options.iterations;
    return generateTrace(gen);
}

ServiceOptions
campaignServiceOptions(const std::string& dir,
                       std::shared_ptr<persist::Vfs> vfs)
{
    ServiceOptions options;
    options.shards = 1;
    options.threads = 1;  // The campaign parallelizes across points.
    options.batch = 8;
    options.queue_depth = 64;
    options.tenant_quota = 64;
    options.cache_dir = dir;
    options.store = campaignStoreOptions(std::move(vfs));
    return options;
}

struct ServiceRunResult {
    std::string report;
    std::int64_t acked_saves = 0;
    bool degraded = false;
};

ServiceRunResult
runServiceOnce(const PersistCampaignOptions& options,
               const std::string& dir,
               std::shared_ptr<persist::Vfs> vfs)
{
    const ServiceTrace trace = campaignTrace(options);
    TranslationService service(campaignServiceOptions(dir, vfs));
    ServiceRunResult result;
    result.report = service.run(trace).render();
    const auto* store = service.persistentStore();
    result.acked_saves = store->stats().saves;
    result.degraded = store->readOnly();
    return result;
}

// --- The churn workload ---------------------------------------------

/** One scripted store-level operation. */
struct ChurnOp {
    enum class Kind : int {
        kSave = 0,
        kInvalidate,
        kLoad,
        kFlush,
        kCompact,
    };
    Kind kind = Kind::kSave;
    int key = 0;
    std::uint32_t salt = 0;
};

persist::PersistedImage
churnImage(int key, std::uint32_t salt)
{
    persist::PersistedImage image;
    std::ostringstream os;
    os << "churn-key-" << key;
    image.key = os.str();
    image.summary.ok = true;
    image.summary.ii = 1 + static_cast<std::int32_t>(salt % 3);
    image.summary.stage_count = 1;
    image.summary.length = 2;
    image.summary.fu_units = 2;
    image.summary.load_strides = {4};
    // Enough words that a handful of saves overflows a 1 KiB segment.
    image.image_words.assign(24, 0);
    for (std::uint32_t i = 0; i < 24; ++i)
        image.image_words[i] =
            0x10000u + static_cast<std::uint32_t>(key) * 97u + salt + i;
    return image;
}

/**
 * The scripted op sequence: saves, reuse, re-saves (garbage), explicit
 * invalidations, compaction, and flushes, exercising every record type
 * the manifest log has.  Pure function of nothing -- the interesting
 * axis is where the crash lands, not script randomness.
 */
std::vector<ChurnOp>
churnScript()
{
    using Kind = ChurnOp::Kind;
    std::vector<ChurnOp> ops;
    for (int k = 0; k < 10; ++k)
        ops.push_back({Kind::kSave, k, 0});
    for (int k = 0; k < 10; k += 2)
        ops.push_back({Kind::kLoad, k, 0});
    for (int k = 0; k < 10; k += 2)
        ops.push_back({Kind::kSave, k, 1});  // Re-save: old is garbage.
    ops.push_back({Kind::kInvalidate, 1, 0});
    ops.push_back({Kind::kInvalidate, 3, 0});
    ops.push_back({Kind::kCompact, 0, 0});
    for (int k = 10; k < 14; ++k)
        ops.push_back({Kind::kSave, k, 0});
    ops.push_back({Kind::kFlush, 0, 0});
    for (int k = 0; k < 6; ++k)
        ops.push_back({Kind::kSave, k, 2});
    ops.push_back({Kind::kInvalidate, 5, 0});
    ops.push_back({Kind::kCompact, 0, 0});
    for (int k = 14; k < 18; ++k)
        ops.push_back({Kind::kSave, k, 0});
    return ops;
}

/** What the harness knows the disk must hold after a crash. */
struct ChurnModel {
    /** key -> last *acked* encoded blob. */
    std::map<std::string, std::vector<std::uint8_t>> acked;

    /** key -> every encoding ever acked (the bit-flip tolerance set). */
    std::map<std::string, std::vector<std::vector<std::uint8_t>>> history;

    bool degraded = false;
};

/**
 * Run the script over @p vfs.  Ops simply stop acking once the store
 * degrades -- exactly like the service, nothing throws.
 */
ChurnModel
runChurn(const std::string& dir, std::shared_ptr<persist::Vfs> vfs)
{
    ChurnModel model;
    persist::PersistentStore store(dir, campaignStoreOptions(vfs));
    for (const ChurnOp& op : churnScript()) {
        switch (op.kind) {
            case ChurnOp::Kind::kSave: {
                const auto image = churnImage(op.key, op.salt);
                if (store.save(image)) {
                    auto blob = persist::encodeBlob(image);
                    model.history[image.key].push_back(blob);
                    model.acked[image.key] = std::move(blob);
                }
                break;
            }
            case ChurnOp::Kind::kInvalidate: {
                const auto image = churnImage(op.key, 0);
                // invalidate() returning true only means "was
                // resident".  The removal is acked only if the commit
                // append landed -- and a failed append always degrades
                // the store, so still-writable-after is the ack.
                const bool removed = store.invalidate(image.key);
                if (removed && !store.readOnly())
                    model.acked.erase(image.key);
                break;
            }
            case ChurnOp::Kind::kLoad:
                store.load(churnImage(op.key, 0).key);
                break;
            case ChurnOp::Kind::kFlush:
                store.flush();
                break;
            case ChurnOp::Kind::kCompact:
                store.compactNow();
                break;
        }
    }
    model.degraded = store.readOnly();
    return model;
}

// --- Point verification ---------------------------------------------

struct PointResult {
    bool ok = true;
    bool degraded = false;
    std::string detail;
};

void
fail(PointResult& result, const std::string& detail)
{
    if (result.ok) {
        result.ok = false;
        result.detail = detail;
    }
}

PointResult
runServicePoint(const PersistCampaignOptions& options,
                const std::string& dir, VfsFaultMode mode,
                std::int64_t trigger, const std::string& baseline)
{
    PointResult result;

    // Faulted cold run: must complete (degrade, never crash).
    {
        FaultyVfsOptions fault;
        fault.mode = mode;
        fault.trigger_op = trigger;
        fault.seed = options.seed;
        const auto faulty = std::make_shared<FaultyVfs>(
            persist::realVfs(), fault);
        const ServiceRunResult run = runServiceOnce(options, dir, faulty);
        result.degraded = run.degraded;
    }

    // Clean reopen: recovery must succeed with zero corruption (a pure
    // crash/failed-write never flips committed bytes; bit flips are
    // the deliberate exception and surface as counted corruption).
    {
        persist::PersistentStore store(
            dir, campaignStoreOptions(persist::realVfs()));
        if (mode != VfsFaultMode::kBitFlip &&
            store.stats().corrupt + store.stats().version_skew > 0) {
            std::ostringstream os;
            os << "reopen after " << toString(mode) << "@" << trigger
               << " counted " << store.stats().corrupt
               << " corrupt records";
            fail(result, os.str());
        }
        // Every surviving key must serve cleanly -- except after a bit
        // flip, where the right outcome for a poisoned record is a
        // *counted* drop (the caller re-translates), never a crash.
        std::int64_t failed_loads = 0;
        for (const std::string& key : store.keys()) {
            if (!store.load(key).has_value())
                ++failed_loads;
        }
        if (mode == VfsFaultMode::kBitFlip) {
            if (failed_loads > store.stats().corrupt +
                                   store.stats().version_skew)
                fail(result, "bit-flip load misses exceed counted "
                             "corruption");
        } else if (failed_loads > 0) {
            fail(result, "recovered key failed to load");
        }
    }

    // Warm repair run, then the acid test: a second warm run renders
    // the uncrashed baseline byte-for-byte.
    runServiceOnce(options, dir, persist::realVfs());
    const ServiceRunResult verify =
        runServiceOnce(options, dir, persist::realVfs());
    if (verify.report != baseline)
        fail(result, "post-repair warm report diverged from baseline");
    return result;
}

PointResult
runChurnPoint(const PersistCampaignOptions& options,
              const std::string& dir, VfsFaultMode mode,
              std::int64_t trigger)
{
    PointResult result;

    FaultyVfsOptions fault;
    fault.mode = mode;
    fault.trigger_op = trigger;
    fault.seed = options.seed;
    const auto faulty =
        std::make_shared<FaultyVfs>(persist::realVfs(), fault);
    const ChurnModel model = runChurn(dir, faulty);
    result.degraded = model.degraded;

    persist::PersistentStore store(
        dir, campaignStoreOptions(persist::realVfs()));

    if (mode == VfsFaultMode::kBitFlip) {
        // Silent corruption: the store may serve an *older acked*
        // value (a flipped manifest tail) or drop the record as
        // corrupt -- but must never serve bytes that were never acked.
        for (const std::string& key : store.keys()) {
            const auto loaded = store.load(key);
            if (!loaded.has_value())
                continue;  // Dropped as corrupt: counted, legitimate.
            const auto served = persist::encodeBlob(*loaded);
            const auto it = model.history.find(key);
            const bool known =
                it != model.history.end() &&
                std::find(it->second.begin(), it->second.end(),
                          served) != it->second.end();
            if (!known) {
                fail(result, "bit-flip served never-acked bytes: " + key);
                break;
            }
        }
        return result;
    }

    // Crash / short-write / ENOSPC: recovery must be *exact*.  Every
    // acked save is present with its last acked bytes; everything
    // unacked is cleanly absent.
    const std::vector<std::string> recovered = store.keys();
    for (const auto& [key, blob] : model.acked) {
        if (!store.contains(key)) {
            fail(result, "acked key lost: " + key);
            break;
        }
        const auto loaded = store.load(key);
        if (!loaded.has_value()) {
            fail(result, "acked key failed to load: " + key);
            break;
        }
        if (persist::encodeBlob(*loaded) != blob) {
            fail(result, "acked key served stale/wrong bytes: " + key);
            break;
        }
    }
    for (const std::string& key : recovered) {
        if (model.acked.count(key) == 0) {
            fail(result, "unacked key resurrected: " + key);
            break;
        }
    }
    if (store.stats().corrupt + store.stats().version_skew > 0)
        fail(result, "recovery counted corruption after a pure crash");

    // The recovered store must be fully writable again (the failure
    // was the fake process's, not the directory's).
    if (!store.save(churnImage(99, 7)))
        fail(result, "recovered store refused a save");
    return result;
}

// --- Multi-process degradation --------------------------------------

std::pair<bool, std::string>
runMultiprocessCheck(const std::string& dir)
{
    using persist::PersistentStore;
    const auto vfs = persist::realVfs();

    auto writer = std::make_unique<PersistentStore>(
        dir, campaignStoreOptions(vfs));
    for (int k = 0; k < 3; ++k)
        if (!writer->save(churnImage(k, 0)))
            return {false, "writer save failed"};
    writer->flush();

    {
        PersistentStore reader(dir, campaignStoreOptions(vfs));
        if (!reader.readOnly())
            return {false, "second store on a locked dir was writable"};
        if (reader.stats().readonly != 1)
            return {false, "read-only degradation not counted"};
        if (reader.size() != 3)
            return {false, "read-only tier missed persisted entries"};
        if (!reader.load(churnImage(1, 0).key).has_value())
            return {false, "read-only tier failed to serve a hit"};
        if (reader.save(churnImage(9, 0)))
            return {false, "read-only tier acked a save"};
        if (reader.stats().readonly_skips < 1)
            return {false, "skipped persist not counted"};
    }

    // The writer must be untouched by the reader's visit...
    if (writer->size() != 3 || writer->readOnly())
        return {false, "reader disturbed the writer"};
    if (!writer->save(churnImage(3, 0)))
        return {false, "writer lost writability"};

    // ...and closing the writer releases the directory.
    const std::int64_t final_size = writer->size();
    writer.reset();
    PersistentStore reopened(dir, campaignStoreOptions(vfs));
    if (reopened.readOnly())
        return {false, "lock not released on close"};
    if (reopened.size() != final_size)
        return {false, "state lost across writer handoff"};
    return {true, "ok"};
}

// --- Enumeration ----------------------------------------------------

struct Point {
    std::string workload;
    VfsFaultMode mode = VfsFaultMode::kCrash;
    std::int64_t trigger = 0;
};

}  // namespace

std::string
PersistCampaignSummary::render() const
{
    std::ostringstream os;
    os << "veal-persist-campaign seed=" << seed << "\n";
    os << "service mutation-ops " << service_mutation_ops << "\n";
    os << "churn mutation-ops " << churn_mutation_ops << "\n";
    os << "points " << points << "\n";
    for (const auto& [mode, count] : points_by_mode)
        os << "mode " << mode << " " << count << "\n";
    os << "degraded-runs " << degraded_runs << "\n";
    os << "multiprocess " << (multiprocess_ok ? "ok" : "FAIL") << " "
       << multiprocess_detail << "\n";
    os << "violations " << violations.size() << "\n";
    for (const auto& violation : violations) {
        os << "  " << violation.workload << " "
           << toString(violation.mode) << "@" << violation.trigger_op
           << ": " << violation.detail << "\n";
    }
    os << "VERDICT: " << (clean() ? "CLEAN" : "VIOLATIONS") << "\n";
    return os.str();
}

PersistCampaignSummary
runPersistCampaign(const PersistCampaignOptions& options,
                   metrics::Registry* registry)
{
    PersistCampaignSummary summary;
    summary.seed = options.seed;

    fs::path scratch = options.scratch_dir.empty()
                           ? fs::temp_directory_path() /
                                 ("veal-persist-campaign-" +
                                  std::to_string(options.seed))
                           : fs::path(options.scratch_dir);
    std::error_code ec;
    fs::remove_all(scratch, ec);
    fs::create_directories(scratch, ec);

    // Counting passes: learn each workload's crash-point space, and
    // capture the uncrashed warm baseline the service points compare
    // against.
    std::string baseline;
    {
        const auto counter = std::make_shared<FaultyVfs>(
            persist::realVfs(), FaultyVfsOptions{});
        const std::string dir = (scratch / "service-baseline").string();
        runServiceOnce(options, dir, counter);
        summary.service_mutation_ops = counter->mutationOps();
        baseline = runServiceOnce(options, dir, persist::realVfs()).report;
    }
    {
        const auto counter = std::make_shared<FaultyVfs>(
            persist::realVfs(), FaultyVfsOptions{});
        const std::string dir = (scratch / "churn-baseline").string();
        runChurn(dir, counter);
        summary.churn_mutation_ops = counter->mutationOps();
    }

    const std::vector<VfsFaultMode> modes =
        options.modes.empty() ? allModes() : options.modes;
    std::vector<Point> points;
    for (const VfsFaultMode mode : modes) {
        for (std::int64_t n = 0; n < summary.service_mutation_ops; ++n)
            points.push_back({"service", mode, n});
        for (std::int64_t n = 0; n < summary.churn_mutation_ops; ++n)
            points.push_back({"churn", mode, n});
    }

    ThreadPool pool(std::max(1, options.threads));
    const std::vector<PointResult> results = parallelMap(
        pool, points, [&](const Point& point, int index) {
            std::ostringstream os;
            os << "p" << index;
            const std::string dir = (scratch / os.str()).string();
            if (point.workload == "service")
                return runServicePoint(options, dir, point.mode,
                                       point.trigger, baseline);
            return runChurnPoint(options, dir, point.mode,
                                 point.trigger);
        });

    // Point-ordered reduction: counters and violations are identical
    // for any thread count.
    summary.points = static_cast<std::int64_t>(points.size());
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point& point = points[i];
        const PointResult& result = results[i];
        ++summary.points_by_mode[toString(point.mode)];
        if (result.degraded)
            ++summary.degraded_runs;
        if (!result.ok) {
            PersistCrashPoint violation;
            violation.workload = point.workload;
            violation.mode = point.mode;
            violation.trigger_op = point.trigger;
            violation.ok = false;
            violation.detail = result.detail;
            summary.violations.push_back(std::move(violation));
        }
    }

    const auto multiprocess =
        runMultiprocessCheck((scratch / "multiprocess").string());
    summary.multiprocess_ok = multiprocess.first;
    summary.multiprocess_detail = multiprocess.second;

    if (registry != nullptr) {
        registry->add("persist_campaign.points", summary.points);
        registry->add("persist_campaign.violations",
                      static_cast<std::int64_t>(
                          summary.violations.size()));
        registry->add("persist_campaign.degraded_runs",
                      summary.degraded_runs);
        registry->add("persist_campaign.multiprocess_ok",
                      summary.multiprocess_ok ? 1 : 0);
        for (const auto& violation : summary.violations)
            registry->trace("persist_campaign",
                            violation.workload + "/" +
                                toString(violation.mode),
                            violation.detail, violation.trigger_op);
    }

    fs::remove_all(scratch, ec);
    return summary;
}

}  // namespace veal
