#ifndef VEAL_FAULT_FAULTY_VFS_H_
#define VEAL_FAULT_FAULTY_VFS_H_

/**
 * @file
 * Crash-point injection under the persistent store's Vfs seam.
 *
 * FaultyVfs wraps a real Vfs and counts *mutating* operations (append,
 * writeFile, rename, remove, truncate, sync, mkdir).  At the Nth
 * mutation it injects one of four storage faults:
 *
 *  - kCrash: the process "dies" mid-operation.  The triggering write
 *    lands only a deterministic prefix (torn tail), a triggering
 *    rename/remove/truncate does not happen at all, and every later
 *    call -- reads included -- fails.  This is kill -9: the store
 *    degrades to read-only for the rest of its (doomed) life, and the
 *    interesting assertion happens on the next clean open.
 *  - kShortWrite: the triggering write lands a prefix and reports
 *    failure; later operations succeed.  Models a transient full/
 *    interrupted write the store must survive in-line.
 *  - kBitFlip: one deterministic bit of the triggering write's buffer
 *    flips; the write "succeeds".  Models silent media corruption --
 *    nothing fails until a checksum catches it.
 *  - kEnospc: the triggering mutation and every later one fail cleanly
 *    with nothing written; reads keep working.  Models a full disk.
 *
 * All draws (cut points, bit positions) are pure functions of
 * (seed, trigger_op), so a campaign run is exactly reproducible.
 *
 * The campaign counts a workload's mutations with trigger_op = -1
 * (pass-through), then replays the workload once per crash point.
 */

#include <cstdint>
#include <memory>

#include "veal/vm/persist/vfs.h"

namespace veal::fault {

/** Which storage fault fires at the trigger op. */
enum class VfsFaultMode : int {
    kCrash = 0,
    kShortWrite,
    kBitFlip,
    kEnospc,
};

/** Mode name, e.g. "short-write". */
const char* toString(VfsFaultMode mode);

struct FaultyVfsOptions {
    VfsFaultMode mode = VfsFaultMode::kCrash;

    /** Mutation index (0-based) at which the fault fires; -1 = never. */
    std::int64_t trigger_op = -1;

    /** Seeds the cut-point / bit-position draws. */
    std::uint64_t seed = 1;

    /** Refuse tryLockExclusive (simulates losing the flock race). */
    bool fail_lock = false;
};

/** The fault-injecting Vfs decorator; see file doc. */
class FaultyVfs : public persist::Vfs {
  public:
    FaultyVfs(std::shared_ptr<persist::Vfs> base,
              FaultyVfsOptions options);

    /** Mutations attempted so far (the crash-point space). */
    std::int64_t mutationOps() const { return mutation_ops_; }

    /** True once a kCrash trigger fired. */
    bool died() const { return dead_; }

    /** True once the trigger op (any mode) fired. */
    bool fired() const { return fired_; }

    std::optional<std::vector<std::uint8_t>> readFile(
        const std::string& path) override;
    std::optional<std::vector<std::uint8_t>> readRange(
        const std::string& path, std::int64_t offset,
        std::int64_t size) override;
    bool exists(const std::string& path) override;
    std::optional<std::int64_t> fileSize(const std::string& path) override;
    std::vector<std::string> listDir(const std::string& dir) override;
    bool append(const std::string& path,
                const std::vector<std::uint8_t>& bytes) override;
    bool writeFile(const std::string& path,
                   const std::vector<std::uint8_t>& bytes) override;
    bool renameFile(const std::string& from,
                    const std::string& to) override;
    bool removeFile(const std::string& path) override;
    bool truncateFile(const std::string& path, std::int64_t size) override;
    bool syncFile(const std::string& path) override;
    bool createDirectories(const std::string& dir) override;
    std::unique_ptr<persist::VfsLock> tryLockExclusive(
        const std::string& path) override;

  private:
    /** What a mutation should do at this point in the fault's life. */
    enum class Verdict : int {
        kPass = 0,   ///< Run the real operation.
        kTornWrite,  ///< Write a prefix; crash (kCrash) or fail once.
        kFlip,       ///< Flip a bit, run the operation, report success.
        kDropOp,     ///< Do nothing; crash (kCrash) or fail.
        kFail,       ///< Do nothing, report failure (dead / ENOSPC).
    };
    Verdict classifyMutation(bool is_write);

    /** Deterministic draw for the trigger op. */
    std::uint64_t draw() const;

    std::shared_ptr<persist::Vfs> base_;
    FaultyVfsOptions options_;
    std::int64_t mutation_ops_ = 0;
    bool fired_ = false;
    bool dead_ = false;
    bool enospc_ = false;
};

}  // namespace veal::fault

#endif  // VEAL_FAULT_FAULTY_VFS_H_
