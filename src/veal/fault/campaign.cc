#include "veal/fault/campaign.h"

#include <algorithm>
#include <iomanip>
#include <numeric>
#include <sstream>
#include <utility>

#include "veal/fault/fault_injector.h"
#include "veal/fuzz/oracle.h"
#include "veal/sim/batch.h"
#include "veal/sim/interpreter.h"
#include "veal/sim/la_executor.h"
#include "veal/support/assert.h"
#include "veal/support/logging.h"
#include "veal/support/metrics/metrics.h"
#include "veal/support/thread_pool.h"
#include "veal/vm/vm.h"
#include "veal/workloads/suite.h"

namespace veal {

FaultPlan
makeCampaignPlan(std::uint64_t campaign_seed, int plan_index)
{
    return FaultPlan::sample(campaign_seed * 0x9e3779b97f4a7c15ull +
                             static_cast<std::uint64_t>(plan_index) *
                                 0xbf58476d1ce4e5b9ull +
                             0xfa11ca3ull);
}

namespace {

Application
clampInvocations(Application app, std::int64_t cap)
{
    if (cap > 0) {
        for (auto& site : app.sites)
            site.invocations = std::min(site.invocations, cap);
    }
    return app;
}

/**
 * True when the functional LA executor can model @p loop: every stream
 * base symbol must be a live-in or an induction variable (anything else
 * panics in executeOnAccelerator by design).  Pieces outside this subset
 * are *counted* as skipped in the report -- never silently dropped.
 */
bool
functionallyExecutable(const Loop& loop, const LoopAnalysis& analysis)
{
    const auto symbols_ok =
        [&](const std::vector<StreamDescriptor>& streams) {
            for (const auto& stream : streams) {
                for (const auto& term : stream.base_terms) {
                    const Operation& op = loop.op(term.first);
                    if (op.opcode != Opcode::kLiveIn && !op.is_induction)
                        return false;
                }
            }
            return true;
        };
    return symbols_ok(analysis.load_streams) &&
           symbols_ok(analysis.store_streams);
}

/** Coarse first difference; the gate only needs exact/not-exact. */
std::string
diffResults(const ExecutionResult& reference,
            const ExecutionResult& accelerated)
{
    if (reference.live_outs != accelerated.live_outs)
        return "live-outs differ from the interpreter";
    if (reference.memory != accelerated.memory)
        return "memory image differs from the interpreter";
    return {};
}

FaultCaseResult
runOneCase(int plan_index, const FaultCampaignOptions& options,
           const std::vector<std::pair<std::string, Application>>& apps,
           const VirtualMachine& vm, BatchSimulator& simulator)
{
    FaultCaseResult result;
    result.plan_index = plan_index;
    const FaultPlan plan = makeCampaignPlan(options.seed, plan_index);
    result.plan_seed = plan.seed;
    result.plan_text = plan.describe();
    const auto& [app_name, app] =
        apps[static_cast<std::size_t>(plan_index) % apps.size()];
    result.app_name = app_name;

    FaultInjector injector(plan);
    FaultRunReport report;
    ScopedPanicGuard guard;
    try {
        (void)vm.run(app, nullptr, &injector, &report);
    } catch (const PanicError& panic) {
        result.diverged = true;
        result.divergence_detail =
            std::string("hardened run panic: ") + panic.what();
        return result;
    }

    for (int s = 0; s < kNumFaultSites; ++s) {
        result.fired[static_cast<std::size_t>(s)] =
            injector.fired(static_cast<FaultSite>(s));
    }
    result.invalidations = report.checksum_invalidations;
    result.retranslations = report.retranslations;
    result.quarantines = report.quarantines;
    result.la_dispatches = report.la_dispatches;
    result.cpu_dispatches = report.cpu_dispatches;

    DegradationRung deepest = DegradationRung::kNominal;
    std::int64_t register_retries = 0;
    for (const auto& site : report.sites) {
        deepest = std::max(deepest, site.rung);
        for (const auto& piece : site.pieces)
            register_retries += piece.translation.register_retries;
    }
    result.deepest_rung = toString(deepest);

    // Invariant 1: architectural fidelity.  Every translation the
    // hardened VM actually dispatches must execute bit-identically to
    // the reference interpreter, whatever the plan injected.
    //
    // All reference interpretations run upfront through one
    // data-parallel interpretBatch() call (the interpreter is pure, so
    // interpreting pieces past a divergence is unobservable); the diff
    // walk below then revisits the pieces in dispatch order, keeping the
    // first-divergence early return and the skip/check counting exactly
    // as a piece-at-a-time walk would produce them.
    struct Differential {
        const Loop* loop = nullptr;
        ExecutionInput input;
        ExecutionResult reference;
        bool batched = false;
    };
    std::vector<Differential> differentials;
    for (const auto& site : report.sites) {
        for (const auto& piece : site.pieces) {
            if (piece.loop == nullptr || !piece.translation.ok ||
                !functionallyExecutable(*piece.loop,
                                        piece.translation.analysis))
                continue;
            Differential d;
            d.loop = piece.loop;
            d.input = makeFuzzInput(*piece.loop, plan.seed,
                                    options.iterations);
            differentials.push_back(std::move(d));
        }
    }
    std::vector<InterpretRequest> lanes;
    std::vector<std::size_t> lane_owner;
    for (std::size_t i = 0; i < differentials.size(); ++i) {
        if (interpretable(*differentials[i].loop)) {
            lanes.push_back(
                {differentials[i].loop, &differentials[i].input});
            lane_owner.push_back(i);
        }
    }
    auto interpreted = simulator.interpretBatch(lanes);
    for (std::size_t k = 0; k < lane_owner.size(); ++k) {
        differentials[lane_owner[k]].reference =
            std::move(interpreted[k]);
        differentials[lane_owner[k]].batched = true;
    }

    std::size_t cursor = 0;  // Same enumeration order as the fill walk.
    for (const auto& site : report.sites) {
        for (const auto& piece : site.pieces) {
            if (piece.loop == nullptr || !piece.translation.ok)
                continue;
            if (!functionallyExecutable(*piece.loop,
                                        piece.translation.analysis)) {
                ++result.differential_skips;
                continue;
            }
            ++result.differential_checks;
            Differential& d = differentials[cursor++];
            try {
                if (!d.batched)
                    d.reference = interpretLoop(*piece.loop, d.input);
                const ExecutionResult accelerated = executeOnAccelerator(
                    *piece.loop, piece.translation, d.input);
                const std::string diff =
                    diffResults(d.reference, accelerated);
                if (!diff.empty()) {
                    result.diverged = true;
                    result.divergence_detail =
                        piece.loop->name() + ": " + diff;
                    return result;
                }
            } catch (const PanicError& panic) {
                result.diverged = true;
                result.divergence_detail = piece.loop->name() +
                                           ": execution panic: " +
                                           panic.what();
                return result;
            }
        }
    }

    // Invariant 2: taxonomy closure.  A cache-corruption fire is exactly
    // one checksum invalidation; any pipeline fire must show up as a
    // degradation rung (or, for register-allocation faults only, as the
    // translator's in-place larger-II retry).
    const std::int64_t corruption_fired = result.fired[static_cast<
        std::size_t>(FaultSite::kCacheCorruption)];
    if (corruption_fired != result.invalidations) {
        result.taxonomy_ok = false;
        std::ostringstream os;
        os << "cache-corruption fired " << corruption_fired
           << " times but caused " << result.invalidations
           << " invalidations";
        result.taxonomy_detail = os.str();
        return result;
    }
    const std::int64_t escalating_fired =
        result.fired[static_cast<std::size_t>(
            FaultSite::kSchedulerPlacement)] +
        result.fired[static_cast<std::size_t>(FaultSite::kCcaMapping)] +
        result.fired[static_cast<std::size_t>(
            FaultSite::kTranslationBudget)];
    const std::int64_t regalloc_fired = result.fired[static_cast<
        std::size_t>(FaultSite::kRegisterAllocation)];
    const bool degraded = deepest != DegradationRung::kNominal;
    if (escalating_fired > 0 && !degraded) {
        result.taxonomy_ok = false;
        result.taxonomy_detail =
            "pipeline fault fired but every site stayed nominal";
    } else if (regalloc_fired > 0 && !degraded && register_retries == 0) {
        result.taxonomy_ok = false;
        result.taxonomy_detail = "register-allocation fault fired but "
                                 "neither a rung nor a retry absorbed it";
    }
    return result;
}

}  // namespace

std::string
FaultCampaignSummary::render() const
{
    std::ostringstream os;
    os << "veal-faultsim: " << total_plans << " plans, seed " << seed
       << "\n";
    os << "  deepest rung reached:\n";
    for (const auto& [name, count] : rung_counts) {
        os << "    " << std::left << std::setw(12) << name << std::right
           << std::setw(10) << count << "\n";
    }
    os << "  faults fired:\n";
    for (int s = 0; s < kNumFaultSites; ++s) {
        os << "    " << std::left << std::setw(20)
           << toString(static_cast<FaultSite>(s)) << std::right
           << std::setw(10) << fired[static_cast<std::size_t>(s)] << "\n";
    }
    os << "  recovery: invalidations=" << invalidations
       << " retranslations=" << retranslations
       << " quarantines=" << quarantines << "\n";
    os << "  dispatch: la=" << la_dispatches << " cpu=" << cpu_dispatches
       << "\n";
    os << "  differential: checked=" << differential_checks
       << " skipped=" << differential_skips
       << " (outside the functional executor's stream subset)\n";
    os << "  divergences: " << divergences.size() << "\n";
    for (const auto& failure : divergences) {
        os << "    plan " << failure.plan_index << " (" << failure.app_name
           << "): " << failure.divergence_detail << "\n";
        os << "      " << failure.plan_text << "\n";
    }
    os << "  taxonomy violations: " << taxonomy_violations.size() << "\n";
    for (const auto& failure : taxonomy_violations) {
        os << "    plan " << failure.plan_index << " (" << failure.app_name
           << "): " << failure.taxonomy_detail << "\n";
        os << "      " << failure.plan_text << "\n";
    }
    os << "  verdict: "
       << (clean() ? "CLEAN" : "FAULT-RECOVERY BUGS DETECTED") << "\n";
    return os.str();
}

FaultCampaignSummary
runFaultCampaign(const FaultCampaignOptions& options,
                 metrics::Registry* registry)
{
    VEAL_ASSERT(options.plans >= 0, "negative plan count");

    std::vector<std::pair<std::string, Application>> apps;
    if (options.apps.empty()) {
        for (auto& benchmark : mediaFpSuite()) {
            apps.emplace_back(benchmark.name,
                              clampInvocations(
                                  std::move(benchmark.transformed),
                                  options.max_invocations));
        }
    } else {
        for (const auto& name : options.apps) {
            Benchmark benchmark = findBenchmark(name);
            apps.emplace_back(benchmark.name,
                              clampInvocations(
                                  std::move(benchmark.transformed),
                                  options.max_invocations));
        }
    }
    VEAL_ASSERT(!apps.empty(), "no applications to campaign over");

    VmOptions vm_options;
    vm_options.mode = options.mode;
    vm_options.code_cache_entries = options.code_cache_entries;
    const VirtualMachine vm(LaConfig::proposed(), CpuConfig::arm11(),
                            vm_options);

    // Workers take whole blocks of consecutive plan indices; each block
    // reuses one batch simulator so the differential interpretations of
    // every case ride the batch engine with warm arenas.  Block width
    // never affects results (each case is a pure function of its index).
    const int batch = std::max(1, options.batch);
    std::vector<std::pair<int, int>> blocks;  // [begin, end) indices.
    for (int begin = 0; begin < options.plans; begin += batch) {
        blocks.emplace_back(begin,
                            std::min(begin + batch, options.plans));
    }
    ThreadPool pool(options.threads);
    const auto block_results = parallelMap(
        pool, blocks, [&](const std::pair<int, int>& range) {
            BatchSimulator simulator;
            std::vector<FaultCaseResult> out;
            out.reserve(
                static_cast<std::size_t>(range.second - range.first));
            for (int plan_index = range.first; plan_index < range.second;
                 ++plan_index) {
                out.push_back(runOneCase(plan_index, options, apps, vm,
                                         simulator));
            }
            return out;
        });
    std::vector<FaultCaseResult> results;
    results.reserve(static_cast<std::size_t>(options.plans));
    for (const auto& block : block_results)
        results.insert(results.end(), block.begin(), block.end());

    // Index-ordered reduction: the summary (and any registry reporting)
    // is byte-identical for every thread count.
    FaultCampaignSummary summary;
    summary.total_plans = options.plans;
    summary.seed = options.seed;
    for (const auto& result : results) {
        summary.rung_counts[result.deepest_rung] += 1;
        for (int s = 0; s < kNumFaultSites; ++s) {
            summary.fired[static_cast<std::size_t>(s)] +=
                result.fired[static_cast<std::size_t>(s)];
        }
        summary.invalidations += result.invalidations;
        summary.retranslations += result.retranslations;
        summary.quarantines += result.quarantines;
        summary.la_dispatches += result.la_dispatches;
        summary.cpu_dispatches += result.cpu_dispatches;
        summary.differential_checks += result.differential_checks;
        summary.differential_skips += result.differential_skips;

        if (registry != nullptr) {
            registry->add("fault.plans");
            registry->add("fault.rung." + result.deepest_rung);
            for (int s = 0; s < kNumFaultSites; ++s) {
                const auto count =
                    result.fired[static_cast<std::size_t>(s)];
                if (count > 0) {
                    registry->add(std::string("fault.fired.") +
                                      toString(static_cast<FaultSite>(s)),
                                  count);
                }
            }
            if (result.invalidations > 0)
                registry->add("fault.invalidations", result.invalidations);
            if (result.retranslations > 0)
                registry->add("fault.retranslations",
                              result.retranslations);
            if (result.quarantines > 0)
                registry->add("fault.quarantines", result.quarantines);
        }

        if (result.diverged) {
            if (registry != nullptr) {
                registry->add("fault.divergences");
                registry->trace("fault/" + result.app_name, "divergence",
                                result.divergence_detail,
                                result.plan_index);
            }
            summary.divergences.push_back(result);
        }
        if (!result.taxonomy_ok) {
            if (registry != nullptr) {
                registry->add("fault.taxonomy_violations");
                registry->trace("fault/" + result.app_name, "taxonomy",
                                result.taxonomy_detail,
                                result.plan_index);
            }
            summary.taxonomy_violations.push_back(result);
        }
    }
    return summary;
}

}  // namespace veal
