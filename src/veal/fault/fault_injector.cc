#include "veal/fault/fault_injector.h"

#include "veal/support/metrics/metrics.h"

namespace veal {

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)),
      rng_(plan_.seed * 0x9e3779b97f4a7c15ull + 0xb17f11bull)
{}

bool
FaultInjector::probe(FaultSite site)
{
    const auto index = static_cast<std::size_t>(site);
    const std::int64_t occurrence = probes_[index]++;
    for (const auto& fault : plan_.faults) {
        if (fault.site != site || occurrence < fault.first_fire)
            continue;
        if (fault.fires < 0 ||
            occurrence < fault.first_fire + fault.fires) {
            ++fired_[index];
            return true;
        }
    }
    return false;
}

bool
FaultInjector::budgetExceeded(double spent_instructions, int relief)
{
    if (plan_.translation_budget < 0)
        return false;
    const double allowance = static_cast<double>(
        plan_.translation_budget << std::min(relief, 16));
    if (spent_instructions <= allowance)
        return false;
    ++fired_[static_cast<std::size_t>(FaultSite::kTranslationBudget)];
    return true;
}

std::size_t
FaultInjector::corruptionBit(std::size_t num_bits)
{
    if (num_bits == 0)
        return 0;
    return static_cast<std::size_t>(
        rng_.nextBelow(static_cast<std::uint64_t>(num_bits)));
}

std::int64_t
FaultInjector::fired(FaultSite site) const
{
    return fired_[static_cast<std::size_t>(site)];
}

std::int64_t
FaultInjector::probes(FaultSite site) const
{
    return probes_[static_cast<std::size_t>(site)];
}

std::int64_t
FaultInjector::totalFired() const
{
    std::int64_t total = 0;
    for (const auto count : fired_)
        total += count;
    return total;
}

void
FaultInjector::recordInto(metrics::Registry& registry,
                          const std::string& prefix) const
{
    for (int i = 0; i < kNumFaultSites; ++i) {
        const auto site = static_cast<FaultSite>(i);
        if (fired(site) != 0)
            registry.add(prefix + ".fired." + toString(site),
                         fired(site));
        if (probes(site) != 0)
            registry.add(prefix + ".probes." + toString(site),
                         probes(site));
    }
}

}  // namespace veal
