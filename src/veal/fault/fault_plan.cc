#include "veal/fault/fault_plan.h"

#include <sstream>

#include "veal/support/rng.h"

namespace veal {

const char*
toString(FaultSite site)
{
    switch (site) {
      case FaultSite::kSchedulerPlacement: return "scheduler-placement";
      case FaultSite::kRegisterAllocation: return "register-allocation";
      case FaultSite::kCcaMapping: return "cca-mapping";
      case FaultSite::kCacheCorruption: return "cache-corruption";
      case FaultSite::kTranslationBudget: return "translation-budget";
      case FaultSite::kCount: break;
    }
    return "unknown";
}

FaultPlan
FaultPlan::sample(std::uint64_t seed)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xfa017ull);
    FaultPlan plan;
    plan.seed = seed;

    const int armed = 1 + static_cast<int>(rng.nextBelow(3));
    for (int i = 0; i < armed; ++i) {
        const auto site = static_cast<FaultSite>(
            rng.nextBelow(static_cast<std::uint64_t>(kNumFaultSites)));
        if (site == FaultSite::kTranslationBudget) {
            // The budget is a scalar watchdog, not a probe window; one
            // armed budget is enough and re-draws tighten it.  The range
            // straddles real metered translation costs (~15k-150k
            // instructions for the benchmark suite), so some budgets
            // only bind until a relief rung doubles them away and others
            // exhaust every rung.
            const auto budget = static_cast<std::int64_t>(
                10000 + rng.nextBelow(190001));
            if (plan.translation_budget < 0 ||
                budget < plan.translation_budget) {
                plan.translation_budget = budget;
            }
            continue;
        }
        ArmedFault fault;
        fault.site = site;
        fault.first_fire = static_cast<std::int64_t>(rng.nextBelow(4));
        // 1-in-8 windows are sticky; the rest fire 1-4 times.
        fault.fires = rng.nextBelow(8) == 0
                          ? -1
                          : static_cast<std::int64_t>(
                                1 + rng.nextBelow(4));
        plan.faults.push_back(fault);
    }

    plan.quarantine_strikes = 2 + static_cast<int>(rng.nextBelow(2));
    plan.retranslation_bound =
        plan.quarantine_strikes - 1 + static_cast<int>(rng.nextBelow(2));
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    os << "plan seed=" << seed;
    for (const auto& fault : faults) {
        os << " " << toString(fault.site) << "@" << fault.first_fire;
        if (fault.fires < 0)
            os << "+sticky";
        else
            os << "x" << fault.fires;
    }
    if (translation_budget >= 0)
        os << " budget=" << translation_budget;
    os << " strikes=" << quarantine_strikes
       << " retrans=" << retranslation_bound;
    return os.str();
}

}  // namespace veal
