#ifndef VEAL_FAULT_PERSIST_CAMPAIGN_H_
#define VEAL_FAULT_PERSIST_CAMPAIGN_H_

/**
 * @file
 * The every-crash-point persistence campaign behind
 * `veal-faultsim --mode persist`.
 *
 * The campaign proves the store's recovery contract *exhaustively* for
 * a workload: first a counting pass runs the workload over a
 * pass-through FaultyVfs to learn its mutation-op count M, then the
 * workload replays once per (fault mode, trigger op) pair for every
 * trigger in [0, M).  Two workloads run:
 *
 *  - service: a deterministic veal-serve trace runs cold over the
 *    faulted store; after the fault, a clean reopen must succeed with
 *    zero corruption, a warm repair run must complete, and a second
 *    warm run must render a report byte-identical to the uncrashed
 *    warm baseline -- crash anywhere plus one repair pass equals
 *    never-crashed.
 *  - churn: a scripted store-level op sequence (saves, re-saves,
 *    invalidates, loads, compaction, flushes) tracked against a model
 *    of *acked* operations.  After a crash the reopened store must
 *    hold exactly the acked state: every acked save present with the
 *    last acked bytes, every unacked op cleanly absent.  (Bit flips
 *    are silent, so their check is weaker: served bytes must match
 *    *some* acked value -- never garbage -- and a repair pass must
 *    converge.)
 *
 * A final phase checks multi-process degradation: a second store on a
 * locked directory must open read-only, serve hits, skip persists, and
 * hand the directory back intact.
 *
 * Determinism contract (same as the fault campaign): every point is a
 * pure function of (seed, mode, trigger), results reduce in point
 * order, and render() is byte-identical for any --threads.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "veal/fault/faulty_vfs.h"

namespace veal {

namespace metrics {
class Registry;
}  // namespace metrics

/** Campaign parameters (mirrors the veal-faultsim CLI). */
struct PersistCampaignOptions {
    std::uint64_t seed = 1;
    int threads = 1;

    /** Service-workload trace shape (small: every point replays it). */
    int requests = 48;
    int tenants = 3;
    int loop_pool = 6;
    int tick_size = 12;
    std::int64_t iterations = 12;

    /**
     * Scratch root for the per-point store directories; empty uses
     * <system temp>/veal-persist-campaign-<seed>.  Wiped at start.
     */
    std::string scratch_dir;

    /** Fault modes to enumerate; empty = all four. */
    std::vector<fault::VfsFaultMode> modes;
};

/** One (workload, mode, trigger) crash point's verdict. */
struct PersistCrashPoint {
    std::string workload;  ///< "service" or "churn".
    fault::VfsFaultMode mode = fault::VfsFaultMode::kCrash;
    std::int64_t trigger_op = 0;
    bool ok = true;
    std::string detail;  ///< First violated invariant, when !ok.
};

/** Aggregated campaign results. */
struct PersistCampaignSummary {
    std::uint64_t seed = 0;

    /** Mutation-op counts of the fault-free workloads. */
    std::int64_t service_mutation_ops = 0;
    std::int64_t churn_mutation_ops = 0;

    std::int64_t points = 0;

    /** Points per mode name (deterministic order). */
    std::map<std::string, std::int64_t> points_by_mode;

    /** Faulted runs that degraded to the read-only tier. */
    std::int64_t degraded_runs = 0;

    bool multiprocess_ok = false;
    std::string multiprocess_detail;

    /** Failing points, in enumeration order. */
    std::vector<PersistCrashPoint> violations;

    bool
    clean() const
    {
        return violations.empty() && multiprocess_ok;
    }

    /** Deterministic text report (identical for any thread count). */
    std::string render() const;
};

/**
 * Run the campaign.  Creates its own pool of @p options.threads
 * workers; every point gets a private store directory under the
 * scratch root.  When @p registry is non-null the campaign reports
 * "persist_campaign.*" counters during the point-ordered reduction.
 */
PersistCampaignSummary runPersistCampaign(
    const PersistCampaignOptions& options,
    metrics::Registry* registry = nullptr);

}  // namespace veal

#endif  // VEAL_FAULT_PERSIST_CAMPAIGN_H_
