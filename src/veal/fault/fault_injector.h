#ifndef VEAL_FAULT_FAULT_INJECTOR_H_
#define VEAL_FAULT_FAULT_INJECTOR_H_

/**
 * @file
 * The runtime half of the fault layer: a FaultInjector executes one
 * FaultPlan against one translation/dispatch run.
 *
 * Pipeline sites call probe() each time they are exercised; the injector
 * counts probes per site and fires exactly when the plan's armed windows
 * say so.  Every fired fault lands in exactly one per-site taxonomy
 * counter (fired()), which the campaign driver cross-checks against the
 * hardened VM's recovery accounting.
 *
 * Thread-safety: none -- an injector is mutable run state.  Construct
 * one per (plan, run) and confine it to that thread; determinism then
 * follows from the plan being a pure function of its seed.
 */

#include <array>
#include <cstdint>
#include <string>

#include "veal/fault/fault_plan.h"
#include "veal/support/rng.h"

namespace veal {

namespace metrics {
class Registry;
}  // namespace metrics

/** Executes one FaultPlan; see file comment. */
class FaultInjector {
  public:
    explicit FaultInjector(FaultPlan plan);

    /**
     * Record that @p site is being exercised; true when the plan says
     * this occurrence fails.  Increments the site's probe count either
     * way and its fired count when it fires.
     */
    bool probe(FaultSite site);

    /**
     * Translation-budget watchdog: true when @p spent_instructions
     * exceeds the armed budget left-shifted by @p relief (each
     * degradation rung doubles the allowance).  A true return counts as
     * one kTranslationBudget fire.  Always false when the budget is
     * unarmed.
     */
    bool budgetExceeded(double spent_instructions, int relief);

    /**
     * Deterministic bit index in [0, num_bits) for a cache-corruption
     * flip.  Draws from the plan-seeded stream, so the corrupted bit is
     * reproducible.
     */
    std::size_t corruptionBit(std::size_t num_bits);

    /** Times @p site fired so far (the taxonomy counter). */
    std::int64_t fired(FaultSite site) const;

    /** Times @p site was probed so far. */
    std::int64_t probes(FaultSite site) const;

    /** Total fires across all sites. */
    std::int64_t totalFired() const;

    const FaultPlan& plan() const { return plan_; }

    /**
     * Record "<prefix>.fired.<site>" and "<prefix>.probes.<site>"
     * counters (non-zero sites only, keeping snapshots sparse).
     */
    void recordInto(metrics::Registry& registry,
                    const std::string& prefix) const;

  private:
    FaultPlan plan_;
    std::array<std::int64_t, kNumFaultSites> probes_{};
    std::array<std::int64_t, kNumFaultSites> fired_{};
    Rng rng_;
};

}  // namespace veal

#endif  // VEAL_FAULT_FAULT_INJECTOR_H_
