#ifndef VEAL_FAULT_FAULT_PLAN_H_
#define VEAL_FAULT_FAULT_PLAN_H_

/**
 * @file
 * Deterministic, seed-driven fault plans (DESIGN.md §11).
 *
 * A FaultPlan is a declarative description of which translation-pipeline
 * sites will misbehave and when: it arms windows over *probe indices*
 * (the n-th time a site is exercised), a translation-cycle budget, and
 * the hardened VM's quarantine policy.  The plan is a pure function of
 * its seed -- FaultPlan::sample(seed) always yields the same plan on
 * every platform -- so any campaign failure reproduces from two
 * integers: the campaign seed and the plan index.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace veal {

/** Named injection points in the translation/dispatch pipeline. */
enum class FaultSite : int {
    kSchedulerPlacement = 0,  ///< Modulo scheduler fails to place units.
    kRegisterAllocation,      ///< Operand mapping reports no registers.
    kCcaMapping,              ///< CCA subgraph identification aborts.
    kCacheCorruption,         ///< Bit flip in a resident control image.
    kTranslationBudget,       ///< Translator exceeds its cycle budget.
    kCount,
};

/** Number of distinct fault sites. */
inline constexpr int kNumFaultSites =
    static_cast<int>(FaultSite::kCount);

/** Site name, e.g. "scheduler-placement". */
const char* toString(FaultSite site);

/**
 * One armed fault: fire at probe indices
 * [first_fire, first_fire + fires) of @p site.  fires < 0 arms a sticky
 * fault that fires on every probe from first_fire onward (a permanently
 * broken site, exercising the bottom of the degradation ladder).
 */
struct ArmedFault {
    FaultSite site = FaultSite::kSchedulerPlacement;
    std::int64_t first_fire = 0;
    std::int64_t fires = 1;
};

/** A complete, reproducible fault scenario. */
struct FaultPlan {
    /** The seed this plan was sampled from (0 for hand-built plans). */
    std::uint64_t seed = 0;

    /** Armed windows; multiple entries may target the same site. */
    std::vector<ArmedFault> faults;

    /**
     * Translation budget in metered instructions; the watchdog in
     * translateLoop() rejects once the meter crosses it.  Negative =
     * unarmed.  Each degradation rung relieves the budget (doubling per
     * rung), modelling a retry that is allowed to work harder.
     */
    std::int64_t translation_budget = -1;

    /** Checksum strikes before a loop is quarantined to the CPU. */
    int quarantine_strikes = 2;

    /** Maximum re-translations of one invalidated/evicted entry. */
    int retranslation_bound = 2;

    /** True when any fault (or the budget) is armed. */
    bool armed() const
    {
        return !faults.empty() || translation_budget >= 0;
    }

    /**
     * Sample a plan from @p seed: 1-3 armed windows over random sites,
     * a budget when kTranslationBudget is drawn, and small randomized
     * quarantine parameters.  Deterministic (SplitMix64 underneath).
     */
    static FaultPlan sample(std::uint64_t seed);

    /** One-line human-readable description, e.g. for campaign reports. */
    std::string describe() const;
};

}  // namespace veal

#endif  // VEAL_FAULT_FAULT_PLAN_H_
