#include "veal/explore/sweep.h"

#include <chrono>
#include <ctime>
#include <utility>

#include "veal/arch/cpu_config.h"
#include "veal/sim/cpu_sim.h"
#include "veal/support/assert.h"
#include "veal/vm/persist/blob.h"
#include "veal/vm/translator.h"

namespace veal::explore {

namespace {

/**
 * CPU seconds consumed by the calling thread.  Preferred over wall time
 * for per-cell accounting: on an oversubscribed machine a cell's wall
 * time includes preemption waits, which would inflate cell_seconds and
 * fake a parallel speedup that is not there.  Falls back to wall time
 * where the POSIX thread clock is unavailable.
 */
double
threadCpuSeconds()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<double>(ts.tv_sec) +
               static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

}  // namespace

void
SweepStats::add(const SweepStats& other)
{
    cells += other.cells;
    threads = other.threads;
    wall_seconds += other.wall_seconds;
    cell_seconds += other.cell_seconds;
}

SweepRunner::SweepRunner(std::vector<Benchmark> suite, int threads)
    : suite_(std::move(suite)),
      pool_(std::make_unique<ThreadPool>(threads))
{
    VEAL_ASSERT(!suite_.empty(), "sweep needs a non-empty suite");
}

std::vector<double>
SweepRunner::evaluateCells(int num_cells,
                           const std::function<double(int)>& cell) const
{
    return evaluateCellsMetered(
        num_cells,
        [&cell](int i, metrics::Registry&) { return cell(i); });
}

std::vector<double>
SweepRunner::evaluateCellsMetered(
    int num_cells,
    const std::function<double(int, metrics::Registry&)>& cell) const
{
    using Clock = std::chrono::steady_clock;
    std::vector<double> values(
        static_cast<std::size_t>(std::max(num_cells, 0)));
    std::vector<double> cell_seconds(values.size(), 0.0);
    // One private registry per cell: workers never share one, and the
    // index-ordered merge below is what keeps snapshots --threads-proof.
    std::vector<metrics::Registry> cell_metrics(values.size());

    const auto sweep_start = Clock::now();
    pool_->run(num_cells, [&](int i) {
        const auto index = static_cast<std::size_t>(i);
        const double start = threadCpuSeconds();
        values[index] = cell(i, cell_metrics[index]);
        cell_seconds[index] = threadCpuSeconds() - start;
    });

    metrics_.add("sweep.batches");
    metrics_.add("sweep.cells", std::max(num_cells, 0));
    for (const auto& registry : cell_metrics)
        metrics_.merge(registry);

    last_stats_ = SweepStats{};
    last_stats_.cells = num_cells;
    last_stats_.threads = threads();
    last_stats_.wall_seconds =
        std::chrono::duration<double>(Clock::now() - sweep_start).count();
    for (const double seconds : cell_seconds)
        last_stats_.cell_seconds += seconds;
    total_stats_.add(last_stats_);
    return values;
}

std::vector<double>
SweepRunner::sweepMean(
    const std::vector<LaConfig>& configs,
    const std::function<double(const Benchmark&, const LaConfig&)>& cell)
    const
{
    const int num_benchmarks = static_cast<int>(suite_.size());
    const int num_cells =
        static_cast<int>(configs.size()) * num_benchmarks;
    const std::vector<double> cells =
        evaluateCells(num_cells, [&](int i) {
            const auto& config =
                configs[static_cast<std::size_t>(i / num_benchmarks)];
            const auto& benchmark =
                suite_[static_cast<std::size_t>(i % num_benchmarks)];
            return cell(benchmark, config);
        });

    // Reduce each config's column in benchmark order: the identical
    // summation order to the serial loops this engine replaced.
    std::vector<double> means(configs.size(), 0.0);
    for (std::size_t c = 0; c < configs.size(); ++c) {
        double sum = 0.0;
        for (int b = 0; b < num_benchmarks; ++b) {
            sum += cells[c * static_cast<std::size_t>(num_benchmarks) +
                         static_cast<std::size_t>(b)];
        }
        means[c] = sum / static_cast<double>(num_benchmarks);
    }
    return means;
}

std::vector<double>
SweepRunner::meanSpeedup(const std::vector<LaConfig>& configs,
                         TranslationMode mode,
                         const VmOptions* extra_options) const
{
    return sweepMean(configs,
                     [mode, extra_options](const Benchmark& benchmark,
                                           const LaConfig& la) {
                         return cellSpeedup(benchmark, la, mode,
                                            extra_options);
                     });
}

std::vector<double>
SweepRunner::fractionOfInfinite(const std::vector<LaConfig>& configs) const
{
    // Two cells per (config, benchmark): the finite and the infinite
    // speedup.  Splitting them doubles the available parallelism, which
    // matters for single-config sweeps like bench_design_point.
    const int num_benchmarks = static_cast<int>(suite_.size());
    const int cells_per_config = 2 * num_benchmarks;
    const int num_cells =
        static_cast<int>(configs.size()) * cells_per_config;
    const std::vector<double> cells =
        evaluateCells(num_cells, [&](int i) {
            const auto& config =
                configs[static_cast<std::size_t>(i / cells_per_config)];
            const int within = i % cells_per_config;
            const auto& benchmark =
                suite_[static_cast<std::size_t>(within / 2)];
            const bool infinite = (within % 2) != 0;
            return cellSpeedup(benchmark,
                               infinite ? infiniteLike(config) : config,
                               TranslationMode::kStatic);
        });

    std::vector<double> fractions(configs.size(), 0.0);
    for (std::size_t c = 0; c < configs.size(); ++c) {
        const std::size_t base = c * static_cast<std::size_t>(
                                         cells_per_config);
        double sum = 0.0;
        for (int b = 0; b < num_benchmarks; ++b) {
            const double finite =
                cells[base + 2 * static_cast<std::size_t>(b)];
            const double unlimited =
                cells[base + 2 * static_cast<std::size_t>(b) + 1];
            sum += unlimited > 0.0 ? finite / unlimited : 1.0;
        }
        fractions[c] = sum / static_cast<double>(num_benchmarks);
    }
    return fractions;
}

std::vector<std::vector<LoopScore>>
SweepRunner::scoreLoops(const std::vector<Loop>& loops,
                        const std::vector<LaConfig>& configs,
                        TranslationMode mode, std::int64_t iterations,
                        const TlbConfig& tlb) const
{
    const int num_backends = static_cast<int>(configs.size());
    std::vector<std::vector<LoopScore>> scores(
        loops.size(), std::vector<LoopScore>(configs.size()));
    if (loops.empty() || configs.empty())
        return scores;
    const int num_cells =
        static_cast<int>(loops.size()) * num_backends;
    // Cells write into pre-sized slots (distinct per index); the double
    // return of evaluateCells is unused.
    evaluateCells(num_cells, [&](int i) {
        const auto loop_index =
            static_cast<std::size_t>(i / num_backends);
        const auto backend_index =
            static_cast<std::size_t>(i % num_backends);
        scores[loop_index][backend_index] =
            scoreLoopCell(loops[loop_index], configs[backend_index],
                          mode, iterations, tlb);
        return 0.0;
    });
    return scores;
}

LoopScore
scoreLoopCell(const Loop& loop, const LaConfig& la, TranslationMode mode,
              std::int64_t iterations, const TlbConfig& tlb)
{
    VEAL_ASSERT(iterations >= 1, "scoring needs >= 1 iteration");
    const StaticAnnotations* annotations_ptr = nullptr;
    StaticAnnotations annotations;
    if (mode == TranslationMode::kHybridStaticCcaPriority) {
        annotations = precompileAnnotations(loop, la);
        annotations_ptr = &annotations;
    }
    const TranslationResult translation =
        translateLoop(loop, la, mode, annotations_ptr);

    LoopScore score;
    score.ok = translation.ok;
    score.reject = translation.reject;
    if (!translation.ok)
        return score;
    score.ii = translation.schedule.ii;
    score.stage_count = translation.schedule.stage_count;

    // Price through the summary path -- pinned bit-identical to the live
    // acceleratorLoopCost, and exactly what a persisted blob replays.
    const persist::TranslationSummary summary =
        persist::summarize(translation);
    score.first_cycles =
        persist::summaryLoopCost(summary, la, iterations,
                                 /*first_invocation=*/true)
            .total() +
        streamTlbCharge(summary.load_strides, summary.store_strides, tlb,
                        iterations, /*first_invocation=*/true)
            .cycles;
    score.warm_cycles =
        persist::summaryLoopCost(summary, la, iterations,
                                 /*first_invocation=*/false)
            .total() +
        streamTlbCharge(summary.load_strides, summary.store_strides, tlb,
                        iterations, /*first_invocation=*/false)
            .cycles;
    return score;
}

std::int64_t
scoreCpuCycles(const Loop& loop, const CpuConfig& cpu,
               std::int64_t iterations)
{
    return simulateLoopOnCpu(loop, cpu, iterations).total_cycles;
}

double
cellSpeedup(const Benchmark& benchmark, const LaConfig& la,
            TranslationMode mode, const VmOptions* extra_options)
{
    return cellSpeedup(benchmark, la, mode, extra_options, nullptr);
}

double
cellSpeedup(const Benchmark& benchmark, const LaConfig& la,
            TranslationMode mode, const VmOptions* extra_options,
            metrics::Registry* registry)
{
    VmOptions options;
    if (extra_options != nullptr)
        options = *extra_options;
    options.mode = mode;
    const VirtualMachine vm(la, CpuConfig::arm11(), options);
    return vm.run(benchmark.transformed, registry).speedup;
}

LaConfig
infiniteLike(const LaConfig& la)
{
    return la.hasCca() ? LaConfig::infiniteWithCca() : LaConfig::infinite();
}

}  // namespace veal::explore
