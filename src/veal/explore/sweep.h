#ifndef VEAL_EXPLORE_SWEEP_H_
#define VEAL_EXPLORE_SWEEP_H_

/**
 * @file
 * The parallel design-space-exploration engine.
 *
 * Every figure-3/4 experiment and the §3.1 design-point selection sweep
 * hundreds of (LaConfig x Benchmark) cells whose evaluations are
 * completely independent: translateLoop() is a pure function, and
 * VirtualMachine::run() is const with all per-run state on the stack.
 * SweepRunner fans those cells out over a ThreadPool and reduces them
 * *deterministically*: cell values land in a vector indexed by cell
 * number and every reduction walks that vector in index order, so the
 * figure output is bit-identical to a serial run no matter how many
 * threads raced to fill it.
 *
 * Thread-confinement contract (audited in DESIGN.md "Threading"):
 * each cell constructs its own VirtualMachine / CostMeter; nothing
 * mutable is shared between cells.  Benchmarks are shared read-only.
 *
 * Each cell's VirtualMachine::run() prices every loop piece of the
 * application through one batched simulateCpuBatch()/
 * acceleratorCostBatch() call (see veal/sim/batch.h), so a whole sweep
 * feeds the data-parallel batch engine rather than one-invocation-at-a-
 * time simulator calls -- with bit-identical cell values.
 */

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/sim/tlb_model.h"
#include "veal/support/metrics/metrics.h"
#include "veal/support/thread_pool.h"
#include "veal/vm/vm.h"
#include "veal/workloads/suite.h"

namespace veal::explore {

/**
 * One backend's modeled price for one loop -- the fleet scorer's unit of
 * work (DESIGN.md §17).  Cycle totals come from the persist-summary cost
 * path (summaryLoopCost + streamTlbCharge), which is pinned bit-identical
 * to the live acceleratorLoopCost, so a score computed here equals the
 * price the service later charges on the chosen backend and equals the
 * score rehydrated from a persisted blob.
 */
struct LoopScore {
    bool ok = false;
    TranslationReject reject = TranslationReject::kNone;
    std::int32_t ii = 0;
    std::int32_t stage_count = 0;
    std::int64_t first_cycles = 0;  ///< First invocation (setup-heavy).
    std::int64_t warm_cycles = 0;   ///< Steady-state re-invocation.
};

/** Instrumentation for the last sweep executed by a SweepRunner. */
struct SweepStats {
    std::int64_t cells = 0;      ///< Cell evaluations dispatched.
    int threads = 1;             ///< Pool width used.
    double wall_seconds = 0.0;   ///< Elapsed time of the parallel sweep.

    /**
     * Summed per-cell thread-CPU time: what an equivalent serial run
     * would have cost in wall-clock on an idle machine.  CPU time (not
     * wall) so oversubscription cannot fake a speedup.
     */
    double cell_seconds = 0.0;

    /** Measured speedup over an equivalent serial execution. */
    double
    parallelSpeedup() const
    {
        return wall_seconds > 0.0 ? cell_seconds / wall_seconds : 1.0;
    }

    /** Accumulate another sweep's counters (for multi-sweep benches). */
    void add(const SweepStats& other);
};

/**
 * Evaluates (LaConfig x Benchmark) grids concurrently with deterministic
 * reductions.  One runner owns one ThreadPool; reuse it across sweeps so
 * workers are spawned once per benchmark process.
 */
class SweepRunner {
  public:
    /**
     * @param suite the benchmarks every cell row runs over (shared
     *        read-only across threads).
     * @param threads pool width; <= 0 selects
     *        ThreadPool::defaultThreads().
     */
    explicit SweepRunner(std::vector<Benchmark> suite, int threads = 0);

    const std::vector<Benchmark>& suite() const { return suite_; }
    int threads() const { return pool_->numThreads(); }

    /**
     * Lowest-level entry: evaluate @p cell(i) for i in [0, num_cells) in
     * parallel and return the values ordered by cell index.  @p cell must
     * be thread-safe for distinct indices.  Also the instrumentation
     * point: wall/cell timing lands in lastStats().
     */
    std::vector<double> evaluateCells(
        int num_cells, const std::function<double(int)>& cell) const;

    /**
     * As evaluateCells(), with observability: each cell writes into a
     * *private* metrics::Registry passed to @p cell, and the per-cell
     * registries are merged into metrics() in cell-index order after the
     * pool drains.  That reduction order -- never completion order -- is
     * what makes a snapshot byte-identical for every --threads value.
     */
    std::vector<double> evaluateCellsMetered(
        int num_cells,
        const std::function<double(int, metrics::Registry&)>& cell) const;

    /**
     * Mean over the suite (in benchmark order) of the whole-application
     * speedup on each configuration: the parallel port of
     * bench::meanSpeedup, one value per entry of @p configs.
     */
    std::vector<double> meanSpeedup(
        const std::vector<LaConfig>& configs, TranslationMode mode,
        const VmOptions* extra_options = nullptr) const;

    /**
     * The paper §3.1 DSE metric: mean over the suite of
     * (speedup on the config) / (speedup on the matching
     * infinite-resource LA), both with zero translation overhead.  One
     * value per entry of @p configs.  The finite and infinite runs of
     * each benchmark are separate cells, so even a single-config sweep
     * (bench_design_point) fills an 8-wide pool.
     */
    std::vector<double> fractionOfInfinite(
        const std::vector<LaConfig>& configs) const;

    /**
     * Generic per-(config, benchmark) sweep reduced to a per-config mean
     * in benchmark order.  @p cell must be thread-safe.
     */
    std::vector<double> sweepMean(
        const std::vector<LaConfig>& configs,
        const std::function<double(const Benchmark&, const LaConfig&)>&
            cell) const;

    /**
     * The fleet-scoring fan-out: price every @p loops[i] against every
     * @p configs[j] as one parallel (loop x backend) grid, returning
     * scores[i][j].  Each cell is an independent scoreLoopCell() call,
     * so the result is bit-identical at any pool width.
     */
    std::vector<std::vector<LoopScore>> scoreLoops(
        const std::vector<Loop>& loops,
        const std::vector<LaConfig>& configs, TranslationMode mode,
        std::int64_t iterations, const TlbConfig& tlb) const;

    /** Instrumentation accumulated over every sweep since construction. */
    const SweepStats& stats() const { return total_stats_; }

    /** Instrumentation for the most recent sweep only. */
    const SweepStats& lastStats() const { return last_stats_; }

    /**
     * Deterministic metrics accumulated by every metered sweep since
     * construction ("sweep.batches"/"sweep.cells" plus whatever the
     * cells recorded).  Mutable so benches can add their own counters
     * before snapshotting with --metrics-json.
     */
    metrics::Registry& metrics() const { return metrics_; }

  private:
    std::vector<Benchmark> suite_;

    /** unique_ptr so the runner stays movable despite the pool's mutex. */
    std::unique_ptr<ThreadPool> pool_;

    mutable SweepStats last_stats_;
    mutable SweepStats total_stats_;
    mutable metrics::Registry metrics_;
};

/**
 * One-cell convenience used by sweep lambdas and the serial helpers:
 * whole-application speedup of @p benchmark on (la, arm11) in @p mode.
 * Constructs a private VirtualMachine, so it is safe to call
 * concurrently.
 */
double cellSpeedup(const Benchmark& benchmark, const LaConfig& la,
                   TranslationMode mode,
                   const VmOptions* extra_options = nullptr);

/**
 * As cellSpeedup(), reporting the VM's decisions into @p registry
 * (typically the private per-cell registry of evaluateCellsMetered).
 */
double cellSpeedup(const Benchmark& benchmark, const LaConfig& la,
                   TranslationMode mode, const VmOptions* extra_options,
                   metrics::Registry* registry);

/** Infinite machine matching @p la's CCA presence (sweep baseline). */
LaConfig infiniteLike(const LaConfig& la);

/**
 * Price @p loop on one backend: a nominal-rung translateLoop() against
 * @p la (hybrid mode precompiles annotations against the same config),
 * then first/warm invocation totals at @p iterations via the summary
 * cost model, TLB charges included when @p tlb is enabled.  Pure
 * function of its arguments -- safe to call concurrently, and the
 * independence is what the fleet steering property battery recomputes
 * against.
 */
LoopScore scoreLoopCell(const Loop& loop, const LaConfig& la,
                        TranslationMode mode, std::int64_t iterations,
                        const TlbConfig& tlb);

/** The scalar-CPU rung's price for the same loop at @p iterations. */
std::int64_t scoreCpuCycles(const Loop& loop, const CpuConfig& cpu,
                            std::int64_t iterations);

}  // namespace veal::explore

#endif  // VEAL_EXPLORE_SWEEP_H_
