#include "veal/fuzz/shrinker.h"

#include <vector>

namespace veal {
namespace {

/** Copy @p loop but with @p edges as its memory-edge set. */
Loop
withMemoryEdges(const Loop& loop, const std::vector<DepEdge>& edges)
{
    Loop result(loop.name());
    for (const auto& op : loop.operations()) {
        Operation copy = op;
        copy.id = kNoOp;
        result.addOperation(std::move(copy));
    }
    for (const auto& edge : edges)
        result.addMemoryEdge(edge.from, edge.to, edge.distance);
    result.setTripCount(loop.tripCount());
    result.setFeature(loop.feature());
    return result;
}

}  // namespace

std::optional<Loop>
deleteOperation(const Loop& loop, OpId victim)
{
    const Operation& doomed = loop.op(victim);

    bool has_consumers = false;
    for (const auto& op : loop.operations()) {
        for (const auto& input : op.inputs)
            has_consumers |= op.id != victim && input.producer == victim;
    }
    // Consumers are rewired to the victim's first input; a consumed
    // source (const/live-in) or self-reference has nothing to offer.
    Operand replacement;
    if (has_consumers) {
        if (doomed.inputs.empty() || doomed.inputs[0].producer == victim)
            return std::nullopt;
        replacement = doomed.inputs[0];
    }

    const auto remap = [victim](OpId id) {
        return id > victim ? id - 1 : id;
    };

    Loop result(loop.name());
    for (const auto& op : loop.operations()) {
        if (op.id == victim)
            continue;
        Operation copy = op;
        copy.id = kNoOp;
        for (auto& input : copy.inputs) {
            if (input.producer == victim) {
                input = Operand{remap(replacement.producer),
                                input.distance + replacement.distance};
            } else {
                input.producer = remap(input.producer);
            }
        }
        result.addOperation(std::move(copy));
    }
    for (const auto& edge : loop.memoryEdges()) {
        if (edge.from == victim || edge.to == victim)
            continue;
        result.addMemoryEdge(remap(edge.from), remap(edge.to),
                             edge.distance);
    }
    result.setTripCount(loop.tripCount());
    result.setFeature(loop.feature());
    return result;
}

Loop
shrinkLoop(const Loop& loop, const FailurePredicate& still_fails,
           const ShrinkOptions& options, ShrinkStats* stats)
{
    ShrinkStats local;
    ShrinkStats& tally = stats != nullptr ? *stats : local;
    Loop current = loop;

    const auto accept = [&](std::optional<Loop> candidate) {
        if (!candidate.has_value())
            return false;
        if (tally.candidates_tried >= options.max_candidates)
            return false;
        ++tally.candidates_tried;
        if (candidate->verify().has_value())
            return false;
        if (!still_fails(*candidate))
            return false;
        current = std::move(*candidate);
        ++tally.candidates_accepted;
        return true;
    };

    bool progress = true;
    while (progress && tally.candidates_tried < options.max_candidates) {
        progress = false;

        // 1. Op deletion, from the highest id down: tails (stores,
        // branches, dead compute) disappear before their producers.
        for (OpId id = current.size() - 1; id >= 0; --id)
            progress |= accept(deleteOperation(current, id));

        // 2a. Value-edge distance reduction: long recurrences first jump
        // to distance 1, then try collapsing to an intra-iteration edge.
        for (OpId id = 0; id < current.size(); ++id) {
            const auto num_inputs = current.op(id).inputs.size();
            for (std::size_t slot = 0; slot < num_inputs; ++slot) {
                const int distance = current.op(id).inputs[slot].distance;
                if (distance == 0)
                    continue;
                for (const int target : {1, distance - 1}) {
                    if (target >= distance)
                        continue;
                    Loop candidate = current;
                    candidate.mutableOp(id).inputs[slot].distance =
                        target;
                    if (accept(std::move(candidate))) {
                        progress = true;
                        break;
                    }
                }
            }
        }

        // 2b. Memory edges: drop each edge, then shorten its distance.
        for (std::size_t e = 0; e < current.memoryEdges().size(); ++e) {
            auto edges = current.memoryEdges();
            edges.erase(edges.begin() + static_cast<std::ptrdiff_t>(e));
            if (accept(withMemoryEdges(current, edges))) {
                progress = true;
                continue;
            }
            if (current.memoryEdges()[e].distance > 0) {
                edges = current.memoryEdges();
                --edges[e].distance;
                progress |= accept(withMemoryEdges(current, edges));
            }
        }

        // 3. Trip-count halving (the timing model's iteration count).
        while (current.tripCount() > 1) {
            Loop candidate = current;
            candidate.setTripCount(current.tripCount() / 2);
            if (!accept(std::move(candidate)))
                break;
            progress = true;
        }

        // 4. Constant simplification towards 0, 1, then half.
        for (OpId id = 0; id < current.size(); ++id) {
            if (current.op(id).opcode != Opcode::kConst)
                continue;
            const std::int64_t value = current.op(id).immediate;
            if (value == 0)
                continue;
            for (const std::int64_t target : {std::int64_t{0},
                                              std::int64_t{1},
                                              value / 2}) {
                if (target == value)
                    continue;
                Loop candidate = current;
                candidate.mutableOp(id).immediate = target;
                if (accept(std::move(candidate))) {
                    progress = true;
                    break;
                }
            }
        }
    }
    return current;
}

}  // namespace veal
