#ifndef VEAL_FUZZ_SHRINKER_H_
#define VEAL_FUZZ_SHRINKER_H_

/**
 * @file
 * Greedy test-case minimisation for failing fuzz loops.
 *
 * Given a loop on which some failure predicate holds (typically "the
 * differential oracle still reports the same bug class"), the shrinker
 * repeatedly applies structure-preserving reductions and keeps every
 * candidate that (a) still passes Loop::verify() and (b) still fails.
 * Reduction passes, tried in a fixed order until a full sweep accepts
 * nothing:
 *
 *  1. op deletion: remove one operation, rewiring its consumers to its
 *     first input (iteration distances add up) or dropping it outright
 *     when nothing consumes it;
 *  2. edge-distance reduction: shorten loop-carried distances on value
 *     operands and memory edges;
 *  3. trip-count halving;
 *  4. constant simplification towards 0 / 1 / half.
 *
 * Everything is deterministic: same input loop + same predicate
 * behaviour -> same minimised loop.
 */

#include <functional>
#include <optional>

#include "veal/ir/loop.h"

namespace veal {

/** "Does this candidate still reproduce the failure?" */
using FailurePredicate = std::function<bool(const Loop&)>;

/** Bookkeeping for one shrink session. */
struct ShrinkStats {
    int candidates_tried = 0;
    int candidates_accepted = 0;
};

/** Tunables for shrinkLoop(). */
struct ShrinkOptions {
    /** Hard cap on predicate evaluations (shrinking must terminate). */
    int max_candidates = 20000;
};

/**
 * Delete operation @p victim from @p loop, remapping ids and rewiring
 * consumers to the victim's first input.  Returns nullopt when deletion
 * is impossible (a consumed source with no inputs, or a self-reference).
 * The result is NOT verified; callers check Loop::verify().  Exposed for
 * tests.
 */
std::optional<Loop> deleteOperation(const Loop& loop, OpId victim);

/**
 * Greedily minimise @p loop while @p still_fails holds.
 * @pre still_fails(loop) is true (the input reproduces the failure).
 */
Loop shrinkLoop(const Loop& loop, const FailurePredicate& still_fails,
                const ShrinkOptions& options = {},
                ShrinkStats* stats = nullptr);

}  // namespace veal

#endif  // VEAL_FUZZ_SHRINKER_H_
