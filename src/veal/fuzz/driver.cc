#include "veal/fuzz/driver.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <utility>

#include "veal/cca/cca_mapper.h"
#include "veal/ir/loop_parser.h"
#include "veal/ir/random_loop.h"
#include "veal/sched/mii.h"
#include "veal/sched/priority.h"
#include "veal/sched/reference.h"
#include "veal/sched/schedule.h"
#include "veal/sched/scheduler.h"
#include "veal/service/service.h"
#include "veal/sim/batch.h"
#include "veal/support/rng.h"
#include "veal/support/thread_pool.h"
#include "veal/vm/translator.h"

namespace veal {
namespace {

/** Outcome columns, in rendering order. */
constexpr OracleOutcome kAllOutcomes[] = {
    OracleOutcome::kPass,
    OracleOutcome::kTranslatorReject,
    OracleOutcome::kValidatorReject,
    OracleOutcome::kDivergence,
    OracleOutcome::kCrashGuard,
    OracleOutcome::kFaultRecovered,
};

/** Index-addressable stream split: mix (campaign seed, case index). */
std::uint64_t
mixSeed(std::uint64_t campaign_seed, int case_index, std::uint64_t salt)
{
    Rng rng(campaign_seed ^
            (0x9e3779b97f4a7c15ull *
             (static_cast<std::uint64_t>(case_index) + 1)) ^
            salt);
    return rng.next();
}

}  // namespace

std::vector<FuzzConfigPreset>
fuzzConfigPresets()
{
    std::vector<FuzzConfigPreset> presets;

    presets.push_back({"proposed", LaConfig::proposed()});

    LaConfig min_regs = LaConfig::proposed();
    min_regs.name = "min-regs";
    min_regs.num_int_registers = 2;
    min_regs.num_fp_registers = 2;
    presets.push_back({"min-regs", min_regs});

    LaConfig one_fu = LaConfig::proposed();
    one_fu.name = "one-fu";
    one_fu.num_int_units = 1;
    one_fu.num_fp_units = 1;
    one_fu.num_cca_units = 0;
    one_fu.cca.reset();
    presets.push_back({"one-fu", one_fu});

    LaConfig max_ii_4 = LaConfig::proposed();
    max_ii_4.name = "max-ii-4";
    max_ii_4.max_ii = 4;
    presets.push_back({"max-ii-4", max_ii_4});

    LaConfig one_load = LaConfig::proposed();
    one_load.name = "one-load-stream";
    one_load.num_load_streams = 1;
    one_load.num_load_addr_gens = 1;
    presets.push_back({"one-load-stream", one_load});

    return presets;
}

std::optional<FuzzConfigPreset>
fuzzConfigByName(const std::string& name)
{
    for (const auto& preset : fuzzConfigPresets()) {
        if (preset.name == name)
            return preset;
    }
    return std::nullopt;
}

std::uint64_t
makeFuzzCaseSeed(std::uint64_t campaign_seed, int case_index)
{
    return mixSeed(campaign_seed, case_index, 0x5eedull);
}

Loop
makeFuzzCaseLoop(std::uint64_t campaign_seed, int case_index)
{
    // Delegates to the shared stress family so the fuzzer and the
    // translation-service traces draw from one loop distribution; the
    // salts keep every historical case byte-identical.
    return makeStressLoop(mixSeed(campaign_seed, case_index, 0x100b5ull),
                          makeFuzzCaseSeed(campaign_seed, case_index),
                          "fuzz");
}

std::uint64_t
makeFuzzCasePlanSeed(std::uint64_t fault_seed, int case_index)
{
    return mixSeed(fault_seed, case_index, 0xfa117ull);
}

OracleReport
runSchedDiffCase(const Loop& loop, const LaConfig& config,
                 TranslationMode mode)
{
    OracleReport report;
    auto diverge = [&report](std::string detail) -> OracleReport& {
        report.outcome = OracleOutcome::kDivergence;
        report.detail = std::move(detail);
        return report;
    };

    const LoopAnalysis analysis = analyzeLoop(loop);
    if (!analysis.ok()) {
        report.outcome = OracleOutcome::kTranslatorReject;
        report.detail = "analysis: " + analysis.reject_detail;
        return report;
    }
    const CcaMapping mapping =
        config.hasCca()
            ? mapToCca(loop, analysis, *config.cca, config.latencies)
            : emptyCcaMapping(loop);
    const SchedGraph graph(loop, analysis, mapping, config);

    CostMeter opt_meter;
    CostMeter ref_meter;

    const int opt_rec = recMii(graph, &opt_meter);
    const int ref_rec = reference::recMii(graph, &ref_meter);
    if (opt_rec != ref_rec) {
        return diverge("recMii " + std::to_string(opt_rec) +
                       " != reference " + std::to_string(ref_rec));
    }
    const int res = resMii(graph, config);
    if (res >= LaConfig::kUnlimited) {
        report.outcome = OracleOutcome::kTranslatorReject;
        report.detail = "no FU class for some unit";
        return report;
    }
    const int mii = std::max(res, opt_rec);

    const bool height = mode == TranslationMode::kFullyDynamicHeight;
    const NodeOrder opt_order =
        height ? computeHeightOrder(graph, mii, &opt_meter)
               : computeSwingOrder(graph, mii, &opt_meter);
    const NodeOrder ref_order =
        height ? reference::computeHeightOrder(graph, mii, &ref_meter)
               : reference::computeSwingOrder(graph, mii, &ref_meter);
    if (opt_order.sequence != ref_order.sequence)
        return diverge("priority sequence differs");
    if (opt_order.place_late != ref_order.place_late)
        return diverge("place_late mask differs");

    SchedulerStats opt_stats;
    SchedulerStats ref_stats;
    const auto opt_schedule = scheduleLoop(graph, config, opt_order, mii,
                                           &opt_meter, &opt_stats);
    const auto ref_schedule = reference::scheduleLoop(
        graph, config, ref_order, mii, &ref_meter, &ref_stats);
    if (opt_schedule.has_value() != ref_schedule.has_value()) {
        return diverge(std::string("schedulability differs: optimized ") +
                       (opt_schedule ? "ok" : "fail") + ", reference " +
                       (ref_schedule ? "ok" : "fail"));
    }
    if (opt_stats.attempted_iis != ref_stats.attempted_iis ||
        opt_stats.placement_failures != ref_stats.placement_failures)
        return diverge("II-search trail differs");

    if (opt_schedule.has_value()) {
        report.ii = opt_schedule->ii;
        if (opt_schedule->ii > ref_schedule->ii) {
            return diverge("II " + std::to_string(opt_schedule->ii) +
                           " worse than reference " +
                           std::to_string(ref_schedule->ii));
        }
        if (opt_schedule->time != ref_schedule->time ||
            opt_schedule->fu_instance != ref_schedule->fu_instance ||
            opt_schedule->stage_count != ref_schedule->stage_count ||
            opt_schedule->length != ref_schedule->length)
            return diverge("schedule contents differ");
        if (const auto error =
                validateSchedule(graph, config, *opt_schedule)) {
            report.outcome = OracleOutcome::kValidatorReject;
            std::ostringstream os;
            os << *error;
            report.detail = os.str();
            return report;
        }
    } else {
        report.outcome = OracleOutcome::kTranslatorReject;
        report.detail = "no II admits a schedule";
    }

    for (int p = 0; p < kNumTranslationPhases; ++p) {
        const auto phase = static_cast<TranslationPhase>(p);
        if (opt_meter.units(phase) != ref_meter.units(phase)) {
            return diverge(
                std::string("charge drift in ") + toString(phase) + ": " +
                std::to_string(opt_meter.units(phase)) + " != " +
                std::to_string(ref_meter.units(phase)));
        }
    }
    return report;
}

OracleReport
runServiceCase(const Loop& loop, const LaConfig& config,
               TranslationMode mode,
               std::optional<std::uint64_t> fault_seed)
{
    OracleReport report;
    auto diverge = [&report](std::string detail) -> OracleReport& {
        report.outcome = OracleOutcome::kDivergence;
        report.detail = std::move(detail);
        return report;
    };

    // The fixed micro-trace: tick 1 has both tenants requesting the
    // same key (one cold translation, one coalesced ride-along), tick 2
    // repeats it (two warm-tier serves).  Small shapes on purpose --
    // the point is shard-invariance per case, not throughput.
    struct Probe {
        std::string render;
        std::string metrics;
        std::vector<RequestOutcome> first_tick;
        std::vector<RequestOutcome> second_tick;
    };
    const auto probe = [&](int shards) {
        ServiceOptions options;
        options.shards = shards;
        options.threads = 1;  // Cases already run on pool workers.
        options.batch = 4;
        options.shard_cache_entries = 4;
        options.la = config;
        options.fault_seed = fault_seed;
        metrics::Registry registry;
        TranslationService service(options, &registry);
        Probe out;
        for (int tick = 0; tick < 2; ++tick) {
            for (int tenant = 0; tenant < 2; ++tenant) {
                ServiceRequest request;
                request.tenant = tenant;
                request.loop = loop;
                request.key = "fuzz-case";
                request.mode = mode;
                service.submit(std::move(request));
            }
            service.drainTick();
            (tick == 0 ? out.first_tick : out.second_tick) =
                service.lastTickOutcomes();
        }
        out.render = service.report().render();
        out.metrics = registry.toJson();
        return out;
    };
    const Probe narrow = probe(1);
    const Probe wide = probe(2);

    if (narrow.render != wide.render)
        return diverge("service report differs between 1 and 2 shards");
    if (narrow.metrics != wide.metrics)
        return diverge("metrics snapshot differs between 1 and 2 shards");
    if (narrow.first_tick.size() != 2 || narrow.second_tick.size() != 2)
        return diverge("micro-trace dropped a request");

    if (!fault_seed.has_value()) {
        // Fault-free, the taxonomy is forced: cold + coalesced, then
        // two warm serves of the tick-1 publication.
        if (narrow.first_tick[0].cache != CacheOutcome::kCold ||
            narrow.first_tick[1].cache != CacheOutcome::kCoalesced) {
            return diverge("tick-1 taxonomy is not cold + coalesced");
        }
        if (narrow.second_tick[0].cache != CacheOutcome::kWarm ||
            narrow.second_tick[1].cache != CacheOutcome::kWarm)
            return diverge("tick-2 taxonomy is not warm + warm");

        // Cross-check the service's verdict against a direct ladder
        // climb -- the service must never flip a loop's translatability.
        StaticAnnotations annotations;
        const StaticAnnotations* annotations_ptr = nullptr;
        if (mode == TranslationMode::kHybridStaticCcaPriority) {
            annotations = precompileAnnotations(loop, config);
            annotations_ptr = &annotations;
        }
        const LadderOutcome ladder = climbTranslationLadder(
            loop, config, mode, annotations_ptr, nullptr);
        for (const auto* tick : {&narrow.first_tick, &narrow.second_tick}) {
            for (const auto& outcome : *tick) {
                if (outcome.translated_ok != ladder.translation.ok) {
                    return diverge(
                        "service verdict disagrees with direct ladder");
                }
            }
        }
        if (narrow.first_tick[0].rung != ladder.rung)
            return diverge("service rung disagrees with direct ladder");
        if (!ladder.translation.ok) {
            report.outcome = OracleOutcome::kTranslatorReject;
            report.detail =
                "reject: " + std::string(toString(
                                 ladder.translation.reject));
            return report;
        }
        report.ii = narrow.first_tick[0].ii;
    }
    return report;
}

TranslationMode
makeFuzzCaseMode(std::uint64_t campaign_seed, int case_index)
{
    constexpr TranslationMode kModes[] = {
        TranslationMode::kFullyDynamic,
        TranslationMode::kFullyDynamicHeight,
        TranslationMode::kHybridStaticCcaPriority,
        TranslationMode::kStatic,
    };
    return kModes[mixSeed(campaign_seed, case_index, 0x30deull) % 4];
}

std::string
FuzzSummary::render() const
{
    std::ostringstream os;
    os << "veal-fuzz: runs=" << total_runs << " seed=" << seed
       << " configs=" << counts.size() << "\n";
    os << std::left << std::setw(18) << "config";
    for (const auto outcome : kAllOutcomes)
        os << std::right << std::setw(19) << toString(outcome);
    os << "\n";
    for (const auto& [config_name, per_outcome] : counts) {
        os << std::left << std::setw(18) << config_name;
        for (const auto outcome : kAllOutcomes) {
            const auto it = per_outcome.find(toString(outcome));
            os << std::right << std::setw(19)
               << (it == per_outcome.end() ? 0 : it->second);
        }
        os << "\n";
    }
    os << "failures: " << failures.size() << "\n";
    for (const auto& failure : failures) {
        os << "[case " << failure.case_index << "] config="
           << failure.config_name << " seed=" << failure.case_seed
           << " outcome=" << toString(failure.report.outcome)
           << " detail=" << failure.report.detail << "\n";
        os << "  ops " << failure.ops_before << " -> "
           << failure.ops_after;
        if (!failure.saved_path.empty())
            os << ", saved " << failure.saved_path;
        os << "\n";
        std::istringstream lines(failure.loop_text);
        std::string line;
        while (std::getline(lines, line))
            os << "    " << line << "\n";
    }
    return os.str();
}

FuzzSummary
runFuzz(const FuzzOptions& options, metrics::Registry* registry)
{
    FuzzSummary summary;
    summary.total_runs = options.runs;
    summary.seed = options.seed;
    if (options.runs <= 0 || options.configs.empty())
        return summary;

    // Stable table shape: every (config, outcome) cell exists.
    for (const auto& preset : options.configs) {
        for (const auto outcome : kAllOutcomes)
            summary.counts[preset.name][toString(outcome)] = 0;
    }

    struct CaseResult {
        OracleOutcome outcome = OracleOutcome::kPass;
        std::string detail;
        int ops = 0;  ///< Generated loop size (fuzz.loop_ops histogram).
    };

    // Workers take whole blocks of consecutive case indices: one block
    // is one runOracleBatch() call, so its reference interpretations ride
    // the batch engine together.  Block boundaries never affect results
    // (every case is a pure function of its index), so the report stays
    // byte-identical for any --batch width and any --threads.
    const int batch = std::max(1, options.batch);
    std::vector<std::pair<int, int>> blocks;  // [begin, end) indices.
    for (int begin = 0; begin < options.runs; begin += batch) {
        blocks.emplace_back(begin,
                            std::min(begin + batch, options.runs));
    }

    const auto run_block = [&](const std::pair<int, int>& range) {
        std::vector<CaseResult> out;
        out.reserve(static_cast<std::size_t>(range.second - range.first));
        if (options.sched_diff || options.service) {
            for (int index = range.first; index < range.second; ++index) {
                const auto& preset = options.configs[
                    static_cast<std::size_t>(index) %
                    options.configs.size()];
                const Loop loop = makeFuzzCaseLoop(options.seed, index);
                const TranslationMode mode =
                    makeFuzzCaseMode(options.seed, index);
                std::optional<std::uint64_t> plan_seed;
                if (options.service && options.fault_seed.has_value()) {
                    plan_seed =
                        makeFuzzCasePlanSeed(*options.fault_seed, index);
                }
                const OracleReport report =
                    options.sched_diff
                        ? runSchedDiffCase(loop, preset.config, mode)
                        : runServiceCase(loop, preset.config, mode,
                                         plan_seed);
                out.push_back(
                    {report.outcome, report.detail, loop.size()});
            }
            return out;
        }
        std::vector<Loop> loops;
        loops.reserve(static_cast<std::size_t>(range.second - range.first));
        std::vector<OracleCase> cases;
        for (int index = range.first; index < range.second; ++index) {
            const auto& preset = options.configs[
                static_cast<std::size_t>(index) % options.configs.size()];
            OracleCase one;
            one.config = &preset.config;
            one.seed = makeFuzzCaseSeed(options.seed, index);
            one.options.mode = makeFuzzCaseMode(options.seed, index);
            one.options.iterations = options.iterations;
            one.options.perturb = options.perturb;
            if (options.fault_seed.has_value()) {
                one.options.fault_plan = FaultPlan::sample(
                    makeFuzzCasePlanSeed(*options.fault_seed, index));
            }
            loops.push_back(makeFuzzCaseLoop(options.seed, index));
            one.loop = &loops.back();
            cases.push_back(std::move(one));
        }
        BatchSimulator simulator;
        const auto reports = runOracleBatch(cases, &simulator);
        for (std::size_t k = 0; k < reports.size(); ++k) {
            out.push_back({reports[k].outcome, reports[k].detail,
                           loops[k].size()});
        }
        return out;
    };

    ThreadPool pool(options.threads);
    const std::vector<std::vector<CaseResult>> block_results =
        parallelMap(pool, blocks, run_block);
    std::vector<CaseResult> results;
    results.reserve(static_cast<std::size_t>(options.runs));
    for (const auto& block : block_results)
        results.insert(results.end(), block.begin(), block.end());

    // Index-ordered reduction: identical output for any thread count.
    // All metrics land here (never in the workers), so a snapshot obeys
    // the same determinism contract as the rendered summary.
    if (registry != nullptr)
        registry->add("fuzz.cases", options.runs);
    for (int index = 0; index < options.runs; ++index) {
        const auto& preset = options.configs[
            static_cast<std::size_t>(index) % options.configs.size()];
        const auto& result = results[static_cast<std::size_t>(index)];
        ++summary.counts[preset.name][toString(result.outcome)];
        if (registry != nullptr) {
            registry->add("fuzz.outcome." + preset.name + "." +
                          toString(result.outcome));
            registry->observe("fuzz.loop_ops", result.ops);
        }
        if (!isFailure(result.outcome))
            continue;

        FuzzFailure failure;
        failure.case_index = index;
        failure.config_name = preset.name;
        failure.case_seed = makeFuzzCaseSeed(options.seed, index);
        failure.report.outcome = result.outcome;
        failure.report.detail = result.detail;

        Loop repro = makeFuzzCaseLoop(options.seed, index);
        failure.ops_before = repro.size();
        OracleOptions oracle;
        oracle.mode = makeFuzzCaseMode(options.seed, index);
        oracle.iterations = options.iterations;
        oracle.perturb = options.perturb;
        // The shrink closure and the saved repro carry the exact same
        // fault plan as the original case, so a shrunk repro preserves
        // both the failure class and the injection that provoked it.
        if (options.fault_seed.has_value()) {
            oracle.fault_plan = FaultPlan::sample(
                makeFuzzCasePlanSeed(*options.fault_seed, index));
        }
        if (options.shrink) {
            const auto rerun = [&](const Loop& candidate) {
                if (options.sched_diff) {
                    return runSchedDiffCase(candidate, preset.config,
                                            oracle.mode);
                }
                if (options.service) {
                    std::optional<std::uint64_t> plan_seed;
                    if (options.fault_seed.has_value()) {
                        plan_seed = makeFuzzCasePlanSeed(
                            *options.fault_seed, index);
                    }
                    return runServiceCase(candidate, preset.config,
                                          oracle.mode, plan_seed);
                }
                return runOracle(candidate, preset.config,
                                 failure.case_seed, oracle);
            };
            const auto still_fails = [&](const Loop& candidate) {
                return rerun(candidate).outcome == result.outcome;
            };
            repro = shrinkLoop(repro, still_fails);
            // Re-run the shrunk repro for the final detail text.
            failure.report = rerun(repro);
        }
        failure.ops_after = repro.size();
        failure.loop_text = printLoop(repro);

        if (!options.corpus_dir.empty()) {
            CorpusCase saved;
            saved.loop = repro;
            saved.config = preset.config;
            saved.mode = oracle.mode;
            saved.seed = failure.case_seed;
            saved.iterations = options.iterations;
            saved.expect = failure.report.outcome;
            saved.service = options.service;
            if (options.fault_seed.has_value()) {
                saved.fault_plan_seed =
                    makeFuzzCasePlanSeed(*options.fault_seed, index);
            }
            saved.note = "shrunk by veal-fuzz from campaign seed " +
                         std::to_string(options.seed) + " case " +
                         std::to_string(index);
            failure.saved_path = saveCorpusCase(
                options.corpus_dir,
                "repro-" + preset.name + "-" +
                    std::to_string(failure.case_seed),
                saved);
        }
        if (registry != nullptr) {
            registry->add("fuzz.failures");
            registry->add("fuzz.shrink.ops_removed",
                          failure.ops_before - failure.ops_after);
            registry->trace("fuzz/" + preset.name,
                            toString(failure.report.outcome),
                            "case " + std::to_string(index) + " seed " +
                                std::to_string(failure.case_seed),
                            failure.ops_after);
        }
        summary.failures.push_back(std::move(failure));
    }
    return summary;
}

}  // namespace veal
