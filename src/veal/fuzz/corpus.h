#ifndef VEAL_FUZZ_CORPUS_H_
#define VEAL_FUZZ_CORPUS_H_

/**
 * @file
 * Persistent repro corpus for the differential fuzzer.
 *
 * A corpus file is a loop in the textual DSL (veal/ir/loop_parser.h)
 * preceded by `#!` directive lines that pin down the whole differential
 * experiment: the accelerator configuration, translation mode, input
 * seed, iteration count, and the outcome the oracle is expected to
 * report.  `#` starts a DSL comment, so a corpus file parses as a plain
 * loop too.
 *
 *   #! veal-fuzz repro
 *   #! config name=proposed int_units=2 ... max_ii=16 bus=10
 *   #! mode fully-dynamic
 *   #! seed 42
 *   #! iterations 12
 *   #! expect pass
 *   #! service                (optional: replay through the translation
 *                              service oracle instead of execution)
 *   #! fault-seed 77          (optional: arms FaultPlan::sample(77))
 *   #! note distance-2 recurrence at the II boundary
 *   loop repro
 *   ...
 *
 * Shrunk fuzzer finds are appended to tests/corpus/ and replayed as a
 * ctest (and in CI), so every bug the fuzzer ever caught stays caught.
 */

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "veal/fuzz/oracle.h"

namespace veal {

/** One replayable differential experiment. */
struct CorpusCase {
    Loop loop{"corpus"};
    LaConfig config;
    TranslationMode mode = TranslationMode::kFullyDynamic;
    std::uint64_t seed = 0;
    std::int64_t iterations = 12;
    OracleOutcome expect = OracleOutcome::kPass;

    /**
     * When set, replay arms FaultPlan::sample(*fault_plan_seed) -- the
     * exact injection the fuzzer used, so fault-mode repros keep their
     * failure class.  In service cases the seed arms the service's
     * per-request fault stream instead.
     */
    std::optional<std::uint64_t> fault_plan_seed;

    /**
     * Replay through the translation-service oracle (runServiceCase)
     * instead of the execution oracle -- the `#! service` directive.
     * `seed` and `iterations` are recorded for provenance but the
     * service micro-trace fixes its own shape.
     */
    bool service = false;

    std::string note;
};

/** Either a parsed case or a human-readable error. */
using CorpusParseResult = std::variant<CorpusCase, std::string>;

/** Serialise @p config as `key=value` pairs (the `#! config` payload). */
std::string encodeLaConfig(const LaConfig& config);

/**
 * Decode an encodeLaConfig() payload.  Unknown keys are errors (they are
 * almost certainly typos in a hand-written corpus file).  Missing keys
 * keep the LaConfig defaults.
 */
std::variant<LaConfig, std::string> decodeLaConfig(const std::string&
                                                       text);

/** Render @p repro as a corpus file. */
std::string formatCorpusCase(const CorpusCase& repro);

/** Parse a corpus file's contents. */
CorpusParseResult parseCorpusCase(const std::string& text);

/** Sorted paths of every `*.veal` file in @p directory (may be empty). */
std::vector<std::string> listCorpusFiles(const std::string& directory);

/** Load and parse one corpus file. */
CorpusParseResult loadCorpusFile(const std::string& path);

/**
 * Write @p repro to `<directory>/<name>.veal` (creating the directory),
 * and return the path written.
 */
std::string saveCorpusCase(const std::string& directory,
                           const std::string& name,
                           const CorpusCase& repro);

/** Outcome of replaying one corpus file against the oracle. */
struct ReplayResult {
    std::string path;
    std::string error;  ///< Non-empty when the file failed to parse.
    OracleOutcome expect = OracleOutcome::kPass;
    OracleReport actual;

    bool ok() const
    {
        return error.empty() && actual.outcome == expect;
    }
};

/** Replay every corpus file in @p directory, in sorted path order. */
std::vector<ReplayResult> replayCorpus(const std::string& directory);

}  // namespace veal

#endif  // VEAL_FUZZ_CORPUS_H_
