#include "veal/fuzz/corpus.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "veal/fuzz/driver.h"
#include "veal/ir/loop_parser.h"
#include "veal/support/parse.h"

namespace veal {
namespace {

/** The four translation modes by their toString() names. */
std::optional<TranslationMode>
modeByName(const std::string& name)
{
    for (const auto mode :
         {TranslationMode::kStatic, TranslationMode::kFullyDynamic,
          TranslationMode::kFullyDynamicHeight,
          TranslationMode::kHybridStaticCcaPriority}) {
        if (name == toString(mode))
            return mode;
    }
    return std::nullopt;
}

/** The oracle outcomes by their toString() names. */
std::optional<OracleOutcome>
outcomeByName(const std::string& name)
{
    for (const auto outcome :
         {OracleOutcome::kPass, OracleOutcome::kTranslatorReject,
          OracleOutcome::kValidatorReject, OracleOutcome::kDivergence,
          OracleOutcome::kCrashGuard, OracleOutcome::kFaultRecovered}) {
        if (name == toString(outcome))
            return outcome;
    }
    return std::nullopt;
}

bool
parseU64(const std::string& text, std::uint64_t* out)
{
    // Strict (digits only, exact overflow check): a corpus seed of
    // 18446744073709551616 is an error, not a saturated UINT64_MAX.
    const auto parsed = parseU64Strict(text);
    if (!parsed.has_value())
        return false;
    *out = *parsed;
    return true;
}

bool
parseI64(const std::string& text, std::int64_t* out)
{
    std::istringstream is(text);
    is >> *out;
    return !is.fail() && is.eof();
}

bool
parseInt(const std::string& text, int* out)
{
    std::int64_t wide = 0;
    if (!parseI64(text, &wide))
        return false;
    *out = static_cast<int>(wide);
    return true;
}

}  // namespace

std::string
encodeLaConfig(const LaConfig& config)
{
    std::ostringstream os;
    os << "name=" << config.name
       << " int_units=" << config.num_int_units
       << " fp_units=" << config.num_fp_units
       << " cca_units=" << config.num_cca_units
       << " cca=" << (config.cca.has_value() ? "classic" : "none")
       << " int_regs=" << config.num_int_registers
       << " fp_regs=" << config.num_fp_registers
       << " load_streams=" << config.num_load_streams
       << " store_streams=" << config.num_store_streams
       << " load_gens=" << config.num_load_addr_gens
       << " store_gens=" << config.num_store_addr_gens
       << " ports=" << config.num_memory_ports
       << " max_ii=" << config.max_ii
       << " bus=" << config.bus_latency;
    return os.str();
}

std::variant<LaConfig, std::string>
decodeLaConfig(const std::string& text)
{
    LaConfig config;
    std::istringstream is(text);
    std::string token;
    while (is >> token) {
        const auto equals = token.find('=');
        if (equals == std::string::npos)
            return "config token without '=': '" + token + "'";
        const std::string key = token.substr(0, equals);
        const std::string value = token.substr(equals + 1);
        bool ok = true;
        if (key == "name") {
            config.name = value;
        } else if (key == "int_units") {
            ok = parseInt(value, &config.num_int_units);
        } else if (key == "fp_units") {
            ok = parseInt(value, &config.num_fp_units);
        } else if (key == "cca_units") {
            ok = parseInt(value, &config.num_cca_units);
        } else if (key == "cca") {
            if (value == "classic")
                config.cca = CcaSpec::classic();
            else if (value == "none")
                config.cca.reset();
            else
                ok = false;
        } else if (key == "int_regs") {
            ok = parseInt(value, &config.num_int_registers);
        } else if (key == "fp_regs") {
            ok = parseInt(value, &config.num_fp_registers);
        } else if (key == "load_streams") {
            ok = parseInt(value, &config.num_load_streams);
        } else if (key == "store_streams") {
            ok = parseInt(value, &config.num_store_streams);
        } else if (key == "load_gens") {
            ok = parseInt(value, &config.num_load_addr_gens);
        } else if (key == "store_gens") {
            ok = parseInt(value, &config.num_store_addr_gens);
        } else if (key == "ports") {
            ok = parseInt(value, &config.num_memory_ports);
        } else if (key == "max_ii") {
            ok = parseInt(value, &config.max_ii);
        } else if (key == "bus") {
            ok = parseInt(value, &config.bus_latency);
        } else {
            return "unknown config key '" + key + "'";
        }
        if (!ok)
            return "bad config value '" + token + "'";
    }
    return config;
}

std::string
formatCorpusCase(const CorpusCase& repro)
{
    std::ostringstream os;
    os << "#! veal-fuzz repro\n";
    os << "#! config " << encodeLaConfig(repro.config) << "\n";
    os << "#! mode " << toString(repro.mode) << "\n";
    os << "#! seed " << repro.seed << "\n";
    os << "#! iterations " << repro.iterations << "\n";
    os << "#! expect " << toString(repro.expect) << "\n";
    if (repro.service)
        os << "#! service\n";
    if (repro.fault_plan_seed.has_value())
        os << "#! fault-seed " << *repro.fault_plan_seed << "\n";
    if (!repro.note.empty())
        os << "#! note " << repro.note << "\n";
    os << printLoop(repro.loop);
    return os.str();
}

CorpusParseResult
parseCorpusCase(const std::string& text)
{
    CorpusCase repro;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
        if (line.rfind("#!", 0) != 0)
            continue;
        std::istringstream is(line.substr(2));
        std::string directive;
        is >> directive;
        std::string rest;
        std::getline(is, rest);
        if (!rest.empty() && rest.front() == ' ')
            rest.erase(0, 1);
        if (directive == "veal-fuzz") {
            continue;  // File marker.
        } else if (directive == "config") {
            auto decoded = decodeLaConfig(rest);
            if (auto* error = std::get_if<std::string>(&decoded))
                return *error;
            repro.config = std::get<LaConfig>(decoded);
        } else if (directive == "mode") {
            const auto mode = modeByName(rest);
            if (!mode.has_value())
                return "unknown mode '" + rest + "'";
            repro.mode = *mode;
        } else if (directive == "seed") {
            if (!parseU64(rest, &repro.seed))
                return "bad seed '" + rest + "'";
        } else if (directive == "iterations") {
            if (!parseI64(rest, &repro.iterations) ||
                repro.iterations < 1)
                return "bad iterations '" + rest + "'";
        } else if (directive == "expect") {
            const auto outcome = outcomeByName(rest);
            if (!outcome.has_value())
                return "unknown outcome '" + rest + "'";
            repro.expect = *outcome;
        } else if (directive == "service") {
            if (!rest.empty())
                return "'#! service' takes no arguments";
            repro.service = true;
        } else if (directive == "fault-seed") {
            std::uint64_t plan_seed = 0;
            if (!parseU64(rest, &plan_seed))
                return "bad fault-seed '" + rest + "'";
            repro.fault_plan_seed = plan_seed;
        } else if (directive == "note") {
            repro.note = rest;
        } else {
            return "unknown directive '#! " + directive + "'";
        }
    }

    ParseResult parsed = parseLoop(text);
    if (auto* error = std::get_if<ParseError>(&parsed)) {
        return "loop parse error at line " +
               std::to_string(error->line) + ": " + error->message;
    }
    repro.loop = std::move(std::get<Loop>(parsed));
    return repro;
}

std::vector<std::string>
listCorpusFiles(const std::string& directory)
{
    std::vector<std::string> paths;
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(directory, ec)) {
        if (entry.path().extension() == ".veal")
            paths.push_back(entry.path().string());
    }
    std::sort(paths.begin(), paths.end());
    return paths;
}

CorpusParseResult
loadCorpusFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        return CorpusParseResult("cannot open '" + path + "'");
    std::ostringstream contents;
    contents << in.rdbuf();
    return parseCorpusCase(contents.str());
}

std::string
saveCorpusCase(const std::string& directory, const std::string& name,
               const CorpusCase& repro)
{
    std::filesystem::create_directories(directory);
    const std::string path =
        (std::filesystem::path(directory) / (name + ".veal")).string();
    std::ofstream out(path);
    out << formatCorpusCase(repro);
    return path;
}

std::vector<ReplayResult>
replayCorpus(const std::string& directory)
{
    std::vector<ReplayResult> results;
    for (const auto& path : listCorpusFiles(directory)) {
        ReplayResult result;
        result.path = path;
        auto loaded = loadCorpusFile(path);
        if (auto* error = std::get_if<std::string>(&loaded)) {
            result.error = *error;
            results.push_back(std::move(result));
            continue;
        }
        const CorpusCase& repro = std::get<CorpusCase>(loaded);
        result.expect = repro.expect;
        if (repro.service) {
            result.actual = runServiceCase(repro.loop, repro.config,
                                           repro.mode,
                                           repro.fault_plan_seed);
            results.push_back(std::move(result));
            continue;
        }
        OracleOptions options;
        options.mode = repro.mode;
        options.iterations = repro.iterations;
        if (repro.fault_plan_seed.has_value())
            options.fault_plan = FaultPlan::sample(*repro.fault_plan_seed);
        result.actual =
            runOracle(repro.loop, repro.config, repro.seed, options);
        results.push_back(std::move(result));
    }
    return results;
}

}  // namespace veal
