#include "veal/fuzz/oracle.h"

#include <sstream>
#include <utility>

#include "veal/fault/fault_injector.h"
#include "veal/sim/batch.h"
#include "veal/sim/la_executor.h"
#include "veal/support/logging.h"
#include "veal/support/rng.h"

namespace veal {

const char*
toString(OracleOutcome outcome)
{
    switch (outcome) {
      case OracleOutcome::kPass: return "pass";
      case OracleOutcome::kTranslatorReject: return "translator-reject";
      case OracleOutcome::kValidatorReject: return "validator-reject";
      case OracleOutcome::kDivergence: return "divergence";
      case OracleOutcome::kCrashGuard: return "crash-guard";
      case OracleOutcome::kFaultRecovered: return "fault-recovered";
    }
    return "unknown";
}

bool
isFailure(OracleOutcome outcome)
{
    return outcome == OracleOutcome::kValidatorReject ||
           outcome == OracleOutcome::kDivergence ||
           outcome == OracleOutcome::kCrashGuard;
}

ExecutionInput
makeFuzzInput(const Loop& loop, std::uint64_t seed,
              std::int64_t iterations)
{
    Rng rng(seed * 0x9e3779b97f4a7c15ull + 0xf022u);
    ExecutionInput input;
    input.iterations = iterations;
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kLiveIn)
            input.live_ins[op.id] = rng.nextInRange(-64, 64);
        if (op.is_induction || !op.inputs.empty()) {
            // Carried state read at negative iterations starts defined.
            input.initial[op.id] = rng.nextInRange(-16, 16);
        }
        if (op.opcode == Opcode::kLoad) {
            for (std::int64_t index = -64; index < 512; ++index) {
                input.memory[op.symbol][index] =
                    rng.nextInRange(-100, 100);
            }
        }
    }
    return input;
}

namespace {

/**
 * First byte-level difference between the two results, or nullopt when
 * they agree exactly.  MemoryImage and the live-out map are ordered, so
 * the report is deterministic.
 */
std::optional<std::string>
firstDifference(const ExecutionResult& reference,
                const ExecutionResult& accelerated)
{
    for (const auto& [op, value] : reference.live_outs) {
        const auto it = accelerated.live_outs.find(op);
        if (it == accelerated.live_outs.end()) {
            return "live-out v" + std::to_string(op) +
                   " missing on the accelerator";
        }
        if (it->second != value) {
            std::ostringstream os;
            os << "live-out v" << op << ": interpreter " << value
               << " vs accelerator " << it->second;
            return os.str();
        }
    }
    if (accelerated.live_outs.size() != reference.live_outs.size())
        return std::string("extra live-outs on the accelerator");

    for (const auto& [array, contents] : reference.memory) {
        const auto other = accelerated.memory.find(array);
        if (other == accelerated.memory.end())
            return "array '" + array + "' missing on the accelerator";
        for (const auto& [address, value] : contents) {
            const auto cell = other->second.find(address);
            if (cell == other->second.end()) {
                return array + "[" + std::to_string(address) +
                       "] missing on the accelerator";
            }
            if (cell->second != value) {
                std::ostringstream os;
                os << array << "[" << address << "]: interpreter "
                   << value << " vs accelerator " << cell->second;
                return os.str();
            }
        }
        if (other->second.size() != contents.size())
            return "extra stores into '" + array + "'";
    }
    if (accelerated.memory.size() != reference.memory.size())
        return std::string("accelerator touched extra arrays");
    return std::nullopt;
}

}  // namespace

OracleReport
runOracle(const Loop& loop, const LaConfig& config, std::uint64_t seed,
          const OracleOptions& options)
{
    OracleReport report;
    ScopedPanicGuard guard;

    std::optional<FaultInjector> injector;
    if (options.fault_plan.has_value())
        injector.emplace(*options.fault_plan);

    TranslationResult translation;
    try {
        StaticAnnotations annotations;
        const StaticAnnotations* annotations_ptr = nullptr;
        if (options.mode == TranslationMode::kHybridStaticCcaPriority) {
            annotations = precompileAnnotations(loop, config);
            annotations_ptr = &annotations;
        }
        if (injector.has_value()) {
            LadderOutcome outcome = climbTranslationLadder(
                loop, config, options.mode, annotations_ptr, &*injector);
            translation = std::move(outcome.translation);
            report.rung = outcome.rung;
            report.faults_fired = injector->totalFired();
        } else {
            translation =
                translateLoop(loop, config, options.mode, annotations_ptr);
        }
    } catch (const PanicError& panic) {
        report.outcome = OracleOutcome::kCrashGuard;
        report.detail = std::string("translator panic: ") + panic.what();
        return report;
    }

    if (!translation.ok) {
        // With a plan armed and faults fired, exhausting the ladder is a
        // *clean* pin to the CPU -- the hardening absorbed the injection
        // (results are trivially correct on the reference path).  Without
        // fires it is an ordinary reject of a too-hard loop.
        if (injector.has_value() && report.faults_fired > 0) {
            report.outcome = OracleOutcome::kFaultRecovered;
            std::ostringstream os;
            os << "pinned to CPU after " << report.faults_fired
               << " fault fires: " << toString(translation.reject);
            report.detail = os.str();
            return report;
        }
        report.outcome = OracleOutcome::kTranslatorReject;
        report.detail = toString(translation.reject);
        if (!translation.reject_detail.empty())
            report.detail += ": " + translation.reject_detail;
        return report;
    }
    report.ii = translation.schedule.ii;

    ExecutionResult reference;
    ExecutionResult accelerated;
    try {
        if (options.perturb)
            options.perturb(translation);

        // Every accepted translation must satisfy every structural
        // invariant plus register-file capacity via the allocator's
        // live ranges.
        if (translation.graph.has_value()) {
            const auto violation =
                validateSchedule(*translation.graph, config,
                                 translation.schedule, loop,
                                 translation.analysis);
            if (violation.has_value()) {
                std::ostringstream os;
                os << *violation;
                report.outcome = OracleOutcome::kValidatorReject;
                report.detail = os.str();
                return report;
            }
        }

        const ExecutionInput input =
            makeFuzzInput(loop, seed, options.iterations);
        reference = interpretLoop(loop, input);
        accelerated = executeOnAccelerator(loop, translation, input);
    } catch (const PanicError& panic) {
        report.outcome = OracleOutcome::kCrashGuard;
        report.detail = std::string("execution panic: ") + panic.what();
        return report;
    }

    if (auto diff = firstDifference(reference, accelerated)) {
        report.outcome = OracleOutcome::kDivergence;
        report.detail = *diff;
        return report;
    }
    if (injector.has_value() &&
        (report.faults_fired > 0 ||
         report.rung != DegradationRung::kNominal)) {
        // The ladder produced a translation despite the injection and it
        // still matched the interpreter bit for bit.
        report.outcome = OracleOutcome::kFaultRecovered;
        std::ostringstream os;
        os << "recovered at rung " << toString(report.rung) << " after "
           << report.faults_fired << " fault fires";
        report.detail = os.str();
        return report;
    }
    report.outcome = OracleOutcome::kPass;
    return report;
}

std::vector<OracleReport>
runOracleBatch(const std::vector<OracleCase>& cases,
               BatchSimulator* simulator)
{
    std::vector<OracleReport> reports(cases.size());
    ScopedPanicGuard guard;

    // A case that survived translation and validation, waiting on the
    // reference interpretation and the accelerator run.
    struct Pending {
        std::size_t index = 0;
        TranslationResult translation;
        ExecutionInput input;
        ExecutionResult reference;
        bool injected = false;  ///< A fault plan was armed.
        bool batched = false;   ///< reference filled by interpretBatch.
    };
    std::vector<Pending> pending;
    pending.reserve(cases.size());

    // --- Per-case front half: translate, classify rejects, validate.
    // Phase for phase the same flow as runOracle(); splitting its one
    // execution try block per phase is behaviour-preserving because the
    // phases run in the same order and only PanicError ever escapes.
    for (std::size_t index = 0; index < cases.size(); ++index) {
        const OracleCase& one = cases[index];
        const Loop& loop = *one.loop;
        const LaConfig& config = *one.config;
        const OracleOptions& options = one.options;
        OracleReport& report = reports[index];

        std::optional<FaultInjector> injector;
        if (options.fault_plan.has_value())
            injector.emplace(*options.fault_plan);

        TranslationResult translation;
        try {
            StaticAnnotations annotations;
            const StaticAnnotations* annotations_ptr = nullptr;
            if (options.mode ==
                TranslationMode::kHybridStaticCcaPriority) {
                annotations = precompileAnnotations(loop, config);
                annotations_ptr = &annotations;
            }
            if (injector.has_value()) {
                LadderOutcome outcome = climbTranslationLadder(
                    loop, config, options.mode, annotations_ptr,
                    &*injector);
                translation = std::move(outcome.translation);
                report.rung = outcome.rung;
                report.faults_fired = injector->totalFired();
            } else {
                translation = translateLoop(loop, config, options.mode,
                                            annotations_ptr);
            }
        } catch (const PanicError& panic) {
            report.outcome = OracleOutcome::kCrashGuard;
            report.detail =
                std::string("translator panic: ") + panic.what();
            continue;
        }

        if (!translation.ok) {
            if (injector.has_value() && report.faults_fired > 0) {
                report.outcome = OracleOutcome::kFaultRecovered;
                std::ostringstream os;
                os << "pinned to CPU after " << report.faults_fired
                   << " fault fires: " << toString(translation.reject);
                report.detail = os.str();
                continue;
            }
            report.outcome = OracleOutcome::kTranslatorReject;
            report.detail = toString(translation.reject);
            if (!translation.reject_detail.empty())
                report.detail += ": " + translation.reject_detail;
            continue;
        }
        report.ii = translation.schedule.ii;

        Pending ready;
        try {
            if (options.perturb)
                options.perturb(translation);
            if (translation.graph.has_value()) {
                const auto violation =
                    validateSchedule(*translation.graph, config,
                                     translation.schedule, loop,
                                     translation.analysis);
                if (violation.has_value()) {
                    std::ostringstream os;
                    os << *violation;
                    report.outcome = OracleOutcome::kValidatorReject;
                    report.detail = os.str();
                    continue;
                }
            }
            ready.input =
                makeFuzzInput(loop, one.seed, options.iterations);
        } catch (const PanicError& panic) {
            report.outcome = OracleOutcome::kCrashGuard;
            report.detail =
                std::string("execution panic: ") + panic.what();
            continue;
        }
        ready.index = index;
        ready.translation = std::move(translation);
        ready.injected = injector.has_value();
        pending.push_back(std::move(ready));
    }

    // --- Reference interpretations, one data-parallel call for every
    // lane the batch engine can take (bit-identical to the scalar
    // interpreter, and screened so it cannot panic).
    BatchSimulator transient;
    BatchSimulator& engine =
        simulator != nullptr ? *simulator : transient;
    std::vector<InterpretRequest> lanes;
    std::vector<std::size_t> lane_owner;
    for (std::size_t p = 0; p < pending.size(); ++p) {
        if (interpretable(*cases[pending[p].index].loop)) {
            lanes.push_back(
                {cases[pending[p].index].loop, &pending[p].input});
            lane_owner.push_back(p);
        }
    }
    auto interpreted = engine.interpretBatch(lanes);
    for (std::size_t k = 0; k < lane_owner.size(); ++k) {
        pending[lane_owner[k]].reference = std::move(interpreted[k]);
        pending[lane_owner[k]].batched = true;
    }

    // --- Per-case back half: accelerator run and the differential.
    for (Pending& one : pending) {
        const OracleCase& lane = cases[one.index];
        OracleReport& report = reports[one.index];
        ExecutionResult accelerated;
        try {
            if (!one.batched)
                one.reference = interpretLoop(*lane.loop, one.input);
            accelerated = executeOnAccelerator(*lane.loop,
                                               one.translation,
                                               one.input);
        } catch (const PanicError& panic) {
            report.outcome = OracleOutcome::kCrashGuard;
            report.detail =
                std::string("execution panic: ") + panic.what();
            continue;
        }

        if (auto diff = firstDifference(one.reference, accelerated)) {
            report.outcome = OracleOutcome::kDivergence;
            report.detail = *diff;
            continue;
        }
        if (one.injected &&
            (report.faults_fired > 0 ||
             report.rung != DegradationRung::kNominal)) {
            report.outcome = OracleOutcome::kFaultRecovered;
            std::ostringstream os;
            os << "recovered at rung " << toString(report.rung)
               << " after " << report.faults_fired << " fault fires";
            report.detail = os.str();
            continue;
        }
        report.outcome = OracleOutcome::kPass;
    }
    return reports;
}

}  // namespace veal
