#ifndef VEAL_FUZZ_DRIVER_H_
#define VEAL_FUZZ_DRIVER_H_

/**
 * @file
 * The fuzzing campaign driver: fans differential oracle runs over a
 * ThreadPool and reduces them into a deterministic report.
 *
 * Determinism contract: every case's loop, configuration, translation
 * mode, and input seed are pure functions of (campaign seed, case
 * index).  Results are reduced in index order, so the rendered summary
 * is byte-identical for any thread count.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "veal/fuzz/corpus.h"
#include "veal/fuzz/oracle.h"
#include "veal/fuzz/shrinker.h"
#include "veal/support/metrics/metrics.h"

namespace veal {

/** A named accelerator configuration for fuzzing. */
struct FuzzConfigPreset {
    std::string name;
    LaConfig config;
};

/**
 * The default campaign targets: the paper's proposed design point plus
 * four corner-stress configurations (starved registers, single function
 * units, shallow control store, single load stream).
 */
std::vector<FuzzConfigPreset> fuzzConfigPresets();

/** Preset by name, or nullopt. */
std::optional<FuzzConfigPreset> fuzzConfigByName(const std::string& name);

/** Campaign parameters (mirrors the veal-fuzz CLI). */
struct FuzzOptions {
    int runs = 1000;
    int threads = 1;
    std::uint64_t seed = 1;

    /**
     * Cases dispatched per worker block: each block feeds one
     * runOracleBatch() call, so one worker advances a whole block's
     * reference interpretations through the batch engine per pass.
     * Purely a throughput knob -- the campaign report is byte-identical
     * for any width (see sim_batch_equivalence_test and the CI gate).
     */
    int batch = 64;

    /** Minimise failing loops before reporting them. */
    bool shrink = false;

    /** When non-empty, save shrunk repros here as corpus files. */
    std::string corpus_dir;

    /** Configurations to alternate over (case index modulo size). */
    std::vector<FuzzConfigPreset> configs = fuzzConfigPresets();

    std::int64_t iterations = 12;

    /**
     * When set, every case additionally arms a FaultPlan sampled from
     * makeFuzzCasePlanSeed(*fault_seed, case index), exercising the
     * degradation ladder under the differential oracle.  Recovered cases
     * report the "fault-recovered" outcome; shrunk repros keep the same
     * plan so they preserve the failure class and the injection.
     */
    std::optional<std::uint64_t> fault_seed;

    /**
     * Test hook forwarded to every oracle run (OracleOptions::perturb),
     * so the find -> shrink -> save pipeline can be exercised end to end
     * against an injected bug.  Never set during real fuzzing.
     */
    std::function<void(TranslationResult&)> perturb;

    /**
     * Schedule-equivalence campaign (--sched-diff): instead of the
     * execution oracle, diff the optimized translation kernels (RecMII,
     * priority order, modulo scheduler, CostMeter charges) against the
     * frozen reference implementations in sched/reference.h.  Any
     * divergence -- different schedule, different II-search trail, or a
     * single drifted work unit -- reports as a failure and flows through
     * the same shrink/corpus pipeline.  fault_seed and perturb are
     * ignored in this mode.
     */
    bool sched_diff = false;

    /**
     * Translation-service campaign (--service): push every case through
     * a multi-tenant TranslationService micro-trace at one and two
     * shards, and require byte-identical reports, metrics snapshots,
     * and cache taxonomy -- plus agreement with a direct ladder
     * translation.  fault_seed arms the service's per-request fault
     * stream (the ladder-under-concurrency stress); perturb is ignored.
     */
    bool service = false;
};

/**
 * Run one --sched-diff case: translate @p loop's scheduling problem with
 * both kernel families and compare everything observable.  kPass when
 * they agree (including when both reject), kDivergence with a first-
 * mismatch detail otherwise, kValidatorReject when the agreed schedule
 * fails oracle-grade validation.
 */
OracleReport runSchedDiffCase(const Loop& loop, const LaConfig& config,
                              TranslationMode mode);

/**
 * Run one --service case: feed @p loop through a fixed 2-tenant,
 * 2-tick service micro-trace (cold + coalesced, then two warm serves)
 * at 1 shard and again at 2 shards.  kPass when both services render
 * byte-identical reports/metrics, the cache taxonomy matches the
 * micro-trace, and the service's verdict agrees with a direct
 * climbTranslationLadder() run; kDivergence with a first-mismatch
 * detail otherwise.  @p fault_seed arms both services' per-request
 * fault streams (the taxonomy check then only applies fault-free).
 */
OracleReport runServiceCase(
    const Loop& loop, const LaConfig& config, TranslationMode mode,
    std::optional<std::uint64_t> fault_seed = std::nullopt);

/** One failing case, post-shrink when shrinking is on. */
struct FuzzFailure {
    int case_index = 0;
    std::string config_name;
    std::uint64_t case_seed = 0;
    OracleReport report;

    /** The (possibly shrunk) reproducing loop, in the DSL. */
    std::string loop_text;

    /** Ops before and after shrinking (equal when shrinking is off). */
    int ops_before = 0;
    int ops_after = 0;

    /** Corpus file written for this failure (empty when not saved). */
    std::string saved_path;
};

/** Aggregated campaign results. */
struct FuzzSummary {
    int total_runs = 0;
    std::uint64_t seed = 0;

    /** config name -> outcome name -> count. */
    std::map<std::string, std::map<std::string, int>> counts;

    /** Failures in case-index order. */
    std::vector<FuzzFailure> failures;

    bool clean() const { return failures.empty(); }

    /** Deterministic text report (identical for any thread count). */
    std::string render() const;
};

/**
 * Derive the per-case loop for (@p campaign_seed, @p case_index).
 * Exposed so failures can be reproduced outside the driver.
 */
Loop makeFuzzCaseLoop(std::uint64_t campaign_seed, int case_index);

/** Derive the per-case oracle seed. */
std::uint64_t makeFuzzCaseSeed(std::uint64_t campaign_seed,
                               int case_index);

/** Derive the per-case translation mode. */
TranslationMode makeFuzzCaseMode(std::uint64_t campaign_seed,
                                 int case_index);

/**
 * Derive the per-case fault-plan seed for --fault-seed campaigns (feed
 * it to FaultPlan::sample to replay one case's injection).
 */
std::uint64_t makeFuzzCasePlanSeed(std::uint64_t fault_seed,
                                   int case_index);

/**
 * Run a campaign.  Creates its own pool of @p options.threads workers.
 *
 * When @p registry is non-null the campaign reports into it during the
 * index-ordered reduction ("fuzz.cases", per-config outcome counters,
 * the "fuzz.loop_ops" histogram, shrink effectiveness, and one trace
 * event per failure), so the snapshot is byte-identical for any
 * options.threads -- the same determinism contract as render().
 */
FuzzSummary runFuzz(const FuzzOptions& options,
                    metrics::Registry* registry = nullptr);

}  // namespace veal

#endif  // VEAL_FUZZ_DRIVER_H_
