#ifndef VEAL_FUZZ_ORACLE_H_
#define VEAL_FUZZ_ORACLE_H_

/**
 * @file
 * The differential oracle at the heart of the fuzzing subsystem.
 *
 * One oracle run takes a loop, an accelerator configuration, and a seed,
 * pushes the loop through the full translation pipeline, and -- when the
 * translator accepts -- executes the translation on the functional LA
 * model against the reference interpreter on identical random inputs.
 * Memory images and scalar live-outs must match byte for byte.
 *
 * Outcomes:
 *  - kPass: translated, validated, and both engines agreed.
 *  - kTranslatorReject: the translator cleanly bounced the loop back to
 *    the CPU (expected for loops beyond the configuration's means).
 *  - kValidatorReject: the translator *accepted* but produced a schedule
 *    that violates a modulo-scheduling invariant.  Always a VEAL bug.
 *  - kDivergence: both engines ran but disagreed.  Always a VEAL bug.
 *  - kCrashGuard: an internal panic (VEAL_ASSERT / panic()) fired inside
 *    the pipeline or the executor, caught by ScopedPanicGuard.  Always a
 *    VEAL bug.
 *  - kFaultRecovered: a fault plan was armed, faults fired, and the
 *    degradation ladder absorbed them -- either a deeper rung translated
 *    (and the result still matched the interpreter) or the loop cleanly
 *    pinned to the CPU.  Not a failure: it is the hardening working.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "veal/fault/fault_plan.h"
#include "veal/sim/interpreter.h"
#include "veal/vm/translator.h"

namespace veal {

/** Classification of one differential run. */
enum class OracleOutcome : int {
    kPass,
    kTranslatorReject,
    kValidatorReject,
    kDivergence,
    kCrashGuard,
    kFaultRecovered,
};

/** Outcome name, e.g. "divergence". */
const char* toString(OracleOutcome outcome);

/** True for the outcome classes that indicate a VEAL bug. */
bool isFailure(OracleOutcome outcome);

/** Knobs for one oracle run. */
struct OracleOptions {
    TranslationMode mode = TranslationMode::kFullyDynamic;

    /** Iterations both engines execute. */
    std::int64_t iterations = 12;

    /**
     * When set, translation runs through the hardened degradation
     * ladder with this plan armed.  A run that survives fired faults
     * (deeper rung, absorbed retry, or clean CPU pin) classifies as
     * kFaultRecovered; divergences and crashes stay failures.
     */
    std::optional<FaultPlan> fault_plan;

    /**
     * Test hook: mutate the translation between the translator and the
     * validator/executor, to prove the oracle catches an injected
     * scheduler bug.  Never set during real fuzzing.
     */
    std::function<void(TranslationResult&)> perturb;
};

/** What one oracle run concluded. */
struct OracleReport {
    OracleOutcome outcome = OracleOutcome::kPass;

    /** Reject reason, violation text, panic message, or first diff. */
    std::string detail;

    /** Achieved initiation interval when translation succeeded. */
    int ii = 0;

    /** Ladder rung that produced the result (fault-plan runs only). */
    DegradationRung rung = DegradationRung::kNominal;

    /** Total fault fires across all sites (fault-plan runs only). */
    std::int64_t faults_fired = 0;
};

/**
 * Deterministic random execution input for @p loop: live-ins, initial
 * carried state, and a generous window of every loaded array.  Both
 * engines read absent memory as zero, so the window only has to make the
 * run interesting, not cover every address.
 */
ExecutionInput makeFuzzInput(const Loop& loop, std::uint64_t seed,
                             std::int64_t iterations);

/**
 * Run the full differential pipeline for (@p loop, @p config, @p seed).
 *
 * Thread-safety: pure function of its arguments (the panic guard is
 * thread-local), so fuzz workers may run oracles concurrently.
 */
OracleReport runOracle(const Loop& loop, const LaConfig& config,
                       std::uint64_t seed,
                       const OracleOptions& options = {});

/** One lane of runOracleBatch (all pointees owned by the caller). */
struct OracleCase {
    const Loop* loop = nullptr;
    const LaConfig* config = nullptr;
    std::uint64_t seed = 0;
    OracleOptions options;
};

class BatchSimulator;

/**
 * Run many differential pipelines, feeding every reference
 * interpretation the batch engine can take (see interpretable()) to one
 * data-parallel interpretBatch() call; lanes it cannot take fall back to
 * the scalar interpreter so their panics still classify per case.
 * Reports are index-aligned with @p cases and identical to running
 * runOracle() on each case alone, for any batch width or grouping.
 *
 * @p simulator optionally reuses one worker's arenas across blocks;
 * pass nullptr for a transient one.
 */
std::vector<OracleReport> runOracleBatch(
    const std::vector<OracleCase>& cases,
    BatchSimulator* simulator = nullptr);

}  // namespace veal

#endif  // VEAL_FUZZ_ORACLE_H_
