#ifndef VEAL_IR_SCC_H_
#define VEAL_IR_SCC_H_

/**
 * @file
 * Strongly connected components (Tarjan), used for loop recurrence
 * detection (veal/sched) and fission partitioning (veal/ir transforms).
 */

#include <utility>
#include <vector>

namespace veal {

/**
 * Tarjan's SCC algorithm (iterative).
 *
 * @param num_nodes number of nodes, labelled 0..num_nodes-1.
 * @param edges     directed (from, to) pairs; duplicates and self loops OK.
 * @return components in *reverse topological order* of the condensation
 *         (a component appears before every component it depends on).
 *         Node ids within a component are sorted ascending.
 */
std::vector<std::vector<int>>
stronglyConnectedComponents(int num_nodes,
                            const std::vector<std::pair<int, int>>& edges);

}  // namespace veal

#endif  // VEAL_IR_SCC_H_
