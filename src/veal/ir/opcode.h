#ifndef VEAL_IR_OPCODE_H_
#define VEAL_IR_OPCODE_H_

/**
 * @file
 * The RISC-equivalent operation set of the baseline ISA.
 *
 * VEAL expresses loops in the baseline instruction set of a general purpose
 * processor (paper §2.3); this enum is that instruction set at the
 * granularity the translator cares about.  Architecture-specific questions
 * (latency, which function unit executes an opcode, whether the CCA supports
 * it) live in veal/arch.
 */

#include <string>

namespace veal {

/** Operations of the baseline ISA plus the collapsed-CCA pseudo opcode. */
enum class Opcode : int {
    // Value sources.
    kConst,   ///< Literal constant (register-file resident, no FU).
    kLiveIn,  ///< Scalar loop input written before invocation (no FU).

    // Integer compute.
    kAdd,
    kSub,
    kMul,
    kDiv,
    kShl,
    kShr,
    kAnd,
    kOr,
    kXor,
    kNot,
    kCmp,     ///< Comparison producing a predicate/flag value.
    kSelect,  ///< Predicated select (full predication, paper §2.1).
    kMin,
    kMax,
    kAbs,

    // Memory.
    kLoad,
    kStore,

    // Control.
    kBranch,  ///< Loop-back branch.
    kCall,    ///< Subroutine call; makes a loop non-modulo-schedulable.

    // Double-precision floating point.
    kFAdd,
    kFSub,
    kFMul,
    kFDiv,
    kFSqrt,
    kFCmp,
    kFAbs,
    kItoF,
    kFtoI,

    // Pseudo opcode for a collapsed CCA subgraph (paper Figure 5, op 16).
    kCca,

    kNumOpcodes,
};

/** How a CCA row can execute this opcode (paper §3.1: CCA structure). */
enum class CcaOpClass : int {
    kNone,   ///< Not executable on a CCA (shift, multiply, FP, memory, ...).
    kArith,  ///< Simple arithmetic: only rows 1 and 3 of the CCA.
    kLogic,  ///< Bitwise logic: any CCA row.
};

/** Static properties of an opcode, independent of any machine. */
struct OpcodeInfo {
    const char* name;       ///< Mnemonic, e.g. "add".
    bool is_integer;        ///< Executes on an integer unit.
    bool is_float;          ///< Executes on a floating-point unit.
    bool is_memory;         ///< Load or store.
    bool is_control;        ///< Branch or call.
    bool is_value_source;   ///< Const / live-in: no FU, register resident.
    CcaOpClass cca_class;   ///< CCA row capability required, if any.
};

/** Lookup table entry for @p opcode. */
const OpcodeInfo& opcodeInfo(Opcode opcode);

/** Mnemonic for @p opcode. */
inline const char* toString(Opcode opcode) { return opcodeInfo(opcode).name; }

/** Total number of opcodes. */
inline constexpr int kNumOpcodes = static_cast<int>(Opcode::kNumOpcodes);

}  // namespace veal

#endif  // VEAL_IR_OPCODE_H_
