#include "veal/ir/operation.h"

namespace veal {

const char*
toString(OpRole role)
{
    switch (role) {
      case OpRole::kCompute: return "compute";
      case OpRole::kAddress: return "address";
      case OpRole::kControl: return "control";
      case OpRole::kMemory: return "memory";
    }
    return "unknown";
}

}  // namespace veal
