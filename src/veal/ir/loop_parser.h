#ifndef VEAL_IR_LOOP_PARSER_H_
#define VEAL_IR_LOOP_PARSER_H_

/**
 * @file
 * A small textual format for loop bodies, so kernels can be written and
 * experimented with without touching C++ (think of it as the Trimaran
 * dump the paper's toolchain would emit).
 *
 * Grammar (one statement per line; `#` starts a comment):
 *
 *   loop <name>                  -- header (required, first)
 *   trip <N>                     -- typical trip count
 *   speculative                  -- marks a while-style loop
 *   <v> = induction <step>       -- step is a literal (private constant)
 *                                   or the name of a defined value
 *   <v> = const <imm>
 *   <v> = livein [<label>]
 *   <v> = load <array> <addr>
 *   <v> = call <callee> <args...>
 *   <v> = <op> <operands...>     -- add/sub/mul/div/shl/shr/and/or/xor/
 *                                   not/cmp/select/min/max/abs/fadd/fsub/
 *                                   fmul/fdiv/fsqrt/fcmp/fabs/itof/ftoi
 *   store <array> <addr> <value>
 *   <v> = store <array> <addr> <value>
 *                                -- named form, required when a memedge
 *                                   references the store
 *   liveout <v>
 *   memedge <from> <to> <distance>
 *   loopback <iv> <bound>
 *   branch <pred>                -- back branch on an explicit, named
 *                                   predicate (used when the comparison
 *                                   has consumers besides the branch)
 *
 * Operands reference earlier or later values by name; `name@d` reads the
 * value produced d iterations ago (loop-carried).  Forward references
 * are only legal with a distance >= 1.
 */

#include <cstddef>
#include <string>
#include <variant>

#include "veal/ir/loop.h"

namespace veal {

/** A parse failure with its 1-based line number. */
struct ParseError {
    int line = 0;
    std::string message;
};

/** Either the parsed loop or the first error encountered. */
using ParseResult = std::variant<Loop, ParseError>;

/**
 * Hard input limits.  Corpus files and fuzz repros come from disk, so
 * the parser bounds its own work instead of trusting the caller: inputs
 * beyond these limits are rejected with a clear ParseError rather than
 * ballooning memory.  (The grammar is line-oriented and the parser is
 * non-recursive, so these size caps are the only resource bounds it
 * needs.)  Generous by two orders of magnitude over the largest loop in
 * the benchmark suite.
 */
inline constexpr std::size_t kMaxParseBytes = 1u << 20;  ///< 1 MiB.
inline constexpr std::size_t kMaxParseLineBytes = 64u << 10;
inline constexpr int kMaxParseOperations = 4096;

/** Parse @p text in the loop DSL. */
ParseResult parseLoop(const std::string& text);

/**
 * Render @p loop back into the DSL (round-trips through parseLoop up to
 * value names).  Useful for dumping generated/fissioned loops.
 */
std::string printLoop(const Loop& loop);

}  // namespace veal

#endif  // VEAL_IR_LOOP_PARSER_H_
