#ifndef VEAL_IR_LOOP_ANALYSIS_H_
#define VEAL_IR_LOOP_ANALYSIS_H_

/**
 * @file
 * "Separating Control and Memory Streams" (paper §4.1).
 *
 * The first real translation step: follow the backward slice of the
 * loop-back branch to identify the control pattern, and the backward slices
 * of memory-op addresses to identify affine access patterns that the LA's
 * address generators can produce.  Ops used only by those slices are folded
 * into the loop-control / address-generation hardware; everything else is
 * computation that must be modulo scheduled onto function units.
 */

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "veal/ir/loop.h"
#include "veal/support/cost_meter.h"

namespace veal {

/**
 * One memory stream: a unique reference pattern, i.e. a base address plus a
 * linear per-iteration update (paper §3.1's definition).
 */
struct StreamDescriptor {
    std::string base;        ///< Base array symbol (plus symbolic terms).
    std::int64_t offset = 0; ///< Constant element offset from the base.
    std::int64_t stride = 0; ///< Elements advanced per loop iteration.
    bool is_store = false;   ///< Direction of the stream.

    /**
     * Loop-invariant symbolic address terms: (live-in or induction-start
     * op, coefficient).  The address generator adds their runtime values
     * into the base address; the functional LA executor needs them to
     * compute concrete element indices.
     */
    std::vector<std::pair<OpId, std::int64_t>> base_terms;

    /** The plain array symbol (without the symbolic-term suffix). */
    std::string array;

    /** Memory ops sharing this reference pattern. */
    std::vector<OpId> memory_ops;

    friend bool
    operator==(const StreamDescriptor& a, const StreamDescriptor& b)
    {
        return a.base == b.base && a.offset == b.offset &&
               a.stride == b.stride && a.is_store == b.is_store;
    }
};

/** Why analysis rejected a loop outright (before any resource checks). */
enum class AnalysisReject : int {
    kNone,
    kSubroutineCall,     ///< kCall present / non-inlinable call.
    kNeedsSpeculation,   ///< While-loop or side exit.
    kNonAffineAddress,   ///< Address slice is not base + stride * iv.
    kComplexControl,     ///< Loop-back condition not a simple counted test.
};

/** Rejection name, e.g. "non-affine-address". */
const char* toString(AnalysisReject reject);

/** Result of separating control and memory streams from computation. */
struct LoopAnalysis {
    /** Per-op role, indexed by OpId. */
    std::vector<OpRole> roles;

    /** Unique load reference patterns. */
    std::vector<StreamDescriptor> load_streams;

    /** Unique store reference patterns. */
    std::vector<StreamDescriptor> store_streams;

    /** Per-memory-op stream index (into the respective stream list). */
    std::vector<int> stream_of_op;

    /** Why the loop cannot target any LA, or kNone. */
    AnalysisReject reject = AnalysisReject::kNone;

    /** Diagnostic detail for the rejection. */
    std::string reject_detail;

    /** True when the loop survived analysis. */
    bool ok() const { return reject == AnalysisReject::kNone; }

    /**
     * Number of compute-role ops excluding register-resident value
     * sources: the portion that occupies function units.
     */
    int numComputeOps() const { return num_compute_ops; }

    /** Filled by analyzeLoop(). */
    int num_compute_ops = 0;
};

/**
 * Run control/stream separation on @p loop.
 *
 * @param loop  a verified loop body.
 * @param meter optional cost meter charged under kLoopAnalysis.
 */
LoopAnalysis analyzeLoop(const Loop& loop, CostMeter* meter = nullptr);

}  // namespace veal

#endif  // VEAL_IR_LOOP_ANALYSIS_H_
