#ifndef VEAL_IR_OPERATION_H_
#define VEAL_IR_OPERATION_H_

/**
 * @file
 * A single operation in a loop-body dataflow graph.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "veal/ir/opcode.h"

namespace veal {

/** Index of an operation within its Loop.  Dense, starting at 0. */
using OpId = int;

/** Sentinel for "no operation". */
inline constexpr OpId kNoOp = -1;

/**
 * A use of a value.  @p distance is the number of loop iterations ago the
 * value was produced: 0 for an intra-iteration use, >= 1 for a loop-carried
 * use (e.g. an accumulator reads its own value with distance 1).
 */
struct Operand {
    Operand() = default;

    /** Implicit: an OpId used as an operand means "this iteration". */
    Operand(OpId producer_id, int iteration_distance = 0)
        : producer(producer_id), distance(iteration_distance)
    {}

    OpId producer = kNoOp;
    int distance = 0;

    friend bool operator==(const Operand&, const Operand&) = default;
};

/**
 * The role the translator assigns to an operation when it separates control
 * and memory streams from the computation (paper §4.1).  Roles are computed
 * by LoopAnalysis, not set by the builder.
 */
enum class OpRole : int {
    kCompute,  ///< Scheduled onto an accelerator function unit.
    kAddress,  ///< Folded into an address generator's access pattern.
    kControl,  ///< Folded into the loop-control hardware.
    kMemory,   ///< Load/store issued by a stream (address generator).
};

/** Role name, e.g. "compute". */
const char* toString(OpRole role);

/**
 * One operation of a loop body.
 *
 * Operations are value-producing nodes of a dataflow graph: each input names
 * the producer of the consumed value together with its iteration distance.
 * There are no named registers at this level; register assignment happens
 * during translation.
 */
struct Operation {
    OpId id = kNoOp;
    Opcode opcode = Opcode::kConst;
    std::vector<Operand> inputs;

    /** Literal value for kConst; shift amounts etc. appear as kConst. */
    std::int64_t immediate = 0;

    /** Marked by LoopBuilder::induction(): base induction variable. */
    bool is_induction = false;

    /** The loop publishes this op's final value as a scalar result. */
    bool is_live_out = false;

    /**
     * Symbolic label: the base array for memory ops, the callee for kCall,
     * and an optional scalar name for kLiveIn.  Purely descriptive except
     * for memory ops, where stream analysis uses it as the stream's base
     * symbol.
     */
    std::string symbol;

    /** True when the opcode reads or writes memory. */
    bool isMemory() const { return opcodeInfo(opcode).is_memory; }

    /** True for kConst/kLiveIn, which occupy registers but no FU. */
    bool isValueSource() const { return opcodeInfo(opcode).is_value_source; }

    /** True for branches and calls. */
    bool isControl() const { return opcodeInfo(opcode).is_control; }
};

}  // namespace veal

#endif  // VEAL_IR_OPERATION_H_
