#include "veal/ir/loop_builder.h"

#include "veal/support/assert.h"
#include "veal/support/logging.h"

namespace veal {

OpId
LoopBuilder::constant(std::int64_t value)
{
    Operation op;
    op.opcode = Opcode::kConst;
    op.immediate = value;
    return loop_.addOperation(std::move(op));
}

OpId
LoopBuilder::liveIn(std::string name)
{
    Operation op;
    op.opcode = Opcode::kLiveIn;
    op.symbol = std::move(name);
    return loop_.addOperation(std::move(op));
}

OpId
LoopBuilder::induction(std::int64_t step)
{
    const OpId step_const = constant(step);
    Operation op;
    op.opcode = Opcode::kAdd;
    op.is_induction = true;
    const OpId id = loop_.addOperation(std::move(op));
    // Patch in the self-referential carried input now that the id is known.
    loop_.mutableOp(id).inputs = {Operand{id, 1}, Operand{step_const, 0}};
    return id;
}

OpId
LoopBuilder::unary(Opcode opcode, Operand a)
{
    Operation op;
    op.opcode = opcode;
    op.inputs = {a};
    return loop_.addOperation(std::move(op));
}

OpId
LoopBuilder::binary(Opcode opcode, Operand a, Operand b)
{
    Operation op;
    op.opcode = opcode;
    op.inputs = {a, b};
    return loop_.addOperation(std::move(op));
}

OpId
LoopBuilder::select(Operand pred, Operand if_true, Operand if_false)
{
    Operation op;
    op.opcode = Opcode::kSelect;
    op.inputs = {pred, if_true, if_false};
    return loop_.addOperation(std::move(op));
}

OpId
LoopBuilder::load(std::string array, Operand address)
{
    Operation op;
    op.opcode = Opcode::kLoad;
    op.symbol = std::move(array);
    op.inputs = {address};
    return loop_.addOperation(std::move(op));
}

OpId
LoopBuilder::store(std::string array, Operand address, Operand value)
{
    Operation op;
    op.opcode = Opcode::kStore;
    op.symbol = std::move(array);
    op.inputs = {address, value};
    return loop_.addOperation(std::move(op));
}

OpId
LoopBuilder::loopBack(Operand induction_var, Operand bound)
{
    VEAL_ASSERT(!has_loop_back_, "loop ", loop_.name(),
                " already has a loop-back branch");
    has_loop_back_ = true;
    const OpId condition = cmp(induction_var, bound);
    Operation op;
    op.opcode = Opcode::kBranch;
    op.inputs = {Operand{condition, 0}};
    return loop_.addOperation(std::move(op));
}

OpId
LoopBuilder::call(std::string callee, std::vector<Operand> args)
{
    Operation op;
    op.opcode = Opcode::kCall;
    op.symbol = std::move(callee);
    op.inputs = std::move(args);
    const OpId id = loop_.addOperation(std::move(op));
    loop_.setFeature(LoopFeature::kHasSubroutineCall);
    return id;
}

void
LoopBuilder::markLiveOut(OpId id)
{
    loop_.mutableOp(id).is_live_out = true;
}

Loop
LoopBuilder::build()
{
    if (auto error = loop_.verify())
        panic("malformed loop ", loop_.name(), ": ", *error);
    return std::move(loop_);
}

}  // namespace veal
