#ifndef VEAL_IR_TRANSFORMS_H_
#define VEAL_IR_TRANSFORMS_H_

/**
 * @file
 * Static loop transformations (paper §4.2, "Loop Identification and
 * Transformation").
 *
 * The paper's key point: transformations like aggressive function inlining
 * and loop fission are far too expensive to run inside the dynamic
 * translator, so they are performed *statically* by the compiler and the
 * result is expressed in the plain baseline ISA.  Binaries compiled without
 * them lose ~75% of the accelerator's benefit (Figure 7).  These functions
 * are that static compiler stage.
 */

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "veal/ir/loop.h"
#include "veal/support/cost_meter.h"

namespace veal {

/** Append a raw operation to @p loop; convenience for callee emitters. */
OpId appendOp(Loop& loop, Opcode opcode, std::vector<Operand> inputs,
              std::int64_t immediate = 0);

/**
 * A function body the static compiler knows how to inline: given the
 * remapped argument operands, append the callee's dataflow to @p loop and
 * return the op producing the return value.
 */
using CalleeEmitter =
    std::function<OpId(Loop& loop, const std::vector<Operand>& args)>;

/** Library of inlinable functions, keyed by callee name. */
using CalleeLibrary = std::map<std::string, CalleeEmitter>;

/**
 * Aggressive function inlining: replace every kCall whose callee is in
 * @p library with the callee's body.  Calls to unknown functions are kept
 * (and keep the loop off the accelerator).  Returns the transformed loop.
 */
Loop inlineCalls(const Loop& loop, const CalleeLibrary& library);

/**
 * Per-piece resource budget for fission.  Stream budgets come from the
 * LA's stream contexts; the op budgets bound each piece's ResMII by the
 * control-store depth (paper §3.1: "if a particular loop is too large to
 * be supported by an II, often times proactive loop fissioning enables
 * the loop to utilize an accelerator") -- pass
 * num_<class>_units * max_ii.
 */
struct FissionBudget {
    int max_load_streams = 1 << 20;
    int max_store_streams = 1 << 20;
    int max_int_ops = 1 << 20;
    int max_fp_ops = 1 << 20;
};

/** Result of splitting one loop into a pipeline of smaller loops. */
struct FissionResult {
    /** The fissioned loops, in execution order. */
    std::vector<Loop> loops;

    /** Number of memory streams added for cross-loop communication. */
    int comm_streams = 0;
};

/**
 * Loop fission: split @p loop into a sequence of loops so that each piece
 * needs at most @p max_load_streams / @p max_store_streams memory streams
 * (paper §3.1: "break the large loops up into smaller loops ... this would
 * reduce the required number of streams for each individual loop but
 * increase memory traffic").
 *
 * Dependence cycles (recurrences) are never split: partitioning works on
 * strongly connected components of the full dependence graph, in
 * topological order.  Values flowing between partitions are materialised
 * through unit-stride communication arrays (a store stream in the producer
 * loop, a load stream in each consumer loop).
 *
 * Returns std::nullopt when the loop already fits, cannot be split (a
 * single SCC exceeds the budget), or the communication streams themselves
 * blow the budget.
 */
std::optional<FissionResult>
fissionLoop(const Loop& loop, int max_load_streams, int max_store_streams);

/** Fission against a full resource budget (streams + FU op counts). */
std::optional<FissionResult>
fissionLoop(const Loop& loop, const FissionBudget& budget);

}  // namespace veal

#endif  // VEAL_IR_TRANSFORMS_H_
