#include "veal/ir/transforms.h"

#include <algorithm>
#include <set>

#include "veal/ir/loop_analysis.h"
#include "veal/ir/opcode.h"
#include "veal/ir/scc.h"
#include "veal/support/assert.h"
#include "veal/support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace {
bool
fissionDebug()
{
    return std::getenv("VEAL_FISSION_DEBUG") != nullptr;
}
#define FISSION_TRACE(...)                                                 \
    do {                                                                   \
        if (fissionDebug())                                                \
            std::fprintf(stderr, __VA_ARGS__);                             \
    } while (false)
}  // namespace

namespace veal {

OpId
appendOp(Loop& loop, Opcode opcode, std::vector<Operand> inputs,
         std::int64_t immediate)
{
    Operation op;
    op.opcode = opcode;
    op.inputs = std::move(inputs);
    op.immediate = immediate;
    return loop.addOperation(std::move(op));
}

Loop
inlineCalls(const Loop& loop, const CalleeLibrary& library)
{
    const int n = loop.size();
    Loop out(loop.name());
    out.setTripCount(loop.tripCount());

    std::vector<OpId> remap(static_cast<std::size_t>(n), kNoOp);
    std::vector<bool> is_inlined(static_cast<std::size_t>(n), false);

    // Pass 1: create slots for every op that survives, inputs left empty.
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kCall && library.contains(op.symbol)) {
            is_inlined[static_cast<std::size_t>(op.id)] = true;
            continue;
        }
        Operation copy = op;
        copy.id = kNoOp;
        copy.inputs.clear();
        remap[static_cast<std::size_t>(op.id)] = out.addOperation(copy);
    }

    // Pass 2: expand inlined calls in id order so chains of calls resolve.
    for (const auto& op : loop.operations()) {
        if (!is_inlined[static_cast<std::size_t>(op.id)])
            continue;
        std::vector<Operand> args;
        args.reserve(op.inputs.size());
        for (const auto& input : op.inputs) {
            const OpId producer =
                remap[static_cast<std::size_t>(input.producer)];
            VEAL_ASSERT(producer != kNoOp,
                        "call argument depends on a later call in loop ",
                        loop.name());
            args.emplace_back(producer, input.distance);
        }
        const auto& emitter = library.at(op.symbol);
        remap[static_cast<std::size_t>(op.id)] = emitter(out, args);
    }

    // Pass 3: wire up the inputs of the surviving (non-call) ops.
    for (const auto& op : loop.operations()) {
        if (is_inlined[static_cast<std::size_t>(op.id)])
            continue;
        const OpId new_id = remap[static_cast<std::size_t>(op.id)];
        auto& new_op = out.mutableOp(new_id);
        for (const auto& input : op.inputs) {
            const OpId producer =
                remap[static_cast<std::size_t>(input.producer)];
            VEAL_ASSERT(producer != kNoOp);
            new_op.inputs.emplace_back(producer, input.distance);
        }
    }

    for (const auto& edge : loop.memoryEdges()) {
        out.addMemoryEdge(remap[static_cast<std::size_t>(edge.from)],
                          remap[static_cast<std::size_t>(edge.to)],
                          edge.distance);
    }

    // Recompute the feature class: inlining may have removed the only call.
    bool call_remains = false;
    for (const auto& op : out.operations())
        call_remains |= op.opcode == Opcode::kCall;
    if (call_remains) {
        out.setFeature(LoopFeature::kHasSubroutineCall);
    } else if (loop.feature() == LoopFeature::kHasSubroutineCall) {
        out.setFeature(LoopFeature::kModuloSchedulable);
    } else {
        out.setFeature(loop.feature());
    }

    if (auto error = out.verify())
        panic("inlineCalls produced a malformed loop: ", *error);
    return out;
}

namespace {

/**
 * State for materialising one fission partition: an output loop plus the
 * remapping/cloning machinery that resolves operands against it.
 */
class PartitionBuilder {
  public:
    PartitionBuilder(const Loop& source, const LoopAnalysis& analysis,
                     const std::vector<int>& partition_of, int index,
                     std::string name)
        : source_(source), analysis_(analysis),
          partition_of_(partition_of), index_(index), out_(std::move(name)),
          remap_(static_cast<std::size_t>(source.size()), kNoOp)
    {
        out_.setTripCount(source.tripCount());
    }

    /** True when @p id is cloned on demand instead of communicated. */
    bool
    isCloneable(OpId id) const
    {
        const Operation& op = source_.op(id);
        if (op.isValueSource())
            return true;
        const auto role = analysis_.roles[static_cast<std::size_t>(id)];
        if (role == OpRole::kControl || role == OpRole::kAddress)
            return true;
        // Loads re-materialise from their original stream in any consumer
        // partition; this reuses an existing stream instead of a comm one.
        return op.opcode == Opcode::kLoad;
    }

    /** Create empty slots for this partition's owned ops (pass 1). */
    void
    reserveOwned()
    {
        for (const auto& op : source_.operations()) {
            if (partition_of_[static_cast<std::size_t>(op.id)] != index_)
                continue;
            if (isCloneable(op.id))
                continue;  // Materialised on demand.
            Operation copy = op;
            copy.id = kNoOp;
            copy.inputs.clear();
            remap_[static_cast<std::size_t>(op.id)] =
                out_.addOperation(copy);
        }
    }

    /** Wire inputs of owned ops, inserting clones / comm loads (pass 2). */
    bool
    wireOwned()
    {
        for (const auto& op : source_.operations()) {
            const OpId new_id = remap_[static_cast<std::size_t>(op.id)];
            if (new_id == kNoOp ||
                partition_of_[static_cast<std::size_t>(op.id)] != index_) {
                continue;
            }
            for (const auto& input : op.inputs) {
                const auto resolved = resolve(input);
                if (!resolved.has_value())
                    return false;
                out_.mutableOp(new_id).inputs.push_back(*resolved);
            }
        }
        return true;
    }

    /** Append a comm store publishing @p id's value for later partitions. */
    void
    addCommStore(OpId id)
    {
        const OpId value = remap_[static_cast<std::size_t>(id)];
        VEAL_ASSERT(value != kNoOp, "comm store for unmaterialised op ", id);
        const OpId store =
            appendOp(out_, Opcode::kStore,
                     {Operand{commIv(), 0}, Operand{value, 0}}, 0);
        out_.mutableOp(store).symbol = commArray(id);
    }

    /** Clone the loop-back control into this partition. */
    bool
    cloneControl()
    {
        for (const auto& op : source_.operations()) {
            if (op.opcode != Opcode::kBranch)
                continue;
            return cloneOp(op.id) != kNoOp;
        }
        return true;  // Loop had no branch; nothing to clone.
    }

    /** Copy memory edges whose endpoints both live in this partition. */
    void
    copyMemoryEdges()
    {
        for (const auto& edge : source_.memoryEdges()) {
            const OpId from = remap_[static_cast<std::size_t>(edge.from)];
            const OpId to = remap_[static_cast<std::size_t>(edge.to)];
            if (from != kNoOp && to != kNoOp)
                out_.addMemoryEdge(from, to, edge.distance);
        }
    }

    /** Number of comm streams (loads + stores) this partition added. */
    int commStreams() const { return comm_streams_; }

    Loop take() { return std::move(out_); }

  private:
    static std::string
    commArray(OpId producer)
    {
        return "fiss_comm_v" + std::to_string(producer);
    }

    /** Lazily create the unit-stride induction used for comm indexing. */
    OpId
    commIv()
    {
        if (comm_iv_ != kNoOp)
            return comm_iv_;
        const OpId step = appendOp(out_, Opcode::kConst, {}, 1);
        Operation op;
        op.opcode = Opcode::kAdd;
        op.is_induction = true;
        comm_iv_ = out_.addOperation(std::move(op));
        out_.mutableOp(comm_iv_).inputs = {Operand{comm_iv_, 1},
                                           Operand{step, 0}};
        return comm_iv_;
    }

    /** Resolve a source operand into this partition's id space. */
    std::optional<Operand>
    resolve(const Operand& operand)
    {
        const OpId mapped =
            remap_[static_cast<std::size_t>(operand.producer)];
        if (mapped != kNoOp)
            return Operand{mapped, operand.distance};
        if (isCloneable(operand.producer)) {
            const OpId clone = cloneOp(operand.producer);
            if (clone == kNoOp) {
                FISSION_TRACE("fission: clone failed while resolving operand\n");
                return std::nullopt;
            }
            return Operand{clone, operand.distance};
        }
        const int producer_partition =
            partition_of_[static_cast<std::size_t>(operand.producer)];
        if (producer_partition >= index_) {
            // Carried value from a later partition: fission impossible.
            FISSION_TRACE("fission: carried value from a later partition\n");
            return std::nullopt;
        }
        return commLoad(operand.producer, operand.distance);
    }

    /** Clone a control/address/source/load op (memoised per source id). */
    OpId
    cloneOp(OpId id)
    {
        const OpId existing = remap_[static_cast<std::size_t>(id)];
        if (existing != kNoOp)
            return existing;
        const Operation& op = source_.op(id);
        VEAL_ASSERT(isCloneable(id), "cloning non-cloneable op ", id);

        Operation copy = op;
        copy.id = kNoOp;
        copy.inputs.clear();
        const OpId new_id = out_.addOperation(copy);
        remap_[static_cast<std::size_t>(id)] = new_id;
        for (const auto& input : op.inputs) {
            if (input.producer == id) {
                // Induction self edge.
                out_.mutableOp(new_id).inputs.emplace_back(new_id,
                                                           input.distance);
                continue;
            }
            const auto resolved = resolve(input);
            if (!resolved.has_value())
                return kNoOp;
            out_.mutableOp(new_id).inputs.push_back(*resolved);
        }
        return new_id;
    }

    /** Read a value produced by an earlier partition via its comm array. */
    std::optional<Operand>
    commLoad(OpId producer, int distance)
    {
        const auto key = std::make_pair(producer, distance);
        if (const auto it = comm_loads_.find(key); it != comm_loads_.end())
            return Operand{it->second, 0};
        Operand address{commIv(), 0};
        if (distance != 0) {
            const OpId delta = appendOp(out_, Opcode::kConst, {}, -distance);
            address = Operand{
                appendOp(out_, Opcode::kAdd,
                         {Operand{commIv(), 0}, Operand{delta, 0}}),
                0};
        }
        const OpId load = appendOp(out_, Opcode::kLoad, {address}, 0);
        out_.mutableOp(load).symbol = commArray(producer);
        comm_loads_[key] = load;
        ++comm_streams_;
        return Operand{load, 0};
    }

    const Loop& source_;
    const LoopAnalysis& analysis_;
    const std::vector<int>& partition_of_;
    const int index_;
    Loop out_;
    std::vector<OpId> remap_;
    std::map<std::pair<OpId, int>, OpId> comm_loads_;
    OpId comm_iv_ = kNoOp;
    int comm_streams_ = 0;
};

/** Try one fission with the given store budget; nullopt on any failure. */
std::optional<FissionResult>
tryFission(const Loop& loop, const LoopAnalysis& analysis,
           const FissionBudget& budget, int store_budget)
{
    const int max_load_streams = budget.max_load_streams;
    const int max_store_streams = budget.max_store_streams;
    const int n = loop.size();

    // Build the full dependence graph (all distances) and its SCCs.
    std::vector<std::pair<int, int>> edges;
    for (const auto& edge : loop.allEdges())
        edges.emplace_back(edge.from, edge.to);
    const auto components = stronglyConnectedComponents(n, edges);

    // Pack in a topological order of the condensation that follows
    // program order (min op id) among ready components: this keeps each
    // value chain (load -> convert -> multiply -> accumulate) contiguous,
    // so partition boundaries cut few values.
    std::vector<int> scc_of(static_cast<std::size_t>(n), -1);
    for (std::size_t c = 0; c < components.size(); ++c) {
        for (const int member : components[c])
            scc_of[static_cast<std::size_t>(member)] = static_cast<int>(c);
    }
    const int num_sccs = static_cast<int>(components.size());
    std::vector<std::set<int>> scc_succs(
        static_cast<std::size_t>(num_sccs));
    std::vector<int> scc_in_degree(static_cast<std::size_t>(num_sccs), 0);
    for (const auto& [from, to] : edges) {
        const int a = scc_of[static_cast<std::size_t>(from)];
        const int b = scc_of[static_cast<std::size_t>(to)];
        if (a != b && scc_succs[static_cast<std::size_t>(a)].insert(b)
                          .second) {
            ++scc_in_degree[static_cast<std::size_t>(b)];
        }
    }
    // Min-heap keyed by the component's smallest op id.
    auto min_id = [&](int c) {
        return components[static_cast<std::size_t>(c)].front();
    };
    std::set<std::pair<int, int>> ready;  // (min op id, scc index)
    for (int c = 0; c < num_sccs; ++c) {
        if (scc_in_degree[static_cast<std::size_t>(c)] == 0)
            ready.insert({min_id(c), c});
    }
    std::vector<std::vector<int>> sccs;
    sccs.reserve(components.size());
    while (!ready.empty()) {
        const auto [key, c] = *ready.begin();
        ready.erase(ready.begin());
        sccs.push_back(components[static_cast<std::size_t>(c)]);
        for (const int succ : scc_succs[static_cast<std::size_t>(c)]) {
            if (--scc_in_degree[static_cast<std::size_t>(succ)] == 0)
                ready.insert({min_id(succ), succ});
        }
    }
    VEAL_ASSERT(sccs.size() == components.size(),
                "condensation is not a DAG");

    auto is_owned_op = [&](OpId id) {
        const Operation& op = loop.op(id);
        if (op.isValueSource() || op.isControl())
            return false;
        const auto role = analysis.roles[static_cast<std::size_t>(id)];
        if (role == OpRole::kControl || role == OpRole::kAddress)
            return false;
        return true;  // compute, loads, stores
    };

    // Greedy packing of owned SCCs into partitions.
    std::vector<int> partition_of(static_cast<std::size_t>(n), -1);
    int current = 0;
    bool current_has_ops = false;
    std::set<std::string> cur_load_bases;
    std::set<std::string> cur_store_bases;
    std::set<OpId> cur_comm_in;
    int cur_int_ops = 0;
    int cur_fp_ops = 0;

    auto scc_op_counts = [&](const std::vector<int>& scc, int* int_ops,
                             int* fp_ops) {
        *int_ops = 0;
        *fp_ops = 0;
        for (const int id : scc) {
            if (analysis.roles[static_cast<std::size_t>(id)] !=
                OpRole::kCompute) {
                continue;
            }
            const auto& info = opcodeInfo(loop.op(id).opcode);
            *int_ops += info.is_integer ? 1 : 0;
            *fp_ops += info.is_float ? 1 : 0;
        }
    };

    auto stream_key = [&](const StreamDescriptor& s) {
        return s.base + "@" + std::to_string(s.offset) + "@" +
               std::to_string(s.stride);
    };

    auto usage_if_added = [&](const std::vector<int>& scc, auto& loads,
                              auto& stores, auto& comm_in) {
        loads = cur_load_bases;
        stores = cur_store_bases;
        comm_in = cur_comm_in;
        for (const int id : scc) {
            const Operation& op = loop.op(id);
            if (op.opcode == Opcode::kLoad) {
                loads.insert(stream_key(
                    analysis.load_streams[static_cast<std::size_t>(
                        analysis.stream_of_op[static_cast<std::size_t>(
                            id)])]));
            } else if (op.opcode == Opcode::kStore) {
                stores.insert(stream_key(
                    analysis.store_streams[static_cast<std::size_t>(
                        analysis.stream_of_op[static_cast<std::size_t>(
                            id)])]));
            }
            for (const auto& input : op.inputs) {
                const OpId p = input.producer;
                const auto role =
                    analysis.roles[static_cast<std::size_t>(p)];
                const Operation& producer = loop.op(p);
                if (producer.isValueSource() ||
                    role == OpRole::kControl || role == OpRole::kAddress) {
                    continue;  // cloned, not communicated
                }
                if (producer.opcode == Opcode::kLoad) {
                    // Re-materialised from the original stream.
                    if (partition_of[static_cast<std::size_t>(p)] != -1 &&
                        partition_of[static_cast<std::size_t>(p)] !=
                            current) {
                        loads.insert(stream_key(
                            analysis.load_streams[static_cast<std::size_t>(
                                analysis.stream_of_op
                                    [static_cast<std::size_t>(p)])]));
                    }
                    continue;
                }
                if (partition_of[static_cast<std::size_t>(p)] != -1 &&
                    partition_of[static_cast<std::size_t>(p)] != current) {
                    comm_in.insert(p);
                }
            }
        }
    };

    for (const auto& scc : sccs) {
        std::vector<int> owned;
        for (const int id : scc) {
            if (is_owned_op(id))
                owned.push_back(id);
        }
        if (owned.empty())
            continue;

        std::set<std::string> loads, stores;
        std::set<OpId> comm_in;
        usage_if_added(owned, loads, stores, comm_in);
        int scc_int = 0;
        int scc_fp = 0;
        scc_op_counts(owned, &scc_int, &scc_fp);
        bool fits =
            static_cast<int>(loads.size() + comm_in.size()) <=
                max_load_streams &&
            static_cast<int>(stores.size()) <= store_budget &&
            cur_int_ops + scc_int <= budget.max_int_ops &&
            cur_fp_ops + scc_fp <= budget.max_fp_ops;
        if (!fits && current_has_ops) {
            // Close the current partition and retry in a fresh one.
            ++current;
            cur_load_bases.clear();
            cur_store_bases.clear();
            cur_comm_in.clear();
            cur_int_ops = 0;
            cur_fp_ops = 0;
            usage_if_added(owned, loads, stores, comm_in);
            fits = static_cast<int>(loads.size() + comm_in.size()) <=
                       max_load_streams &&
                   static_cast<int>(stores.size()) <= store_budget &&
                   scc_int <= budget.max_int_ops &&
                   scc_fp <= budget.max_fp_ops;
        }
        if (!fits) {
            FISSION_TRACE("fission: a single SCC exceeds the budget\n");
            return std::nullopt;  // A single SCC exceeds the budget.
        }
        cur_load_bases = std::move(loads);
        cur_store_bases = std::move(stores);
        cur_comm_in = std::move(comm_in);
        cur_int_ops += scc_int;
        cur_fp_ops += scc_fp;
        current_has_ops = true;
        for (const int id : owned)
            partition_of[static_cast<std::size_t>(id)] = current;
    }

    const int num_partitions = current + 1;
    if (num_partitions < 2) {
        FISSION_TRACE("fission: nothing was actually split\n");
        return std::nullopt;  // Nothing was actually split.
    }

    // Which owned compute ops are consumed by later partitions?
    std::vector<std::set<OpId>> comm_out(
        static_cast<std::size_t>(num_partitions));
    for (const auto& op : loop.operations()) {
        const int consumer_partition =
            partition_of[static_cast<std::size_t>(op.id)];
        for (const auto& input : op.inputs) {
            const OpId p = input.producer;
            const int producer_partition =
                partition_of[static_cast<std::size_t>(p)];
            if (producer_partition == -1 || producer_partition ==
                consumer_partition) {
                continue;
            }
            if (loop.op(p).opcode == Opcode::kLoad)
                continue;  // Re-materialised, not communicated.
            if (consumer_partition == -1 ||
                producer_partition > consumer_partition) {
                FISSION_TRACE("fission: backward cross-partition flow\n");
                return std::nullopt;  // Backward cross-partition flow.
            }
            comm_out[static_cast<std::size_t>(producer_partition)]
                .insert(p);
        }
    }

    // Materialise each partition.
    FissionResult result;
    for (int p = 0; p < num_partitions; ++p) {
        PartitionBuilder builder(
            loop, analysis, partition_of, p,
            loop.name() + ".fiss" + std::to_string(p));
        builder.reserveOwned();
        if (!builder.wireOwned() || !builder.cloneControl()) {
            FISSION_TRACE("fission: partition wiring/control cloning failed\n");
            return std::nullopt;
        }
        for (const OpId id : comm_out[static_cast<std::size_t>(p)])
            builder.addCommStore(id);
        builder.copyMemoryEdges();
        result.comm_streams += builder.commStreams() +
            static_cast<int>(comm_out[static_cast<std::size_t>(p)].size());
        Loop piece = builder.take();
        if (piece.verify().has_value()) {
            FISSION_TRACE("fission: materialised piece failed verification\n");
            return std::nullopt;
        }
        result.loops.push_back(std::move(piece));
    }

    // Final validation: every piece must fit the *real* budgets.
    for (const auto& piece : result.loops) {
        const auto piece_analysis = analyzeLoop(piece);
        int piece_int = 0;
        int piece_fp = 0;
        if (piece_analysis.ok()) {
            for (const auto& op : piece.operations()) {
                if (piece_analysis.roles[static_cast<std::size_t>(
                        op.id)] != OpRole::kCompute) {
                    continue;
                }
                const auto& info = opcodeInfo(op.opcode);
                piece_int += info.is_integer ? 1 : 0;
                piece_fp += info.is_float ? 1 : 0;
            }
        }
        if (!piece_analysis.ok() ||
            static_cast<int>(piece_analysis.load_streams.size()) >
                max_load_streams ||
            static_cast<int>(piece_analysis.store_streams.size()) >
                max_store_streams ||
            piece_int > budget.max_int_ops ||
            piece_fp > budget.max_fp_ops) {
            FISSION_TRACE("fission: piece %s ok=%d loads=%zu stores=%zu "
                          "budget=%d/%d reject=%s\n",
                          piece.name().c_str(),
                          piece_analysis.ok() ? 1 : 0,
                          piece_analysis.load_streams.size(),
                          piece_analysis.store_streams.size(),
                          max_load_streams, max_store_streams,
                          toString(piece_analysis.reject));
            return std::nullopt;
        }
    }
    return result;
}

}  // namespace

std::optional<FissionResult>
fissionLoop(const Loop& loop, int max_load_streams, int max_store_streams)
{
    FissionBudget budget;
    budget.max_load_streams = max_load_streams;
    budget.max_store_streams = max_store_streams;
    return fissionLoop(loop, budget);
}

std::optional<FissionResult>
fissionLoop(const Loop& loop, const FissionBudget& budget)
{
    if (budget.max_load_streams < 1 || budget.max_store_streams < 1) {
        FISSION_TRACE("fission: degenerate budget\n");
        return std::nullopt;
    }
    const auto analysis = analyzeLoop(loop);
    if (!analysis.ok()) {
        FISSION_TRACE("fission: analysis rejected\n");
        return std::nullopt;
    }
    int total_int = 0;
    int total_fp = 0;
    for (const auto& op : loop.operations()) {
        if (analysis.roles[static_cast<std::size_t>(op.id)] !=
            OpRole::kCompute) {
            continue;
        }
        const auto& info = opcodeInfo(op.opcode);
        total_int += info.is_integer ? 1 : 0;
        total_fp += info.is_float ? 1 : 0;
    }
    if (static_cast<int>(analysis.load_streams.size()) <=
            budget.max_load_streams &&
        static_cast<int>(analysis.store_streams.size()) <=
            budget.max_store_streams &&
        total_int <= budget.max_int_ops && total_fp <= budget.max_fp_ops) {
        FISSION_TRACE("fission: already fits\n");
        return std::nullopt;  // Already fits; fission would only add traffic.
    }

    // Comm stores eat into the store budget only once the partition's
    // consumers are known, so retry with progressively tighter budgets.
    for (int store_budget = budget.max_store_streams; store_budget >= 1;
         --store_budget) {
        if (auto result = tryFission(loop, analysis, budget,
                                     store_budget)) {
            return result;
        }
    }
    FISSION_TRACE("fission: no feasible partitioning\n");
    return std::nullopt;
}

}  // namespace veal
