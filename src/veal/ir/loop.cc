#include "veal/ir/loop.h"

#include <algorithm>
#include <sstream>

#include "veal/support/assert.h"

namespace veal {

const char*
toString(LoopFeature feature)
{
    switch (feature) {
      case LoopFeature::kModuloSchedulable: return "modulo-schedulable";
      case LoopFeature::kNeedsSpeculation: return "needs-speculation";
      case LoopFeature::kHasSubroutineCall: return "subroutine-call";
    }
    return "unknown";
}

Loop::Loop(std::string name) : name_(std::move(name)) {}

OpId
Loop::addOperation(Operation op)
{
    const OpId id = static_cast<OpId>(ops_.size());
    VEAL_ASSERT(op.id == kNoOp || op.id == id,
                "operation id ", op.id, " does not match slot ", id);
    op.id = id;
    ops_.push_back(std::move(op));
    return id;
}

const Operation&
Loop::op(OpId id) const
{
    VEAL_ASSERT(id >= 0 && id < size(), "bad op id ", id);
    return ops_[static_cast<std::size_t>(id)];
}

Operation&
Loop::mutableOp(OpId id)
{
    VEAL_ASSERT(id >= 0 && id < size(), "bad op id ", id);
    return ops_[static_cast<std::size_t>(id)];
}

void
Loop::addMemoryEdge(OpId from, OpId to, int distance)
{
    memory_edges_.push_back(DepEdge{from, to, distance, /*is_memory=*/true});
}

std::vector<DepEdge>
Loop::allEdges() const
{
    std::vector<DepEdge> edges;
    for (const auto& operation : ops_) {
        for (const auto& input : operation.inputs) {
            edges.push_back(DepEdge{input.producer, operation.id,
                                    input.distance, /*is_memory=*/false});
        }
    }
    edges.insert(edges.end(), memory_edges_.begin(), memory_edges_.end());
    return edges;
}

std::vector<std::vector<Operand>>
Loop::useLists() const
{
    std::vector<std::vector<Operand>> uses(ops_.size());
    for (const auto& operation : ops_) {
        for (const auto& input : operation.inputs) {
            uses[static_cast<std::size_t>(input.producer)].push_back(
                Operand{operation.id, input.distance});
        }
    }
    return uses;
}

std::vector<OpId>
Loop::topologicalOrder() const
{
    const int n = size();
    std::vector<int> in_degree(static_cast<std::size_t>(n), 0);
    std::vector<std::vector<OpId>> succs(static_cast<std::size_t>(n));
    for (const auto& edge : allEdges()) {
        if (edge.distance != 0)
            continue;
        succs[static_cast<std::size_t>(edge.from)].push_back(edge.to);
        ++in_degree[static_cast<std::size_t>(edge.to)];
    }

    std::vector<OpId> ready;
    for (OpId id = 0; id < n; ++id) {
        if (in_degree[static_cast<std::size_t>(id)] == 0)
            ready.push_back(id);
    }

    std::vector<OpId> order;
    order.reserve(static_cast<std::size_t>(n));
    // Pop the smallest ready id to keep the order deterministic.
    while (!ready.empty()) {
        const auto it = std::min_element(ready.begin(), ready.end());
        const OpId id = *it;
        ready.erase(it);
        order.push_back(id);
        for (const OpId succ : succs[static_cast<std::size_t>(id)]) {
            if (--in_degree[static_cast<std::size_t>(succ)] == 0)
                ready.push_back(succ);
        }
    }
    VEAL_ASSERT(static_cast<int>(order.size()) == n,
                "distance-0 cycle in loop ", name_,
                "; run verify() before scheduling");
    return order;
}

std::optional<std::string>
Loop::verify() const
{
    const int n = size();
    int branch_count = 0;
    for (const auto& operation : ops_) {
        for (const auto& input : operation.inputs) {
            if (input.producer < 0 || input.producer >= n) {
                return "op " + std::to_string(operation.id) +
                       " reads undefined producer " +
                       std::to_string(input.producer);
            }
            if (input.distance < 0) {
                return "op " + std::to_string(operation.id) +
                       " has negative dependence distance";
            }
            if (input.producer == operation.id && input.distance == 0) {
                return "op " + std::to_string(operation.id) +
                       " has a zero-distance self edge";
            }
        }
        if (operation.isValueSource() && !operation.inputs.empty()) {
            return "value source op " + std::to_string(operation.id) +
                   " has inputs";
        }
        if (operation.opcode == Opcode::kLoad &&
            operation.inputs.size() != 1) {
            return "load op " + std::to_string(operation.id) +
                   " must have exactly one (address) input";
        }
        if (operation.opcode == Opcode::kStore &&
            operation.inputs.size() != 2) {
            return "store op " + std::to_string(operation.id) +
                   " must have exactly (address, value) inputs";
        }
        if (operation.opcode == Opcode::kBranch)
            ++branch_count;
    }
    if (branch_count > 1)
        return "loop has " + std::to_string(branch_count) + " branches";

    for (const auto& edge : memory_edges_) {
        if (edge.from < 0 || edge.from >= n || edge.to < 0 || edge.to >= n)
            return "memory edge references undefined op";
        if (!op(edge.from).isMemory() || !op(edge.to).isMemory())
            return "memory edge endpoints must be memory operations";
        if (edge.distance < 0)
            return "memory edge has negative distance";
        if (edge.from == edge.to && edge.distance == 0)
            return "memory edge is a zero-distance self edge";
    }

    // Detect distance-0 cycles with an explicit DFS (three-colour).
    enum class Colour { kWhite, kGrey, kBlack };
    std::vector<std::vector<OpId>> succs(static_cast<std::size_t>(n));
    for (const auto& edge : allEdges()) {
        if (edge.distance == 0)
            succs[static_cast<std::size_t>(edge.from)].push_back(edge.to);
    }
    std::vector<Colour> colour(static_cast<std::size_t>(n), Colour::kWhite);
    for (OpId root = 0; root < n; ++root) {
        if (colour[static_cast<std::size_t>(root)] != Colour::kWhite)
            continue;
        // Iterative DFS: stack of (node, next-successor-index).
        std::vector<std::pair<OpId, std::size_t>> stack{{root, 0}};
        colour[static_cast<std::size_t>(root)] = Colour::kGrey;
        while (!stack.empty()) {
            auto& [node, next] = stack.back();
            const auto& out = succs[static_cast<std::size_t>(node)];
            if (next < out.size()) {
                const OpId succ = out[next++];
                auto& c = colour[static_cast<std::size_t>(succ)];
                if (c == Colour::kGrey) {
                    return "distance-0 dependence cycle through op " +
                           std::to_string(succ);
                }
                if (c == Colour::kWhite) {
                    c = Colour::kGrey;
                    stack.emplace_back(succ, 0);
                }
            } else {
                colour[static_cast<std::size_t>(node)] = Colour::kBlack;
                stack.pop_back();
            }
        }
    }
    return std::nullopt;
}

std::string
Loop::toDot() const
{
    std::ostringstream os;
    os << "digraph \"" << name_ << "\" {\n";
    for (const auto& operation : ops_) {
        os << "  n" << operation.id << " [label=\"" << operation.id << ": "
           << toString(operation.opcode);
        if (operation.opcode == Opcode::kConst)
            os << " " << operation.immediate;
        if (!operation.symbol.empty())
            os << " [" << operation.symbol << "]";
        os << "\"];\n";
    }
    for (const auto& edge : allEdges()) {
        os << "  n" << edge.from << " -> n" << edge.to;
        if (edge.distance != 0 || edge.is_memory) {
            os << " [label=\"" << edge.distance << "\""
               << (edge.is_memory ? ", style=dashed" : "")
               << (edge.distance != 0 ? ", constraint=false" : "") << "]";
        }
        os << ";\n";
    }
    os << "}\n";
    return os.str();
}

}  // namespace veal
