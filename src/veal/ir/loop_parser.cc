#include "veal/ir/loop_parser.h"

#include <map>
#include <sstream>
#include <vector>

#include "veal/support/assert.h"

namespace veal {

namespace {

/** Opcode mnemonics accepted for plain compute statements. */
const std::map<std::string, Opcode>&
opcodeByName()
{
    static const std::map<std::string, Opcode> table = {
        {"add", Opcode::kAdd},     {"sub", Opcode::kSub},
        {"mul", Opcode::kMul},     {"mpy", Opcode::kMul},
        {"div", Opcode::kDiv},     {"shl", Opcode::kShl},
        {"shr", Opcode::kShr},     {"and", Opcode::kAnd},
        {"or", Opcode::kOr},       {"xor", Opcode::kXor},
        {"not", Opcode::kNot},     {"cmp", Opcode::kCmp},
        {"select", Opcode::kSelect}, {"min", Opcode::kMin},
        {"max", Opcode::kMax},     {"abs", Opcode::kAbs},
        {"fadd", Opcode::kFAdd},   {"fsub", Opcode::kFSub},
        {"fmul", Opcode::kFMul},   {"fdiv", Opcode::kFDiv},
        {"fsqrt", Opcode::kFSqrt}, {"fcmp", Opcode::kFCmp},
        {"fabs", Opcode::kFAbs},   {"itof", Opcode::kItoF},
        {"ftoi", Opcode::kFtoI},
    };
    return table;
}

/** A raw operand token: name plus optional @distance. */
struct OperandRef {
    std::string name;
    int distance = 0;
    int line = 0;
};

struct PendingOp {
    OpId id = kNoOp;
    std::vector<OperandRef> refs;  ///< Resolved into inputs in pass 2.
};

std::vector<std::string>
tokenize(const std::string& line)
{
    std::vector<std::string> tokens;
    std::istringstream stream(line);
    std::string token;
    while (stream >> token) {
        if (token[0] == '#')
            break;
        tokens.push_back(token);
    }
    return tokens;
}

bool
parseInteger(const std::string& text, std::int64_t* out)
{
    try {
        std::size_t consumed = 0;
        *out = std::stoll(text, &consumed, 0);
        return consumed == text.size();
    } catch (...) {
        return false;
    }
}

OperandRef
parseOperandRef(const std::string& token, int line)
{
    OperandRef ref;
    ref.line = line;
    const auto at = token.find('@');
    if (at == std::string::npos) {
        ref.name = token;
    } else {
        ref.name = token.substr(0, at);
        std::int64_t distance = 0;
        if (!parseInteger(token.substr(at + 1), &distance) || distance < 0)
            ref.distance = -1;  // Flagged as invalid during resolution.
        else
            ref.distance = static_cast<int>(distance);
    }
    return ref;
}

}  // namespace

ParseResult
parseLoop(const std::string& text)
{
    if (text.size() > kMaxParseBytes) {
        return ParseResult(ParseError{
            1, "input is " + std::to_string(text.size()) +
                   " bytes; the parser accepts at most " +
                   std::to_string(kMaxParseBytes)});
    }

    std::istringstream stream(text);
    std::string line;
    int line_number = 0;

    std::string loop_name;
    std::int64_t trip_count = 100;
    bool speculative = false;
    bool saw_loopback = false;

    std::vector<Operation> ops;
    std::vector<PendingOp> pending;
    std::map<std::string, OpId> names;
    std::vector<std::string> live_outs;
    struct MemEdge {
        OperandRef from, to;
        int distance;
    };
    std::vector<MemEdge> memory_edges;
    struct LoopBack {
        OperandRef iv, bound;
        int line;
    };
    std::vector<LoopBack> loopbacks;

    auto fail = [&](const std::string& message) {
        return ParseResult(ParseError{line_number, message});
    };
    auto new_op = [&](Opcode opcode) {
        Operation op;
        op.opcode = opcode;
        op.id = static_cast<OpId>(ops.size());
        ops.push_back(op);
        return op.id;
    };
    auto define = [&](const std::string& name, OpId id) {
        if (names.contains(name))
            return false;
        names[name] = id;
        return true;
    };

    // ---- Pass 1: build ops, queue operand references.
    while (std::getline(stream, line)) {
        ++line_number;
        if (line.size() > kMaxParseLineBytes) {
            return fail("line is " + std::to_string(line.size()) +
                        " bytes; the parser accepts at most " +
                        std::to_string(kMaxParseLineBytes) + " per line");
        }
        // Each statement adds at most two operations (induction splits
        // into a step constant plus an add), so checking at line
        // granularity keeps the bound tight and the diagnostic on the
        // offending line.
        if (ops.size() >= static_cast<std::size_t>(kMaxParseOperations)) {
            return fail("loop exceeds " +
                        std::to_string(kMaxParseOperations) +
                        " operations");
        }
        const auto tokens = tokenize(line);
        if (tokens.empty())
            continue;
        const std::string& head = tokens[0];

        if (head == "loop") {
            if (tokens.size() != 2)
                return fail("loop directive needs a name");
            loop_name = tokens[1];
            continue;
        }
        if (loop_name.empty())
            return fail("first statement must be 'loop <name>'");
        if (head == "trip") {
            if (tokens.size() != 2 ||
                !parseInteger(tokens[1], &trip_count) || trip_count < 1)
                return fail("trip needs a positive integer");
            continue;
        }
        if (head == "speculative") {
            speculative = true;
            continue;
        }
        if (head == "liveout") {
            if (tokens.size() != 2)
                return fail("liveout needs a value name");
            live_outs.push_back(tokens[1]);
            continue;
        }
        if (head == "memedge") {
            std::int64_t distance = 0;
            if (tokens.size() != 4 ||
                !parseInteger(tokens[3], &distance) || distance < 0)
                return fail("memedge needs <from> <to> <distance>");
            memory_edges.push_back(
                MemEdge{parseOperandRef(tokens[1], line_number),
                        parseOperandRef(tokens[2], line_number),
                        static_cast<int>(distance)});
            continue;
        }
        if (head == "loopback") {
            if (tokens.size() != 3)
                return fail("loopback needs <iv> <bound>");
            if (saw_loopback)
                return fail("duplicate loopback");
            saw_loopback = true;
            loopbacks.push_back(
                LoopBack{parseOperandRef(tokens[1], line_number),
                         parseOperandRef(tokens[2], line_number),
                         line_number});
            continue;
        }
        if (head == "branch") {
            // Back branch on an already-defined predicate, for loops
            // whose comparison has other consumers (loopback folds the
            // cmp in and would leave it unnamed).
            if (tokens.size() != 2)
                return fail("branch needs a predicate value");
            if (saw_loopback)
                return fail("duplicate loopback");
            saw_loopback = true;
            const OpId id = new_op(Opcode::kBranch);
            pending.push_back(PendingOp{
                id, {parseOperandRef(tokens[1], line_number)}});
            continue;
        }
        if (head == "store") {
            if (tokens.size() != 4)
                return fail("store needs <array> <addr> <value>");
            const OpId id = new_op(Opcode::kStore);
            ops[static_cast<std::size_t>(id)].symbol = tokens[1];
            pending.push_back(PendingOp{
                id,
                {parseOperandRef(tokens[2], line_number),
                 parseOperandRef(tokens[3], line_number)}});
            continue;
        }

        // Value definition: <name> = <op> ...
        if (tokens.size() < 3 || tokens[1] != "=")
            return fail("expected '<name> = <op> ...'");
        const std::string& name = tokens[0];
        const std::string& mnemonic = tokens[2];

        if (mnemonic == "induction") {
            if (tokens.size() != 4)
                return fail("induction needs a step");
            std::int64_t step = 0;
            OpId id = kNoOp;
            if (parseInteger(tokens[3], &step)) {
                // Literal step: materialise a private step constant.
                const OpId step_const = new_op(Opcode::kConst);
                ops[static_cast<std::size_t>(step_const)].immediate = step;
                id = new_op(Opcode::kAdd);
                ops[static_cast<std::size_t>(id)].inputs = {
                    Operand{id, 1}, Operand{step_const, 0}};
            } else {
                // Named step: reference an explicitly defined value, so
                // shared or live-out step constants round-trip exactly.
                id = new_op(Opcode::kAdd);
                ops[static_cast<std::size_t>(id)].inputs = {Operand{id, 1}};
                pending.push_back(PendingOp{
                    id, {parseOperandRef(tokens[3], line_number)}});
            }
            ops[static_cast<std::size_t>(id)].is_induction = true;
            if (!define(name, id))
                return fail("redefinition of '" + name + "'");
            continue;
        }
        if (mnemonic == "const") {
            std::int64_t value = 0;
            if (tokens.size() != 4 || !parseInteger(tokens[3], &value))
                return fail("const needs a literal value");
            const OpId id = new_op(Opcode::kConst);
            ops[static_cast<std::size_t>(id)].immediate = value;
            if (!define(name, id))
                return fail("redefinition of '" + name + "'");
            continue;
        }
        if (mnemonic == "livein") {
            if (tokens.size() > 4)
                return fail("livein takes at most a label");
            const OpId id = new_op(Opcode::kLiveIn);
            if (tokens.size() == 4)
                ops[static_cast<std::size_t>(id)].symbol = tokens[3];
            if (!define(name, id))
                return fail("redefinition of '" + name + "'");
            continue;
        }
        if (mnemonic == "load") {
            if (tokens.size() != 5)
                return fail("load needs <array> <addr>");
            const OpId id = new_op(Opcode::kLoad);
            ops[static_cast<std::size_t>(id)].symbol = tokens[3];
            pending.push_back(PendingOp{
                id, {parseOperandRef(tokens[4], line_number)}});
            if (!define(name, id))
                return fail("redefinition of '" + name + "'");
            continue;
        }
        if (mnemonic == "store") {
            // Named store: only needed (and only printed) when a memory
            // edge references the store.
            if (tokens.size() != 6)
                return fail("store needs <array> <addr> <value>");
            const OpId id = new_op(Opcode::kStore);
            ops[static_cast<std::size_t>(id)].symbol = tokens[3];
            pending.push_back(PendingOp{
                id,
                {parseOperandRef(tokens[4], line_number),
                 parseOperandRef(tokens[5], line_number)}});
            if (!define(name, id))
                return fail("redefinition of '" + name + "'");
            continue;
        }
        if (mnemonic == "call") {
            if (tokens.size() < 4)
                return fail("call needs a callee");
            const OpId id = new_op(Opcode::kCall);
            ops[static_cast<std::size_t>(id)].symbol = tokens[3];
            PendingOp entry{id, {}};
            for (std::size_t t = 4; t < tokens.size(); ++t)
                entry.refs.push_back(
                    parseOperandRef(tokens[t], line_number));
            pending.push_back(std::move(entry));
            if (!define(name, id))
                return fail("redefinition of '" + name + "'");
            continue;
        }

        const auto it = opcodeByName().find(mnemonic);
        if (it == opcodeByName().end())
            return fail("unknown opcode '" + mnemonic + "'");
        const OpId id = new_op(it->second);
        PendingOp entry{id, {}};
        for (std::size_t t = 3; t < tokens.size(); ++t)
            entry.refs.push_back(parseOperandRef(tokens[t], line_number));
        pending.push_back(std::move(entry));
        if (!define(name, id))
            return fail("redefinition of '" + name + "'");
    }
    line_number = 0;  // Errors below are not tied to one line.

    if (loop_name.empty())
        return ParseResult(ParseError{1, "missing 'loop <name>' header"});

    // ---- Pass 2: resolve references.
    auto resolve = [&](const OperandRef& ref,
                       Operand* out) -> std::optional<ParseError> {
        if (ref.distance < 0)
            return ParseError{ref.line, "bad carried distance on '" +
                                            ref.name + "'"};
        const auto it = names.find(ref.name);
        if (it == names.end())
            return ParseError{ref.line,
                              "undefined value '" + ref.name + "'"};
        *out = Operand{it->second, ref.distance};
        return std::nullopt;
    };

    Loop loop(loop_name);
    for (const auto& entry : pending) {
        for (const auto& ref : entry.refs) {
            Operand operand;
            if (auto error = resolve(ref, &operand))
                return ParseResult(*error);
            ops[static_cast<std::size_t>(entry.id)].inputs.push_back(
                operand);
        }
    }
    for (const auto& back : loopbacks) {
        Operand iv;
        Operand bound;
        if (auto error = resolve(back.iv, &iv))
            return ParseResult(*error);
        if (auto error = resolve(back.bound, &bound))
            return ParseResult(*error);
        Operation cmp;
        cmp.opcode = Opcode::kCmp;
        cmp.id = static_cast<OpId>(ops.size());
        cmp.inputs = {iv, bound};
        ops.push_back(cmp);
        Operation branch;
        branch.opcode = Opcode::kBranch;
        branch.id = static_cast<OpId>(ops.size());
        branch.inputs = {Operand{cmp.id, 0}};
        ops.push_back(branch);
    }

    for (auto& op : ops) {
        const OpId id = op.id;
        op.id = kNoOp;
        const OpId assigned = loop.addOperation(std::move(op));
        VEAL_ASSERT(assigned == id);
    }
    for (const auto& name : live_outs) {
        const auto it = names.find(name);
        if (it == names.end()) {
            return ParseResult(
                ParseError{0, "liveout of undefined value '" + name +
                                  "'"});
        }
        loop.mutableOp(it->second).is_live_out = true;
    }
    for (const auto& edge : memory_edges) {
        Operand from;
        Operand to;
        if (auto error = resolve(edge.from, &from))
            return ParseResult(*error);
        if (auto error = resolve(edge.to, &to))
            return ParseResult(*error);
        if (!loop.op(from.producer).isMemory() ||
            !loop.op(to.producer).isMemory()) {
            return ParseResult(ParseError{
                edge.from.line, "memedge endpoints must be memory ops"});
        }
        loop.addMemoryEdge(from.producer, to.producer, edge.distance);
    }

    loop.setTripCount(trip_count);
    bool has_call = false;
    for (const auto& op : loop.operations())
        has_call |= op.opcode == Opcode::kCall;
    if (has_call)
        loop.setFeature(LoopFeature::kHasSubroutineCall);
    else if (speculative)
        loop.setFeature(LoopFeature::kNeedsSpeculation);

    if (auto error = loop.verify())
        return ParseResult(ParseError{0, "malformed loop: " + *error});
    return ParseResult(std::move(loop));
}

std::string
printLoop(const Loop& loop)
{
    std::ostringstream os;
    os << "loop " << loop.name() << "\n";
    os << "trip " << loop.tripCount() << "\n";
    if (loop.feature() == LoopFeature::kNeedsSpeculation)
        os << "speculative\n";

    auto value_name = [](OpId id) { return "v" + std::to_string(id); };
    auto operand_text = [&](const Operand& operand) {
        std::string text = value_name(operand.producer);
        if (operand.distance != 0)
            text += "@" + std::to_string(operand.distance);
        return text;
    };

    // Step constants of inductions are folded into the induction line --
    // unless something else consumes them or they are live-out, in which
    // case they must keep a printable name.
    std::vector<bool> hidden(static_cast<std::size_t>(loop.size()), false);
    for (const auto& op : loop.operations()) {
        if (op.is_induction) {
            const Operation& step = loop.op(op.inputs[1].producer);
            bool only_step_use =
                step.opcode == Opcode::kConst && !step.is_live_out;
            for (const auto& other : loop.operations()) {
                for (const auto& input : other.inputs) {
                    if (input.producer == step.id && other.id != op.id)
                        only_step_use = false;
                }
            }
            if (only_step_use)
                hidden[static_cast<std::size_t>(step.id)] = true;
        }
    }

    // Stores normally print unnamed (they produce no value), but a store
    // referenced by a memory edge needs a name the memedge line can use.
    std::vector<bool> edge_endpoint(static_cast<std::size_t>(loop.size()),
                                    false);
    for (const auto& edge : loop.memoryEdges()) {
        edge_endpoint[static_cast<std::size_t>(edge.from)] = true;
        edge_endpoint[static_cast<std::size_t>(edge.to)] = true;
    }

    // A comparison folds into a `loopback` directive only when the back
    // branch is its sole consumer and it is not live-out; otherwise it
    // keeps its name and the branch is rendered as `branch <pred>`.
    std::vector<bool> folded_cmp(static_cast<std::size_t>(loop.size()),
                                 false);
    for (const auto& op : loop.operations()) {
        if (op.opcode != Opcode::kCmp || op.is_live_out)
            continue;
        bool feeds_branch = false;
        bool other_consumer = false;
        for (const auto& other : loop.operations()) {
            for (const auto& input : other.inputs) {
                if (input.producer != op.id)
                    continue;
                if (other.opcode == Opcode::kBranch)
                    feeds_branch = true;
                else
                    other_consumer = true;
            }
        }
        if (feeds_branch && !other_consumer)
            folded_cmp[static_cast<std::size_t>(op.id)] = true;
    }

    for (const auto& op : loop.operations()) {
        if (hidden[static_cast<std::size_t>(op.id)])
            continue;
        switch (op.opcode) {
          case Opcode::kConst:
            os << value_name(op.id) << " = const " << op.immediate
               << "\n";
            break;
          case Opcode::kLiveIn:
            os << value_name(op.id) << " = livein";
            if (!op.symbol.empty())
                os << " " << op.symbol;
            os << "\n";
            break;
          case Opcode::kLoad:
            os << value_name(op.id) << " = load " << op.symbol << " "
               << operand_text(op.inputs[0]) << "\n";
            break;
          case Opcode::kStore:
            if (edge_endpoint[static_cast<std::size_t>(op.id)])
                os << value_name(op.id) << " = ";
            os << "store " << op.symbol << " "
               << operand_text(op.inputs[0]) << " "
               << operand_text(op.inputs[1]) << "\n";
            break;
          case Opcode::kBranch:
            // A branch on a folded cmp is rendered (with the cmp) as a
            // loopback directive; otherwise it names its predicate.
            if (!folded_cmp[static_cast<std::size_t>(
                    op.inputs[0].producer)]) {
                os << "branch " << operand_text(op.inputs[0]) << "\n";
            }
            break;
          case Opcode::kCmp: {
            if (folded_cmp[static_cast<std::size_t>(op.id)]) {
                os << "loopback " << operand_text(op.inputs[0]) << " "
                   << operand_text(op.inputs[1]) << "\n";
            } else {
                os << value_name(op.id) << " = cmp "
                   << operand_text(op.inputs[0]) << " "
                   << operand_text(op.inputs[1]) << "\n";
            }
            break;
          }
          case Opcode::kCall: {
            os << value_name(op.id) << " = call " << op.symbol;
            for (const auto& input : op.inputs)
                os << " " << operand_text(input);
            os << "\n";
            break;
          }
          default: {
            if (op.is_induction) {
                // A hidden step constant folds into the induction line;
                // a named (shared/live-out/computed) step is referenced.
                const Operand& step = op.inputs[1];
                os << value_name(op.id) << " = induction ";
                if (hidden[static_cast<std::size_t>(step.producer)])
                    os << loop.op(step.producer).immediate;
                else
                    os << operand_text(step);
                os << "\n";
                break;
            }
            os << value_name(op.id) << " = " << toString(op.opcode);
            for (const auto& input : op.inputs)
                os << " " << operand_text(input);
            os << "\n";
            break;
          }
        }
    }
    for (const auto& op : loop.operations()) {
        if (op.is_live_out && !hidden[static_cast<std::size_t>(op.id)])
            os << "liveout " << value_name(op.id) << "\n";
    }
    for (const auto& edge : loop.memoryEdges()) {
        os << "memedge " << value_name(edge.from) << " "
           << value_name(edge.to) << " " << edge.distance << "\n";
    }
    return os.str();
}

}  // namespace veal
