#include "veal/ir/loop_analysis.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "veal/support/assert.h"

namespace veal {

const char*
toString(AnalysisReject reject)
{
    switch (reject) {
      case AnalysisReject::kNone: return "none";
      case AnalysisReject::kSubroutineCall: return "subroutine-call";
      case AnalysisReject::kNeedsSpeculation: return "needs-speculation";
      case AnalysisReject::kNonAffineAddress: return "non-affine-address";
      case AnalysisReject::kComplexControl: return "complex-control";
    }
    return "unknown";
}

namespace {

/**
 * A value expressed as an affine function of the iteration number n:
 *   value(n) = constant + stride * n + sum(symbolic loop-invariant terms).
 * Symbolic terms are live-ins and induction-variable start values, which
 * fold into an address generator's base address.
 */
struct Affine {
    bool valid = false;
    std::int64_t constant = 0;
    std::int64_t stride = 0;
    /// (op id of the symbol, coefficient); sorted, coefficients non-zero.
    std::vector<std::pair<OpId, std::int64_t>> symbols;
};

void
addSymbol(Affine* a, OpId symbol, std::int64_t coeff)
{
    for (auto& term : a->symbols) {
        if (term.first == symbol) {
            term.second += coeff;
            if (term.second == 0) {
                std::erase_if(a->symbols,
                              [&](const auto& t) { return t.second == 0; });
            }
            return;
        }
    }
    if (coeff != 0) {
        a->symbols.emplace_back(symbol, coeff);
        std::sort(a->symbols.begin(), a->symbols.end());
    }
}

Affine
combine(const Affine& a, const Affine& b, std::int64_t sign)
{
    Affine out;
    out.valid = true;
    out.constant = a.constant + sign * b.constant;
    out.stride = a.stride + sign * b.stride;
    out.symbols = a.symbols;
    for (const auto& [symbol, coeff] : b.symbols)
        addSymbol(&out, symbol, sign * coeff);
    return out;
}

Affine
scale(const Affine& a, std::int64_t factor)
{
    Affine out;
    out.valid = true;
    out.constant = a.constant * factor;
    out.stride = a.stride * factor;
    for (const auto& [symbol, coeff] : a.symbols)
        addSymbol(&out, symbol, coeff * factor);
    return out;
}

/** Evaluates affine forms of loop values with memoization. */
class AffineEvaluator {
  public:
    AffineEvaluator(const Loop& loop, CostMeter* meter)
        : loop_(loop), meter_(meter),
          cache_(static_cast<std::size_t>(loop.size()))
    {}

    /** Affine form of @p operand (value produced `distance` iters ago). */
    Affine
    evaluate(const Operand& operand)
    {
        Affine base = evaluateOp(operand.producer);
        if (!base.valid || operand.distance == 0)
            return base;
        // value(n - d) = value(n) - d * stride.
        Affine shifted = base;
        shifted.constant -= operand.distance * base.stride;
        return shifted;
    }

  private:
    Affine
    evaluateOp(OpId id)
    {
        auto& slot = cache_[static_cast<std::size_t>(id)];
        if (slot.has_value())
            return *slot;
        if (meter_ != nullptr)
            meter_->charge(TranslationPhase::kLoopAnalysis, 1);

        // Seed the cache with invalid to terminate unexpected cycles.
        slot = Affine{};
        const Operation& op = loop_.op(id);
        Affine result;
        switch (op.opcode) {
          case Opcode::kConst:
            result.valid = true;
            result.constant = op.immediate;
            break;
          case Opcode::kLiveIn:
            result.valid = true;
            addSymbol(&result, id, 1);
            break;
          case Opcode::kAdd:
            if (op.is_induction) {
                // i(n) = i0 + step * n; step is inputs[1] (a constant).
                const Operation& step_op = loop_.op(op.inputs[1].producer);
                if (step_op.opcode == Opcode::kConst) {
                    result.valid = true;
                    result.stride = step_op.immediate;
                    addSymbol(&result, id, 1);  // symbolic start value
                }
            } else {
                const Affine a = evaluate(op.inputs[0]);
                const Affine b = evaluate(op.inputs[1]);
                if (a.valid && b.valid)
                    result = combine(a, b, +1);
            }
            break;
          case Opcode::kSub: {
            const Affine a = evaluate(op.inputs[0]);
            const Affine b = evaluate(op.inputs[1]);
            if (a.valid && b.valid)
                result = combine(a, b, -1);
            break;
          }
          case Opcode::kShl: {
            const Affine a = evaluate(op.inputs[0]);
            const Operation& amount = loop_.op(op.inputs[1].producer);
            if (a.valid && amount.opcode == Opcode::kConst &&
                amount.immediate >= 0 && amount.immediate < 32) {
                result = scale(a, std::int64_t{1} << amount.immediate);
            }
            break;
          }
          case Opcode::kMul: {
            const Affine a = evaluate(op.inputs[0]);
            const Affine b = evaluate(op.inputs[1]);
            if (a.valid && b.valid) {
                const bool a_const = a.stride == 0 && a.symbols.empty();
                const bool b_const = b.stride == 0 && b.symbols.empty();
                if (b_const)
                    result = scale(a, b.constant);
                else if (a_const)
                    result = scale(b, a.constant);
            }
            break;
          }
          default:
            break;  // Not affine.
        }
        slot = result;
        return result;
    }

    const Loop& loop_;
    CostMeter* meter_;
    std::vector<std::optional<Affine>> cache_;
};

/** Render the loop-invariant symbolic part of an address as a base label. */
std::string
symbolicBase(const std::string& array,
             const std::vector<std::pair<OpId, std::int64_t>>& symbols)
{
    std::ostringstream os;
    os << array;
    for (const auto& [symbol, coeff] : symbols)
        os << "+" << coeff << "*v" << symbol;
    return os.str();
}

}  // namespace

LoopAnalysis
analyzeLoop(const Loop& loop, CostMeter* meter)
{
    LoopAnalysis result;
    const int n = loop.size();
    result.roles.assign(static_cast<std::size_t>(n), OpRole::kCompute);
    result.stream_of_op.assign(static_cast<std::size_t>(n), -1);

    auto reject = [&](AnalysisReject why, std::string detail) {
        result.reject = why;
        result.reject_detail = std::move(detail);
        return result;
    };

    // Feature gates first: calls and speculative loops never map (paper
    // §2.2); these run on the baseline CPU.
    if (loop.feature() == LoopFeature::kHasSubroutineCall)
        return reject(AnalysisReject::kSubroutineCall, loop.name());
    if (loop.feature() == LoopFeature::kNeedsSpeculation)
        return reject(AnalysisReject::kNeedsSpeculation, loop.name());
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kCall)
            return reject(AnalysisReject::kSubroutineCall, loop.name());
    }

    AffineEvaluator affine(loop, meter);
    const auto uses = loop.useLists();

    // --- Control separation: branch, its comparison, induction updates.
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kBranch) {
            result.roles[static_cast<std::size_t>(op.id)] = OpRole::kControl;
            if (op.inputs.size() != 1)
                return reject(AnalysisReject::kComplexControl, loop.name());
            const Operation& cond = loop.op(op.inputs[0].producer);
            if (cond.opcode != Opcode::kCmp)
                return reject(AnalysisReject::kComplexControl, loop.name());
            // Both comparison inputs must be affine in the iteration
            // number, i.e. the loop is a simple counted loop.
            for (const auto& input : cond.inputs) {
                if (!affine.evaluate(input).valid) {
                    return reject(AnalysisReject::kComplexControl,
                                  "branch condition of " + loop.name());
                }
            }
            result.roles[static_cast<std::size_t>(cond.id)] =
                OpRole::kControl;
        }
        if (op.is_induction)
            result.roles[static_cast<std::size_t>(op.id)] = OpRole::kControl;
    }

    // --- Memory stream separation.
    auto intern_stream = [](std::vector<StreamDescriptor>* streams,
                            StreamDescriptor candidate, OpId op) {
        for (std::size_t i = 0; i < streams->size(); ++i) {
            if ((*streams)[i] == candidate) {
                (*streams)[i].memory_ops.push_back(op);
                return static_cast<int>(i);
            }
        }
        candidate.memory_ops.push_back(op);
        streams->push_back(std::move(candidate));
        return static_cast<int>(streams->size() - 1);
    };

    for (const auto& op : loop.operations()) {
        if (!op.isMemory())
            continue;
        result.roles[static_cast<std::size_t>(op.id)] = OpRole::kMemory;
        const Affine address = affine.evaluate(op.inputs[0]);
        if (!address.valid) {
            return reject(AnalysisReject::kNonAffineAddress,
                          "op " + std::to_string(op.id) + " of " +
                              loop.name());
        }
        StreamDescriptor stream;
        stream.base = symbolicBase(op.symbol, address.symbols);
        stream.array = op.symbol;
        stream.base_terms = address.symbols;
        stream.offset = address.constant;
        stream.stride = address.stride;
        stream.is_store = op.opcode == Opcode::kStore;
        const int index =
            stream.is_store
                ? intern_stream(&result.store_streams, stream, op.id)
                : intern_stream(&result.load_streams, stream, op.id);
        result.stream_of_op[static_cast<std::size_t>(op.id)] = index;
        if (meter != nullptr)
            meter->charge(TranslationPhase::kLoopAnalysis, 2);
    }

    // --- Fold pure address/control computation out of the FU workload.
    // Candidates: integer/value-source ops in the backward slice of some
    // address or control operand.  A candidate keeps the address role only
    // while *every* use feeds an address, the control slice, or a memory
    // op's address operand; otherwise it must execute on a function unit.
    std::vector<bool> candidate(static_cast<std::size_t>(n), false);
    std::vector<OpId> worklist;
    auto add_slice_root = [&](const Operand& operand) {
        worklist.push_back(operand.producer);
    };
    for (const auto& op : loop.operations()) {
        if (op.isMemory())
            add_slice_root(op.inputs[0]);
        if (result.roles[static_cast<std::size_t>(op.id)] ==
            OpRole::kControl) {
            for (const auto& input : op.inputs)
                add_slice_root(input);
        }
    }
    while (!worklist.empty()) {
        const OpId id = worklist.back();
        worklist.pop_back();
        if (candidate[static_cast<std::size_t>(id)])
            continue;
        const Operation& op = loop.op(id);
        if (result.roles[static_cast<std::size_t>(id)] != OpRole::kCompute)
            continue;  // Already control or memory.
        candidate[static_cast<std::size_t>(id)] = true;
        if (meter != nullptr)
            meter->charge(TranslationPhase::kLoopAnalysis, 1);
        for (const auto& input : op.inputs)
            worklist.push_back(input.producer);
    }

    // Fixed point: demote candidates with a compute-side use.
    bool changed = true;
    while (changed) {
        changed = false;
        for (OpId id = 0; id < n; ++id) {
            if (!candidate[static_cast<std::size_t>(id)])
                continue;
            if (meter != nullptr)
                meter->charge(TranslationPhase::kLoopAnalysis, 1);
            bool pure = !loop.op(id).is_live_out;
            for (const auto& use : uses[static_cast<std::size_t>(id)]) {
                const Operation& user = loop.op(use.producer);
                const auto user_role =
                    result.roles[static_cast<std::size_t>(user.id)];
                if (user_role == OpRole::kControl)
                    continue;
                if (user.isMemory()) {
                    // Only the *address* operand keeps us pure; feeding a
                    // store's value operand is computation.
                    if (user.opcode == Opcode::kStore &&
                        user.inputs[1].producer == id) {
                        pure = false;
                        break;
                    }
                    continue;
                }
                if (!candidate[static_cast<std::size_t>(user.id)]) {
                    pure = false;
                    break;
                }
            }
            if (!pure) {
                candidate[static_cast<std::size_t>(id)] = false;
                changed = true;
            }
        }
    }
    for (OpId id = 0; id < n; ++id) {
        if (candidate[static_cast<std::size_t>(id)])
            result.roles[static_cast<std::size_t>(id)] = OpRole::kAddress;
    }

    for (const auto& op : loop.operations()) {
        if (!op.isValueSource() &&
            result.roles[static_cast<std::size_t>(op.id)] ==
                OpRole::kCompute) {
            ++result.num_compute_ops;
        }
    }

    return result;
}

}  // namespace veal
