#ifndef VEAL_IR_LOOP_H_
#define VEAL_IR_LOOP_H_

/**
 * @file
 * The loop-body dataflow graph: VEAL's unit of translation.
 *
 * A Loop models one innermost, counted loop expressed in the baseline ISA.
 * The translator (veal/vm) analyses it, maps subgraphs to the CCA
 * (veal/cca), modulo-schedules it (veal/sched), and either produces loop
 * accelerator control or rejects it back to the CPU.
 */

#include <optional>
#include <string>
#include <vector>

#include "veal/ir/operation.h"

namespace veal {

/** One dependence edge of the loop body, with iteration distance. */
struct DepEdge {
    OpId from = kNoOp;
    OpId to = kNoOp;
    int distance = 0;
    bool is_memory = false;  ///< Memory-ordering edge, not a value flow.

    friend bool operator==(const DepEdge&, const DepEdge&) = default;
};

/** Why a loop cannot execute on a loop accelerator at all. */
enum class LoopFeature : int {
    kModuloSchedulable,   ///< Counted DO-loop; the LA can run it.
    kNeedsSpeculation,    ///< While-loop or side exit (paper: unsupported).
    kHasSubroutineCall,   ///< Non-inlinable call in the body.
};

/** Feature name, e.g. "modulo-schedulable". */
const char* toString(LoopFeature feature);

/**
 * A loop body as a dataflow graph plus the execution profile the VM needs.
 */
class Loop {
  public:
    explicit Loop(std::string name);

    /** Loop name, unique within a benchmark. */
    const std::string& name() const { return name_; }

    /** Append an operation; its id must equal the current op count. */
    OpId addOperation(Operation op);

    /** All operations, indexed by OpId. */
    const std::vector<Operation>& operations() const { return ops_; }

    /** The operation with id @p id. */
    const Operation& op(OpId id) const;

    /** Mutable access (used by transforms and the CCA rewrite). */
    Operation& mutableOp(OpId id);

    /** Number of operations. */
    int size() const { return static_cast<int>(ops_.size()); }

    /** Add an explicit memory-ordering edge (store -> load, etc.). */
    void addMemoryEdge(OpId from, OpId to, int distance);

    /** Explicit memory-ordering edges. */
    const std::vector<DepEdge>& memoryEdges() const { return memory_edges_; }

    /** All dependence edges: data edges from operands + memory edges. */
    std::vector<DepEdge> allEdges() const;

    /** Consumers of each op's value (distance-annotated), by producer id. */
    std::vector<std::vector<Operand>> useLists() const;

    /** Typical trip count used by the timing model. */
    void setTripCount(std::int64_t trips) { trip_count_ = trips; }
    std::int64_t tripCount() const { return trip_count_; }

    /** Hardware feature class of the loop (paper Figure 2 categories). */
    void setFeature(LoopFeature feature) { feature_ = feature; }
    LoopFeature feature() const { return feature_; }

    /**
     * Topological order over intra-iteration (distance-0) edges.
     * @pre verify() passed: the distance-0 subgraph is acyclic.
     */
    std::vector<OpId> topologicalOrder() const;

    /**
     * Validate structural invariants.  Returns std::nullopt when the loop is
     * well formed, otherwise a human-readable description of the first
     * violation found.  Checked invariants:
     *  - operand producers are valid ids, distances are >= 0,
     *  - the distance-0 dependence subgraph is acyclic,
     *  - value sources (const/live-in) have no inputs,
     *  - stores have exactly two inputs (address, value); loads exactly one,
     *  - at most one loop-back branch,
     *  - memory edges connect memory operations.
     */
    std::optional<std::string> verify() const;

    /** GraphViz dump for debugging and documentation. */
    std::string toDot() const;

    /** Count of ops for which @p pred returns true. */
    template <typename Pred>
    int
    countOps(Pred pred) const
    {
        int count = 0;
        for (const auto& operation : ops_) {
            if (pred(operation))
                ++count;
        }
        return count;
    }

  private:
    std::string name_;
    std::vector<Operation> ops_;
    std::vector<DepEdge> memory_edges_;
    std::int64_t trip_count_ = 100;
    LoopFeature feature_ = LoopFeature::kModuloSchedulable;
};

}  // namespace veal

#endif  // VEAL_IR_LOOP_H_
