#include "veal/ir/scc.h"

#include <algorithm>

#include "veal/support/assert.h"

namespace veal {

std::vector<std::vector<int>>
stronglyConnectedComponents(int num_nodes,
                            const std::vector<std::pair<int, int>>& edges)
{
    std::vector<std::vector<int>> succs(static_cast<std::size_t>(num_nodes));
    for (const auto& [from, to] : edges) {
        VEAL_ASSERT(from >= 0 && from < num_nodes && to >= 0 &&
                    to < num_nodes, "edge out of range");
        succs[static_cast<std::size_t>(from)].push_back(to);
    }

    constexpr int kUnvisited = -1;
    std::vector<int> index(static_cast<std::size_t>(num_nodes), kUnvisited);
    std::vector<int> lowlink(static_cast<std::size_t>(num_nodes), 0);
    std::vector<bool> on_stack(static_cast<std::size_t>(num_nodes), false);
    std::vector<int> stack;
    std::vector<std::vector<int>> components;
    int next_index = 0;

    // Iterative Tarjan: frames of (node, next successor position).
    struct Frame {
        int node;
        std::size_t next;
    };
    std::vector<Frame> frames;

    for (int root = 0; root < num_nodes; ++root) {
        if (index[static_cast<std::size_t>(root)] != kUnvisited)
            continue;
        frames.push_back(Frame{root, 0});
        index[static_cast<std::size_t>(root)] = next_index;
        lowlink[static_cast<std::size_t>(root)] = next_index;
        ++next_index;
        stack.push_back(root);
        on_stack[static_cast<std::size_t>(root)] = true;

        while (!frames.empty()) {
            Frame& frame = frames.back();
            const auto node = static_cast<std::size_t>(frame.node);
            if (frame.next < succs[node].size()) {
                const int succ = succs[node][frame.next++];
                const auto s = static_cast<std::size_t>(succ);
                if (index[s] == kUnvisited) {
                    index[s] = next_index;
                    lowlink[s] = next_index;
                    ++next_index;
                    stack.push_back(succ);
                    on_stack[s] = true;
                    frames.push_back(Frame{succ, 0});
                } else if (on_stack[s]) {
                    lowlink[node] = std::min(lowlink[node], index[s]);
                }
            } else {
                if (lowlink[node] == index[node]) {
                    std::vector<int> component;
                    while (true) {
                        const int member = stack.back();
                        stack.pop_back();
                        on_stack[static_cast<std::size_t>(member)] = false;
                        component.push_back(member);
                        if (member == frame.node)
                            break;
                    }
                    std::sort(component.begin(), component.end());
                    components.push_back(std::move(component));
                }
                const int finished = frame.node;
                frames.pop_back();
                if (!frames.empty()) {
                    const auto parent =
                        static_cast<std::size_t>(frames.back().node);
                    lowlink[parent] =
                        std::min(lowlink[parent],
                                 lowlink[static_cast<std::size_t>(finished)]);
                }
            }
        }
    }
    return components;
}

}  // namespace veal
