#ifndef VEAL_IR_RANDOM_LOOP_H_
#define VEAL_IR_RANDOM_LOOP_H_

/**
 * @file
 * Random-but-valid loop generation for property-based testing and
 * translator stress benchmarks.
 */

#include <cstdint>
#include <string>

#include "veal/ir/loop.h"
#include "veal/support/rng.h"

namespace veal {

/** Shape parameters for random loop generation. */
struct RandomLoopParams {
    int min_compute_ops = 4;
    int max_compute_ops = 40;
    int max_loads = 6;
    int max_stores = 3;
    double fp_fraction = 0.25;      ///< Probability an op is floating point.
    double recurrence_prob = 0.35;  ///< Probability of adding carried edges.
    int max_carried_distance = 2;
    std::int64_t trip_count = 256;
};

/**
 * Generate a random loop that always passes Loop::verify() and is a valid
 * counted loop (induction + compare + back branch + affine addresses).
 * Identical (params, seed) pairs generate identical loops.
 */
Loop makeRandomLoop(const RandomLoopParams& params, std::uint64_t seed,
                    const std::string& name = "random");

/**
 * The shared "stress family": RandomLoopParams themselves drawn from
 * @p params_seed (2-49 compute ops, up to 6 loads / 3 stores, fp and
 * recurrence fractions up to 0.6, trip counts 16-515), then the loop
 * drawn from @p loop_seed.  This is the distribution every campaign
 * driver samples -- the fuzzer's makeFuzzCaseLoop() and the translation
 * service's trace loops both delegate here, so one corpus of loop
 * shapes exercises every subsystem identically.
 */
Loop makeStressLoop(std::uint64_t params_seed, std::uint64_t loop_seed,
                    const std::string& name = "stress");

}  // namespace veal

#endif  // VEAL_IR_RANDOM_LOOP_H_
