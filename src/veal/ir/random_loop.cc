#include "veal/ir/random_loop.h"

#include <vector>

#include "veal/ir/loop_builder.h"
#include "veal/support/assert.h"
#include "veal/support/logging.h"

namespace veal {

namespace {

Opcode
pickIntOpcode(Rng& rng)
{
    static constexpr Opcode kChoices[] = {
        Opcode::kAdd, Opcode::kSub, Opcode::kMul, Opcode::kShl,
        Opcode::kShr, Opcode::kAnd, Opcode::kOr,  Opcode::kXor,
        Opcode::kMin, Opcode::kMax,
    };
    return kChoices[rng.nextBelow(std::size(kChoices))];
}

Opcode
pickFpOpcode(Rng& rng)
{
    static constexpr Opcode kChoices[] = {
        Opcode::kFAdd, Opcode::kFSub, Opcode::kFMul, Opcode::kFDiv,
    };
    return kChoices[rng.nextBelow(std::size(kChoices))];
}

OpId
emitBinary(LoopBuilder& b, Opcode opcode, Operand x, Operand y)
{
    switch (opcode) {
      case Opcode::kAdd: return b.add(x, y);
      case Opcode::kSub: return b.sub(x, y);
      case Opcode::kMul: return b.mul(x, y);
      case Opcode::kShl: return b.shl(x, y);
      case Opcode::kShr: return b.shr(x, y);
      case Opcode::kAnd: return b.andOp(x, y);
      case Opcode::kOr: return b.orOp(x, y);
      case Opcode::kXor: return b.xorOp(x, y);
      case Opcode::kMin: return b.minOp(x, y);
      case Opcode::kMax: return b.maxOp(x, y);
      case Opcode::kFAdd: return b.fadd(x, y);
      case Opcode::kFSub: return b.fsub(x, y);
      case Opcode::kFMul: return b.fmul(x, y);
      case Opcode::kFDiv: return b.fdiv(x, y);
      default:
        panic("emitBinary: unsupported opcode ", toString(opcode));
    }
}

}  // namespace

Loop
makeRandomLoop(const RandomLoopParams& params, std::uint64_t seed,
               const std::string& name)
{
    Rng rng(seed);
    LoopBuilder b(name + "." + std::to_string(seed));
    b.setTripCount(params.trip_count);

    const OpId iv = b.induction(1 + rng.nextInRange(0, 3));

    // Loads with affine addresses derived from the induction variable.
    const int num_loads =
        static_cast<int>(rng.nextInRange(1, params.max_loads));
    std::vector<OpId> int_values;   // integer-typed values usable as inputs
    std::vector<OpId> fp_values;
    for (int i = 0; i < num_loads; ++i) {
        Operand address{iv, 0};
        if (rng.nextBool(0.5)) {
            const OpId scale = b.constant(rng.nextInRange(1, 3));
            address = Operand{b.shl(address, scale), 0};
        }
        if (rng.nextBool(0.5)) {
            const OpId offset = b.constant(rng.nextInRange(-8, 8));
            address = Operand{b.add(address, offset), 0};
        }
        const OpId value =
            b.load("arr" + std::to_string(i % 4), address);
        if (rng.nextBool(params.fp_fraction))
            fp_values.push_back(b.itof(value));
        else
            int_values.push_back(value);
    }
    if (rng.nextBool(0.3))
        int_values.push_back(b.liveIn("scale"));
    if (int_values.empty())
        int_values.push_back(b.constant(rng.nextInRange(1, 100)));

    // Compute ops consuming previously created values (distance-0 DAG).
    const int num_compute = static_cast<int>(rng.nextInRange(
        params.min_compute_ops, params.max_compute_ops));
    std::vector<OpId> patchable;  // binary integer ops safe to re-wire
    for (int i = 0; i < num_compute; ++i) {
        const bool use_fp =
            !fp_values.empty() && rng.nextBool(params.fp_fraction);
        if (use_fp) {
            const OpId a = fp_values[rng.nextBelow(fp_values.size())];
            const OpId c = fp_values[rng.nextBelow(fp_values.size())];
            const OpId value = emitBinary(b, pickFpOpcode(rng), a, c);
            fp_values.push_back(value);
        } else {
            const OpId a = int_values[rng.nextBelow(int_values.size())];
            const OpId c = int_values[rng.nextBelow(int_values.size())];
            const OpId value = emitBinary(b, pickIntOpcode(rng), a, c);
            int_values.push_back(value);
            patchable.push_back(value);
        }
    }

    // Introduce recurrences: re-wire some binary ops' second input to a
    // carried use of a *later* value, which is legal for distance >= 1 and
    // creates dependence cycles for RecMII to find.
    for (const OpId id : patchable) {
        if (!rng.nextBool(params.recurrence_prob))
            continue;
        const OpId target =
            int_values[rng.nextBelow(int_values.size())];
        const int distance = static_cast<int>(
            rng.nextInRange(1, params.max_carried_distance));
        b.loop().mutableOp(id).inputs[1] = Operand{target, distance};
    }

    // Stores of computed values.
    const int num_stores =
        static_cast<int>(rng.nextInRange(1, params.max_stores));
    for (int i = 0; i < num_stores; ++i) {
        const OpId scale = b.constant(2);
        const OpId address = b.shl(Operand{iv, 0}, scale);
        OpId value = int_values[rng.nextBelow(int_values.size())];
        if (!fp_values.empty() && rng.nextBool(params.fp_fraction))
            value = b.ftoi(fp_values[rng.nextBelow(fp_values.size())]);
        b.store("out" + std::to_string(i), address, value);
    }

    b.loopBack(Operand{iv, 0}, b.constant(params.trip_count));
    return b.build();
}

Loop
makeStressLoop(std::uint64_t params_seed, std::uint64_t loop_seed,
               const std::string& name)
{
    // Draw order is load-bearing: makeFuzzCaseLoop() has sampled this
    // exact sequence since PR 2, so reordering a draw would invalidate
    // every checked-in corpus seed.
    Rng rng(params_seed);
    RandomLoopParams params;
    params.min_compute_ops = 2;
    params.max_compute_ops = 4 + static_cast<int>(rng.nextBelow(45));
    params.max_loads = 1 + static_cast<int>(rng.nextBelow(6));
    params.max_stores = 1 + static_cast<int>(rng.nextBelow(3));
    params.fp_fraction = rng.nextDouble() * 0.6;
    params.recurrence_prob = rng.nextDouble() * 0.6;
    params.max_carried_distance = 1 + static_cast<int>(rng.nextBelow(3));
    params.trip_count = 16 + static_cast<std::int64_t>(rng.nextBelow(500));
    return makeRandomLoop(params, loop_seed, name);
}

}  // namespace veal
