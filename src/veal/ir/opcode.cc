#include "veal/ir/opcode.h"

#include <array>

#include "veal/support/assert.h"

namespace veal {

namespace {

constexpr std::array<OpcodeInfo, kNumOpcodes> kOpcodeTable = {{
    //                 name     int    float  mem    ctrl   src    cca
    /* kConst   */ {"const",   false, false, false, false, true,
                    CcaOpClass::kNone},
    /* kLiveIn  */ {"livein",  false, false, false, false, true,
                    CcaOpClass::kNone},
    /* kAdd     */ {"add",     true,  false, false, false, false,
                    CcaOpClass::kArith},
    /* kSub     */ {"sub",     true,  false, false, false, false,
                    CcaOpClass::kArith},
    /* kMul     */ {"mpy",     true,  false, false, false, false,
                    CcaOpClass::kNone},
    /* kDiv     */ {"div",     true,  false, false, false, false,
                    CcaOpClass::kNone},
    /* kShl     */ {"shl",     true,  false, false, false, false,
                    CcaOpClass::kNone},
    /* kShr     */ {"shr",     true,  false, false, false, false,
                    CcaOpClass::kNone},
    /* kAnd     */ {"and",     true,  false, false, false, false,
                    CcaOpClass::kLogic},
    /* kOr      */ {"or",      true,  false, false, false, false,
                    CcaOpClass::kLogic},
    /* kXor     */ {"xor",     true,  false, false, false, false,
                    CcaOpClass::kLogic},
    /* kNot     */ {"not",     true,  false, false, false, false,
                    CcaOpClass::kLogic},
    /* kCmp     */ {"cmp",     true,  false, false, false, false,
                    CcaOpClass::kArith},
    /* kSelect  */ {"select",  true,  false, false, false, false,
                    CcaOpClass::kNone},
    /* kMin     */ {"min",     true,  false, false, false, false,
                    CcaOpClass::kNone},
    /* kMax     */ {"max",     true,  false, false, false, false,
                    CcaOpClass::kNone},
    /* kAbs     */ {"abs",     true,  false, false, false, false,
                    CcaOpClass::kNone},
    /* kLoad    */ {"ld",      false, false, true,  false, false,
                    CcaOpClass::kNone},
    /* kStore   */ {"st",      false, false, true,  false, false,
                    CcaOpClass::kNone},
    /* kBranch  */ {"br",      false, false, false, true,  false,
                    CcaOpClass::kNone},
    /* kCall    */ {"call",    false, false, false, true,  false,
                    CcaOpClass::kNone},
    /* kFAdd    */ {"fadd",    false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kFSub    */ {"fsub",    false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kFMul    */ {"fmul",    false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kFDiv    */ {"fdiv",    false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kFSqrt   */ {"fsqrt",   false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kFCmp    */ {"fcmp",    false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kFAbs    */ {"fabs",    false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kItoF    */ {"itof",    false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kFtoI    */ {"ftoi",    false, true,  false, false, false,
                    CcaOpClass::kNone},
    /* kCca     */ {"cca",     true,  false, false, false, false,
                    CcaOpClass::kNone},
}};

}  // namespace

const OpcodeInfo&
opcodeInfo(Opcode opcode)
{
    const int index = static_cast<int>(opcode);
    VEAL_ASSERT(index >= 0 && index < kNumOpcodes, "bad opcode ", index);
    return kOpcodeTable[static_cast<std::size_t>(index)];
}

}  // namespace veal
