#ifndef VEAL_IR_LOOP_BUILDER_H_
#define VEAL_IR_LOOP_BUILDER_H_

/**
 * @file
 * Fluent construction API for loop-body dataflow graphs.
 *
 * Example (the paper's Figure 5 loop):
 * @code
 *   LoopBuilder b("figure5");
 *   auto i   = b.induction(1);
 *   auto a1  = b.add(i, b.constant(16));          // op feeding the load
 *   auto x   = b.load("in", a1);
 *   auto t3  = b.shl(x, b.constant(2));
 *   ...
 *   b.store("out", a2, result);
 *   b.loopBack(i, b.constant(1024));
 *   Loop loop = b.build();
 * @endcode
 */

#include <string>
#include <utility>

#include "veal/ir/loop.h"

namespace veal {

/**
 * Builds a Loop one operation at a time and verifies it on build().
 *
 * Each creator method returns the OpId of the new operation.  Loop-carried
 * uses are expressed with carried(id, distance).
 */
class LoopBuilder {
  public:
    explicit LoopBuilder(std::string name) : loop_(std::move(name)) {}

    /** A use of @p id's value from @p distance iterations ago. */
    static Operand
    carried(OpId id, int distance)
    {
        return Operand{id, distance};
    }

    /** Literal constant. */
    OpId constant(std::int64_t value);

    /** Scalar live-in initialised before the loop is invoked. */
    OpId liveIn(std::string name = {});

    /**
     * Base induction variable: i = i(prev) + step.  Creates the step
     * constant and the self-referential add (distance-1 self edge).
     */
    OpId induction(std::int64_t step);

    // Integer compute -------------------------------------------------
    OpId add(Operand a, Operand b) { return binary(Opcode::kAdd, a, b); }
    OpId sub(Operand a, Operand b) { return binary(Opcode::kSub, a, b); }
    OpId mul(Operand a, Operand b) { return binary(Opcode::kMul, a, b); }
    OpId div(Operand a, Operand b) { return binary(Opcode::kDiv, a, b); }
    OpId shl(Operand a, Operand b) { return binary(Opcode::kShl, a, b); }
    OpId shr(Operand a, Operand b) { return binary(Opcode::kShr, a, b); }
    OpId andOp(Operand a, Operand b) { return binary(Opcode::kAnd, a, b); }
    OpId orOp(Operand a, Operand b) { return binary(Opcode::kOr, a, b); }
    OpId xorOp(Operand a, Operand b) { return binary(Opcode::kXor, a, b); }
    OpId notOp(Operand a) { return unary(Opcode::kNot, a); }
    OpId cmp(Operand a, Operand b) { return binary(Opcode::kCmp, a, b); }
    OpId minOp(Operand a, Operand b) { return binary(Opcode::kMin, a, b); }
    OpId maxOp(Operand a, Operand b) { return binary(Opcode::kMax, a, b); }
    OpId absOp(Operand a) { return unary(Opcode::kAbs, a); }

    /** Predicated select: pred ? if_true : if_false. */
    OpId select(Operand pred, Operand if_true, Operand if_false);

    // Floating point ---------------------------------------------------
    OpId fadd(Operand a, Operand b) { return binary(Opcode::kFAdd, a, b); }
    OpId fsub(Operand a, Operand b) { return binary(Opcode::kFSub, a, b); }
    OpId fmul(Operand a, Operand b) { return binary(Opcode::kFMul, a, b); }
    OpId fdiv(Operand a, Operand b) { return binary(Opcode::kFDiv, a, b); }
    OpId fsqrt(Operand a) { return unary(Opcode::kFSqrt, a); }
    OpId fcmp(Operand a, Operand b) { return binary(Opcode::kFCmp, a, b); }
    OpId fabsOp(Operand a) { return unary(Opcode::kFAbs, a); }
    OpId itof(Operand a) { return unary(Opcode::kItoF, a); }
    OpId ftoi(Operand a) { return unary(Opcode::kFtoI, a); }

    // Memory -----------------------------------------------------------
    /** Load from @p array at @p address. */
    OpId load(std::string array, Operand address);

    /** Store @p value to @p array at @p address. */
    OpId store(std::string array, Operand address, Operand value);

    /** Memory-ordering edge between two memory ops. */
    void
    memoryEdge(OpId from, OpId to, int distance)
    {
        loop_.addMemoryEdge(from, to, distance);
    }

    // Control ----------------------------------------------------------
    /** Loop-back: cmp(iv, bound) feeding the back branch. */
    OpId loopBack(Operand induction_var, Operand bound);

    /** Subroutine call (marks the loop non-modulo-schedulable). */
    OpId call(std::string callee, std::vector<Operand> args);

    /** Publish @p id's final value as a scalar loop output. */
    void markLiveOut(OpId id);

    /** Typical trip count for the timing model (default 100). */
    void setTripCount(std::int64_t trips) { loop_.setTripCount(trips); }

    /** Mark the loop as requiring speculation support (while loop). */
    void
    markNeedsSpeculation()
    {
        loop_.setFeature(LoopFeature::kNeedsSpeculation);
    }

    /** Direct access for rarely-used knobs. */
    Loop& loop() { return loop_; }

    /**
     * Finish construction.  Calls Loop::verify() and panics on a malformed
     * graph: builder misuse is a VEAL bug, not a user input error.
     */
    Loop build();

  private:
    OpId unary(Opcode opcode, Operand a);
    OpId binary(Opcode opcode, Operand a, Operand b);

    Loop loop_;
    bool has_loop_back_ = false;
};

}  // namespace veal

#endif  // VEAL_IR_LOOP_BUILDER_H_
