#ifndef VEAL_SCHED_SCHEDULE_H_
#define VEAL_SCHED_SCHEDULE_H_

/**
 * @file
 * The result of modulo scheduling one loop, plus its validator.
 */

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/sched/sched_graph.h"

namespace veal {

/** A valid modulo schedule: all the control the LA needs for its datapath. */
struct Schedule {
    /** Achieved initiation interval. */
    int ii = 0;

    /** Per-unit absolute issue time (normalised so the minimum is 0). */
    std::vector<int> time;

    /** Per-unit FU instance, or -1 for memory units. */
    std::vector<int> fu_instance;

    /** Number of pipeline stages (SC): iteration latency = SC * II. */
    int stage_count = 1;

    /** Schedule length of one iteration: max(time + latency). */
    int length = 0;

    /** Modulo slot of @p unit. */
    int
    cycleOf(int unit) const
    {
        return time[static_cast<std::size_t>(unit)] % ii;
    }

    /** Stage of @p unit. */
    int
    stageOf(int unit) const
    {
        return time[static_cast<std::size_t>(unit)] / ii;
    }
};

/** Machine-readable reason a schedule failed validation. */
enum class ScheduleViolationCode : int {
    kBadIi,              ///< II below 1 or above config.max_ii.
    kVectorSize,         ///< time / fu_instance size != unit count.
    kNotNormalised,      ///< Minimum issue time is not 0.
    kDependence,         ///< An edge misses t_to >= t_from + delay - II*d.
    kMemoryUnitWithFu,   ///< A stream-issued unit claims an FU instance.
    kFuInstanceRange,    ///< FU instance index outside configured counts.
    kResourceConflict,   ///< Two units share a (class, instance, slot).
    kLengthField,        ///< Schedule::length inconsistent with times.
    kStageCountField,    ///< Schedule::stage_count inconsistent with times.
    kRegisterCapacity,   ///< Operand live ranges exceed the register files.
};

/** Code name, e.g. "resource-conflict". */
const char* toString(ScheduleViolationCode code);

/** One validation failure: a stable code plus human-readable detail. */
struct ScheduleViolation {
    ScheduleViolationCode code = ScheduleViolationCode::kBadIi;
    std::string detail;
};

/** Streams "<code>: <detail>" (gtest failure messages, fuzz reports). */
std::ostream& operator<<(std::ostream& os,
                         const ScheduleViolation& violation);

/**
 * Check every modulo-scheduling invariant of @p schedule against
 * @p graph / @p config:
 *  - every unit has a time; times are non-negative and min time is 0,
 *  - every dependence edge satisfies t_to >= t_from + delay - II*distance,
 *  - no FU instance is claimed twice in the same modulo slot (counting
 *    init_interval consecutive slots for non-pipelined units),
 *  - FU instance indices are within the configured counts,
 *  - II is within [1, config.max_ii],
 *  - stage_count and length are consistent with the times.
 *
 * Returns std::nullopt when valid, else the first violation found.
 */
std::optional<ScheduleViolation> validateSchedule(const SchedGraph& graph,
                                                  const LaConfig& config,
                                                  const Schedule& schedule);

/**
 * Structural validation as above, plus a register-file capacity check:
 * the register allocator's one-to-one operand mapping (whose live-range
 * bypass rules decide which values need a register at all) must fit
 * config.num_int_registers / num_fp_registers.  This is the oracle-grade
 * validator the differential fuzzer runs on every accepted translation.
 */
std::optional<ScheduleViolation> validateSchedule(
    const SchedGraph& graph, const LaConfig& config,
    const Schedule& schedule, const Loop& loop,
    const LoopAnalysis& analysis);

/** Render the modulo reservation table as text (paper Figure 5 style). */
std::string renderReservationTable(const SchedGraph& graph,
                                   const Loop& loop,
                                   const Schedule& schedule);

}  // namespace veal

#endif  // VEAL_SCHED_SCHEDULE_H_
