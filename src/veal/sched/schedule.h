#ifndef VEAL_SCHED_SCHEDULE_H_
#define VEAL_SCHED_SCHEDULE_H_

/**
 * @file
 * The result of modulo scheduling one loop, plus its validator.
 */

#include <optional>
#include <string>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/sched/sched_graph.h"

namespace veal {

/** A valid modulo schedule: all the control the LA needs for its datapath. */
struct Schedule {
    /** Achieved initiation interval. */
    int ii = 0;

    /** Per-unit absolute issue time (normalised so the minimum is 0). */
    std::vector<int> time;

    /** Per-unit FU instance, or -1 for memory units. */
    std::vector<int> fu_instance;

    /** Number of pipeline stages (SC): iteration latency = SC * II. */
    int stage_count = 1;

    /** Schedule length of one iteration: max(time + latency). */
    int length = 0;

    /** Modulo slot of @p unit. */
    int
    cycleOf(int unit) const
    {
        return time[static_cast<std::size_t>(unit)] % ii;
    }

    /** Stage of @p unit. */
    int
    stageOf(int unit) const
    {
        return time[static_cast<std::size_t>(unit)] / ii;
    }
};

/**
 * Check every modulo-scheduling invariant of @p schedule against
 * @p graph / @p config:
 *  - every unit has a time; times are non-negative and min time is 0,
 *  - every dependence edge satisfies t_to >= t_from + delay - II*distance,
 *  - no FU instance is claimed twice in the same modulo slot (counting
 *    init_interval consecutive slots for non-pipelined units),
 *  - FU instance indices are within the configured counts,
 *  - II is within [1, config.max_ii],
 *  - stage_count and length are consistent with the times.
 *
 * Returns std::nullopt when valid, else a description of the violation.
 */
std::optional<std::string> validateSchedule(const SchedGraph& graph,
                                            const LaConfig& config,
                                            const Schedule& schedule);

/** Render the modulo reservation table as text (paper Figure 5 style). */
std::string renderReservationTable(const SchedGraph& graph,
                                   const Loop& loop,
                                   const Schedule& schedule);

}  // namespace veal

#endif  // VEAL_SCHED_SCHEDULE_H_
