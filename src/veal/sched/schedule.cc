#include "veal/sched/schedule.h"

#include <algorithm>
#include <map>
#include <ostream>
#include <sstream>

#include "veal/sched/register_alloc.h"
#include "veal/support/assert.h"

namespace veal {

const char*
toString(ScheduleViolationCode code)
{
    switch (code) {
      case ScheduleViolationCode::kBadIi: return "bad-ii";
      case ScheduleViolationCode::kVectorSize: return "vector-size";
      case ScheduleViolationCode::kNotNormalised: return "not-normalised";
      case ScheduleViolationCode::kDependence: return "dependence";
      case ScheduleViolationCode::kMemoryUnitWithFu:
        return "memory-unit-with-fu";
      case ScheduleViolationCode::kFuInstanceRange:
        return "fu-instance-range";
      case ScheduleViolationCode::kResourceConflict:
        return "resource-conflict";
      case ScheduleViolationCode::kLengthField: return "length-field";
      case ScheduleViolationCode::kStageCountField:
        return "stage-count-field";
      case ScheduleViolationCode::kRegisterCapacity:
        return "register-capacity";
    }
    return "unknown";
}

std::ostream&
operator<<(std::ostream& os, const ScheduleViolation& violation)
{
    return os << toString(violation.code) << ": " << violation.detail;
}

std::optional<ScheduleViolation>
validateSchedule(const SchedGraph& graph, const LaConfig& config,
                 const Schedule& schedule)
{
    auto violation = [](ScheduleViolationCode code, std::string detail) {
        return ScheduleViolation{code, std::move(detail)};
    };

    const int n = graph.numUnits();
    if (schedule.ii < 1)
        return violation(ScheduleViolationCode::kBadIi, "II below 1");
    if (schedule.ii > config.max_ii) {
        return violation(ScheduleViolationCode::kBadIi,
                         "II " + std::to_string(schedule.ii) +
                             " exceeds max supported II " +
                             std::to_string(config.max_ii));
    }
    if (static_cast<int>(schedule.time.size()) != n) {
        return violation(ScheduleViolationCode::kVectorSize,
                         "time vector size mismatch");
    }
    if (static_cast<int>(schedule.fu_instance.size()) != n) {
        return violation(ScheduleViolationCode::kVectorSize,
                         "fu_instance vector size mismatch");
    }

    int min_time = n == 0 ? 0 : *std::min_element(schedule.time.begin(),
                                                  schedule.time.end());
    if (n > 0 && min_time != 0) {
        return violation(ScheduleViolationCode::kNotNormalised,
                         "times are not normalised to start at 0");
    }

    for (const auto& edge : graph.edges()) {
        const int from_time =
            schedule.time[static_cast<std::size_t>(edge.from)];
        const int to_time = schedule.time[static_cast<std::size_t>(edge.to)];
        if (to_time < from_time + edge.delay -
                          schedule.ii * edge.distance) {
            return violation(
                ScheduleViolationCode::kDependence,
                "unit " + std::to_string(edge.to) + " at " +
                    std::to_string(to_time) + " needs unit " +
                    std::to_string(edge.from) + "@" +
                    std::to_string(from_time) + " +" +
                    std::to_string(edge.delay) + " -II*" +
                    std::to_string(edge.distance));
        }
    }

    // Resource conflicts: (class, instance, modulo slot) uniqueness.  A
    // flat owner table indexed by (class, instance, slot); sized by the
    // instances this schedule actually uses, not config.fuCount (which
    // may be the kUnlimited sentinel).
    int max_instance = -1;
    for (const auto& unit : graph.units()) {
        if (unit.fu != FuClass::kNone) {
            max_instance = std::max(
                max_instance,
                schedule.fu_instance[static_cast<std::size_t>(unit.id)]);
        }
    }
    const auto instances = static_cast<std::size_t>(max_instance + 1);
    const auto ii = static_cast<std::size_t>(schedule.ii);
    std::vector<int> slot_owner(
        static_cast<std::size_t>(kNumFuClasses) * instances * ii, -1);
    for (const auto& unit : graph.units()) {
        const auto u = static_cast<std::size_t>(unit.id);
        if (unit.fu == FuClass::kNone) {
            if (schedule.fu_instance[u] != -1) {
                return violation(ScheduleViolationCode::kMemoryUnitWithFu,
                                 "memory unit " + std::to_string(unit.id) +
                                     " with an FU instance");
            }
            continue;
        }
        const int instance = schedule.fu_instance[u];
        if (instance < 0 || instance >= config.fuCount(unit.fu)) {
            return violation(ScheduleViolationCode::kFuInstanceRange,
                             "unit " + std::to_string(unit.id) +
                                 " uses out-of-range " +
                                 std::string(toString(unit.fu)) +
                                 " instance " + std::to_string(instance));
        }
        for (int k = 0; k < unit.init_interval; ++k) {
            const int slot =
                (schedule.time[u] + k) % schedule.ii;
            int& owner =
                slot_owner[(static_cast<std::size_t>(unit.fu) * instances +
                            static_cast<std::size_t>(instance)) *
                               ii +
                           static_cast<std::size_t>(slot)];
            if (owner != -1) {
                return violation(
                    ScheduleViolationCode::kResourceConflict,
                    "conflict on " + std::string(toString(unit.fu)) + " " +
                        std::to_string(instance) + " slot " +
                        std::to_string(slot) + " between units " +
                        std::to_string(owner) + " and " +
                        std::to_string(unit.id));
            }
            owner = unit.id;
        }
    }

    int length = 0;
    int max_stage = 0;
    for (const auto& unit : graph.units()) {
        const auto u = static_cast<std::size_t>(unit.id);
        length = std::max(length, schedule.time[u] + unit.latency);
        max_stage = std::max(max_stage, schedule.time[u] / schedule.ii);
    }
    if (schedule.length != length) {
        return violation(ScheduleViolationCode::kLengthField,
                         "length field inconsistent");
    }
    if (schedule.stage_count != max_stage + 1) {
        return violation(ScheduleViolationCode::kStageCountField,
                         "stage_count field inconsistent");
    }
    return std::nullopt;
}

std::optional<ScheduleViolation>
validateSchedule(const SchedGraph& graph, const LaConfig& config,
                 const Schedule& schedule, const Loop& loop,
                 const LoopAnalysis& analysis)
{
    if (auto structural = validateSchedule(graph, config, schedule))
        return structural;

    // Re-derive the operand mapping: the allocator's bypass rules are the
    // live-range analysis, so its demand is exactly the capacity needed.
    const RegisterAssignment registers =
        assignRegisters(loop, analysis, graph, schedule, config);
    if (!registers.ok) {
        return ScheduleViolation{ScheduleViolationCode::kRegisterCapacity,
                                 registers.fail_reason};
    }
    return std::nullopt;
}

std::string
renderReservationTable(const SchedGraph& graph, const Loop& loop,
                       const Schedule& schedule)
{
    std::ostringstream os;
    os << "II = " << schedule.ii << ", SC = " << schedule.stage_count
       << "\n";

    struct Column {
        FuClass fu;
        int instance;
        std::string header;
    };
    std::vector<Column> columns;
    std::map<std::pair<int, int>, std::size_t> column_of;
    for (const auto& unit : graph.units()) {
        if (unit.fu == FuClass::kNone)
            continue;
        const auto key = std::make_pair(
            static_cast<int>(unit.fu),
            schedule.fu_instance[static_cast<std::size_t>(unit.id)]);
        if (!column_of.contains(key)) {
            column_of[key] = columns.size();
            columns.push_back(Column{
                unit.fu, key.second,
                std::string(toString(unit.fu)) + " " +
                    std::to_string(key.second)});
        }
    }
    std::sort(columns.begin(), columns.end(),
              [](const Column& a, const Column& b) {
                  if (a.fu != b.fu)
                      return static_cast<int>(a.fu) < static_cast<int>(b.fu);
                  return a.instance < b.instance;
              });
    column_of.clear();
    for (std::size_t c = 0; c < columns.size(); ++c) {
        column_of[{static_cast<int>(columns[c].fu),
                   columns[c].instance}] = c;
    }

    std::vector<std::vector<std::string>> cells(
        static_cast<std::size_t>(schedule.ii),
        std::vector<std::string>(columns.size()));
    for (const auto& unit : graph.units()) {
        if (unit.fu == FuClass::kNone)
            continue;
        const auto u = static_cast<std::size_t>(unit.id);
        const auto column = column_of.at(
            {static_cast<int>(unit.fu), schedule.fu_instance[u]});
        std::string label;
        for (const OpId op : unit.ops) {
            if (!label.empty())
                label += "+";
            label += std::to_string(op) + ":" +
                     toString(loop.op(op).opcode);
        }
        if (schedule.stageOf(unit.id) > 0)
            label += " (s" + std::to_string(schedule.stageOf(unit.id)) + ")";
        for (int k = 0; k < unit.init_interval; ++k) {
            auto& cell = cells[static_cast<std::size_t>(
                (schedule.time[u] + k) % schedule.ii)][column];
            cell = k == 0 ? label : "|";
        }
    }

    os << "cycle";
    for (const auto& column : columns)
        os << "  [" << column.header << "]";
    os << "\n";
    for (int row = 0; row < schedule.ii; ++row) {
        os << row << ":";
        for (std::size_t c = 0; c < columns.size(); ++c) {
            const auto& cell =
                cells[static_cast<std::size_t>(row)][c];
            os << "  " << (cell.empty() ? "-" : cell);
        }
        os << "\n";
    }
    return os.str();
}

}  // namespace veal
