#include "veal/sched/sched_graph.h"

#include <map>

#include "veal/ir/scc.h"

#include "veal/support/assert.h"

namespace veal {

SchedGraph::SchedGraph(const Loop& loop, const LoopAnalysis& analysis,
                       const CcaMapping& mapping, const LaConfig& config)
{
    VEAL_ASSERT(analysis.ok(), "building SchedGraph for rejected loop ",
                loop.name());
    const int n = loop.size();
    unit_of_op_.assign(static_cast<std::size_t>(n), -1);

    // One unit per CCA group.
    std::vector<int> unit_of_group(mapping.groups.size(), -1);
    for (std::size_t g = 0; g < mapping.groups.size(); ++g) {
        VEAL_ASSERT(config.hasCca(),
                    "CCA mapping supplied for a machine without a CCA");
        SchedUnit unit;
        unit.id = static_cast<int>(units_.size());
        unit.kind = UnitKind::kCcaGroup;
        unit.ops = mapping.groups[g].members;
        unit.fu = FuClass::kCca;
        unit.latency = config.cca->latency;
        unit.init_interval = config.cca->initiation_interval;
        for (const OpId member : unit.ops) {
            unit_of_op_[static_cast<std::size_t>(member)] = unit.id;
            unit.is_live_out |= loop.op(member).is_live_out;
        }
        unit_of_group[g] = unit.id;
        units_.push_back(std::move(unit));
    }

    // One unit per remaining compute op and per memory op.
    for (const auto& op : loop.operations()) {
        const auto role = analysis.roles[static_cast<std::size_t>(op.id)];
        const bool grouped =
            mapping.group_of_op[static_cast<std::size_t>(op.id)] != -1;
        if (grouped)
            continue;
        if (role != OpRole::kCompute && role != OpRole::kMemory)
            continue;
        if (op.isValueSource())
            continue;  // Register resident; never scheduled.
        SchedUnit unit;
        unit.id = static_cast<int>(units_.size());
        unit.ops = {op.id};
        unit.is_live_out = op.is_live_out;
        if (role == OpRole::kMemory) {
            unit.kind = UnitKind::kMemory;
            unit.fu = FuClass::kNone;
            unit.latency = config.latencies.latency(op.opcode);
        } else {
            unit.kind = UnitKind::kOp;
            unit.fu = fuClassFor(op.opcode);
            VEAL_ASSERT(unit.fu != FuClass::kNone,
                        "compute op with no FU class: ",
                        toString(op.opcode));
            unit.latency = config.latencies.latency(op.opcode);
        }
        unit_of_op_[static_cast<std::size_t>(op.id)] = unit.id;
        units_.push_back(std::move(unit));
    }

    // Dependence edges between units; dedupe keeping the tightest (max
    // delay per distance) constraint.  Carried self-edges (uf == ut,
    // distance >= 1) are real recurrences -- a one-op accumulator such as
    // `acc = mpy(x, acc@1)` bounds the II by its own latency -- and must
    // reach recMii and the scheduler's final verification.  Only
    // zero-distance self-edges vanish: those are intra-group dataflow of
    // a collapsed CCA unit, internal to one issue of the unit.
    std::map<std::tuple<int, int, int>, int> strongest;
    for (const auto& edge : loop.allEdges()) {
        const int uf = unit_of_op_[static_cast<std::size_t>(edge.from)];
        const int ut = unit_of_op_[static_cast<std::size_t>(edge.to)];
        if (uf == -1 || ut == -1)
            continue;
        if (uf == ut && edge.distance == 0)
            continue;
        const int delay = units_[static_cast<std::size_t>(uf)].latency;
        auto [it, inserted] = strongest.try_emplace(
            std::make_tuple(uf, ut, edge.distance), delay);
        if (!inserted)
            it->second = std::max(it->second, delay);
    }
    for (const auto& [key, delay] : strongest) {
        const auto& [from, to, distance] = key;
        edges_.push_back(SchedEdge{from, to, delay, distance});
    }

    succ_edges_.assign(units_.size(), {});
    pred_edges_.assign(units_.size(), {});
    for (std::size_t e = 0; e < edges_.size(); ++e) {
        succ_edges_[static_cast<std::size_t>(edges_[e].from)].push_back(
            static_cast<int>(e));
        pred_edges_[static_cast<std::size_t>(edges_[e].to)].push_back(
            static_cast<int>(e));
    }

    // A zero-distance cycle between units would make every II infeasible;
    // the verifier forbids them at op level and the CCA mapper's cluster
    // check must preserve that after collapsing groups.
    {
        std::vector<std::pair<int, int>> zero_edges;
        for (const auto& edge : edges_) {
            if (edge.distance == 0)
                zero_edges.emplace_back(edge.from, edge.to);
        }
        const auto sccs = stronglyConnectedComponents(
            static_cast<int>(units_.size()), zero_edges);
        for (const auto& scc : sccs) {
            VEAL_ASSERT(scc.size() == 1,
                        "zero-distance cycle between scheduling units in ",
                        loop.name());
        }
    }
}

}  // namespace veal
