#ifndef VEAL_SCHED_MII_H_
#define VEAL_SCHED_MII_H_

/**
 * @file
 * Minimum initiation interval computation (paper §4.1).
 *
 * MII = max(ResMII, RecMII).  ResMII counts FU slots; RecMII is the
 * maximum over dependence cycles of ceil(total delay / total distance),
 * found by binary-searching II and testing for positive cycles of weight
 * (delay - II * distance) with a Bellman-Ford longest-path pass.
 */

#include <vector>

#include "veal/arch/la_config.h"
#include "veal/sched/sched_graph.h"
#include "veal/support/cost_meter.h"

namespace veal {

/** ResMII: FU-slot pressure per class, maximised over classes. */
int resMii(const SchedGraph& graph, const LaConfig& config,
           CostMeter* meter = nullptr);

/**
 * RecMII over the whole graph: the smallest II at which every dependence
 * cycle satisfies delay <= II * distance.  Returns 1 for acyclic graphs.
 */
int recMii(const SchedGraph& graph, CostMeter* meter = nullptr);

/**
 * RecMII restricted to the units in @p member (a recurrence SCC); used by
 * the swing priority function to rank recurrences by criticality.
 * @param member per-unit membership flags.
 */
int recMiiOfSubset(const SchedGraph& graph,
                   const std::vector<bool>& member,
                   CostMeter* meter = nullptr,
                   TranslationPhase phase = TranslationPhase::kPriority);

/**
 * True when the dependence constraints admit *some* schedule at @p ii,
 * i.e. no cycle has positive weight (delay - ii * distance).
 */
bool iiFeasible(const SchedGraph& graph, int ii,
                CostMeter* meter = nullptr,
                TranslationPhase phase = TranslationPhase::kMiiComputation);

}  // namespace veal

#endif  // VEAL_SCHED_MII_H_
