#include "veal/sched/register_alloc.h"

#include "veal/fault/fault_injector.h"
#include "veal/support/assert.h"

namespace veal {

RegisterAssignment
assignRegisters(const Loop& loop,
                [[maybe_unused]] const LoopAnalysis& analysis,
                const SchedGraph& graph, const Schedule& schedule,
                const LaConfig& config, CostMeter* meter,
                FaultInjector* faults)
{
    RegisterAssignment result;

    // Injection site: one probe per mapping attempt.  A fired probe
    // reports the same failure shape as genuinely full register files.
    if (faults != nullptr &&
        faults->probe(FaultSite::kRegisterAllocation)) {
        result.fail_reason = "injected register-allocation fault";
        return result;
    }
    const int num_units = graph.numUnits();
    result.reg_of_unit.assign(static_cast<std::size_t>(num_units), -1);
    result.reg_of_source_op.assign(static_cast<std::size_t>(loop.size()),
                                   -1);

    int next_int = 0;
    int next_fp = 0;
    auto charge = [&](std::uint64_t units) {
        if (meter != nullptr)
            meter->charge(TranslationPhase::kRegisterAssignment, units);
    };

    // Constants and scalar live-ins consumed by scheduled units occupy
    // memory-mapped registers written before the loop is invoked.
    for (const auto& op : loop.operations()) {
        if (!op.isValueSource())
            continue;
        charge(1);
        bool needed = false;
        bool fp_consumer = false;
        for (const auto& use_op : loop.operations()) {
            for (std::size_t slot = 0; slot < use_op.inputs.size();
                 ++slot) {
                if (use_op.inputs[slot].producer != op.id)
                    continue;
                charge(1);
                if (graph.unitOf(use_op.id) == -1)
                    continue;  // Folded into AG / control configuration.
                if (use_op.opcode == Opcode::kLoad)
                    continue;  // Address operand: AG configuration.
                if (use_op.opcode == Opcode::kStore && slot == 0)
                    continue;  // Store address operand: AG configuration.
                needed = true;
                fp_consumer |= opcodeInfo(use_op.opcode).is_float;
            }
        }
        if (needed) {
            // A scalar consumed by FP units lives in the FP file.
            result.reg_of_source_op[static_cast<std::size_t>(op.id)] =
                fp_consumer ? next_fp++ : next_int++;
        }
    }

    // Unit results: a register is needed unless every consumer reads the
    // value straight off the interconnect (issues exactly when the value
    // appears, same iteration) or through a memory FIFO (store inputs),
    // and the value is not a scalar live-out.
    for (const auto& unit : graph.units()) {
        charge(1);
        if (unit.kind == UnitKind::kMemory) {
            // Loads deliver through FIFOs; stores produce nothing.
            continue;
        }
        const auto u = static_cast<std::size_t>(unit.id);
        bool needed = unit.is_live_out;
        for (const int e : graph.succEdges()[u]) {
            const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
            charge(1);
            const auto& consumer =
                graph.units()[static_cast<std::size_t>(edge.to)];
            if (consumer.kind == UnitKind::kMemory &&
                loop.op(consumer.ops[0]).opcode == Opcode::kStore) {
                continue;  // Written into the output FIFO.
            }
            const bool bypassed =
                edge.distance == 0 &&
                schedule.time[static_cast<std::size_t>(edge.to)] ==
                    schedule.time[u] + unit.latency;
            if (!bypassed) {
                needed = true;
                break;
            }
        }
        if (!needed)
            continue;
        if (unit.fu == FuClass::kFp)
            result.reg_of_unit[u] = next_fp++;
        else
            result.reg_of_unit[u] = next_int++;
    }

    result.int_regs_used = next_int;
    result.fp_regs_used = next_fp;
    if (next_int > config.num_int_registers) {
        result.fail_reason = "needs " + std::to_string(next_int) +
                             " integer registers, LA has " +
                             std::to_string(config.num_int_registers);
        return result;
    }
    if (next_fp > config.num_fp_registers) {
        result.fail_reason = "needs " + std::to_string(next_fp) +
                             " fp registers, LA has " +
                             std::to_string(config.num_fp_registers);
        return result;
    }
    result.ok = true;
    return result;
}

}  // namespace veal
