#ifndef VEAL_SCHED_SCHED_GRAPH_H_
#define VEAL_SCHED_SCHED_GRAPH_H_

/**
 * @file
 * The scheduling view of a loop: *units* (single ops or collapsed CCA
 * subgraphs) connected by dependence edges with (delay, distance) weights.
 *
 * Address, control, and value-source ops vanish here: they were folded
 * into address generators and loop-control hardware by LoopAnalysis.
 * Memory ops remain as units (so recurrences through memory constrain the
 * schedule) but occupy no function unit: their bandwidth is provided by
 * the decoupled address generators.
 */

#include <vector>

#include "veal/arch/fu.h"
#include "veal/arch/la_config.h"
#include "veal/cca/cca_mapper.h"
#include "veal/ir/loop.h"
#include "veal/ir/loop_analysis.h"

namespace veal {

/** What a scheduling unit stands for. */
enum class UnitKind : int {
    kOp,        ///< One compute op on an integer or FP unit.
    kCcaGroup,  ///< A collapsed subgraph executing on the CCA.
    kMemory,    ///< A load/store issued by a stream (no FU occupancy).
};

/** One schedulable unit. */
struct SchedUnit {
    int id = -1;
    UnitKind kind = UnitKind::kOp;
    std::vector<OpId> ops;  ///< Member op(s); singleton unless kCcaGroup.
    FuClass fu = FuClass::kNone;
    int latency = 1;
    int init_interval = 1;  ///< MRT slots consumed back-to-back.
    bool is_live_out = false;
};

/** A dependence between units: to >= from + delay - II * distance. */
struct SchedEdge {
    int from = -1;
    int to = -1;
    int delay = 0;
    int distance = 0;
};

/** The complete scheduling problem for one loop on one LA. */
class SchedGraph {
  public:
    /**
     * Build the scheduling graph.
     * @pre analysis.ok().
     */
    SchedGraph(const Loop& loop, const LoopAnalysis& analysis,
               const CcaMapping& mapping, const LaConfig& config);

    const std::vector<SchedUnit>& units() const { return units_; }
    const std::vector<SchedEdge>& edges() const { return edges_; }

    /** Unit containing @p op, or -1 when the op needs no scheduling. */
    int unitOf(OpId op) const { return unit_of_op_[
        static_cast<std::size_t>(op)]; }

    int numUnits() const { return static_cast<int>(units_.size()); }

    /** Units that occupy real FUs (excludes memory units). */
    int
    numFuUnits() const
    {
        int count = 0;
        for (const auto& unit : units_)
            count += unit.fu != FuClass::kNone ? 1 : 0;
        return count;
    }

    /** Successor edge indices per unit. */
    const std::vector<std::vector<int>>& succEdges() const
    {
        return succ_edges_;
    }

    /** Predecessor edge indices per unit. */
    const std::vector<std::vector<int>>& predEdges() const
    {
        return pred_edges_;
    }

  private:
    std::vector<SchedUnit> units_;
    std::vector<SchedEdge> edges_;
    std::vector<int> unit_of_op_;
    std::vector<std::vector<int>> succ_edges_;
    std::vector<std::vector<int>> pred_edges_;
};

}  // namespace veal

#endif  // VEAL_SCHED_SCHED_GRAPH_H_
