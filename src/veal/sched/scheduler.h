#ifndef VEAL_SCHED_SCHEDULER_H_
#define VEAL_SCHED_SCHEDULER_H_

/**
 * @file
 * The modulo list scheduler (paper §4.1, "Scheduling").
 *
 * Places units in priority order into a modulo reservation table, scanning
 * an II-wide window whose direction follows swing scheduling: forward from
 * the earliest start when placed predecessors dominate, backward from the
 * latest start when placed successors dominate.  On failure the candidate
 * II increments (the node order is *not* recomputed -- it is II-independent
 * so that it can be encoded statically, Figure 9(c)).
 */

#include <optional>

#include "veal/sched/mrt.h"
#include "veal/sched/priority.h"
#include "veal/sched/schedule.h"
#include "veal/support/cost_meter.h"

namespace veal {

class FaultInjector;

/**
 * How hard the II search worked -- the observability layer's view of the
 * scheduler (reported as vm.sched.* counters and the vm.ii histogram).
 */
struct SchedulerStats {
    std::int64_t attempted_iis = 0;       ///< tryIi() calls (incl. success).
    std::int64_t placement_failures = 0;  ///< IIs abandoned mid-placement.
};

/**
 * Schedule @p graph onto @p config trying IIs from @p min_ii upward.
 *
 * @param order  unit order from computeSwingOrder()/computeHeightOrder().
 * @param min_ii usually max(ResMII, RecMII).
 * @param meter  optional cost meter charged under kScheduling.
 * @param stats  optional search-effort accumulator (added to, not reset).
 * @param faults optional injector probed once per call at
 *        FaultSite::kSchedulerPlacement; a fired probe fails the whole
 *        II search (the hardened VM's degradation ladder recovers).
 * @return the schedule, or std::nullopt when no II <= config.max_ii works.
 */
std::optional<Schedule> scheduleLoop(const SchedGraph& graph,
                                     const LaConfig& config,
                                     const NodeOrder& order, int min_ii,
                                     CostMeter* meter = nullptr,
                                     SchedulerStats* stats = nullptr,
                                     FaultInjector* faults = nullptr);

}  // namespace veal

#endif  // VEAL_SCHED_SCHEDULER_H_
