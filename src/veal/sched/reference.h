#ifndef VEAL_SCHED_REFERENCE_H_
#define VEAL_SCHED_REFERENCE_H_

/**
 * @file
 * Reference scheduler facade: the pre-optimization translation kernels,
 * frozen verbatim.
 *
 * The production kernels in mii.cc / mrt.cc / priority.cc / scheduler.cc
 * are tuned for wall-clock speed (flat storage, reused scratch buffers,
 * prefiltered edge lists) under the contract that their *modeled* cost --
 * every CostMeter charge -- is bit-identical to the originals.  This
 * facade keeps the originals alive so the contract is testable: the
 * differential suite (tests/sched_equivalence_test.cc) and the veal-fuzz
 * --sched-diff campaign run both paths on the same graph and assert
 *  - identical schedules (II, times, FU instances),
 *  - identical node orders, and
 *  - identical per-phase charge totals.
 *
 * Nothing here is reachable from the VM; it exists only as an oracle.
 * Do not optimise this file.
 */

#include <optional>

#include "veal/sched/priority.h"
#include "veal/sched/schedule.h"
#include "veal/sched/scheduler.h"
#include "veal/support/cost_meter.h"

namespace veal::reference {

/** RecMII over the whole graph (original binary-search Bellman-Ford). */
int recMii(const SchedGraph& graph, CostMeter* meter = nullptr);

/** RecMII restricted to one recurrence SCC. */
int recMiiOfSubset(const SchedGraph& graph,
                   const std::vector<bool>& member,
                   CostMeter* meter = nullptr,
                   TranslationPhase phase = TranslationPhase::kPriority);

/** Feasibility test at one II. */
bool iiFeasible(const SchedGraph& graph, int ii,
                CostMeter* meter = nullptr,
                TranslationPhase phase =
                    TranslationPhase::kMiiComputation);

/** Earliest/latest bounds (original double Bellman-Ford). */
SchedBounds computeBounds(const SchedGraph& graph, int ii,
                          CostMeter* meter = nullptr,
                          TranslationPhase phase =
                              TranslationPhase::kScheduling);

/** The original swing ordering (std::set frontier, fresh scratch). */
NodeOrder computeSwingOrder(const SchedGraph& graph, int ii,
                            CostMeter* meter = nullptr);

/** The original height ordering. */
NodeOrder computeHeightOrder(const SchedGraph& graph, int ii,
                             CostMeter* meter = nullptr);

/**
 * The original modulo list scheduler: per-II MRT reallocation,
 * check-then-set reservations.  No fault injection -- the facade is an
 * oracle, not a production path.
 */
std::optional<Schedule> scheduleLoop(const SchedGraph& graph,
                                     const LaConfig& config,
                                     const NodeOrder& order, int min_ii,
                                     CostMeter* meter = nullptr,
                                     SchedulerStats* stats = nullptr);

}  // namespace veal::reference

#endif  // VEAL_SCHED_REFERENCE_H_
