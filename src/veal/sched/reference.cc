/**
 * The frozen pre-optimization kernels.  Everything below is a verbatim
 * copy of mii.cc, mrt.cc, priority.cc and scheduler.cc as they stood
 * before the hot-path overhaul, renamed into veal::reference.  Keep it
 * byte-for-byte in sync with that history, not with the optimized files.
 */

#include "veal/sched/reference.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>

#include "veal/ir/scc.h"
#include "veal/sched/mii.h"
#include "veal/sched/mrt.h"
#include "veal/support/assert.h"

namespace veal::reference {

namespace {

/**
 * Longest-path Bellman-Ford positive-cycle test restricted to units where
 * @p member is true (empty @p member means "all units").
 */
bool
positiveCycle(const SchedGraph& graph, int ii,
              const std::vector<bool>& member, CostMeter* meter,
              TranslationPhase phase)
{
    const int n = graph.numUnits();
    auto in = [&](int unit) {
        return member.empty() || member[static_cast<std::size_t>(unit)];
    };
    std::vector<std::int64_t> dist(static_cast<std::size_t>(n), 0);
    std::uint64_t work = 0;
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : graph.edges()) {
            if (!in(edge.from) || !in(edge.to))
                continue;
            ++work;
            const std::int64_t weight =
                edge.delay - static_cast<std::int64_t>(ii) * edge.distance;
            if (dist[static_cast<std::size_t>(edge.from)] + weight >
                dist[static_cast<std::size_t>(edge.to)]) {
                dist[static_cast<std::size_t>(edge.to)] =
                    dist[static_cast<std::size_t>(edge.from)] + weight;
                relaxed = true;
            }
        }
        if (!relaxed) {
            if (meter != nullptr)
                meter->charge(phase, work);
            return false;
        }
    }
    if (meter != nullptr)
        meter->charge(phase, work);
    return true;
}

int
minFeasibleIi(const SchedGraph& graph, const std::vector<bool>& member,
              CostMeter* meter, TranslationPhase phase)
{
    // Upper bound: one cycle of total delay always fits in II = sum(delay).
    std::int64_t upper = 1;
    for (const auto& edge : graph.edges())
        upper += edge.delay;
    int lo = 1;
    int hi = static_cast<int>(std::min<std::int64_t>(upper, 1 << 20));
    if (!positiveCycle(graph, lo, member, meter, phase))
        return 1;
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (positiveCycle(graph, mid, member, meter, phase))
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/** The original MRT: nested vector<bool>, check-then-set reservation. */
class ReferenceMrt {
  public:
    ReferenceMrt(const LaConfig& config, int ii) : ii_(ii)
    {
        VEAL_ASSERT(ii >= 1, "MRT with II ", ii);
        occupancy_.resize(kNumFuClasses);
        for (int c = 0; c < kNumFuClasses; ++c) {
            const int count = practicalCount(
                config.fuCount(static_cast<FuClass>(c)), ii);
            occupancy_[static_cast<std::size_t>(c)].assign(
                static_cast<std::size_t>(count),
                std::vector<bool>(static_cast<std::size_t>(ii), false));
        }
    }

    int
    reserve(FuClass fu_class, int time, int init_interval,
            std::uint64_t* probes)
    {
        VEAL_ASSERT(fu_class != FuClass::kNone &&
                    fu_class != FuClass::kCount);
        VEAL_ASSERT(init_interval >= 1);
        if (init_interval > ii_)
            return -1;
        auto& instances = occupancy_[static_cast<int>(fu_class)];
        for (std::size_t instance = 0; instance < instances.size();
             ++instance) {
            bool free = true;
            for (int k = 0; k < init_interval; ++k) {
                if (probes != nullptr)
                    ++*probes;
                if (instances[instance][static_cast<std::size_t>(
                        slotOf(time + k))]) {
                    free = false;
                    break;
                }
            }
            if (free) {
                for (int k = 0; k < init_interval; ++k) {
                    instances[instance][static_cast<std::size_t>(
                        slotOf(time + k))] = true;
                }
                return static_cast<int>(instance);
            }
        }
        return -1;
    }

  private:
    static int
    practicalCount(int configured, int ii)
    {
        return std::min(configured, std::max(ii * 4, 64));
    }

    int
    slotOf(int time) const
    {
        const int m = time % ii_;
        return m < 0 ? m + ii_ : m;
    }

    int ii_ = 1;
    std::vector<std::vector<std::vector<bool>>> occupancy_;
};

/** Reachability over all edges from a seed set (forward or backward). */
std::vector<bool>
reachable(const SchedGraph& graph, const std::vector<bool>& seeds,
          bool forward, std::uint64_t* work)
{
    const int n = graph.numUnits();
    std::vector<bool> seen = seeds;
    std::vector<int> worklist;
    for (int u = 0; u < n; ++u) {
        if (seeds[static_cast<std::size_t>(u)])
            worklist.push_back(u);
    }
    const auto& hop_edges =
        forward ? graph.succEdges() : graph.predEdges();
    while (!worklist.empty()) {
        const int u = worklist.back();
        worklist.pop_back();
        for (const int e : hop_edges[static_cast<std::size_t>(u)]) {
            ++*work;
            const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
            const int next = forward ? edge.to : edge.from;
            if (!seen[static_cast<std::size_t>(next)]) {
                seen[static_cast<std::size_t>(next)] = true;
                worklist.push_back(next);
            }
        }
    }
    return seen;
}

/**
 * Orders the nodes of one set in swing fashion: alternating top-down /
 * bottom-up sweeps that always extend from an already-ordered neighbour.
 */
class SwingSetOrderer {
  public:
    SwingSetOrderer(const SchedGraph& graph, const SchedBounds& bounds,
                    std::vector<int>* sequence, std::vector<bool>* ordered,
                    std::vector<bool>* place_late, std::uint64_t* work)
        : graph_(graph), bounds_(bounds), sequence_(sequence),
          ordered_(ordered), place_late_(place_late), work_(work)
    {}

    void
    orderSet(const std::vector<bool>& in_set)
    {
        while (true) {
            // Seed the sweep from neighbours of already-ordered nodes.
            std::set<int> frontier;
            bool top_down = true;
            collect(in_set, /*from_preds=*/true, &frontier);
            if (!frontier.empty()) {
                top_down = true;
            } else {
                collect(in_set, /*from_preds=*/false, &frontier);
                if (!frontier.empty()) {
                    top_down = false;
                } else {
                    // Fresh component: start from its most critical node
                    // (minimum slack, then minimum earliest start).
                    int best = -1;
                    for (int u = 0; u < graph_.numUnits(); ++u) {
                        ++*work_;
                        if (!in_set[static_cast<std::size_t>(u)] ||
                            (*ordered_)[static_cast<std::size_t>(u)]) {
                            continue;
                        }
                        if (best == -1 || slack(u) < slack(best) ||
                            (slack(u) == slack(best) &&
                             earliest(u) < earliest(best))) {
                            best = u;
                        }
                    }
                    if (best == -1)
                        return;  // Set fully ordered.
                    frontier.insert(best);
                    top_down = true;
                }
            }

            // One directional sweep: consume the frontier, extending it
            // with same-set successors (top-down) or predecessors.
            while (!frontier.empty()) {
                int best = -1;
                for (const int u : frontier) {
                    ++*work_;
                    if (best == -1)
                        best = u;
                    else if (top_down
                                 ? betterTopDown(u, best)
                                 : betterBottomUp(u, best))
                        best = u;
                }
                frontier.erase(best);
                append(best, /*late=*/!top_down);
                const auto& hop_edges = top_down
                                            ? graph_.succEdges()
                                            : graph_.predEdges();
                for (const int e :
                     hop_edges[static_cast<std::size_t>(best)]) {
                    const auto& edge =
                        graph_.edges()[static_cast<std::size_t>(e)];
                    const int next = top_down ? edge.to : edge.from;
                    if (in_set[static_cast<std::size_t>(next)] &&
                        !(*ordered_)[static_cast<std::size_t>(next)]) {
                        frontier.insert(next);
                    }
                }
            }
        }
    }

  private:
    int
    earliest(int u) const
    {
        return bounds_.earliest[static_cast<std::size_t>(u)];
    }

    int
    latest(int u) const
    {
        return bounds_.latest[static_cast<std::size_t>(u)];
    }

    int slack(int u) const { return latest(u) - earliest(u); }

    /** Top-down: prefer smaller latest start (more critical), then id. */
    bool
    betterTopDown(int a, int b) const
    {
        if (latest(a) != latest(b))
            return latest(a) < latest(b);
        return a < b;
    }

    /** Bottom-up: prefer larger earliest start (deepest), then id. */
    bool
    betterBottomUp(int a, int b) const
    {
        if (earliest(a) != earliest(b))
            return earliest(a) > earliest(b);
        return a < b;
    }

    void
    collect(const std::vector<bool>& in_set, bool from_preds,
            std::set<int>* frontier) const
    {
        for (std::size_t e = 0; e < graph_.edges().size(); ++e) {
            ++*work_;
            const auto& edge = graph_.edges()[e];
            const int placed = from_preds ? edge.from : edge.to;
            const int candidate = from_preds ? edge.to : edge.from;
            if ((*ordered_)[static_cast<std::size_t>(placed)] &&
                in_set[static_cast<std::size_t>(candidate)] &&
                !(*ordered_)[static_cast<std::size_t>(candidate)]) {
                frontier->insert(candidate);
            }
        }
    }

    void
    append(int u, bool late)
    {
        sequence_->push_back(u);
        (*ordered_)[static_cast<std::size_t>(u)] = true;
        (*place_late_)[static_cast<std::size_t>(u)] = late;
    }

    const SchedGraph& graph_;
    const SchedBounds& bounds_;
    std::vector<int>* sequence_;
    std::vector<bool>* ordered_;
    std::vector<bool>* place_late_;
    std::uint64_t* work_;
};

/** Attempt to place every unit at one candidate II.  */
std::optional<Schedule>
tryIi(const SchedGraph& graph, const LaConfig& config,
      const NodeOrder& order, int ii, CostMeter* meter)
{
    const int n = graph.numUnits();
    if (!reference::iiFeasible(graph, ii, meter,
                               TranslationPhase::kScheduling))
        return std::nullopt;

    const SchedBounds bounds = reference::computeBounds(
        graph, ii, meter, TranslationPhase::kScheduling);
    ReferenceMrt mrt(config, ii);
    std::vector<bool> placed(static_cast<std::size_t>(n), false);
    std::vector<int> time(static_cast<std::size_t>(n), 0);
    std::vector<int> fu_instance(static_cast<std::size_t>(n), -1);
    std::uint64_t probes = 0;

    constexpr int kNegInf = -(1 << 28);
    constexpr int kPosInf = 1 << 28;

    for (const int u : order.sequence) {
        const auto& unit = graph.units()[static_cast<std::size_t>(u)];
        int earliest = kNegInf;
        int latest = kPosInf;
        bool has_pred = false;
        bool has_succ = false;
        for (const int e : graph.predEdges()[static_cast<std::size_t>(u)]) {
            const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
            if (edge.from == u ||
                !placed[static_cast<std::size_t>(edge.from)]) {
                continue;
            }
            ++probes;
            earliest = std::max(
                earliest, time[static_cast<std::size_t>(edge.from)] +
                              edge.delay - ii * edge.distance);
            has_pred = true;
        }
        for (const int e : graph.succEdges()[static_cast<std::size_t>(u)]) {
            const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
            if (edge.to == u || !placed[static_cast<std::size_t>(edge.to)])
                continue;
            ++probes;
            latest = std::min(latest,
                              time[static_cast<std::size_t>(edge.to)] -
                                  edge.delay + ii * edge.distance);
            has_succ = true;
        }

        // Swing window: scan forward from the earliest start when preds
        // anchor the unit, backward from the latest start when succs do.
        const bool late =
            !order.place_late.empty() &&
            order.place_late[static_cast<std::size_t>(u)];
        int start;
        int step;
        int count;
        if (has_pred && has_succ) {
            if (earliest > latest) {
                if (meter != nullptr)
                    meter->charge(TranslationPhase::kScheduling, probes);
                return std::nullopt;
            }
            count = std::min(latest - earliest + 1, ii);
            if (late) {
                start = latest;
                step = -1;
            } else {
                start = earliest;
                step = 1;
            }
        } else if (has_pred) {
            start = earliest;
            step = 1;
            count = ii;
        } else if (has_succ) {
            start = latest;
            step = -1;
            count = ii;
        } else {
            // No placed neighbour: anchor at the ASAP bound.
            start = bounds.earliest[static_cast<std::size_t>(u)];
            step = 1;
            count = ii;
        }

        bool done = false;
        for (int k = 0; k < count && !done; ++k) {
            const int t = start + step * k;
            ++probes;
            if (unit.fu == FuClass::kNone) {
                // Memory units use stream bandwidth, not an FU slot.
                time[static_cast<std::size_t>(u)] = t;
                done = true;
                break;
            }
            const int instance =
                mrt.reserve(unit.fu, t, unit.init_interval, &probes);
            if (instance >= 0) {
                time[static_cast<std::size_t>(u)] = t;
                fu_instance[static_cast<std::size_t>(u)] = instance;
                done = true;
            }
        }
        if (!done) {
            if (meter != nullptr)
                meter->charge(TranslationPhase::kScheduling, probes);
            return std::nullopt;
        }
        placed[static_cast<std::size_t>(u)] = true;
    }

    // Windows skip self edges and cannot see everything at once; verify
    // the full constraint system before accepting this II.
    for (const auto& edge : graph.edges()) {
        ++probes;
        if (time[static_cast<std::size_t>(edge.to)] <
            time[static_cast<std::size_t>(edge.from)] + edge.delay -
                ii * edge.distance) {
            if (meter != nullptr)
                meter->charge(TranslationPhase::kScheduling, probes);
            return std::nullopt;
        }
    }
    if (meter != nullptr)
        meter->charge(TranslationPhase::kScheduling, probes);

    // Normalise: shifting every time by the same amount rotates the MRT
    // uniformly, so no conflict or dependence can appear.
    Schedule schedule;
    schedule.ii = ii;
    const int min_time =
        n == 0 ? 0 : *std::min_element(time.begin(), time.end());
    for (int u = 0; u < n; ++u)
        time[static_cast<std::size_t>(u)] -= min_time;
    schedule.time = std::move(time);
    schedule.fu_instance = std::move(fu_instance);
    schedule.length = 0;
    int max_stage = 0;
    for (const auto& unit : graph.units()) {
        const auto u = static_cast<std::size_t>(unit.id);
        schedule.length = std::max(schedule.length,
                                   schedule.time[u] + unit.latency);
        max_stage = std::max(max_stage, schedule.time[u] / ii);
    }
    schedule.stage_count = max_stage + 1;
    return schedule;
}

}  // namespace

int
recMii(const SchedGraph& graph, CostMeter* meter)
{
    return minFeasibleIi(graph, {}, meter,
                         TranslationPhase::kMiiComputation);
}

int
recMiiOfSubset(const SchedGraph& graph, const std::vector<bool>& member,
               CostMeter* meter, TranslationPhase phase)
{
    VEAL_ASSERT(static_cast<int>(member.size()) == graph.numUnits());
    return minFeasibleIi(graph, member, meter, phase);
}

bool
iiFeasible(const SchedGraph& graph, int ii, CostMeter* meter,
           TranslationPhase phase)
{
    return !positiveCycle(graph, ii, {}, meter, phase);
}

SchedBounds
computeBounds(const SchedGraph& graph, int ii, CostMeter* meter,
              TranslationPhase phase)
{
    const int n = graph.numUnits();
    SchedBounds bounds;
    bounds.earliest.assign(static_cast<std::size_t>(n), 0);
    std::uint64_t work = 0;

    // Forward longest path: E[to] >= E[from] + delay - ii * distance.
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : graph.edges()) {
            ++work;
            const int bound = bounds.earliest[static_cast<std::size_t>(
                                  edge.from)] +
                              edge.delay - ii * edge.distance;
            auto& e = bounds.earliest[static_cast<std::size_t>(edge.to)];
            if (bound > e) {
                e = bound;
                relaxed = true;
            }
        }
        if (!relaxed)
            break;
        VEAL_ASSERT(round < n, "computeBounds called at infeasible II ", ii);
    }

    int horizon = 0;
    for (int u = 0; u < n; ++u) {
        horizon = std::max(horizon,
                           bounds.earliest[static_cast<std::size_t>(u)] +
                               graph.units()[static_cast<std::size_t>(u)]
                                   .latency);
    }

    // Backward pass: L[from] <= L[to] - delay + ii * distance.
    bounds.latest.assign(static_cast<std::size_t>(n), horizon);
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : graph.edges()) {
            ++work;
            const int bound = bounds.latest[static_cast<std::size_t>(
                                  edge.to)] -
                              edge.delay + ii * edge.distance;
            auto& l = bounds.latest[static_cast<std::size_t>(edge.from)];
            if (bound < l) {
                l = bound;
                relaxed = true;
            }
        }
        if (!relaxed)
            break;
        VEAL_ASSERT(round < n, "computeBounds called at infeasible II ", ii);
    }
    if (meter != nullptr)
        meter->charge(phase, work);
    return bounds;
}

NodeOrder
computeSwingOrder(const SchedGraph& graph, int ii, CostMeter* meter)
{
    const int n = graph.numUnits();
    NodeOrder order;
    order.kind = PriorityKind::kSwing;
    std::uint64_t work = 0;

    const SchedBounds bounds = reference::computeBounds(
        graph, ii, meter, TranslationPhase::kPriority);

    // Identify recurrences and rank them by criticality (their RecMII).
    std::vector<std::pair<int, int>> raw_edges;
    for (const auto& edge : graph.edges())
        raw_edges.emplace_back(edge.from, edge.to);
    const auto sccs = stronglyConnectedComponents(n, raw_edges);

    struct Recurrence {
        std::vector<bool> member;
        int rec_mii = 0;
    };
    std::vector<Recurrence> recurrences;
    for (const auto& scc : sccs) {
        bool cyclic = scc.size() > 1;
        if (!cyclic) {
            for (const auto& edge : graph.edges())
                cyclic |= edge.from == scc[0] && edge.to == scc[0];
        }
        if (!cyclic)
            continue;
        Recurrence rec;
        rec.member.assign(static_cast<std::size_t>(n), false);
        for (const int u : scc)
            rec.member[static_cast<std::size_t>(u)] = true;
        rec.rec_mii = reference::recMiiOfSubset(
            graph, rec.member, meter, TranslationPhase::kPriority);
        recurrences.push_back(std::move(rec));
    }
    std::sort(recurrences.begin(), recurrences.end(),
              [](const Recurrence& a, const Recurrence& b) {
                  return a.rec_mii > b.rec_mii;
              });

    std::vector<bool> ordered(static_cast<std::size_t>(n), false);
    order.place_late.assign(static_cast<std::size_t>(n), false);
    SwingSetOrderer orderer(graph, bounds, &order.sequence, &ordered,
                            &order.place_late, &work);

    for (const auto& rec : recurrences) {
        // The set to order: the recurrence plus any not-yet-ordered nodes
        // on paths between already-ordered nodes and this recurrence.
        std::vector<bool> set = rec.member;
        if (std::any_of(ordered.begin(), ordered.end(),
                        [](bool b) { return b; })) {
            const auto fwd = reachable(graph, ordered, true, &work);
            const auto back_to_rec =
                reachable(graph, rec.member, false, &work);
            const auto rec_fwd = reachable(graph, rec.member, true, &work);
            const auto back_to_ordered =
                reachable(graph, ordered, false, &work);
            for (int u = 0; u < n; ++u) {
                const auto s = static_cast<std::size_t>(u);
                const bool on_path = (fwd[s] && back_to_rec[s]) ||
                                     (rec_fwd[s] && back_to_ordered[s]);
                if (on_path && !ordered[s])
                    set[s] = true;
            }
        }
        orderer.orderSet(set);
    }

    // Final set: everything else (acyclic code).
    std::vector<bool> rest(static_cast<std::size_t>(n), false);
    for (int u = 0; u < n; ++u)
        rest[static_cast<std::size_t>(u)] =
            !ordered[static_cast<std::size_t>(u)];
    orderer.orderSet(rest);

    VEAL_ASSERT(static_cast<int>(order.sequence.size()) == n,
                "swing ordering dropped units");
    order.rank.assign(static_cast<std::size_t>(n), 0);
    for (int position = 0;
         position < static_cast<int>(order.sequence.size()); ++position) {
        order.rank[static_cast<std::size_t>(
            order.sequence[static_cast<std::size_t>(position)])] = position;
    }
    if (meter != nullptr)
        meter->charge(TranslationPhase::kPriority, work);
    return order;
}

NodeOrder
computeHeightOrder(const SchedGraph& graph, int ii, CostMeter* meter)
{
    const int n = graph.numUnits();
    NodeOrder order;
    order.kind = PriorityKind::kHeight;
    std::uint64_t work = 0;

    // Height: longest path from the node to any sink at this II.
    std::vector<int> height(static_cast<std::size_t>(n), 0);
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : graph.edges()) {
            ++work;
            const int bound = height[static_cast<std::size_t>(edge.to)] +
                              edge.delay - ii * edge.distance;
            auto& h = height[static_cast<std::size_t>(edge.from)];
            if (bound > h) {
                h = bound;
                relaxed = true;
            }
        }
        if (!relaxed)
            break;
        VEAL_ASSERT(round < n,
                    "computeHeightOrder called at infeasible II ", ii);
    }

    order.place_late.assign(static_cast<std::size_t>(n), false);
    order.sequence.resize(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u)
        order.sequence[static_cast<std::size_t>(u)] = u;
    std::sort(order.sequence.begin(), order.sequence.end(),
              [&](int a, int b) {
                  if (height[static_cast<std::size_t>(a)] !=
                      height[static_cast<std::size_t>(b)]) {
                      return height[static_cast<std::size_t>(a)] >
                             height[static_cast<std::size_t>(b)];
                  }
                  return a < b;
              });
    work += static_cast<std::uint64_t>(n);

    order.rank.assign(static_cast<std::size_t>(n), 0);
    for (int position = 0; position < n; ++position) {
        order.rank[static_cast<std::size_t>(
            order.sequence[static_cast<std::size_t>(position)])] = position;
    }
    if (meter != nullptr)
        meter->charge(TranslationPhase::kPriority, work);
    return order;
}

std::optional<Schedule>
scheduleLoop(const SchedGraph& graph, const LaConfig& config,
             const NodeOrder& order, int min_ii, CostMeter* meter,
             SchedulerStats* stats)
{
    VEAL_ASSERT(static_cast<int>(order.sequence.size()) ==
                graph.numUnits(), "order does not cover the graph");

    int start_ii = std::max(min_ii, 1);
    for (const auto& unit : graph.units()) {
        if (unit.fu != FuClass::kNone)
            start_ii = std::max(start_ii, unit.init_interval);
    }
    if (start_ii > config.max_ii)
        return std::nullopt;

    // A finite retry budget: SMS converges within a few IIs of MII; an
    // unschedulable loop should fail fast rather than walk a 2^20 max II.
    const int limit =
        std::min(config.max_ii, std::min(start_ii + 64, 1 << 12));
    for (int ii = start_ii; ii <= limit; ++ii) {
        if (stats != nullptr)
            ++stats->attempted_iis;
        if (auto schedule = tryIi(graph, config, order, ii, meter))
            return schedule;
        if (stats != nullptr)
            ++stats->placement_failures;
    }
    return std::nullopt;
}

}  // namespace veal::reference
