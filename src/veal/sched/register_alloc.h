#ifndef VEAL_SCHED_REGISTER_ALLOC_H_
#define VEAL_SCHED_REGISTER_ALLOC_H_

/**
 * @file
 * Register assignment post-pass (paper §4.1, "Register Assignment").
 *
 * The translator maps loop operands one-to-one onto the LA's register
 * files.  Paper §3.1 rules determine who needs a register at all:
 * "registers are not needed to store values that are read from or written
 * into memory FIFOs nor are they needed for values that are read directly
 * off the interconnection network (i.e., values computed the previous
 * cycle)".  If the files are too small, translation aborts and the loop
 * runs on the baseline CPU.
 */

#include <string>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/ir/loop_analysis.h"
#include "veal/sched/schedule.h"
#include "veal/sched/sched_graph.h"
#include "veal/support/cost_meter.h"

namespace veal {

class FaultInjector;

/** Result of the one-to-one operand mapping. */
struct RegisterAssignment {
    bool ok = false;
    std::string fail_reason;

    int int_regs_used = 0;
    int fp_regs_used = 0;

    /** Register index per unit's result value, or -1 if bypassed. */
    std::vector<int> reg_of_unit;

    /** Register index per kConst/kLiveIn op, or -1 if never materialised. */
    std::vector<int> reg_of_source_op;
};

/**
 * Map operands onto the register files.
 *
 * @param meter  optional cost meter charged under kRegisterAssignment.
 * @param faults optional injector probed once per call at
 *        FaultSite::kRegisterAllocation; a fired probe fails the
 *        mapping as if the files were full (the translator's larger-II
 *        retry and the VM's degradation ladder recover).
 */
RegisterAssignment assignRegisters(const Loop& loop,
                                   const LoopAnalysis& analysis,
                                   const SchedGraph& graph,
                                   const Schedule& schedule,
                                   const LaConfig& config,
                                   CostMeter* meter = nullptr,
                                   FaultInjector* faults = nullptr);

}  // namespace veal

#endif  // VEAL_SCHED_REGISTER_ALLOC_H_
