#include "veal/sched/mii.h"

#include <algorithm>

#include "veal/support/assert.h"

namespace veal {

namespace {

/**
 * Longest-path Bellman-Ford positive-cycle test over @p edges, which is
 * either the full edge list or the member-filtered subset.  Non-member
 * edges never relax and never charge, so filtering them out *before* the
 * rounds (instead of testing membership per edge per round per candidate
 * II) leaves the charge sequence bit-identical.  @p dist is caller-owned
 * scratch, reused across the candidate IIs of one binary search.
 */
bool
positiveCycle(int n, const std::vector<SchedEdge>& edges, int ii,
              std::vector<std::int64_t>& dist, CostMeter* meter,
              TranslationPhase phase)
{
    dist.assign(static_cast<std::size_t>(n), 0);
    std::uint64_t work = 0;
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : edges) {
            ++work;
            const std::int64_t weight =
                edge.delay - static_cast<std::int64_t>(ii) * edge.distance;
            if (dist[static_cast<std::size_t>(edge.from)] + weight >
                dist[static_cast<std::size_t>(edge.to)]) {
                dist[static_cast<std::size_t>(edge.to)] =
                    dist[static_cast<std::size_t>(edge.from)] + weight;
                relaxed = true;
            }
        }
        if (!relaxed) {
            if (meter != nullptr)
                meter->charge(phase, work);
            return false;
        }
    }
    if (meter != nullptr)
        meter->charge(phase, work);
    return true;
}

int
minFeasibleIi(const SchedGraph& graph, const std::vector<bool>& member,
              CostMeter* meter, TranslationPhase phase)
{
    const int n = graph.numUnits();
    auto in = [&](int unit) {
        return member.empty() || member[static_cast<std::size_t>(unit)];
    };
    // Upper bound: one cycle of total delay always fits in II = sum(delay).
    // Summed over *all* edges, member or not, so the binary-search
    // trajectory matches the unfiltered original exactly.
    std::int64_t upper = 1;
    std::vector<SchedEdge> edges;
    edges.reserve(graph.edges().size());
    for (const auto& edge : graph.edges()) {
        upper += edge.delay;
        if (in(edge.from) && in(edge.to))
            edges.push_back(edge);
    }
    std::vector<std::int64_t> dist;
    int lo = 1;
    int hi = static_cast<int>(std::min<std::int64_t>(upper, 1 << 20));
    if (!positiveCycle(n, edges, lo, dist, meter, phase))
        return 1;
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (positiveCycle(n, edges, mid, dist, meter, phase))
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

}  // namespace

int
resMii(const SchedGraph& graph, const LaConfig& config, CostMeter* meter)
{
    // Slot demand per FU class; a non-pipelined unit (CCA) consumes
    // init_interval consecutive slots per issue.
    int demand[kNumFuClasses] = {0, 0, 0};
    int memory_accesses = 0;
    for (const auto& unit : graph.units()) {
        if (meter != nullptr)
            meter->charge(TranslationPhase::kMiiComputation, 1);
        if (unit.fu == FuClass::kNone) {
            memory_accesses += unit.kind == UnitKind::kMemory ? 1 : 0;
            continue;
        }
        demand[static_cast<int>(unit.fu)] += unit.init_interval;
    }
    int result = 1;
    if (memory_accesses > 0) {
        if (config.num_memory_ports <= 0)
            return LaConfig::kUnlimited;
        result = std::max(result,
                          (memory_accesses + config.num_memory_ports - 1) /
                              config.num_memory_ports);
    }
    for (int c = 0; c < kNumFuClasses; ++c) {
        if (demand[c] == 0)
            continue;
        const int count = config.fuCount(static_cast<FuClass>(c));
        if (count <= 0)
            return LaConfig::kUnlimited;  // Required FU class missing.
        result = std::max(result, (demand[c] + count - 1) / count);
    }
    return result;
}

int
recMii(const SchedGraph& graph, CostMeter* meter)
{
    return minFeasibleIi(graph, {}, meter,
                         TranslationPhase::kMiiComputation);
}

int
recMiiOfSubset(const SchedGraph& graph, const std::vector<bool>& member,
               CostMeter* meter, TranslationPhase phase)
{
    VEAL_ASSERT(static_cast<int>(member.size()) == graph.numUnits());
    return minFeasibleIi(graph, member, meter, phase);
}

bool
iiFeasible(const SchedGraph& graph, int ii, CostMeter* meter,
           TranslationPhase phase)
{
    std::vector<std::int64_t> dist;
    return !positiveCycle(graph.numUnits(), graph.edges(), ii, dist,
                          meter, phase);
}

}  // namespace veal
