#include "veal/sched/mii.h"

#include <algorithm>

#include "veal/support/assert.h"

namespace veal {

namespace {

/**
 * Longest-path Bellman-Ford positive-cycle test restricted to units where
 * @p member is true (empty @p member means "all units").
 */
bool
positiveCycle(const SchedGraph& graph, int ii,
              const std::vector<bool>& member, CostMeter* meter,
              TranslationPhase phase)
{
    const int n = graph.numUnits();
    auto in = [&](int unit) {
        return member.empty() || member[static_cast<std::size_t>(unit)];
    };
    std::vector<std::int64_t> dist(static_cast<std::size_t>(n), 0);
    std::uint64_t work = 0;
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : graph.edges()) {
            if (!in(edge.from) || !in(edge.to))
                continue;
            ++work;
            const std::int64_t weight =
                edge.delay - static_cast<std::int64_t>(ii) * edge.distance;
            if (dist[static_cast<std::size_t>(edge.from)] + weight >
                dist[static_cast<std::size_t>(edge.to)]) {
                dist[static_cast<std::size_t>(edge.to)] =
                    dist[static_cast<std::size_t>(edge.from)] + weight;
                relaxed = true;
            }
        }
        if (!relaxed) {
            if (meter != nullptr)
                meter->charge(phase, work);
            return false;
        }
    }
    if (meter != nullptr)
        meter->charge(phase, work);
    return true;
}

int
minFeasibleIi(const SchedGraph& graph, const std::vector<bool>& member,
              CostMeter* meter, TranslationPhase phase)
{
    // Upper bound: one cycle of total delay always fits in II = sum(delay).
    std::int64_t upper = 1;
    for (const auto& edge : graph.edges())
        upper += edge.delay;
    int lo = 1;
    int hi = static_cast<int>(std::min<std::int64_t>(upper, 1 << 20));
    if (!positiveCycle(graph, lo, member, meter, phase))
        return 1;
    while (lo < hi) {
        const int mid = lo + (hi - lo) / 2;
        if (positiveCycle(graph, mid, member, meter, phase))
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

}  // namespace

int
resMii(const SchedGraph& graph, const LaConfig& config, CostMeter* meter)
{
    // Slot demand per FU class; a non-pipelined unit (CCA) consumes
    // init_interval consecutive slots per issue.
    int demand[kNumFuClasses] = {0, 0, 0};
    int memory_accesses = 0;
    for (const auto& unit : graph.units()) {
        if (meter != nullptr)
            meter->charge(TranslationPhase::kMiiComputation, 1);
        if (unit.fu == FuClass::kNone) {
            memory_accesses += unit.kind == UnitKind::kMemory ? 1 : 0;
            continue;
        }
        demand[static_cast<int>(unit.fu)] += unit.init_interval;
    }
    int result = 1;
    if (memory_accesses > 0) {
        if (config.num_memory_ports <= 0)
            return LaConfig::kUnlimited;
        result = std::max(result,
                          (memory_accesses + config.num_memory_ports - 1) /
                              config.num_memory_ports);
    }
    for (int c = 0; c < kNumFuClasses; ++c) {
        if (demand[c] == 0)
            continue;
        const int count = config.fuCount(static_cast<FuClass>(c));
        if (count <= 0)
            return LaConfig::kUnlimited;  // Required FU class missing.
        result = std::max(result, (demand[c] + count - 1) / count);
    }
    return result;
}

int
recMii(const SchedGraph& graph, CostMeter* meter)
{
    return minFeasibleIi(graph, {}, meter,
                         TranslationPhase::kMiiComputation);
}

int
recMiiOfSubset(const SchedGraph& graph, const std::vector<bool>& member,
               CostMeter* meter, TranslationPhase phase)
{
    VEAL_ASSERT(static_cast<int>(member.size()) == graph.numUnits());
    return minFeasibleIi(graph, member, meter, phase);
}

bool
iiFeasible(const SchedGraph& graph, int ii, CostMeter* meter,
           TranslationPhase phase)
{
    return !positiveCycle(graph, ii, {}, meter, phase);
}

}  // namespace veal
