#ifndef VEAL_SCHED_MRT_H_
#define VEAL_SCHED_MRT_H_

/**
 * @file
 * Modulo reservation table: II rows, one column per FU instance
 * (paper Figure 5, right).
 *
 * Storage is a single flat array of epoch stamps: a slot is occupied iff
 * its stamp equals the current epoch, so clear() and an II retry are one
 * increment instead of a rewrite, and the scheduler reuses one table
 * across its whole II search via reset().  Reservation sets slots as it
 * probes them and un-stamps on conflict; the probe count per attempt is
 * bit-identical to the original check-then-set formulation (one probe
 * per slot examined, including the conflicting one).
 */

#include <cstdint>
#include <vector>

#include "veal/arch/fu.h"
#include "veal/arch/la_config.h"

namespace veal {

/** Reservation table for one candidate II. */
class ModuloReservationTable {
  public:
    /**
     * @param config FU instance counts (clamped to the table's practical
     *               width for unlimited configs).
     * @param ii     candidate initiation interval (>= 1).
     */
    ModuloReservationTable(const LaConfig& config, int ii);

    /**
     * Re-size for a new candidate II and drop all reservations.  O(1)
     * when the layout is unchanged; reallocates only when @p ii grows
     * the table past its high-water mark.
     */
    void reset(const LaConfig& config, int ii);

    /**
     * Try to reserve @p init_interval consecutive modulo slots for a unit
     * of @p fu_class issuing at absolute @p time.  Returns the instance
     * index used, or -1 when every instance conflicts.  Probe work can be
     * tracked via @p probes.
     */
    int reserve(FuClass fu_class, int time, int init_interval,
                std::uint64_t* probes = nullptr);

    /** The initiation interval this table was sized for. */
    int ii() const { return ii_; }

    /** Number of instances allocated for @p fu_class. */
    int instanceCount(FuClass fu_class) const
    {
        return classes_[static_cast<std::size_t>(fu_class)].count;
    }

    /** Occupancy of (fu_class, instance) at modulo @p slot. */
    bool occupied(FuClass fu_class, int instance, int slot) const
    {
        const auto& cls = classes_[static_cast<std::size_t>(fu_class)];
        return stamps_[cls.offset +
                       static_cast<std::size_t>(instance) *
                           static_cast<std::size_t>(ii_) +
                       static_cast<std::size_t>(slot)] == epoch_;
    }

    /** Drop all reservations (for an II retry). */
    void clear() { ++epoch_; }

  private:
    struct ClassLayout {
        std::size_t offset = 0;
        int count = 0;
    };

    int slotOf(int time) const;

    int ii_ = 1;
    std::uint64_t epoch_ = 1;
    ClassLayout classes_[kNumFuClasses];
    std::vector<std::uint64_t> stamps_;
};

}  // namespace veal

#endif  // VEAL_SCHED_MRT_H_
