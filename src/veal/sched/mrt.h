#ifndef VEAL_SCHED_MRT_H_
#define VEAL_SCHED_MRT_H_

/**
 * @file
 * Modulo reservation table: II rows, one column per FU instance
 * (paper Figure 5, right).
 */

#include <vector>

#include "veal/arch/fu.h"
#include "veal/arch/la_config.h"

namespace veal {

/** Reservation table for one candidate II. */
class ModuloReservationTable {
  public:
    /**
     * @param config FU instance counts (clamped to the table's practical
     *               width for unlimited configs).
     * @param ii     candidate initiation interval (>= 1).
     */
    ModuloReservationTable(const LaConfig& config, int ii);

    /**
     * Try to reserve @p init_interval consecutive modulo slots for a unit
     * of @p fu_class issuing at absolute @p time.  Returns the instance
     * index used, or -1 when every instance conflicts.  Probe work can be
     * tracked via @p probes.
     */
    int reserve(FuClass fu_class, int time, int init_interval,
                std::uint64_t* probes = nullptr);

    /** The initiation interval this table was sized for. */
    int ii() const { return ii_; }

    /** Number of instances allocated for @p fu_class. */
    int instanceCount(FuClass fu_class) const;

    /** Occupancy of (fu_class, instance) at modulo @p slot. */
    bool occupied(FuClass fu_class, int instance, int slot) const;

    /** Drop all reservations (for an II retry). */
    void clear();

  private:
    int slotOf(int time) const;

    int ii_ = 1;
    // occupancy_[class][instance][slot]
    std::vector<std::vector<std::vector<bool>>> occupancy_;
};

}  // namespace veal

#endif  // VEAL_SCHED_MRT_H_
