#ifndef VEAL_SCHED_PRIORITY_H_
#define VEAL_SCHED_PRIORITY_H_

/**
 * @file
 * Scheduling-order (priority) computation.
 *
 * Two alternatives from the paper's §4.2/§4.3 trade-off study:
 *  - Swing ordering (Llosa et al.): schedules the most critical recurrence
 *    first and keeps every node adjacent to an already-ordered neighbour by
 *    alternating top-down/bottom-up sweeps.  Produces the best schedules
 *    but dominates translation time (69% of instructions, Figure 8) -- the
 *    paper's motivation for encoding it statically (Figure 9(c)).
 *  - Height-based priority (Rau's IMS): one backward longest-path pass.
 *    Much cheaper to compute dynamically, but with the single-pass list
 *    scheduler it often yields higher IIs (the "Fully Dynamic Height
 *    Priority" bars of Figure 10).
 */

#include <vector>

#include "veal/sched/sched_graph.h"
#include "veal/support/cost_meter.h"

namespace veal {

/** Which priority function ordered the nodes. */
enum class PriorityKind : int {
    kSwing,
    kHeight,
};

/** Name, e.g. "swing". */
const char* toString(PriorityKind kind);

/** A scheduling order over units, plus the numeric per-unit priority. */
struct NodeOrder {
    PriorityKind kind = PriorityKind::kSwing;

    /** Unit ids in the order the scheduler should place them. */
    std::vector<int> sequence;

    /**
     * Per-unit rank (position in @p sequence).  This is the single number
     * per operation that Figure 9(c) encodes in the binary's data section
     * (the placement direction rides in its low bit).
     */
    std::vector<int> rank;

    /**
     * Per-unit placement direction: true when the unit was ordered in a
     * bottom-up sweep and should therefore be placed as *late* as its
     * window allows (hugging its successors).  This is the "swing" that
     * makes SMS lifetime-sensitive.  Empty = always place early.
     */
    std::vector<bool> place_late;
};

/** Earliest/latest start bounds at a candidate II. */
struct SchedBounds {
    std::vector<int> earliest;
    std::vector<int> latest;
};

/**
 * Longest-path earliest starts and the matching latest starts at @p ii.
 * @pre iiFeasible(graph, ii).
 */
SchedBounds computeBounds(const SchedGraph& graph, int ii,
                          CostMeter* meter = nullptr,
                          TranslationPhase phase =
                              TranslationPhase::kScheduling);

/** The swing (SMS) ordering, computed at @p ii (normally MII). */
NodeOrder computeSwingOrder(const SchedGraph& graph, int ii,
                            CostMeter* meter = nullptr);

/** Height-based ordering, computed at @p ii. */
NodeOrder computeHeightOrder(const SchedGraph& graph, int ii,
                             CostMeter* meter = nullptr);

}  // namespace veal

#endif  // VEAL_SCHED_PRIORITY_H_
