#include "veal/sched/priority.h"

#include <algorithm>

#include "veal/ir/scc.h"
#include "veal/sched/mii.h"
#include "veal/support/assert.h"

namespace veal {

const char*
toString(PriorityKind kind)
{
    switch (kind) {
      case PriorityKind::kSwing: return "swing";
      case PriorityKind::kHeight: return "height";
    }
    return "unknown";
}

SchedBounds
computeBounds(const SchedGraph& graph, int ii, CostMeter* meter,
              TranslationPhase phase)
{
    const int n = graph.numUnits();
    SchedBounds bounds;
    bounds.earliest.assign(static_cast<std::size_t>(n), 0);
    std::uint64_t work = 0;

    // Forward longest path: E[to] >= E[from] + delay - ii * distance.
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : graph.edges()) {
            ++work;
            const int bound = bounds.earliest[static_cast<std::size_t>(
                                  edge.from)] +
                              edge.delay - ii * edge.distance;
            auto& e = bounds.earliest[static_cast<std::size_t>(edge.to)];
            if (bound > e) {
                e = bound;
                relaxed = true;
            }
        }
        if (!relaxed)
            break;
        VEAL_ASSERT(round < n, "computeBounds called at infeasible II ", ii);
    }

    int horizon = 0;
    for (int u = 0; u < n; ++u) {
        horizon = std::max(horizon,
                           bounds.earliest[static_cast<std::size_t>(u)] +
                               graph.units()[static_cast<std::size_t>(u)]
                                   .latency);
    }

    // Backward pass: L[from] <= L[to] - delay + ii * distance.
    bounds.latest.assign(static_cast<std::size_t>(n), horizon);
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : graph.edges()) {
            ++work;
            const int bound = bounds.latest[static_cast<std::size_t>(
                                  edge.to)] -
                              edge.delay + ii * edge.distance;
            auto& l = bounds.latest[static_cast<std::size_t>(edge.from)];
            if (bound < l) {
                l = bound;
                relaxed = true;
            }
        }
        if (!relaxed)
            break;
        VEAL_ASSERT(round < n, "computeBounds called at infeasible II ", ii);
    }
    if (meter != nullptr)
        meter->charge(phase, work);
    return bounds;
}

namespace {

/** Reachability over all edges from a seed set (forward or backward). */
std::vector<bool>
reachable(const SchedGraph& graph, const std::vector<bool>& seeds,
          bool forward, std::uint64_t* work)
{
    const int n = graph.numUnits();
    std::vector<bool> seen = seeds;
    std::vector<int> worklist;
    for (int u = 0; u < n; ++u) {
        if (seeds[static_cast<std::size_t>(u)])
            worklist.push_back(u);
    }
    const auto& hop_edges =
        forward ? graph.succEdges() : graph.predEdges();
    while (!worklist.empty()) {
        const int u = worklist.back();
        worklist.pop_back();
        for (const int e : hop_edges[static_cast<std::size_t>(u)]) {
            ++*work;
            const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
            const int next = forward ? edge.to : edge.from;
            if (!seen[static_cast<std::size_t>(next)]) {
                seen[static_cast<std::size_t>(next)] = true;
                worklist.push_back(next);
            }
        }
    }
    return seen;
}

/**
 * Orders the nodes of one set in swing fashion: alternating top-down /
 * bottom-up sweeps that always extend from an already-ordered neighbour.
 *
 * The frontier is a flat vector plus a membership bitmap rather than a
 * std::set: the best-node selection scans every element under a total
 * order (criticality, then id), so container order is irrelevant, the
 * chosen node is identical, and the per-element scan charges match the
 * set-based original exactly.
 */
class SwingSetOrderer {
  public:
    SwingSetOrderer(const SchedGraph& graph, const SchedBounds& bounds,
                    std::vector<int>* sequence, std::vector<bool>* ordered,
                    std::vector<bool>* place_late, std::uint64_t* work)
        : graph_(graph), bounds_(bounds), sequence_(sequence),
          ordered_(ordered), place_late_(place_late), work_(work),
          in_frontier_(static_cast<std::size_t>(graph.numUnits()), false)
    {}

    void
    orderSet(const std::vector<bool>& in_set)
    {
        while (true) {
            // Seed the sweep from neighbours of already-ordered nodes.
            frontier_.clear();
            bool top_down = true;
            collect(in_set, /*from_preds=*/true);
            if (!frontier_.empty()) {
                top_down = true;
            } else {
                collect(in_set, /*from_preds=*/false);
                if (!frontier_.empty()) {
                    top_down = false;
                } else {
                    // Fresh component: start from its most critical node
                    // (minimum slack, then minimum earliest start).
                    int best = -1;
                    for (int u = 0; u < graph_.numUnits(); ++u) {
                        ++*work_;
                        if (!in_set[static_cast<std::size_t>(u)] ||
                            (*ordered_)[static_cast<std::size_t>(u)]) {
                            continue;
                        }
                        if (best == -1 || slack(u) < slack(best) ||
                            (slack(u) == slack(best) &&
                             earliest(u) < earliest(best))) {
                            best = u;
                        }
                    }
                    if (best == -1)
                        return;  // Set fully ordered.
                    push(best);
                    top_down = true;
                }
            }

            // One directional sweep: consume the frontier, extending it
            // with same-set successors (top-down) or predecessors.
            while (!frontier_.empty()) {
                int best = -1;
                std::size_t best_at = 0;
                for (std::size_t i = 0; i < frontier_.size(); ++i) {
                    const int u = frontier_[i];
                    ++*work_;
                    if (best == -1 || (top_down
                                           ? betterTopDown(u, best)
                                           : betterBottomUp(u, best))) {
                        best = u;
                        best_at = i;
                    }
                }
                frontier_[best_at] = frontier_.back();
                frontier_.pop_back();
                in_frontier_[static_cast<std::size_t>(best)] = false;
                append(best, /*late=*/!top_down);
                const auto& hop_edges = top_down
                                            ? graph_.succEdges()
                                            : graph_.predEdges();
                for (const int e :
                     hop_edges[static_cast<std::size_t>(best)]) {
                    const auto& edge =
                        graph_.edges()[static_cast<std::size_t>(e)];
                    const int next = top_down ? edge.to : edge.from;
                    if (in_set[static_cast<std::size_t>(next)] &&
                        !(*ordered_)[static_cast<std::size_t>(next)]) {
                        push(next);
                    }
                }
            }
        }
    }

  private:
    int
    earliest(int u) const
    {
        return bounds_.earliest[static_cast<std::size_t>(u)];
    }

    int
    latest(int u) const
    {
        return bounds_.latest[static_cast<std::size_t>(u)];
    }

    int slack(int u) const { return latest(u) - earliest(u); }

    /** Top-down: prefer smaller latest start (more critical), then id. */
    bool
    betterTopDown(int a, int b) const
    {
        if (latest(a) != latest(b))
            return latest(a) < latest(b);
        return a < b;
    }

    /** Bottom-up: prefer larger earliest start (deepest), then id. */
    bool
    betterBottomUp(int a, int b) const
    {
        if (earliest(a) != earliest(b))
            return earliest(a) > earliest(b);
        return a < b;
    }

    void
    collect(const std::vector<bool>& in_set, bool from_preds)
    {
        for (std::size_t e = 0; e < graph_.edges().size(); ++e) {
            ++*work_;
            const auto& edge = graph_.edges()[e];
            const int placed = from_preds ? edge.from : edge.to;
            const int candidate = from_preds ? edge.to : edge.from;
            if ((*ordered_)[static_cast<std::size_t>(placed)] &&
                in_set[static_cast<std::size_t>(candidate)] &&
                !(*ordered_)[static_cast<std::size_t>(candidate)]) {
                push(candidate);
            }
        }
    }

    void
    push(int u)
    {
        if (!in_frontier_[static_cast<std::size_t>(u)]) {
            in_frontier_[static_cast<std::size_t>(u)] = true;
            frontier_.push_back(u);
        }
    }

    void
    append(int u, bool late)
    {
        sequence_->push_back(u);
        (*ordered_)[static_cast<std::size_t>(u)] = true;
        (*place_late_)[static_cast<std::size_t>(u)] = late;
    }

    const SchedGraph& graph_;
    const SchedBounds& bounds_;
    std::vector<int>* sequence_;
    std::vector<bool>* ordered_;
    std::vector<bool>* place_late_;
    std::uint64_t* work_;
    std::vector<int> frontier_;
    std::vector<bool> in_frontier_;
};

}  // namespace

NodeOrder
computeSwingOrder(const SchedGraph& graph, int ii, CostMeter* meter)
{
    const int n = graph.numUnits();
    NodeOrder order;
    order.kind = PriorityKind::kSwing;
    std::uint64_t work = 0;

    const SchedBounds bounds =
        computeBounds(graph, ii, meter, TranslationPhase::kPriority);

    // Identify recurrences and rank them by criticality (their RecMII).
    std::vector<std::pair<int, int>> raw_edges;
    for (const auto& edge : graph.edges())
        raw_edges.emplace_back(edge.from, edge.to);
    const auto sccs = stronglyConnectedComponents(n, raw_edges);

    struct Recurrence {
        std::vector<bool> member;
        int rec_mii = 0;
    };
    std::vector<Recurrence> recurrences;
    for (const auto& scc : sccs) {
        bool cyclic = scc.size() > 1;
        if (!cyclic) {
            for (const auto& edge : graph.edges())
                cyclic |= edge.from == scc[0] && edge.to == scc[0];
        }
        if (!cyclic)
            continue;
        Recurrence rec;
        rec.member.assign(static_cast<std::size_t>(n), false);
        for (const int u : scc)
            rec.member[static_cast<std::size_t>(u)] = true;
        // Criticality computation is the expensive part of the swing
        // priority; the paper observes translation time grows sharply with
        // the number of recurrences.  Charged to the priority phase.
        rec.rec_mii = recMiiOfSubset(graph, rec.member, meter,
                                     TranslationPhase::kPriority);
        recurrences.push_back(std::move(rec));
    }
    std::sort(recurrences.begin(), recurrences.end(),
              [](const Recurrence& a, const Recurrence& b) {
                  return a.rec_mii > b.rec_mii;
              });

    std::vector<bool> ordered(static_cast<std::size_t>(n), false);
    order.place_late.assign(static_cast<std::size_t>(n), false);
    SwingSetOrderer orderer(graph, bounds, &order.sequence, &ordered,
                            &order.place_late, &work);

    for (const auto& rec : recurrences) {
        // The set to order: the recurrence plus any not-yet-ordered nodes
        // on paths between already-ordered nodes and this recurrence.
        std::vector<bool> set = rec.member;
        if (std::any_of(ordered.begin(), ordered.end(),
                        [](bool b) { return b; })) {
            const auto fwd = reachable(graph, ordered, true, &work);
            const auto back_to_rec =
                reachable(graph, rec.member, false, &work);
            const auto rec_fwd = reachable(graph, rec.member, true, &work);
            const auto back_to_ordered =
                reachable(graph, ordered, false, &work);
            for (int u = 0; u < n; ++u) {
                const auto s = static_cast<std::size_t>(u);
                const bool on_path = (fwd[s] && back_to_rec[s]) ||
                                     (rec_fwd[s] && back_to_ordered[s]);
                if (on_path && !ordered[s])
                    set[s] = true;
            }
        }
        orderer.orderSet(set);
    }

    // Final set: everything else (acyclic code).
    std::vector<bool> rest(static_cast<std::size_t>(n), false);
    for (int u = 0; u < n; ++u)
        rest[static_cast<std::size_t>(u)] =
            !ordered[static_cast<std::size_t>(u)];
    orderer.orderSet(rest);

    VEAL_ASSERT(static_cast<int>(order.sequence.size()) == n,
                "swing ordering dropped units");
    order.rank.assign(static_cast<std::size_t>(n), 0);
    for (int position = 0;
         position < static_cast<int>(order.sequence.size()); ++position) {
        order.rank[static_cast<std::size_t>(
            order.sequence[static_cast<std::size_t>(position)])] = position;
    }
    if (meter != nullptr)
        meter->charge(TranslationPhase::kPriority, work);
    return order;
}

NodeOrder
computeHeightOrder(const SchedGraph& graph, int ii, CostMeter* meter)
{
    const int n = graph.numUnits();
    NodeOrder order;
    order.kind = PriorityKind::kHeight;
    std::uint64_t work = 0;

    // Height: longest path from the node to any sink at this II.
    std::vector<int> height(static_cast<std::size_t>(n), 0);
    for (int round = 0; round <= n; ++round) {
        bool relaxed = false;
        for (const auto& edge : graph.edges()) {
            ++work;
            const int bound = height[static_cast<std::size_t>(edge.to)] +
                              edge.delay - ii * edge.distance;
            auto& h = height[static_cast<std::size_t>(edge.from)];
            if (bound > h) {
                h = bound;
                relaxed = true;
            }
        }
        if (!relaxed)
            break;
        VEAL_ASSERT(round < n,
                    "computeHeightOrder called at infeasible II ", ii);
    }

    order.place_late.assign(static_cast<std::size_t>(n), false);
    order.sequence.resize(static_cast<std::size_t>(n));
    for (int u = 0; u < n; ++u)
        order.sequence[static_cast<std::size_t>(u)] = u;
    std::sort(order.sequence.begin(), order.sequence.end(),
              [&](int a, int b) {
                  if (height[static_cast<std::size_t>(a)] !=
                      height[static_cast<std::size_t>(b)]) {
                      return height[static_cast<std::size_t>(a)] >
                             height[static_cast<std::size_t>(b)];
                  }
                  return a < b;
              });
    work += static_cast<std::uint64_t>(n);

    order.rank.assign(static_cast<std::size_t>(n), 0);
    for (int position = 0; position < n; ++position) {
        order.rank[static_cast<std::size_t>(
            order.sequence[static_cast<std::size_t>(position)])] = position;
    }
    if (meter != nullptr)
        meter->charge(TranslationPhase::kPriority, work);
    return order;
}

}  // namespace veal
