#include "veal/sched/mrt.h"

#include <algorithm>

#include "veal/support/assert.h"

namespace veal {

namespace {

/**
 * Unlimited configs never conflict, but allocating 2^20 columns would be
 * absurd; one column per possible simultaneous op is enough.
 */
int
practicalCount(int configured, int ii)
{
    return std::min(configured, std::max(ii * 4, 64));
}

}  // namespace

ModuloReservationTable::ModuloReservationTable(const LaConfig& config,
                                               int ii)
{
    reset(config, ii);
}

void
ModuloReservationTable::reset(const LaConfig& config, int ii)
{
    VEAL_ASSERT(ii >= 1, "MRT with II ", ii);
    ii_ = ii;
    std::size_t offset = 0;
    for (int c = 0; c < kNumFuClasses; ++c) {
        auto& cls = classes_[static_cast<std::size_t>(c)];
        cls.offset = offset;
        cls.count =
            practicalCount(config.fuCount(static_cast<FuClass>(c)), ii);
        offset += static_cast<std::size_t>(cls.count) *
                  static_cast<std::size_t>(ii);
    }
    // New elements value-initialise to 0, which never equals an epoch.
    if (offset > stamps_.size())
        stamps_.resize(offset);
    ++epoch_;
}

int
ModuloReservationTable::slotOf(int time) const
{
    const int m = time % ii_;
    return m < 0 ? m + ii_ : m;
}

int
ModuloReservationTable::reserve(FuClass fu_class, int time,
                                int init_interval, std::uint64_t* probes)
{
    VEAL_ASSERT(fu_class != FuClass::kNone && fu_class != FuClass::kCount);
    VEAL_ASSERT(init_interval >= 1);
    if (init_interval > ii_)
        return -1;  // A non-pipelined unit cannot repeat faster than this.
    const auto& cls = classes_[static_cast<std::size_t>(fu_class)];
    for (int instance = 0; instance < cls.count; ++instance) {
        std::uint64_t* base =
            stamps_.data() + cls.offset +
            static_cast<std::size_t>(instance) *
                static_cast<std::size_t>(ii_);
        // Stamp slots as they probe free; the slots of one reservation
        // are distinct modulo ii (init_interval <= ii), so a conflict at
        // slot k un-stamps exactly the k slots this attempt touched.
        bool free = true;
        int k = 0;
        for (; k < init_interval; ++k) {
            if (probes != nullptr)
                ++*probes;
            std::uint64_t& stamp =
                base[static_cast<std::size_t>(slotOf(time + k))];
            if (stamp == epoch_) {
                free = false;
                break;
            }
            stamp = epoch_;
        }
        if (free)
            return instance;
        for (int j = 0; j < k; ++j)
            base[static_cast<std::size_t>(slotOf(time + j))] = epoch_ - 1;
    }
    return -1;
}

}  // namespace veal
