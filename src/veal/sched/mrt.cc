#include "veal/sched/mrt.h"

#include <algorithm>

#include "veal/support/assert.h"

namespace veal {

namespace {

/**
 * Unlimited configs never conflict, but allocating 2^20 columns would be
 * absurd; one column per possible simultaneous op is enough.
 */
int
practicalCount(int configured, int ii)
{
    return std::min(configured, std::max(ii * 4, 64));
}

}  // namespace

ModuloReservationTable::ModuloReservationTable(const LaConfig& config,
                                               int ii)
    : ii_(ii)
{
    VEAL_ASSERT(ii >= 1, "MRT with II ", ii);
    occupancy_.resize(kNumFuClasses);
    for (int c = 0; c < kNumFuClasses; ++c) {
        const int count =
            practicalCount(config.fuCount(static_cast<FuClass>(c)), ii);
        occupancy_[static_cast<std::size_t>(c)].assign(
            static_cast<std::size_t>(count),
            std::vector<bool>(static_cast<std::size_t>(ii), false));
    }
}

int
ModuloReservationTable::slotOf(int time) const
{
    const int m = time % ii_;
    return m < 0 ? m + ii_ : m;
}

int
ModuloReservationTable::reserve(FuClass fu_class, int time,
                                int init_interval, std::uint64_t* probes)
{
    VEAL_ASSERT(fu_class != FuClass::kNone && fu_class != FuClass::kCount);
    VEAL_ASSERT(init_interval >= 1);
    if (init_interval > ii_)
        return -1;  // A non-pipelined unit cannot repeat faster than this.
    auto& instances = occupancy_[static_cast<int>(fu_class)];
    for (std::size_t instance = 0; instance < instances.size();
         ++instance) {
        bool free = true;
        for (int k = 0; k < init_interval; ++k) {
            if (probes != nullptr)
                ++*probes;
            if (instances[instance][static_cast<std::size_t>(
                    slotOf(time + k))]) {
                free = false;
                break;
            }
        }
        if (free) {
            for (int k = 0; k < init_interval; ++k) {
                instances[instance][static_cast<std::size_t>(
                    slotOf(time + k))] = true;
            }
            return static_cast<int>(instance);
        }
    }
    return -1;
}

int
ModuloReservationTable::instanceCount(FuClass fu_class) const
{
    return static_cast<int>(
        occupancy_[static_cast<int>(fu_class)].size());
}

bool
ModuloReservationTable::occupied(FuClass fu_class, int instance,
                                 int slot) const
{
    return occupancy_[static_cast<int>(fu_class)]
                     [static_cast<std::size_t>(instance)]
                     [static_cast<std::size_t>(slot)];
}

void
ModuloReservationTable::clear()
{
    for (auto& instances : occupancy_) {
        for (auto& slots : instances)
            std::fill(slots.begin(), slots.end(), false);
    }
}

}  // namespace veal
