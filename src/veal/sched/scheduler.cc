#include "veal/sched/scheduler.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "veal/fault/fault_injector.h"
#include "veal/sched/mii.h"
#include "veal/support/assert.h"

namespace veal {

namespace {

/**
 * Scratch reused across the II attempts of one scheduleLoop() call: the
 * MRT epoch-resets instead of reallocating, and the placement arrays are
 * assign()ed in place.  Purely a wall-clock measure -- probe and charge
 * sequences are those of per-attempt fresh state.
 */
struct ScheduleWorkspace {
    ScheduleWorkspace(const LaConfig& config, int ii) : mrt(config, ii) {}

    ModuloReservationTable mrt;
    std::vector<bool> placed;
    std::vector<int> time;
    std::vector<int> fu_instance;
};

/** Attempt to place every unit at one candidate II.  */
std::optional<Schedule>
tryIi(const SchedGraph& graph, const LaConfig& config,
      const NodeOrder& order, int ii, CostMeter* meter,
      ScheduleWorkspace& ws)
{
    const int n = graph.numUnits();
    if (!iiFeasible(graph, ii, meter, TranslationPhase::kScheduling))
        return std::nullopt;

    const SchedBounds bounds =
        computeBounds(graph, ii, meter, TranslationPhase::kScheduling);
    ws.mrt.reset(config, ii);
    ModuloReservationTable& mrt = ws.mrt;
    ws.placed.assign(static_cast<std::size_t>(n), false);
    ws.time.assign(static_cast<std::size_t>(n), 0);
    ws.fu_instance.assign(static_cast<std::size_t>(n), -1);
    std::vector<bool>& placed = ws.placed;
    std::vector<int>& time = ws.time;
    std::vector<int>& fu_instance = ws.fu_instance;
    std::uint64_t probes = 0;

    constexpr int kNegInf = -(1 << 28);
    constexpr int kPosInf = 1 << 28;

    for (const int u : order.sequence) {
        const auto& unit = graph.units()[static_cast<std::size_t>(u)];
        int earliest = kNegInf;
        int latest = kPosInf;
        bool has_pred = false;
        bool has_succ = false;
        for (const int e : graph.predEdges()[static_cast<std::size_t>(u)]) {
            const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
            if (edge.from == u ||
                !placed[static_cast<std::size_t>(edge.from)]) {
                continue;
            }
            ++probes;
            earliest = std::max(
                earliest, time[static_cast<std::size_t>(edge.from)] +
                              edge.delay - ii * edge.distance);
            has_pred = true;
        }
        for (const int e : graph.succEdges()[static_cast<std::size_t>(u)]) {
            const auto& edge = graph.edges()[static_cast<std::size_t>(e)];
            if (edge.to == u || !placed[static_cast<std::size_t>(edge.to)])
                continue;
            ++probes;
            latest = std::min(latest,
                              time[static_cast<std::size_t>(edge.to)] -
                                  edge.delay + ii * edge.distance);
            has_succ = true;
        }

        // Swing window: scan forward from the earliest start when preds
        // anchor the unit, backward from the latest start when succs do.
        // Units ordered in a bottom-up sweep are placed as late as their
        // window allows (hugging their successors) -- the "swing".
        const bool late =
            !order.place_late.empty() &&
            order.place_late[static_cast<std::size_t>(u)];
        int start;
        int step;
        int count;
        if (has_pred && has_succ) {
            if (earliest > latest) {
                if (std::getenv("VEAL_SCHED_DEBUG") != nullptr) {
                    std::fprintf(stderr,
                                 "sched: ii=%d unit=%d empty window "
                                 "[%d, %d]\n",
                                 ii, u, earliest, latest);
                    for (const int e :
                         graph.predEdges()[static_cast<std::size_t>(u)]) {
                        const auto& edge =
                            graph.edges()[static_cast<std::size_t>(e)];
                        if (placed[static_cast<std::size_t>(edge.from)]) {
                            std::fprintf(
                                stderr, "  pred %d@%d d=%d dist=%d\n",
                                edge.from,
                                time[static_cast<std::size_t>(edge.from)],
                                edge.delay, edge.distance);
                        }
                    }
                    for (const int e :
                         graph.succEdges()[static_cast<std::size_t>(u)]) {
                        const auto& edge =
                            graph.edges()[static_cast<std::size_t>(e)];
                        if (placed[static_cast<std::size_t>(edge.to)]) {
                            std::fprintf(
                                stderr, "  succ %d@%d d=%d dist=%d\n",
                                edge.to,
                                time[static_cast<std::size_t>(edge.to)],
                                edge.delay, edge.distance);
                        }
                    }
                }
                if (meter != nullptr)
                    meter->charge(TranslationPhase::kScheduling, probes);
                return std::nullopt;
            }
            count = std::min(latest - earliest + 1, ii);
            if (late) {
                start = latest;
                step = -1;
            } else {
                start = earliest;
                step = 1;
            }
        } else if (has_pred) {
            start = earliest;
            step = 1;
            count = ii;
        } else if (has_succ) {
            start = latest;
            step = -1;
            count = ii;
        } else {
            // No placed neighbour: anchor at the ASAP bound.  (Anchoring
            // bottom-up nodes at ALAP instead strands their consumers
            // between a late producer and early consumers.)
            start = bounds.earliest[static_cast<std::size_t>(u)];
            step = 1;
            count = ii;
        }

        bool done = false;
        for (int k = 0; k < count && !done; ++k) {
            const int t = start + step * k;
            ++probes;
            if (unit.fu == FuClass::kNone) {
                // Memory units use stream bandwidth, not an FU slot.
                time[static_cast<std::size_t>(u)] = t;
                done = true;
                break;
            }
            const int instance =
                mrt.reserve(unit.fu, t, unit.init_interval, &probes);
            if (instance >= 0) {
                time[static_cast<std::size_t>(u)] = t;
                fu_instance[static_cast<std::size_t>(u)] = instance;
                done = true;
            }
        }
        if (!done) {
            if (std::getenv("VEAL_SCHED_DEBUG") != nullptr) {
                std::fprintf(stderr,
                             "sched: ii=%d unit=%d fu=%d window start=%d "
                             "step=%d count=%d pred=%d succ=%d e=%d l=%d\n",
                             ii, u, static_cast<int>(unit.fu), start, step,
                             count, has_pred ? 1 : 0, has_succ ? 1 : 0,
                             earliest, latest);
            }
            if (meter != nullptr)
                meter->charge(TranslationPhase::kScheduling, probes);
            return std::nullopt;
        }
        placed[static_cast<std::size_t>(u)] = true;
    }

    // Windows skip self edges and cannot see everything at once; verify
    // the full constraint system before accepting this II.
    for (const auto& edge : graph.edges()) {
        ++probes;
        if (time[static_cast<std::size_t>(edge.to)] <
            time[static_cast<std::size_t>(edge.from)] + edge.delay -
                ii * edge.distance) {
            if (std::getenv("VEAL_SCHED_DEBUG") != nullptr) {
                std::fprintf(stderr,
                             "sched: ii=%d edge %d@%d -> %d@%d delay=%d "
                             "dist=%d violated\n",
                             ii, edge.from,
                             time[static_cast<std::size_t>(edge.from)],
                             edge.to,
                             time[static_cast<std::size_t>(edge.to)],
                             edge.delay, edge.distance);
            }
            if (meter != nullptr)
                meter->charge(TranslationPhase::kScheduling, probes);
            return std::nullopt;
        }
    }
    if (meter != nullptr)
        meter->charge(TranslationPhase::kScheduling, probes);

    // Normalise: shifting every time by the same amount rotates the MRT
    // uniformly, so no conflict or dependence can appear.
    Schedule schedule;
    schedule.ii = ii;
    const int min_time =
        n == 0 ? 0 : *std::min_element(time.begin(), time.end());
    for (int u = 0; u < n; ++u)
        time[static_cast<std::size_t>(u)] -= min_time;
    schedule.time = std::move(time);
    schedule.fu_instance = std::move(fu_instance);
    schedule.length = 0;
    int max_stage = 0;
    for (const auto& unit : graph.units()) {
        const auto u = static_cast<std::size_t>(unit.id);
        schedule.length = std::max(schedule.length,
                                   schedule.time[u] + unit.latency);
        max_stage = std::max(max_stage, schedule.time[u] / ii);
    }
    schedule.stage_count = max_stage + 1;
    return schedule;
}

}  // namespace

std::optional<Schedule>
scheduleLoop(const SchedGraph& graph, const LaConfig& config,
             const NodeOrder& order, int min_ii, CostMeter* meter,
             SchedulerStats* stats, FaultInjector* faults)
{
    VEAL_ASSERT(static_cast<int>(order.sequence.size()) ==
                graph.numUnits(), "order does not cover the graph");

    // Injection site: one probe per II search.  A fired probe models a
    // placement failure the search cannot recover from at any II.
    if (faults != nullptr &&
        faults->probe(FaultSite::kSchedulerPlacement)) {
        if (stats != nullptr)
            ++stats->placement_failures;
        return std::nullopt;
    }

    int start_ii = std::max(min_ii, 1);
    for (const auto& unit : graph.units()) {
        if (unit.fu != FuClass::kNone)
            start_ii = std::max(start_ii, unit.init_interval);
    }
    if (start_ii > config.max_ii)
        return std::nullopt;

    // A finite retry budget: SMS converges within a few IIs of MII; an
    // unschedulable loop should fail fast rather than walk a 2^20 max II.
    const int limit =
        std::min(config.max_ii, std::min(start_ii + 64, 1 << 12));
    ScheduleWorkspace ws(config, start_ii);
    for (int ii = start_ii; ii <= limit; ++ii) {
        if (stats != nullptr)
            ++stats->attempted_iis;
        if (auto schedule = tryIi(graph, config, order, ii, meter, ws))
            return schedule;
        if (stats != nullptr)
            ++stats->placement_failures;
    }
    return std::nullopt;
}

}  // namespace veal
