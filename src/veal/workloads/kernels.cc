#include "veal/workloads/kernels.h"

#include "veal/ir/loop_builder.h"

namespace veal {

CalleeLibrary
standardCalleeLibrary()
{
    CalleeLibrary library;
    // clip(x, lo, hi) -> min(max(x, lo), hi)
    library["clip"] = [](Loop& loop, const std::vector<Operand>& args) {
        const OpId lo = args.size() > 1
                            ? args[1].producer
                            : appendOp(loop, Opcode::kConst, {}, -32768);
        const Operand lo_use = args.size() > 1 ? args[1] : Operand{lo, 0};
        const OpId hi = args.size() > 2
                            ? args[2].producer
                            : appendOp(loop, Opcode::kConst, {}, 32767);
        const Operand hi_use = args.size() > 2 ? args[2] : Operand{hi, 0};
        const OpId low = appendOp(loop, Opcode::kMax, {args[0], lo_use});
        return appendOp(loop, Opcode::kMin, {Operand{low, 0}, hi_use});
    };
    // sat8(x): clamp to [0, 255]
    library["sat8"] = [](Loop& loop, const std::vector<Operand>& args) {
        const OpId zero = appendOp(loop, Opcode::kConst, {}, 0);
        const OpId cap = appendOp(loop, Opcode::kConst, {}, 255);
        const OpId low =
            appendOp(loop, Opcode::kMax, {args[0], Operand{zero, 0}});
        return appendOp(loop, Opcode::kMin,
                        {Operand{low, 0}, Operand{cap, 0}});
    };
    // iabs(x): max(x, 0 - x)
    library["iabs"] = [](Loop& loop, const std::vector<Operand>& args) {
        const OpId zero = appendOp(loop, Opcode::kConst, {}, 0);
        const OpId negated =
            appendOp(loop, Opcode::kSub, {Operand{zero, 0}, args[0]});
        return appendOp(loop, Opcode::kMax, {args[0], Operand{negated, 0}});
    };
    // rol5(x): (x << 5) | (x >> 27)
    library["rol5"] = [](Loop& loop, const std::vector<Operand>& args) {
        const OpId c5 = appendOp(loop, Opcode::kConst, {}, 5);
        const OpId c27 = appendOp(loop, Opcode::kConst, {}, 27);
        const OpId hi =
            appendOp(loop, Opcode::kShl, {args[0], Operand{c5, 0}});
        const OpId lo =
            appendOp(loop, Opcode::kShr, {args[0], Operand{c27, 0}});
        return appendOp(loop, Opcode::kOr,
                        {Operand{hi, 0}, Operand{lo, 0}});
    };
    // avg2(a, b): (a + b + 1) >> 1
    library["avg2"] = [](Loop& loop, const std::vector<Operand>& args) {
        const OpId one = appendOp(loop, Opcode::kConst, {}, 1);
        const OpId sum = appendOp(loop, Opcode::kAdd, {args[0], args[1]});
        const OpId rounded = appendOp(loop, Opcode::kAdd,
                                      {Operand{sum, 0}, Operand{one, 0}});
        return appendOp(loop, Opcode::kShr,
                        {Operand{rounded, 0}, Operand{one, 0}});
    };
    return library;
}

Loop
makeAdpcmStepLoop(const std::string& name, bool with_call)
{
    LoopBuilder b(name);
    b.setTripCount(1024);
    const OpId iv = b.induction(1);
    const OpId delta = b.load("in", iv);

    // step-size recurrence: step' = (step * m(delta)) >> 6, via shifts.
    const OpId c7 = b.constant(7);
    const OpId c2 = b.constant(2);
    const OpId c6 = b.constant(6);
    const OpId masked = b.andOp(delta, c7);
    const OpId weight = b.add(masked, c2);
    // step reads its own previous value (distance-1 recurrence).
    const OpId scaled = b.mul(LoopBuilder::carried(kNoOp, 0), weight);
    const OpId step = b.shr(scaled, c6);
    b.loop().mutableOp(scaled).inputs[0] = LoopBuilder::carried(step, 1);

    // difference decode: diff = (step >> 1) + select(bit, step, 0)
    const OpId c1 = b.constant(1);
    const OpId half = b.shr(step, c1);
    const OpId bit = b.andOp(delta, c1);
    const OpId zero = b.constant(0);
    const OpId extra = b.select(bit, step, zero);
    const OpId diff = b.add(half, extra);

    // valpred recurrence with saturation.
    const OpId sign = b.andOp(b.shr(delta, c2), c1);
    const OpId signed_diff = b.select(sign, b.sub(zero, diff), diff);
    const OpId valpred = b.add(LoopBuilder::carried(kNoOp, 0), signed_diff);
    OpId clamped;
    if (with_call) {
        clamped = b.call("clip", {Operand{valpred, 0}});
    } else {
        const OpId lo = b.constant(-32768);
        const OpId hi = b.constant(32767);
        clamped = b.minOp(b.maxOp(valpred, lo), hi);
    }
    b.loop().mutableOp(valpred).inputs[0] = LoopBuilder::carried(clamped, 1);

    b.store("out", iv, clamped);
    b.markLiveOut(clamped);
    b.loopBack(iv, b.constant(1024));
    return b.build();
}

Loop
makeG721PredictorLoop(const std::string& name, bool with_call)
{
    LoopBuilder b(name);
    b.setTripCount(512);
    const OpId iv = b.induction(1);
    const OpId sample = b.load("speech", iv);

    const OpId c1 = b.constant(1);
    const OpId c3 = b.constant(3);
    const OpId c5 = b.constant(5);

    // Two pole coefficients with leak: a' = a - (a >> 5) + f(err).
    OpId coeffs[2];
    OpId err = b.sub(sample, b.constant(128));
    for (int pole = 0; pole < 2; ++pole) {
        const OpId leak = b.shr(LoopBuilder::carried(kNoOp, 0), c5);
        const OpId sgn = b.shr(err, c3);
        const OpId delta = b.andOp(sgn, c3);
        const OpId leaked = b.sub(LoopBuilder::carried(kNoOp, 0), leak);
        const OpId updated = b.add(leaked, delta);
        b.loop().mutableOp(leak).inputs[0] =
            LoopBuilder::carried(updated, 1);
        b.loop().mutableOp(leaked).inputs[0] =
            LoopBuilder::carried(updated, 1);
        coeffs[pole] = updated;
        err = b.xorOp(err, updated);
    }

    // Reconstruction with saturation.
    const OpId mixed = b.add(coeffs[0], b.shr(coeffs[1], c1));
    OpId recon;
    if (with_call) {
        recon = b.call("clip", {Operand{mixed, 0}});
    } else {
        recon = b.minOp(b.maxOp(mixed, b.constant(-2048)),
                        b.constant(2047));
    }
    b.store("recon", iv, recon);
    b.loopBack(iv, b.constant(512));
    return b.build();
}

Loop
makeFirLoop(const std::string& name, int taps)
{
    LoopBuilder b(name);
    b.setTripCount(2048);
    const OpId iv = b.induction(1);
    OpId acc = kNoOp;
    for (int t = 0; t < taps; ++t) {
        const OpId offset = b.constant(t);
        const OpId addr = b.add(iv, offset);
        const OpId x = b.load("x", addr);
        const OpId coeff = b.liveIn("c" + std::to_string(t));
        const OpId prod = b.mul(x, coeff);
        acc = acc == kNoOp ? prod : b.add(acc, prod);
    }
    b.store("y", iv, acc);
    b.loopBack(iv, b.constant(2048));
    return b.build();
}

Loop
makeDotProductLoop(const std::string& name)
{
    LoopBuilder b(name);
    b.setTripCount(4096);
    const OpId iv = b.induction(1);
    const OpId a = b.load("a", iv);
    const OpId c = b.load("b", iv);
    const OpId prod = b.mul(a, c);
    const OpId acc = b.add(prod, LoopBuilder::carried(kNoOp, 0));
    b.loop().mutableOp(acc).inputs[1] = LoopBuilder::carried(acc, 1);
    b.markLiveOut(acc);
    b.loopBack(iv, b.constant(4096));
    return b.build();
}

Loop
makeWaveletLiftLoop(const std::string& name, bool with_call)
{
    LoopBuilder b(name);
    b.setTripCount(1024);
    const OpId iv = b.induction(1);
    const OpId c1 = b.constant(1);
    const OpId c2 = b.constant(2);

    const OpId s0 = b.load("s", iv);
    const OpId s1 = b.load("s", b.add(iv, c1));
    const OpId d0 = b.load("d", iv);

    // Predict: d' = d - avg(s0, s1)
    OpId average;
    if (with_call) {
        average = b.call("avg2", {Operand{s0, 0}, Operand{s1, 0}});
    } else {
        average = b.shr(b.add(s0, s1), c1);
    }
    const OpId predict = b.sub(d0, average);
    // Update: s' = s0 + ((d'[i-1] + d'[i]) >> 2): carried use of predict.
    const OpId dsum =
        b.add(LoopBuilder::carried(predict, 1), Operand{predict, 0});
    const OpId update = b.add(s0, b.shr(dsum, c2));

    b.store("dout", iv, predict);
    b.store("sout", iv, update);
    b.loopBack(iv, b.constant(1024));
    return b.build();
}

Loop
makeDct8Loop(const std::string& name, int unroll)
{
    LoopBuilder b(name);
    b.setTripCount(256);
    const OpId iv = b.induction(1);
    const OpId c3 = b.constant(3);
    const OpId row = b.shl(iv, c3);  // row base = iv * 8

    for (int u = 0; u < unroll; ++u) {
        OpId x[8];
        for (int k = 0; k < 8; ++k) {
            const OpId offset = b.constant(k + 8 * u * 256);
            x[k] = b.load("block", b.add(row, offset));
        }
        // Butterfly stage 1.
        OpId s[8];
        for (int k = 0; k < 4; ++k) {
            s[k] = b.add(x[k], x[7 - k]);
            s[4 + k] = b.sub(x[k], x[7 - k]);
        }
        // Stage 2 with constant multiplies (fixed-point coefficients).
        const OpId w1 = b.constant(2217);
        const OpId w2 = b.constant(5352);
        OpId t[8];
        t[0] = b.add(s[0], s[3]);
        t[1] = b.add(s[1], s[2]);
        t[2] = b.sub(s[1], s[2]);
        t[3] = b.sub(s[0], s[3]);
        t[4] = b.mul(s[4], w1);
        t[5] = b.mul(s[5], w2);
        t[6] = b.mul(s[6], w1);
        t[7] = b.mul(s[7], w2);
        // Stage 3: outputs.
        const OpId c11 = b.constant(11);
        OpId out[8];
        out[0] = b.add(t[0], t[1]);
        out[1] = b.sub(t[0], t[1]);
        out[2] = b.add(t[2], t[3]);
        out[3] = b.sub(t[3], t[2]);
        out[4] = b.shr(b.add(t[4], t[5]), c11);
        out[5] = b.shr(b.sub(t[4], t[5]), c11);
        out[6] = b.shr(b.add(t[6], t[7]), c11);
        out[7] = b.shr(b.sub(t[6], t[7]), c11);
        for (int k = 0; k < 8; ++k) {
            const OpId offset = b.constant(k + 8 * u * 256);
            b.store("coef", b.add(row, offset), out[k]);
        }
    }
    b.loopBack(iv, b.constant(256));
    return b.build();
}

Loop
makeSadLoop(const std::string& name, bool with_call)
{
    LoopBuilder b(name);
    b.setTripCount(256);
    const OpId iv = b.induction(1);
    const OpId ref = b.load("ref", iv);
    const OpId cur = b.load("cur", iv);
    const OpId diff = b.sub(cur, ref);
    OpId magnitude;
    if (with_call) {
        magnitude = b.call("iabs", {Operand{diff, 0}});
    } else {
        magnitude = b.absOp(diff);
    }
    const OpId acc = b.add(magnitude, LoopBuilder::carried(kNoOp, 0));
    b.loop().mutableOp(acc).inputs[1] = LoopBuilder::carried(acc, 1);
    b.markLiveOut(acc);
    b.loopBack(iv, b.constant(256));
    return b.build();
}

Loop
makeQuantLoop(const std::string& name, bool with_call)
{
    LoopBuilder b(name);
    b.setTripCount(1024);
    const OpId iv = b.induction(1);
    const OpId x = b.load("coef", iv);
    const OpId scale = b.liveIn("qscale");
    const OpId rounding = b.liveIn("round");
    const OpId shift = b.constant(16);
    const OpId scaled = b.mul(x, scale);
    const OpId rounded = b.add(scaled, rounding);
    const OpId q = b.shr(rounded, shift);
    OpId clipped;
    if (with_call) {
        clipped = b.call("sat8", {Operand{q, 0}});
    } else {
        clipped = b.minOp(b.maxOp(q, b.constant(0)), b.constant(255));
    }
    b.store("qcoef", iv, clipped);
    b.loopBack(iv, b.constant(1024));
    return b.build();
}

Loop
makeShaMixLoop(const std::string& name, int rounds, bool with_call)
{
    LoopBuilder b(name);
    b.setTripCount(512);
    const OpId iv = b.induction(1);
    const OpId c5 = b.constant(5);
    const OpId c27 = b.constant(27);

    // State word `a` carries across iterations through `rounds` rounds of
    // rotate + nonlinear mixing: one long recurrence chain.
    const OpId w = b.load("msg", iv);
    OpId a = kNoOp;
    OpId first_hi = kNoOp;
    OpId first_lo = kNoOp;
    for (int r = 0; r < rounds; ++r) {
        const Operand prev =
            a == kNoOp ? LoopBuilder::carried(kNoOp, 0) : Operand{a, 0};
        OpId rot;
        OpId hi = kNoOp;
        OpId lo = kNoOp;
        if (with_call) {
            rot = b.call("rol5", {prev});
            if (a == kNoOp)
                first_hi = rot;
        } else {
            hi = b.shl(prev, c5);
            lo = b.shr(prev, c27);
            if (a == kNoOp) {
                first_hi = hi;
                first_lo = lo;
            }
            rot = b.orOp(hi, lo);
        }
        const OpId mixed = b.xorOp(rot, w);
        const OpId keyed = b.add(mixed, b.constant(0x5a827999 + r));
        a = b.andOp(keyed, b.constant(0x7fffffff));
    }
    // Close the recurrence: round 0 reads the *final* state of the
    // previous iteration, so the whole round chain is one dependence
    // cycle (RecMII grows with the number of rounds).
    b.loop().mutableOp(first_hi).inputs[0] = LoopBuilder::carried(a, 1);
    if (first_lo != kNoOp) {
        b.loop().mutableOp(first_lo).inputs[0] =
            LoopBuilder::carried(a, 1);
    }
    b.store("digest", iv, a);
    b.loopBack(iv, b.constant(512));
    return b.build();
}

Loop
makeStencil5Loop(const std::string& name)
{
    LoopBuilder b(name);
    b.setTripCount(1024);
    const OpId iv = b.induction(1);
    const OpId c1 = b.constant(1);
    const OpId cn = b.constant(128);  // row pitch

    const OpId center = b.load("u", iv);
    const OpId west = b.load("u", b.sub(iv, c1));
    const OpId east = b.load("u", b.add(iv, c1));
    const OpId north = b.load("u", b.sub(iv, cn));
    const OpId south = b.load("u", b.add(iv, cn));

    const OpId wc = b.liveIn("wc");
    const OpId wn = b.liveIn("wn");
    const OpId sum_ew = b.fadd(west, east);
    const OpId sum_ns = b.fadd(north, south);
    const OpId weighted =
        b.fadd(b.fmul(center, wc), b.fmul(b.fadd(sum_ew, sum_ns), wn));
    b.store("unew", iv, weighted);
    b.loopBack(iv, b.constant(1024));
    return b.build();
}

Loop
makeStencilNLoop(const std::string& name, int points)
{
    LoopBuilder b(name);
    b.setTripCount(512);
    const OpId iv = b.induction(1);
    const OpId w0 = b.liveIn("c0");
    const OpId w1 = b.liveIn("c1");

    OpId acc = kNoOp;
    for (int p = 0; p < points; ++p) {
        // Distinct neighbour offsets; each is its own memory stream.
        const OpId offset = b.constant((p % 2 == 0 ? 1 : -1) *
                                       ((p / 2) * 64 + p));
        const OpId v = b.load("r", b.add(iv, offset));
        const OpId weighted = b.fmul(v, p % 2 == 0 ? w0 : w1);
        acc = acc == kNoOp ? weighted : b.fadd(acc, weighted);
    }
    b.store("z", iv, acc);
    b.loopBack(iv, b.constant(512));
    return b.build();
}

Loop
makeMatVecLoop(const std::string& name, int rows, int cols)
{
    LoopBuilder b(name);
    b.setTripCount(1024);
    const OpId iv = b.induction(1);
    const OpId c2 = b.constant(2);
    const OpId base = b.shl(iv, c2);  // one vertex per iteration

    std::vector<OpId> x(static_cast<std::size_t>(cols));
    for (int k = 0; k < cols; ++k) {
        const OpId offset = b.constant(k);
        x[static_cast<std::size_t>(k)] =
            b.load("vin", b.add(base, offset));
    }
    for (int row = 0; row < rows; ++row) {
        OpId acc = kNoOp;
        for (int col = 0; col < cols; ++col) {
            const OpId m = b.liveIn("m" + std::to_string(row) +
                                    std::to_string(col));
            const OpId prod =
                b.fmul(x[static_cast<std::size_t>(col)], m);
            acc = acc == kNoOp ? prod : b.fadd(acc, prod);
        }
        const OpId offset = b.constant(row);
        b.store("vout", b.add(base, offset), acc);
    }
    b.loopBack(iv, b.constant(1024));
    return b.build();
}

Loop
makeMatVec4Loop(const std::string& name)
{
    return makeMatVecLoop(name, 4, 4);
}

Loop
makeViterbiAcsLoop(const std::string& name)
{
    LoopBuilder b(name);
    b.setTripCount(256);
    const OpId iv = b.induction(1);
    const OpId bm0 = b.load("branch0", iv);
    const OpId bm1 = b.load("branch1", iv);

    // Two path metrics, each a distance-1 recurrence through add+min.
    OpId survivors[2];
    for (int s = 0; s < 2; ++s) {
        const OpId cand0 = b.add(LoopBuilder::carried(kNoOp, 0),
                                 s == 0 ? bm0 : bm1);
        const OpId cand1 = b.add(LoopBuilder::carried(kNoOp, 0),
                                 s == 0 ? bm1 : bm0);
        const OpId best = b.minOp(cand0, cand1);
        b.loop().mutableOp(cand0).inputs[0] = LoopBuilder::carried(best, 1);
        b.loop().mutableOp(cand1).inputs[0] = LoopBuilder::carried(best, 1);
        survivors[s] = best;
    }
    const OpId decision = b.cmp(survivors[0], survivors[1]);
    b.store("path", iv, decision);
    b.loopBack(iv, b.constant(256));
    return b.build();
}

Loop
makeCopyScaleLoop(const std::string& name)
{
    LoopBuilder b(name);
    b.setTripCount(4096);
    const OpId iv = b.induction(1);
    const OpId x = b.load("src", iv);
    const OpId scale = b.liveIn("k");
    const OpId c7 = b.constant(7);
    const OpId scaled = b.shr(b.mul(x, scale), c7);
    b.store("dst", iv, scaled);
    b.loopBack(iv, b.constant(4096));
    return b.build();
}

Loop
makeSearchWhileLoop(const std::string& name)
{
    LoopBuilder b(name);
    b.setTripCount(512);
    b.markNeedsSpeculation();  // Data-dependent exit: needs speculation.
    const OpId iv = b.induction(1);
    const OpId x = b.load("hay", iv);
    const OpId needle = b.liveIn("needle");
    const OpId hit = b.cmp(x, needle);
    const OpId acc = b.orOp(hit, LoopBuilder::carried(kNoOp, 0));
    b.loop().mutableOp(acc).inputs[1] = LoopBuilder::carried(acc, 1);
    b.markLiveOut(acc);
    b.loopBack(iv, b.constant(512));
    return b.build();
}

Loop
makeMathCallLoop(const std::string& name)
{
    LoopBuilder b(name);
    b.setTripCount(256);
    const OpId iv = b.induction(1);
    const OpId x = b.load("angles", iv);
    // Non-inlinable library call: the compiler cannot see `sin`.
    const OpId s = b.call("sin", {Operand{x, 0}});
    b.store("sines", iv, s);
    b.loopBack(iv, b.constant(256));
    return b.build();
}

}  // namespace veal
