#ifndef VEAL_WORKLOADS_SUITE_H_
#define VEAL_WORKLOADS_SUITE_H_

/**
 * @file
 * The synthetic benchmark suite mirroring the paper's evaluation set.
 *
 * Each Benchmark packages two Applications: the statically *transformed*
 * binary (aggressive inlining, loop fission to fit stream limits, tuned
 * unrolling -- paper §4.2) and the plain *untransformed* binary used for
 * Figure 7.  Execution-time category fractions are calibrated against the
 * paper's Figure 2 by scaling invocation counts and the acyclic residue.
 */

#include <string>
#include <vector>

#include "veal/arch/la_config.h"
#include "veal/vm/application.h"

namespace veal {

/** Target execution-time split on the baseline CPU (Figure 2). */
struct CategoryFractions {
    double modulo = 1.0;       ///< Modulo-schedulable loops.
    double speculation = 0.0;  ///< While loops / side exits.
    double subroutine = 0.0;   ///< Loops with non-inlinable calls.
    double acyclic = 0.0;      ///< Everything else.
};

/** One benchmark: profile targets plus both binary variants. */
struct Benchmark {
    std::string name;
    bool media_or_fp = true;  ///< Left group of Figure 2 (evaluated set).
    CategoryFractions fractions;
    Application transformed;
    Application untransformed;
};

/**
 * The media/floating-point evaluation suite (left of Figure 2): the
 * benchmarks every experiment in §3 and §4 runs over.  The no-argument
 * form targets the paper's proposed design point.
 */
std::vector<Benchmark> mediaFpSuite();

/**
 * As mediaFpSuite(), with the static compiler's loop-fission pass
 * targeted at @p fission_target instead of the paper's single design
 * point -- what a fleet member's toolchain would have produced.  Pure
 * function of its argument: suites built for different targets share no
 * state (regression-pinned in fleet_steering_test).
 */
std::vector<Benchmark> mediaFpSuite(const LaConfig& fission_target);

/**
 * The integer/control-heavy group (right of Figure 2): only used to show
 * where loop accelerators do *not* help.
 */
std::vector<Benchmark> integerSuite();

/** As integerSuite(), fissioned for @p fission_target. */
std::vector<Benchmark> integerSuite(const LaConfig& fission_target);

/** Look up one benchmark from mediaFpSuite() by name (fatal if absent). */
Benchmark findBenchmark(const std::string& name);

}  // namespace veal

#endif  // VEAL_WORKLOADS_SUITE_H_
