#ifndef VEAL_WORKLOADS_KERNELS_H_
#define VEAL_WORKLOADS_KERNELS_H_

/**
 * @file
 * Hand-modelled loop kernels with the structural properties (op mix,
 * recurrences, memory stream counts, trip counts) of the paper's
 * MediaBench / SPECfp hot loops.  See DESIGN.md §2 for why structural
 * models substitute for the original binaries.
 *
 * Every builder takes a @p name so one kernel shape can appear in several
 * benchmarks as distinct loops, and a @p with_call flag where the paper's
 * "untransformed binary" variant keeps a clip/saturate helper call that
 * aggressive inlining would remove.
 */

#include <string>

#include "veal/ir/loop.h"
#include "veal/ir/transforms.h"

namespace veal {

/**
 * The library of inlinable helpers (clip, saturate, average) that the
 * static compiler aggressively inlines (paper §4.2, Figure 7).
 */
CalleeLibrary standardCalleeLibrary();

/** ADPCM codec step (rawcaudio/rawdaudio): predictor + step recurrences. */
Loop makeAdpcmStepLoop(const std::string& name, bool with_call = false);

/** G.721 pole/zero predictor update: many short integer recurrences. */
Loop makeG721PredictorLoop(const std::string& name, bool with_call = false);

/** FIR filter, fully unrolled over @p taps: wide ILP, taps load streams. */
Loop makeFirLoop(const std::string& name, int taps);

/** Dot product: multiply + accumulate recurrence. */
Loop makeDotProductLoop(const std::string& name);

/** Wavelet lifting step (epic/unepic): neighbour loads, carried update. */
Loop makeWaveletLiftLoop(const std::string& name, bool with_call = false);

/** 8-point DCT row (cjpeg/djpeg/mpeg2): unrolled butterflies, no recurrence.
 *  @p unroll of 2 doubles the streams (the untransformed binaries'
 *  over-unrolled variant that no longer fits the LA). */
Loop makeDct8Loop(const std::string& name, int unroll = 1);

/** Sum of absolute differences (mpeg2enc motion estimation). */
Loop makeSadLoop(const std::string& name, bool with_call = false);

/** Quantisation (mpeg2): multiply, shift, saturate. */
Loop makeQuantLoop(const std::string& name, bool with_call = false);

/** SHA-style mixing rounds (pegwit): one long cross-iteration recurrence
 *  chain; @p rounds unrolls rounds into the body.  The untransformed
 *  variant keeps the rotate helper as a call. */
Loop makeShaMixLoop(const std::string& name, int rounds,
                    bool with_call = false);

/** 5-point FP stencil (171.swim). */
Loop makeStencil5Loop(const std::string& name);

/** @p points-point FP stencil (172.mgrid uses 19..27 neighbour loads). */
Loop makeStencilNLoop(const std::string& name, int points);

/** rows x cols matrix-vector transform (177.mesa vertex pipeline). */
Loop makeMatVecLoop(const std::string& name, int rows, int cols);

/** 4x4 matrix-vector transform. */
Loop makeMatVec4Loop(const std::string& name);

/** Viterbi add-compare-select with path-metric recurrences. */
Loop makeViterbiAcsLoop(const std::string& name);

/** Simple copy/scale loop (memset/memcpy-like hot loops in integer apps). */
Loop makeCopyScaleLoop(const std::string& name);

/** A while-style search loop: needs speculation support, never maps. */
Loop makeSearchWhileLoop(const std::string& name);

/** A loop around a non-inlinable math call: never maps. */
Loop makeMathCallLoop(const std::string& name);

}  // namespace veal

#endif  // VEAL_WORKLOADS_KERNELS_H_
