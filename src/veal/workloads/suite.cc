#include "veal/workloads/suite.h"

#include <cmath>

#include "veal/arch/cpu_config.h"
#include "veal/arch/la_config.h"
#include "veal/ir/transforms.h"
#include "veal/sim/cpu_sim.h"
#include "veal/support/assert.h"
#include "veal/support/logging.h"
#include "veal/workloads/kernels.h"

namespace veal {

namespace {

/** Builder state for one benchmark's pair of applications. */
class BenchmarkBuilder {
  public:
    BenchmarkBuilder(LaConfig fission_target, std::string name,
                     bool media_or_fp, CategoryFractions fractions)
        : fission_target_(std::move(fission_target))
    {
        benchmark_.name = std::move(name);
        benchmark_.media_or_fp = media_or_fp;
        benchmark_.fractions = fractions;
        benchmark_.transformed.name = benchmark_.name;
        benchmark_.untransformed.name = benchmark_.name + ".plain";
    }

    /**
     * Add a loop site.  @p transformed is the statically optimised body;
     * @p untransformed the plain one (often the same).  Transformed loops
     * that exceed the fission target's stream budget are fissioned here
     * -- this *is* the static compiler's fission pass, and the target is
     * the LA the static compiler was told about (a builder parameter,
     * NOT a global: a fleet scores the same loop against several shapes,
     * so two builds with different targets must not share state).
     */
    void
    addSite(Loop transformed, Loop untransformed, std::int64_t invocations,
            std::int64_t iterations)
    {
        LoopSite t{.loop = std::move(transformed),
                   .fissioned = {},
                   .invocations = invocations,
                   .iterations = iterations};
        const LaConfig& target = fission_target_;
        FissionBudget budget;
        budget.max_load_streams = target.num_load_streams;
        budget.max_store_streams = target.num_store_streams;
        budget.max_int_ops = target.num_int_units * target.max_ii;
        // FP latencies are long; leave II slack so register pressure fits.
        budget.max_fp_ops = target.num_fp_units * (target.max_ii - 4);
        if (auto fission = fissionLoop(t.loop, budget)) {
            t.fissioned = std::move(fission->loops);
        }
        benchmark_.transformed.sites.push_back(std::move(t));

        LoopSite u{.loop = std::move(untransformed),
                   .fissioned = {},
                   .invocations = invocations,
                   .iterations = iterations};
        benchmark_.untransformed.sites.push_back(std::move(u));
    }

    /** Shorthand when both binaries contain the identical loop. */
    void
    addSameSite(const Loop& loop, std::int64_t invocations,
                std::int64_t iterations)
    {
        addSite(loop, loop, invocations, iterations);
    }

    /**
     * Add a loop whose untransformed form keeps helper calls that the
     * static compiler inlines away (the Figure 7 mechanism).
     */
    void
    addInlinedSite(Loop with_calls, std::int64_t invocations,
                   std::int64_t iterations)
    {
        Loop inlined = inlineCalls(with_calls, standardCalleeLibrary());
        addSite(std::move(inlined), std::move(with_calls), invocations,
                iterations);
    }

    /**
     * Calibrate invocation counts of speculation/subroutine sites and the
     * acyclic residue so baseline-CPU time splits match Figure 2 targets.
     */
    Benchmark
    calibrate()
    {
        const CpuConfig cpu = CpuConfig::arm11();
        double time_modulo = 0.0;
        double time_spec = 0.0;
        double time_sub = 0.0;
        std::vector<double> site_time(benchmark_.transformed.sites.size());
        for (std::size_t s = 0; s < benchmark_.transformed.sites.size();
             ++s) {
            auto& site = benchmark_.transformed.sites[s];
            const auto timing =
                simulateLoopOnCpu(site.loop, cpu, site.iterations);
            site_time[s] = static_cast<double>(timing.total_cycles) *
                           static_cast<double>(site.invocations);
            switch (site.loop.feature()) {
              case LoopFeature::kModuloSchedulable:
                time_modulo += site_time[s];
                break;
              case LoopFeature::kNeedsSpeculation:
                time_spec += site_time[s];
                break;
              case LoopFeature::kHasSubroutineCall:
                time_sub += site_time[s];
                break;
            }
        }
        VEAL_ASSERT(time_modulo > 0.0, "benchmark ", benchmark_.name,
                    " has no modulo-schedulable loop time");
        const auto& f = benchmark_.fractions;
        VEAL_ASSERT(f.modulo > 0.0);
        const double total = time_modulo / f.modulo;

        auto scale_category = [&](LoopFeature feature, double current,
                                  double target_time) {
            if (current <= 0.0)
                return;
            const double mult = target_time / current;
            for (auto& site : benchmark_.transformed.sites) {
                if (site.loop.feature() == feature) {
                    site.invocations = std::max<std::int64_t>(
                        1, static_cast<std::int64_t>(std::llround(
                               static_cast<double>(site.invocations) *
                               mult)));
                }
            }
        };
        scale_category(LoopFeature::kNeedsSpeculation, time_spec,
                       f.speculation * total);
        scale_category(LoopFeature::kHasSubroutineCall, time_sub,
                       f.subroutine * total);
        benchmark_.transformed.acyclic_cycles =
            static_cast<std::int64_t>(f.acyclic * total);

        // The untransformed binary shares the execution profile.
        for (std::size_t s = 0; s < benchmark_.transformed.sites.size();
             ++s) {
            benchmark_.untransformed.sites[s].invocations =
                benchmark_.transformed.sites[s].invocations;
        }
        benchmark_.untransformed.acyclic_cycles =
            benchmark_.transformed.acyclic_cycles;
        return std::move(benchmark_);
    }

  private:
    LaConfig fission_target_;
    Benchmark benchmark_;
};

Benchmark
makeRawcaudio(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "rawcaudio", true, {0.97, 0.0, 0.0, 0.03});
    // One critical loop: the paper notes its translation cost amortises
    // completely.
    b.addInlinedSite(makeAdpcmStepLoop("adpcm_code", true), 600, 1024);
    return b.calibrate();
}

Benchmark
makeRawdaudio(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "rawdaudio", true, {0.96, 0.0, 0.0, 0.04});
    b.addInlinedSite(makeAdpcmStepLoop("adpcm_decode", true), 600, 1024);
    return b.calibrate();
}

Benchmark
makeG721Enc(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "g721enc", true, {0.82, 0.03, 0.05, 0.10});
    b.addInlinedSite(makeG721PredictorLoop("predictor_update", true), 60,
                     512);
    b.addInlinedSite(makeQuantLoop("quan", true), 60, 256);
    b.addSameSite(makeSearchWhileLoop("quan_search"), 40, 128);
    b.addSameSite(makeMathCallLoop("log_lookup"), 20, 128);
    return b.calibrate();
}

Benchmark
makeG721Dec(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "g721dec", true, {0.80, 0.04, 0.05, 0.11});
    b.addInlinedSite(makeG721PredictorLoop("predictor_update_d", true), 60,
                     512);
    b.addSameSite(makeCopyScaleLoop("reconstruct"), 40, 1024);
    b.addSameSite(makeSearchWhileLoop("tandem_adjust"), 40, 128);
    b.addSameSite(makeMathCallLoop("alaw_expand"), 20, 128);
    return b.calibrate();
}

Benchmark
makeEpic(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "epic", true, {0.90, 0.02, 0.0, 0.08});
    b.addInlinedSite(makeWaveletLiftLoop("build_pyramid_h", true), 70,
                     1024);
    b.addInlinedSite(makeWaveletLiftLoop("build_pyramid_v", true), 70,
                     1024);
    b.addSameSite(makeFirLoop("internal_filter", 8), 40, 512);
    b.addSameSite(makeSearchWhileLoop("huffman_encode"), 30, 256);
    return b.calibrate();
}

Benchmark
makeUnepic(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "unepic", true, {0.86, 0.04, 0.0, 0.10});
    b.addInlinedSite(makeWaveletLiftLoop("collapse_pyramid", true), 80,
                     1024);
    b.addSameSite(makeCopyScaleLoop("unquantize"), 35, 2048);
    b.addSameSite(makeSearchWhileLoop("huffman_decode"), 40, 256);
    return b.calibrate();
}

Benchmark
makeCjpeg(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "cjpeg", true, {0.72, 0.06, 0.05, 0.17});
    // The transformed binary uses the tuned (unroll=1) DCT; the plain
    // binary's over-unrolled variant exceeds the LA's store streams.
    b.addSite(makeDct8Loop("fdct_row", 1), makeDct8Loop("fdct_row", 2),
              60, 256);
    b.addInlinedSite(makeQuantLoop("quantize", true), 60, 1024);
    b.addSameSite(makeCopyScaleLoop("downsample"), 25, 2048);
    b.addSameSite(makeSearchWhileLoop("encode_one_block"), 60, 128);
    b.addSameSite(makeMathCallLoop("jpeg_fdct_islow_aux"), 20, 128);
    return b.calibrate();
}

Benchmark
makeDjpeg(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "djpeg", true, {0.75, 0.05, 0.04, 0.16});
    b.addSite(makeDct8Loop("idct_row", 1), makeDct8Loop("idct_row", 2),
              60, 256);
    b.addInlinedSite(makeSadLoop("range_limit", true), 50, 256);
    b.addSameSite(makeCopyScaleLoop("upsample"), 30, 2048);
    b.addSameSite(makeSearchWhileLoop("decode_mcu"), 50, 128);
    b.addSameSite(makeMathCallLoop("ycc_rgb_aux"), 15, 128);
    return b.calibrate();
}

Benchmark
makeMpeg2Dec(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "mpeg2dec", true, {0.80, 0.05, 0.03, 0.12});
    // Several large distinct loops: per-loop translation cost is paid for
    // each, and their runtimes are short enough that a fully dynamic
    // translator forfeits most of the benefit (paper: 2.1 -> 1.15).
    b.addSite(makeDct8Loop("idct_col", 1), makeDct8Loop("idct_col", 2),
              10, 256);
    b.addSite(makeDct8Loop("idct_row2", 1), makeDct8Loop("idct_row2", 2),
              10, 256);
    b.addInlinedSite(makeQuantLoop("dequant_intra", true), 8, 1024);
    b.addInlinedSite(makeQuantLoop("dequant_inter", true), 8, 1024);
    b.addSameSite(makeFirLoop("mc_halfpel_h", 6), 7, 512);
    b.addSameSite(makeFirLoop("mc_halfpel_v", 6), 7, 512);
    b.addInlinedSite(makeSadLoop("saturate_block", true), 8, 256);
    b.addSameSite(makeSearchWhileLoop("get_macroblock"), 8, 256);
    b.addSameSite(makeMathCallLoop("store_ppm_aux"), 4, 128);
    return b.calibrate();
}

Benchmark
makeMpeg2Enc(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "mpeg2enc", true, {0.83, 0.05, 0.02, 0.10});
    b.addInlinedSite(makeSadLoop("dist1_00", true), 120, 256);
    b.addInlinedSite(makeSadLoop("dist1_11", true), 90, 256);
    b.addSite(makeDct8Loop("fdct_enc", 1), makeDct8Loop("fdct_enc", 2),
              35, 256);
    b.addInlinedSite(makeQuantLoop("quant_intra", true), 35, 1024);
    b.addSameSite(makeSearchWhileLoop("motion_search"), 80, 256);
    b.addSameSite(makeMathCallLoop("variance_aux"), 15, 128);
    return b.calibrate();
}

Benchmark
makePegwitEnc(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "pegwitenc", true, {0.70, 0.05, 0.05, 0.20});
    // Long mixing recurrences: many ordering/criticality steps, so the
    // swing priority phase explodes; runtimes are modest, so the fully
    // dynamic translator loses the whole benefit (paper Figure 10).
    b.addInlinedSite(makeShaMixLoop("sha_transform_a", 2, true), 26, 512);
    b.addInlinedSite(makeShaMixLoop("sha_transform_b", 2, true), 26, 512);
    b.addSameSite(makeViterbiAcsLoop("gf_mult"), 30, 256);
    b.addSameSite(makeSearchWhileLoop("squash_parse"), 30, 256);
    b.addSameSite(makeMathCallLoop("prng_aux"), 12, 128);
    return b.calibrate();
}

Benchmark
makePegwitDec(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "pegwitdec", true, {0.68, 0.06, 0.05, 0.21});
    b.addInlinedSite(makeShaMixLoop("sha_transform_d", 2, true), 22, 512);
    b.addSameSite(makeViterbiAcsLoop("gf_mult_d"), 26, 256);
    b.addSameSite(makeSearchWhileLoop("unsquash_parse"), 30, 256);
    b.addSameSite(makeMathCallLoop("prng_aux_d"), 12, 128);
    return b.calibrate();
}

Benchmark
makeSwim(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "171.swim", true, {0.95, 0.0, 0.01, 0.04});
    b.addSite(makeStencil5Loop("calc1"),
              makeStencilNLoop("calc1_unrolled", 20), 260, 1024);
    b.addSite(makeStencil5Loop("calc2"),
              makeStencilNLoop("calc2_unrolled", 20), 260, 1024);
    b.addSameSite(makeStencil5Loop("calc3"), 200, 1024);
    b.addSameSite(makeMathCallLoop("init_cond"), 6, 128);
    return b.calibrate();
}

Benchmark
makeMgrid(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "172.mgrid", true, {0.93, 0.0, 0.02, 0.05});
    // Very large stencils: > 16 load streams, so the static compiler must
    // fission them (addSite does), and their size makes the swing priority
    // extremely expensive -- fully dynamic translation forfeits the gain.
    b.addSameSite(makeStencilNLoop("resid", 20), 6, 512);
    b.addSameSite(makeStencilNLoop("psinv", 20), 6, 512);
    b.addSameSite(makeStencil5Loop("interp"), 10, 1024);
    b.addSameSite(makeMathCallLoop("norm2u3_aux"), 8, 128);
    return b.calibrate();
}

Benchmark
makeMesa(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "177.mesa", true, {0.62, 0.08, 0.08, 0.22});
    b.addSameSite(makeMatVecLoop("transform_points3", 3, 3), 80, 1024);
    b.addSameSite(makeCopyScaleLoop("gl_write_span"), 40, 2048);
    b.addSameSite(makeSearchWhileLoop("clip_polygon"), 60, 256);
    b.addSameSite(makeMathCallLoop("smooth_shade_aux"), 25, 128);
    return b.calibrate();
}

Benchmark
makeAlvinn(const LaConfig& fission_target)
{
    BenchmarkBuilder b(fission_target, "052.alvinn", true, {0.94, 0.0, 0.02, 0.04});
    b.addSameSite(makeDotProductLoop("input_hidden"), 350, 4096);
    b.addSameSite(makeDotProductLoop("hidden_output"), 280, 4096);
    b.addSameSite(makeMathCallLoop("sigmoid_aux"), 10, 128);
    return b.calibrate();
}

/** A control-heavy integer benchmark (right of Figure 2). */
Benchmark
makeIntegerBenchmark(const LaConfig& fission_target,
                     const std::string& name, CategoryFractions fractions)
{
    BenchmarkBuilder b(fission_target, name, false, fractions);
    b.addSameSite(makeCopyScaleLoop(name + "_memops"), 40, 512);
    b.addSameSite(makeSearchWhileLoop(name + "_scan"), 120, 256);
    b.addSameSite(makeMathCallLoop(name + "_lib"), 60, 128);
    return b.calibrate();
}

}  // namespace

std::vector<Benchmark>
mediaFpSuite()
{
    return mediaFpSuite(LaConfig::proposed());
}

std::vector<Benchmark>
mediaFpSuite(const LaConfig& fission_target)
{
    std::vector<Benchmark> suite;
    suite.push_back(makeRawcaudio(fission_target));
    suite.push_back(makeRawdaudio(fission_target));
    suite.push_back(makeG721Enc(fission_target));
    suite.push_back(makeG721Dec(fission_target));
    suite.push_back(makeEpic(fission_target));
    suite.push_back(makeUnepic(fission_target));
    suite.push_back(makeCjpeg(fission_target));
    suite.push_back(makeDjpeg(fission_target));
    suite.push_back(makeMpeg2Dec(fission_target));
    suite.push_back(makeMpeg2Enc(fission_target));
    suite.push_back(makePegwitEnc(fission_target));
    suite.push_back(makePegwitDec(fission_target));
    suite.push_back(makeSwim(fission_target));
    suite.push_back(makeMgrid(fission_target));
    suite.push_back(makeMesa(fission_target));
    suite.push_back(makeAlvinn(fission_target));
    return suite;
}

std::vector<Benchmark>
integerSuite()
{
    return integerSuite(LaConfig::proposed());
}

std::vector<Benchmark>
integerSuite(const LaConfig& fission_target)
{
    std::vector<Benchmark> suite;
    suite.push_back(makeIntegerBenchmark(fission_target, "099.go",
                                         {0.05, 0.22, 0.08, 0.65}));
    suite.push_back(makeIntegerBenchmark(fission_target, "126.gcc",
                                         {0.04, 0.18, 0.16, 0.62}));
    suite.push_back(makeIntegerBenchmark(fission_target, "130.li",
                                         {0.03, 0.24, 0.21, 0.52}));
    suite.push_back(makeIntegerBenchmark(fission_target, "134.perl",
                                         {0.05, 0.20, 0.18, 0.57}));
    suite.push_back(makeIntegerBenchmark(fission_target, "147.vortex",
                                         {0.06, 0.15, 0.19, 0.60}));
    suite.push_back(makeIntegerBenchmark(fission_target, "129.compress",
                                         {0.12, 0.42, 0.04, 0.42}));
    return suite;
}

Benchmark
findBenchmark(const std::string& name)
{
    for (auto& benchmark : mediaFpSuite()) {
        if (benchmark.name == name)
            return benchmark;
    }
    fatal("unknown benchmark: ", name);
}

}  // namespace veal
