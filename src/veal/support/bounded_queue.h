#ifndef VEAL_SUPPORT_BOUNDED_QUEUE_H_
#define VEAL_SUPPORT_BOUNDED_QUEUE_H_

/**
 * @file
 * A bounded multi-producer / multi-consumer queue.
 *
 * This is the admission-control primitive of the translation service
 * (veal/service): tenants tryPush() requests and a full queue is an
 * *admission decision*, not a blocking event -- the caller turns the
 * false return into a reject-with-reason.  Consumers drain with
 * tryPop() (the service's tick-based drain) or blocking pop() (free
 * running workers); close() wakes every blocked caller so shutdown
 * never hangs.
 *
 * Determinism note: the queue itself is FIFO and the service only ever
 * fills it from one thread per tick, so the pop order equals the
 * submission order.  Concurrent producers are still supported (and
 * tested) for callers that do not need a deterministic order.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "veal/support/assert.h"

namespace veal {

template <typename T>
class BoundedQueue {
  public:
    /** @param capacity maximum queued items (>= 1). */
    explicit BoundedQueue(std::size_t capacity) : capacity_(capacity)
    {
        VEAL_ASSERT(capacity >= 1);
    }

    BoundedQueue(const BoundedQueue&) = delete;
    BoundedQueue& operator=(const BoundedQueue&) = delete;

    /**
     * Enqueue @p item unless the queue is full or closed; false means
     * the item was NOT queued (the caller owns the rejection).
     */
    bool tryPush(T item)
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (closed_ || items_.size() >= capacity_)
                return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /**
     * Enqueue @p item, blocking while the queue is full.  False only
     * when the queue was closed before space appeared.
     */
    bool push(T item)
    {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            not_full_.wait(lock, [&] {
                return closed_ || items_.size() < capacity_;
            });
            if (closed_)
                return false;
            items_.push_back(std::move(item));
        }
        not_empty_.notify_one();
        return true;
    }

    /** Dequeue the oldest item, or nullopt when the queue is empty. */
    std::optional<T> tryPop()
    {
        std::optional<T> item;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (items_.empty())
                return std::nullopt;
            item.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        not_full_.notify_one();
        return item;
    }

    /**
     * Dequeue the oldest item, blocking while the queue is empty.
     * nullopt only when the queue was closed and fully drained.
     */
    std::optional<T> pop()
    {
        std::optional<T> item;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            not_empty_.wait(lock, [&] {
                return closed_ || !items_.empty();
            });
            if (items_.empty())
                return std::nullopt;  // Closed and drained.
            item.emplace(std::move(items_.front()));
            items_.pop_front();
        }
        not_full_.notify_one();
        return item;
    }

    /**
     * Reject future pushes and wake every blocked caller.  Items already
     * queued stay poppable (drain-then-stop shutdown).
     */
    void close()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            closed_ = true;
        }
        not_empty_.notify_all();
        not_full_.notify_all();
    }

    bool closed() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return closed_;
    }

    std::size_t size() const
    {
        std::lock_guard<std::mutex> lock(mutex_);
        return items_.size();
    }

    std::size_t capacity() const { return capacity_; }

  private:
    const std::size_t capacity_;
    mutable std::mutex mutex_;
    std::condition_variable not_empty_;
    std::condition_variable not_full_;
    std::deque<T> items_;
    bool closed_ = false;
};

}  // namespace veal

#endif  // VEAL_SUPPORT_BOUNDED_QUEUE_H_
