#ifndef VEAL_SUPPORT_TABLE_H_
#define VEAL_SUPPORT_TABLE_H_

/**
 * @file
 * Minimal fixed-width text-table formatter used by the benchmark harness to
 * print paper-style rows.
 */

#include <iosfwd>
#include <string>
#include <vector>

namespace veal {

/** Accumulates rows of cells and renders them with aligned columns. */
class TextTable {
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with @p precision digits. */
    static std::string formatDouble(double value, int precision = 2);

    /** Render with a header rule and 2-space column gaps. */
    std::string render() const;

    /** Number of data rows added so far. */
    std::size_t rowCount() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Stream the rendered table. */
std::ostream& operator<<(std::ostream& os, const TextTable& table);

}  // namespace veal

#endif  // VEAL_SUPPORT_TABLE_H_
