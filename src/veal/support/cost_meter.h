#ifndef VEAL_SUPPORT_COST_METER_H_
#define VEAL_SUPPORT_COST_METER_H_

/**
 * @file
 * Translation-cost accounting.
 *
 * The paper measures the dynamic instruction count of each modulo-scheduling
 * phase with OProfile (Figure 8).  We cannot run the authors' x86 translator,
 * so every phase of our translator charges *work units* (nodes visited,
 * edges relaxed, reservation-table probes, ...) to a CostMeter, and a
 * calibrated per-unit weight converts work units into equivalent baseline
 * instructions.  See DESIGN.md §2 for the substitution argument.
 */

#include <array>
#include <cstdint>
#include <string>

namespace veal {

/** The translation phases the paper times individually (Figure 8). */
enum class TranslationPhase : int {
    kLoopAnalysis = 0,   ///< Loop identification / stream separation.
    kCcaMapping,         ///< Greedy CCA subgraph identification.
    kMiiComputation,     ///< ResMII + RecMII.
    kPriority,           ///< Swing ordering / height priority computation.
    kScheduling,         ///< Modulo reservation table list scheduling.
    kRegisterAssignment, ///< Operand mapping post-pass.
    kCount,
};

/** Human-readable phase name, e.g. "priority". */
const char* toString(TranslationPhase phase);

/** Number of distinct phases. */
inline constexpr int kNumTranslationPhases =
    static_cast<int>(TranslationPhase::kCount);

/**
 * Accumulates per-phase work units and converts them to equivalent
 * dynamic instruction counts using calibrated weights.
 */
class CostMeter {
  public:
    /**
     * Per-phase instruction weights.  Calibrated once (see
     * calibratedWeights()) so that the fully dynamic translator averages
     * ~100k instructions/loop with the paper's phase distribution.
     */
    struct Weights {
        std::array<double, kNumTranslationPhases> instructions_per_unit;
    };

    CostMeter();
    explicit CostMeter(const Weights& weights);

    /** Charge @p units work units to @p phase. */
    void charge(TranslationPhase phase, std::uint64_t units);

    /** Raw work units accumulated for @p phase. */
    std::uint64_t units(TranslationPhase phase) const;

    /** Weighted instruction estimate for @p phase. */
    double instructions(TranslationPhase phase) const;

    /** Weighted instruction estimate summed over all phases. */
    double totalInstructions() const;

    /** Reset all counters to zero (weights are kept). */
    void clear();

    /** Add another meter's counters into this one. */
    void add(const CostMeter& other);

    /**
     * The default calibration: weights chosen so the benchmark-suite
     * average per-loop translation cost reproduces Figure 8's averages
     * (~100k instructions; 69% priority, 20% CCA, ~1.25k MII,
     * ~9.65k scheduling+register assignment).
     */
    static const Weights& calibratedWeights();

  private:
    Weights weights_;
    std::array<std::uint64_t, kNumTranslationPhases> units_;
};

}  // namespace veal

#endif  // VEAL_SUPPORT_COST_METER_H_
