#include "veal/support/metrics/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "veal/support/assert.h"

namespace veal::metrics {

namespace {

/**
 * Shortest decimal form that round-trips through strtod.  Snapshots must
 * be byte-stable *and* lossless, so precision climbs until the reparse is
 * bit-identical (17 significant digits always suffice for binary64).
 */
std::string
formatReal(double value)
{
    VEAL_ASSERT(std::isfinite(value),
                "metrics snapshots only hold finite numbers");
    char buffer[64];
    for (int precision = 15; precision <= 17; ++precision) {
        std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
        if (std::strtod(buffer, nullptr) == value)
            break;
    }
    return buffer;
}

void
appendJsonString(std::string& out, const std::string& text)
{
    out += '"';
    for (const char c : text) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buffer[8];
                std::snprintf(buffer, sizeof buffer, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buffer;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

/** Everything a snapshot contains, in plain containers. */
struct ParsedSnapshot {
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, Histogram> histograms;
    std::vector<TraceEvent> trace;
    std::int64_t trace_dropped = 0;
};

/**
 * Strict recursive-descent parser for the subset of JSON that toJson()
 * emits.  Anything outside that shape (unknown keys, other value kinds)
 * fails the parse, which is what a schema check wants anyway.
 */
class SnapshotParser {
  public:
    explicit SnapshotParser(const std::string& text)
        : p_(text.data()), end_(text.data() + text.size())
    {}

    bool parse(ParsedSnapshot& out);

  private:
    void skipWs()
    {
        while (p_ < end_ && (*p_ == ' ' || *p_ == '\n' || *p_ == '\t' ||
                             *p_ == '\r')) {
            ++p_;
        }
    }

    bool consume(char c)
    {
        skipWs();
        if (p_ >= end_ || *p_ != c)
            return false;
        ++p_;
        return true;
    }

    bool peekIs(char c)
    {
        skipWs();
        return p_ < end_ && *p_ == c;
    }

    bool parseString(std::string& out)
    {
        if (!consume('"'))
            return false;
        out.clear();
        while (p_ < end_ && *p_ != '"') {
            char c = *p_++;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (p_ >= end_)
                return false;
            const char escape = *p_++;
            switch (escape) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 't': out += '\t'; break;
              case 'r': out += '\r'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (end_ - p_ < 4)
                    return false;
                char hex[5] = {p_[0], p_[1], p_[2], p_[3], '\0'};
                char* hex_end = nullptr;
                const long code = std::strtol(hex, &hex_end, 16);
                if (hex_end != hex + 4 || code > 0xff)
                    return false;  // toJson only emits \u00XX.
                p_ += 4;
                out += static_cast<char>(code);
                break;
              }
              default: return false;
            }
        }
        return consume('"');
    }

    bool parseInt(std::int64_t& out)
    {
        skipWs();
        char* after = nullptr;
        out = std::strtoll(p_, &after, 10);
        if (after == p_)
            return false;
        p_ = after;
        return true;
    }

    bool parseReal(double& out)
    {
        skipWs();
        char* after = nullptr;
        out = std::strtod(p_, &after);
        if (after == p_)
            return false;
        p_ = after;
        return true;
    }

    template <typename ParseValue>
    bool parseObject(const ParseValue& parse_value)
    {
        if (!consume('{'))
            return false;
        if (consume('}'))
            return true;
        do {
            std::string key;
            if (!parseString(key) || !consume(':') || !parse_value(key))
                return false;
        } while (consume(','));
        return consume('}');
    }

    template <typename ParseElement>
    bool parseArray(const ParseElement& parse_element)
    {
        if (!consume('['))
            return false;
        if (consume(']'))
            return true;
        do {
            if (!parse_element())
                return false;
        } while (consume(','));
        return consume(']');
    }

    const char* p_;
    const char* end_;
};

bool
SnapshotParser::parse(ParsedSnapshot& out)
{
    bool schema_ok = false;
    const bool parsed = parseObject([&](const std::string& key) {
        if (key == "schema") {
            std::string version;
            if (!parseString(version))
                return false;
            schema_ok = version == Registry::kSchemaVersion;
            return schema_ok;
        }
        if (key == "counters") {
            return parseObject([&](const std::string& name) {
                std::int64_t value = 0;
                if (!parseInt(value))
                    return false;
                out.counters[name] = value;
                return true;
            });
        }
        if (key == "gauges") {
            return parseObject([&](const std::string& name) {
                double value = 0.0;
                if (!parseReal(value))
                    return false;
                out.gauges[name] = value;
                return true;
            });
        }
        if (key == "histograms") {
            return parseObject([&](const std::string& name) {
                Histogram histogram;
                const bool ok = parseObject([&](const std::string& field) {
                    if (field == "bounds") {
                        return parseArray([&] {
                            double bound = 0.0;
                            if (!parseReal(bound))
                                return false;
                            histogram.upper_bounds.push_back(bound);
                            return true;
                        });
                    }
                    if (field == "counts") {
                        return parseArray([&] {
                            std::int64_t count = 0;
                            if (!parseInt(count))
                                return false;
                            histogram.counts.push_back(count);
                            return true;
                        });
                    }
                    if (field == "total")
                        return parseInt(histogram.total);
                    return false;
                });
                if (!ok || histogram.upper_bounds.empty() ||
                    histogram.counts.size() !=
                        histogram.upper_bounds.size() + 1) {
                    return false;
                }
                out.histograms.emplace(name, std::move(histogram));
                return true;
            });
        }
        if (key == "trace_dropped")
            return parseInt(out.trace_dropped);
        if (key == "trace") {
            return parseArray([&] {
                TraceEvent event;
                const bool ok = parseObject([&](const std::string& field) {
                    if (field == "scope")
                        return parseString(event.scope);
                    if (field == "event")
                        return parseString(event.event);
                    if (field == "detail")
                        return parseString(event.detail);
                    if (field == "value")
                        return parseInt(event.value);
                    return false;
                });
                if (!ok)
                    return false;
                out.trace.push_back(std::move(event));
                return true;
            });
        }
        return false;  // Unknown key: not a snapshot we produced.
    });
    skipWs();
    return parsed && schema_ok && p_ == end_;
}

}  // namespace

void
Histogram::observe(double value)
{
    VEAL_ASSERT(std::isfinite(value), "histograms only bin finite values");
    std::size_t bucket = upper_bounds.size();  // Overflow by default.
    for (std::size_t i = 0; i < upper_bounds.size(); ++i) {
        if (value <= upper_bounds[i]) {
            bucket = i;
            break;
        }
    }
    ++counts[bucket];
    ++total;
}

void
Histogram::merge(const Histogram& other)
{
    VEAL_ASSERT(upper_bounds == other.upper_bounds,
                "histogram merge needs identical bucket bounds");
    for (std::size_t i = 0; i < counts.size(); ++i)
        counts[i] += other.counts[i];
    total += other.total;
}

void
Registry::add(const std::string& name, std::int64_t delta)
{
    counters_[name] += delta;
}

std::int64_t
Registry::counter(const std::string& name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

void
Registry::addReal(const std::string& name, double delta)
{
    gauges_[name] += delta;
}

double
Registry::gauge(const std::string& name) const
{
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
}

void
Registry::declareHistogram(const std::string& name,
                           std::vector<double> upper_bounds)
{
    VEAL_ASSERT(!upper_bounds.empty(), "histogram needs bucket bounds");
    for (std::size_t i = 1; i < upper_bounds.size(); ++i) {
        VEAL_ASSERT(upper_bounds[i - 1] < upper_bounds[i],
                    "histogram bounds must ascend");
    }
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) {
        VEAL_ASSERT(it->second.upper_bounds == upper_bounds,
                    "histogram redeclared with different bounds");
        return;
    }
    Histogram histogram;
    histogram.counts.assign(upper_bounds.size() + 1, 0);
    histogram.upper_bounds = std::move(upper_bounds);
    histograms_.emplace(name, std::move(histogram));
}

void
Registry::observe(const std::string& name, double value)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
        declareHistogram(name, defaultBounds());
        it = histograms_.find(name);
    }
    it->second.observe(value);
}

const Histogram*
Registry::histogram(const std::string& name) const
{
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
}

const std::vector<double>&
Registry::defaultBounds()
{
    static const std::vector<double> bounds{1,  2,  4,   8,   16,
                                            32, 64, 128, 256, 512};
    return bounds;
}

void
Registry::trace(TraceEvent event)
{
    if (static_cast<int>(trace_.size()) >= trace_limit_) {
        ++trace_dropped_;
        return;
    }
    trace_.push_back(std::move(event));
}

void
Registry::trace(std::string scope, std::string event, std::string detail,
                std::int64_t value)
{
    trace(TraceEvent{std::move(scope), std::move(event), std::move(detail),
                     value});
}

void
Registry::setTraceLimit(int limit)
{
    VEAL_ASSERT(limit >= 0, "trace limit cannot be negative");
    trace_limit_ = limit;
}

void
Registry::merge(const Registry& other)
{
    merge(other, "");
}

void
Registry::merge(const Registry& other, const std::string& prefix)
{
    for (const auto& [name, value] : other.counters_)
        counters_[prefix + name] += value;
    for (const auto& [name, value] : other.gauges_)
        gauges_[prefix + name] += value;
    for (const auto& [name, histogram] : other.histograms_) {
        const auto it = histograms_.find(prefix + name);
        if (it == histograms_.end()) {
            histograms_.emplace(prefix + name, histogram);
        } else {
            it->second.merge(histogram);
        }
    }
    for (const auto& event : other.trace_) {
        TraceEvent copy = event;
        copy.scope = prefix + copy.scope;
        trace(std::move(copy));
    }
    trace_dropped_ += other.trace_dropped_;
}

bool
Registry::empty() const
{
    return counters_.empty() && gauges_.empty() && histograms_.empty() &&
           trace_.empty() && trace_dropped_ == 0;
}

std::string
Registry::toJson() const
{
    std::string out;
    out += "{\n";
    out += "  \"schema\": \"";
    out += kSchemaVersion;
    out += "\",\n";

    out += "  \"counters\": {";
    const char* separator = "";
    for (const auto& [name, value] : counters_) {
        out += separator;
        out += "\n    ";
        appendJsonString(out, name);
        out += ": " + std::to_string(value);
        separator = ",";
    }
    out += counters_.empty() ? "},\n" : "\n  },\n";

    out += "  \"gauges\": {";
    separator = "";
    for (const auto& [name, value] : gauges_) {
        out += separator;
        out += "\n    ";
        appendJsonString(out, name);
        out += ": " + formatReal(value);
        separator = ",";
    }
    out += gauges_.empty() ? "},\n" : "\n  },\n";

    out += "  \"histograms\": {";
    separator = "";
    for (const auto& [name, histogram] : histograms_) {
        out += separator;
        out += "\n    ";
        appendJsonString(out, name);
        out += ": {\"bounds\": [";
        const char* inner = "";
        for (const double bound : histogram.upper_bounds) {
            out += inner;
            out += formatReal(bound);
            inner = ", ";
        }
        out += "], \"counts\": [";
        inner = "";
        for (const std::int64_t count : histogram.counts) {
            out += inner;
            out += std::to_string(count);
            inner = ", ";
        }
        out += "], \"total\": " + std::to_string(histogram.total) + "}";
        separator = ",";
    }
    out += histograms_.empty() ? "},\n" : "\n  },\n";

    out += "  \"trace_dropped\": " + std::to_string(trace_dropped_) +
           ",\n";

    out += "  \"trace\": [";
    separator = "";
    for (const auto& event : trace_) {
        out += separator;
        out += "\n    {\"scope\": ";
        appendJsonString(out, event.scope);
        out += ", \"event\": ";
        appendJsonString(out, event.event);
        out += ", \"detail\": ";
        appendJsonString(out, event.detail);
        out += ", \"value\": " + std::to_string(event.value) + "}";
        separator = ",";
    }
    out += trace_.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

std::optional<Registry>
Registry::fromJson(const std::string& text)
{
    ParsedSnapshot parsed;
    SnapshotParser parser(text);
    if (!parser.parse(parsed))
        return std::nullopt;
    Registry registry;
    registry.counters_ = std::move(parsed.counters);
    registry.gauges_ = std::move(parsed.gauges);
    registry.histograms_ = std::move(parsed.histograms);
    registry.trace_ = std::move(parsed.trace);
    registry.trace_dropped_ = parsed.trace_dropped;
    // A snapshot written by a larger-limit producer must survive the
    // round trip, whatever its trace length.
    registry.trace_limit_ =
        std::max<int>(registry.trace_limit_,
                      static_cast<int>(registry.trace_.size()));
    return registry;
}

bool
writeSnapshot(const Registry& registry, const std::string& path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << registry.toJson();
    return static_cast<bool>(out.flush());
}

void
recordCostMeter(Registry& registry, const std::string& prefix,
                const CostMeter& meter)
{
    for (int i = 0; i < kNumTranslationPhases; ++i) {
        const auto phase = static_cast<TranslationPhase>(i);
        registry.add(prefix + ".units." + toString(phase),
                     static_cast<std::int64_t>(meter.units(phase)));
    }
}

std::int64_t
chargePhaseCycles(Registry& registry, const std::string& prefix,
                  const CostMeter& meter, std::int64_t multiplier)
{
    // Replays CostMeter::totalInstructions()'s left-to-right summation so
    // the cumulative truncations telescope: the per-phase integers sum to
    // static_cast<int64>(totalInstructions() * multiplier) *exactly*,
    // which is the figure the VM charges (and the telemetry test audits).
    const auto scale = static_cast<double>(multiplier);
    double cumulative = 0.0;
    std::int64_t charged_so_far = 0;
    for (int i = 0; i < kNumTranslationPhases; ++i) {
        const auto phase = static_cast<TranslationPhase>(i);
        cumulative += meter.instructions(phase);
        const auto cumulative_cycles =
            static_cast<std::int64_t>(cumulative * scale);
        registry.add(prefix + "." + toString(phase),
                     cumulative_cycles - charged_so_far);
        charged_so_far = cumulative_cycles;
    }
    return charged_so_far;
}

MeteredScope::MeteredScope(Registry& registry, std::string prefix,
                           const CostMeter& meter)
    : registry_(registry), prefix_(std::move(prefix)), meter_(meter)
{
    for (int i = 0; i < kNumTranslationPhases; ++i)
        start_units_[i] = meter_.units(static_cast<TranslationPhase>(i));
}

MeteredScope::~MeteredScope()
{
    for (int i = 0; i < kNumTranslationPhases; ++i) {
        const auto phase = static_cast<TranslationPhase>(i);
        const std::uint64_t delta = meter_.units(phase) - start_units_[i];
        if (delta != 0) {
            registry_.add(prefix_ + ".units." + toString(phase),
                          static_cast<std::int64_t>(delta));
        }
    }
}

ScopedWallTimer::ScopedWallTimer(std::string label)
    : label_(std::move(label)), start_(std::chrono::steady_clock::now())
{}

ScopedWallTimer::~ScopedWallTimer()
{
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start_)
            .count();
    std::fprintf(stderr, "timing: %s %.3fs\n", label_.c_str(), seconds);
}

}  // namespace veal::metrics
