#ifndef VEAL_SUPPORT_METRICS_METRICS_H_
#define VEAL_SUPPORT_METRICS_METRICS_H_

/**
 * @file
 * The deterministic observability subsystem (DESIGN.md §10).
 *
 * Every subsystem that makes accounting-relevant decisions -- the
 * translator, the scheduler, the VM's cost model, the code cache, the
 * sweep engine, and the fuzzer -- reports into a metrics::Registry so
 * that the paper figures, the benches, and the regression tests all read
 * from one instrumented source of truth instead of ad-hoc struct fields.
 *
 * Determinism rules (the same contract as the sweep engine):
 *
 *  - Everything stored in a Registry is a pure function of the work
 *    performed, never of wall-clock time or thread interleaving.  Cycle
 *    *metering* (CostMeter work units, analytic cache misses) goes into
 *    the registry; wall-clock timing goes to stderr only (ScopedWallTimer),
 *    preserving the repo's byte-identical-stdout rule.
 *  - Parallel producers each fill a private Registry; the owner merges
 *    them in index order.  merge() is associative over that order, so a
 *    snapshot is byte-identical for any --threads value.
 *  - toJson() renders a versioned snapshot with sorted keys and
 *    round-trippable numbers; fromJson() parses exactly that format, and
 *    toJson(fromJson(s)) == s.
 */

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "veal/support/cost_meter.h"

namespace veal::metrics {

/** One structured record of a runtime decision (translate/reject/...). */
struct TraceEvent {
    std::string scope;   ///< Where, e.g. "vm/djpeg/dct".
    std::string event;   ///< What, e.g. "translate", "path", "cache".
    std::string detail;  ///< Outcome, e.g. "ok", "schedule-failed", "la".
    std::int64_t value = 0;  ///< Event-specific magnitude (cycles, count).
};

/** Fixed-bound histogram: counts[i] holds values <= upper_bounds[i]. */
struct Histogram {
    std::vector<double> upper_bounds;   ///< Ascending; overflow implicit.
    std::vector<std::int64_t> counts;   ///< upper_bounds.size() + 1 cells.
    std::int64_t total = 0;             ///< Sum of all counts.

    void observe(double value);

    /** Add @p other's counts; bucket bounds must be identical. */
    void merge(const Histogram& other);
};

/**
 * A registry of named counters (int64), gauges (double accumulators),
 * histograms, and a bounded decision trace.
 *
 * Thread-safety: none -- confine a Registry to one thread and merge
 * per-worker registries in index order (see parallelMap usage in
 * explore::SweepRunner::evaluateCellsMetered).
 */
class Registry {
  public:
    static constexpr const char* kSchemaVersion = "veal-metrics-v1";

    // --- Counters (monotonic int64 sums).
    void add(const std::string& name, std::int64_t delta = 1);
    /** Current value; 0 when the counter was never touched. */
    std::int64_t counter(const std::string& name) const;

    // --- Gauges (double accumulators; merge sums, like counters).
    void addReal(const std::string& name, double delta);
    double gauge(const std::string& name) const;

    // --- Histograms.
    /**
     * Create @p name with the given ascending bucket bounds.  Declaring
     * an existing histogram is a no-op when the bounds match and a panic
     * when they differ (merges would be meaningless).
     */
    void declareHistogram(const std::string& name,
                          std::vector<double> upper_bounds);
    /** Observe into @p name, auto-declaring with defaultBounds(). */
    void observe(const std::string& name, double value);
    /** Lookup; nullptr when absent. */
    const Histogram* histogram(const std::string& name) const;
    static const std::vector<double>& defaultBounds();

    // --- Decision trace (bounded; drops are counted, never silent).
    void trace(TraceEvent event);
    void trace(std::string scope, std::string event, std::string detail,
               std::int64_t value = 0);
    /** Maximum retained events (default 1024); excess increments traceDropped. */
    void setTraceLimit(int limit);
    const std::vector<TraceEvent>& traceEvents() const { return trace_; }
    std::int64_t traceDropped() const { return trace_dropped_; }

    // --- Aggregation.
    /** Fold @p other into this registry (sums, bucket adds, trace append). */
    void merge(const Registry& other);
    /** As merge(), with @p prefix prepended to every name and trace scope. */
    void merge(const Registry& other, const std::string& prefix);

    // --- Enumeration (sorted by name; the JSON emission order).
    const std::map<std::string, std::int64_t>& counters() const
    { return counters_; }
    const std::map<std::string, double>& gauges() const { return gauges_; }
    const std::map<std::string, Histogram>& histograms() const
    { return histograms_; }

    bool empty() const;

    // --- Snapshot I/O.
    /** Versioned, sorted-key, round-trippable JSON snapshot. */
    std::string toJson() const;
    /** Parse a toJson() snapshot; nullopt on malformed input. */
    static std::optional<Registry> fromJson(const std::string& text);

  private:
    std::map<std::string, std::int64_t> counters_;
    std::map<std::string, double> gauges_;
    std::map<std::string, Histogram> histograms_;
    std::vector<TraceEvent> trace_;
    std::int64_t trace_dropped_ = 0;
    int trace_limit_ = 1024;
};

/** Write registry.toJson() to @p path; false on I/O failure. */
bool writeSnapshot(const Registry& registry, const std::string& path);

/**
 * Record every phase of @p meter as counters "<prefix>.units.<phase>".
 * Units are raw int64 work, so snapshots stay float-free and exact.
 */
void recordCostMeter(Registry& registry, const std::string& prefix,
                     const CostMeter& meter);

/**
 * Split the VM's integer translation charge
 * static_cast<int64>(meter.totalInstructions() * multiplier) across
 * phases as counters "<prefix>.<phase>" such that the parts sum
 * *exactly* to the whole (cumulative truncation replays the meter's own
 * summation order).  Returns the total charged.
 */
std::int64_t chargePhaseCycles(Registry& registry,
                               const std::string& prefix,
                               const CostMeter& meter,
                               std::int64_t multiplier);

/**
 * Scoped cycle-metered phase timer: on destruction, records the work
 * units each translation phase of @p meter gained while the scope was
 * alive, as counters "<prefix>.units.<phase>".  Deterministic -- it reads
 * the meter, never a clock.
 */
class MeteredScope {
  public:
    MeteredScope(Registry& registry, std::string prefix,
                 const CostMeter& meter);
    ~MeteredScope();

    MeteredScope(const MeteredScope&) = delete;
    MeteredScope& operator=(const MeteredScope&) = delete;

  private:
    Registry& registry_;
    std::string prefix_;
    const CostMeter& meter_;
    std::array<std::uint64_t, kNumTranslationPhases> start_units_;
};

/**
 * Scoped wall-clock timer: prints "timing: <label> <seconds>s" to stderr
 * on destruction.  Wall time never enters a Registry (it would break the
 * byte-identical snapshot rule), so this is the only sanctioned way to
 * time a phase in real seconds.
 */
class ScopedWallTimer {
  public:
    explicit ScopedWallTimer(std::string label);
    ~ScopedWallTimer();

    ScopedWallTimer(const ScopedWallTimer&) = delete;
    ScopedWallTimer& operator=(const ScopedWallTimer&) = delete;

  private:
    std::string label_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace veal::metrics

#endif  // VEAL_SUPPORT_METRICS_METRICS_H_
