#ifndef VEAL_SUPPORT_RNG_H_
#define VEAL_SUPPORT_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation (SplitMix64).
 *
 * VEAL uses its own tiny generator instead of <random> engines so that
 * workload generation and property tests produce identical sequences on
 * every platform and standard-library implementation.
 */

#include <cstdint>

#include "veal/support/assert.h"

namespace veal {

/** SplitMix64: fast, high-quality 64-bit generator with a 64-bit state. */
class Rng {
  public:
    /** Seed the generator; the same seed always yields the same stream. */
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @pre bound > 0. */
    std::uint64_t
    nextBelow(std::uint64_t bound)
    {
        VEAL_ASSERT(bound > 0);
        // Rejection sampling to avoid modulo bias.
        const std::uint64_t limit = ~0ull - (~0ull % bound) - 1;
        std::uint64_t value = next();
        while (value > limit)
            value = next();
        return value % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    std::int64_t
    nextInRange(std::int64_t lo, std::int64_t hi)
    {
        VEAL_ASSERT(lo <= hi);
        const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
        return lo + static_cast<std::int64_t>(nextBelow(span));
    }

    /** Uniform double in [0, 1). */
    double
    nextDouble()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p) { return nextDouble() < p; }

  private:
    std::uint64_t state_;
};

}  // namespace veal

#endif  // VEAL_SUPPORT_RNG_H_
