#include "veal/support/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "veal/support/assert.h"

namespace veal {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    VEAL_ASSERT(!headers_.empty());
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    VEAL_ASSERT(cells.size() == headers_.size(),
                "row has ", cells.size(), " cells, expected ",
                headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::formatDouble(double value, int precision)
{
    char buffer[64];
    std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
    return buffer;
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    std::ostringstream os;
    auto emit_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << cells[c]
               << std::string(widths[c] - cells[c].size(), ' ');
            if (c + 1 < cells.size())
                os << "  ";
        }
        os << '\n';
    };

    emit_row(headers_);
    std::size_t rule_width = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule_width += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    os << std::string(rule_width, '-') << '\n';
    for (const auto& row : rows_)
        emit_row(row);
    return os.str();
}

std::ostream&
operator<<(std::ostream& os, const TextTable& table)
{
    return os << table.render();
}

}  // namespace veal
