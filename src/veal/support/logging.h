#ifndef VEAL_SUPPORT_LOGGING_H_
#define VEAL_SUPPORT_LOGGING_H_

/**
 * @file
 * Status-message and error-termination helpers in the gem5 style.
 *
 * - inform(): normal operating status, no connotation of a problem.
 * - warn():   something may be off but execution can continue.
 * - fatal():  the *user's* input/configuration makes continuing impossible;
 *             exits with status 1.
 * - panic():  an internal invariant of VEAL itself is broken; aborts.
 */

#include <sstream>
#include <string>

namespace veal {

/** Severity for log messages delivered to the global sink. */
enum class LogLevel {
    kInfo,
    kWarn,
    kFatal,
    kPanic,
};

/**
 * Redirectable sink for log output.  Tests install a capturing sink;
 * the default prints to stderr.
 */
class LogSink {
  public:
    virtual ~LogSink() = default;

    /** Deliver one fully formatted message at @p level. */
    virtual void write(LogLevel level, const std::string& message) = 0;
};

/** Replace the process-wide sink; returns the previous one (never null). */
LogSink* setLogSink(LogSink* sink);

/** The currently installed sink. */
LogSink* logSink();

namespace detail {

void logMessage(LogLevel level, const std::string& message);

[[noreturn]] void fatalExit(const std::string& message);
[[noreturn]] void panicAbort(const std::string& message);

/** Stream-compose a message out of a variadic pack. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string();
    } else {
        std::ostringstream os;
        (os << ... << std::forward<Args>(args));
        return os.str();
    }
}

}  // namespace detail

/** Emit an informational message. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::logMessage(LogLevel::kInfo,
                       detail::composeMessage(std::forward<Args>(args)...));
}

/** Emit a warning message. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::logMessage(LogLevel::kWarn,
                       detail::composeMessage(std::forward<Args>(args)...));
}

/** Terminate because of a user-level error (bad config, bad input). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatalExit(detail::composeMessage(std::forward<Args>(args)...));
}

/** Terminate because of an internal VEAL bug. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panicAbort(detail::composeMessage(std::forward<Args>(args)...));
}

}  // namespace veal

#endif  // VEAL_SUPPORT_LOGGING_H_
