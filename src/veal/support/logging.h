#ifndef VEAL_SUPPORT_LOGGING_H_
#define VEAL_SUPPORT_LOGGING_H_

/**
 * @file
 * Status-message and error-termination helpers in the gem5 style.
 *
 * - inform(): normal operating status, no connotation of a problem.
 * - warn():   something may be off but execution can continue.
 * - fatal():  the *user's* input/configuration makes continuing impossible;
 *             exits with status 1.
 * - panic():  an internal invariant of VEAL itself is broken; aborts.
 */

#include <sstream>
#include <stdexcept>
#include <string>

namespace veal {

/** Severity for log messages delivered to the global sink. */
enum class LogLevel {
    kInfo,
    kWarn,
    kFatal,
    kPanic,
};

/**
 * Redirectable sink for log output.  Tests install a capturing sink;
 * the default prints to stderr.
 */
class LogSink {
  public:
    virtual ~LogSink() = default;

    /** Deliver one fully formatted message at @p level. */
    virtual void write(LogLevel level, const std::string& message) = 0;
};

/** Replace the process-wide sink; returns the previous one (never null). */
LogSink* setLogSink(LogSink* sink);

/** The currently installed sink. */
LogSink* logSink();

/**
 * Thrown by panic() instead of aborting while a ScopedPanicGuard is
 * active on the panicking thread.  what() carries the panic message.
 */
class PanicError : public std::runtime_error {
  public:
    explicit PanicError(const std::string& message)
        : std::runtime_error(message)
    {}
};

/**
 * While alive, panics *on this thread* throw PanicError instead of
 * aborting the process.
 *
 * This exists for harnesses that probe internal invariants on purpose --
 * the differential fuzzer classifies a translator/executor panic as a
 * crash-guard outcome and keeps fuzzing.  Production code must never
 * swallow a PanicError: a tripped invariant still means the containing
 * result is garbage.  Guards nest; the thread-local flag clears when the
 * outermost guard dies.  Other threads keep the abort semantics.
 */
class ScopedPanicGuard {
  public:
    ScopedPanicGuard();
    ~ScopedPanicGuard();

    ScopedPanicGuard(const ScopedPanicGuard&) = delete;
    ScopedPanicGuard& operator=(const ScopedPanicGuard&) = delete;

    /** True when a guard is active on the calling thread. */
    static bool active();
};

namespace detail {

void logMessage(LogLevel level, const std::string& message);

[[noreturn]] void fatalExit(const std::string& message);
[[noreturn]] void panicAbort(const std::string& message);

/** Stream-compose a message out of a variadic pack. */
template <typename... Args>
std::string
composeMessage(Args&&... args)
{
    if constexpr (sizeof...(Args) == 0) {
        return std::string();
    } else {
        std::ostringstream os;
        (os << ... << std::forward<Args>(args));
        return os.str();
    }
}

}  // namespace detail

/** Emit an informational message. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::logMessage(LogLevel::kInfo,
                       detail::composeMessage(std::forward<Args>(args)...));
}

/** Emit a warning message. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::logMessage(LogLevel::kWarn,
                       detail::composeMessage(std::forward<Args>(args)...));
}

/** Terminate because of a user-level error (bad config, bad input). */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    detail::fatalExit(detail::composeMessage(std::forward<Args>(args)...));
}

/** Terminate because of an internal VEAL bug. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    detail::panicAbort(detail::composeMessage(std::forward<Args>(args)...));
}

}  // namespace veal

#endif  // VEAL_SUPPORT_LOGGING_H_
