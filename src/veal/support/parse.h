#ifndef VEAL_SUPPORT_PARSE_H_
#define VEAL_SUPPORT_PARSE_H_

/**
 * @file
 * The one strict decimal-u64 parser every surface shares.
 *
 * Three independent copies of "digits only, fits in uint64" grew in the
 * trace parser, the CLI helpers, and the fuzz corpus -- and two of them
 * rejected *every* 20-digit token to dodge strtoull's saturating
 * overflow, which silently made seeds in [10^19, 2^64-1] unrepresentable
 * (and forced the trace generator to mask its seed pool to 48 bits).
 * This helper accumulates with an explicit overflow check instead, so
 * 18446744073709551615 parses and 18446744073709551616 fails.
 */

#include <cstdint>
#include <optional>
#include <string_view>

namespace veal {

/**
 * Strict decimal parse: the whole token must be digits (no sign, no
 * whitespace, no base prefix) and the value must fit in uint64.
 * Returns nullopt otherwise -- overflow is detected exactly, never
 * saturated.  Leading zeros are accepted ("007" == 7).
 */
inline std::optional<std::uint64_t>
parseU64Strict(std::string_view token)
{
    if (token.empty())
        return std::nullopt;
    std::uint64_t value = 0;
    constexpr std::uint64_t kMax = ~0ull;
    for (const char c : token) {
        if (c < '0' || c > '9')
            return std::nullopt;
        const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
        if (value > (kMax - digit) / 10)
            return std::nullopt;  // value * 10 + digit would overflow.
        value = value * 10 + digit;
    }
    return value;
}

}  // namespace veal

#endif  // VEAL_SUPPORT_PARSE_H_
