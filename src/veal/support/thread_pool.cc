#include "veal/support/thread_pool.h"

#include <algorithm>
#include <exception>
#include <memory>
#include <stdexcept>

namespace veal {

namespace {

/** Set while the current thread executes a pool task (any pool). */
thread_local bool tls_on_worker = false;

/** Shared bookkeeping for one run() batch. */
struct Batch {
    Batch(int n, std::function<void(int)> fn)
        : num_tasks(n), body(std::move(fn)),
          errors(static_cast<std::size_t>(std::max(n, 0)))
    {}

    const int num_tasks;

    /**
     * Owned copy: runner jobs still queued when the batch drains execute
     * after run() has returned, so they must not reference caller stack.
     */
    const std::function<void(int)> body;
    std::atomic<int> next_index{0};
    std::atomic<int> completed{0};

    /** errors[i] is only written by the thread that claimed index i. */
    std::vector<std::exception_ptr> errors;

    std::mutex done_mutex;
    std::condition_variable done_cv;
};

/** Claim indices off @p batch until none remain. */
void
drainBatch(Batch& batch)
{
    for (;;) {
        const int i = batch.next_index.fetch_add(1);
        if (i >= batch.num_tasks)
            return;
        try {
            batch.body(i);
        } catch (...) {
            batch.errors[static_cast<std::size_t>(i)] =
                std::current_exception();
        }
        if (batch.completed.fetch_add(1) + 1 == batch.num_tasks) {
            // All indices done: wake the submitting thread.  Taking the
            // lock orders this notify after the submitter's wait() call.
            std::lock_guard<std::mutex> lock(batch.done_mutex);
            batch.done_cv.notify_all();
        }
    }
}

}  // namespace

ThreadPool::ThreadPool(int num_threads)
{
    const int n = num_threads <= 0 ? defaultThreads() : num_threads;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int t = 0; t < n; ++t)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (auto& worker : workers_)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            work_available_.wait(
                lock, [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return;  // stopping_ and drained.
            task = std::move(queue_.front());
            queue_.pop();
        }
        tls_on_worker = true;
        task();
        tls_on_worker = false;
    }
}

void
ThreadPool::run(int num_tasks, const std::function<void(int)>& body)
{
    if (onWorkerThread()) {
        throw std::logic_error(
            "ThreadPool: nested submission from a worker thread would "
            "deadlock a fixed-size pool and is rejected by design");
    }
    if (num_tasks <= 0)
        return;

    // One runner job per worker (capped at the task count); each runner
    // pulls indices until the batch is dry.  shared_ptr keeps the batch
    // alive for runners still returning after the submitter wakes.
    auto batch = std::make_shared<Batch>(num_tasks, body);
    const int runners =
        std::min(num_tasks, std::max(numThreads(), 1));
    {
        std::lock_guard<std::mutex> lock(mutex_);
        for (int r = 0; r < runners; ++r)
            queue_.emplace([batch] { drainBatch(*batch); });
    }
    work_available_.notify_all();

    {
        std::unique_lock<std::mutex> lock(batch->done_mutex);
        batch->done_cv.wait(lock, [&] {
            return batch->completed.load() == batch->num_tasks;
        });
    }

    // Deterministic propagation: the lowest failing index wins.
    for (auto& error : batch->errors) {
        if (error)
            std::rethrow_exception(error);
    }
}

bool
ThreadPool::onWorkerThread()
{
    return tls_on_worker;
}

int
ThreadPool::defaultThreads()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace veal
