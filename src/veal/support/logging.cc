#include "veal/support/logging.h"

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace veal {

namespace {

/** Default sink: prefix by severity and print to stderr. */
class StderrSink : public LogSink {
  public:
    void
    write(LogLevel level, const std::string& message) override
    {
        const char* prefix = "info";
        switch (level) {
          case LogLevel::kInfo: prefix = "info"; break;
          case LogLevel::kWarn: prefix = "warn"; break;
          case LogLevel::kFatal: prefix = "fatal"; break;
          case LogLevel::kPanic: prefix = "panic"; break;
        }
        std::fprintf(stderr, "veal: %s: %s\n", prefix, message.c_str());
    }
};

StderrSink&
defaultSink()
{
    static StderrSink sink;
    return sink;
}

LogSink*&
sinkSlot()
{
    static LogSink* sink = &defaultSink();
    return sink;
}

/** Depth of nested ScopedPanicGuards on this thread. */
int&
panicGuardDepth()
{
    thread_local int depth = 0;
    return depth;
}

}  // namespace

LogSink*
setLogSink(LogSink* sink)
{
    LogSink* previous = sinkSlot();
    sinkSlot() = (sink != nullptr) ? sink : &defaultSink();
    return previous;
}

LogSink*
logSink()
{
    return sinkSlot();
}

namespace detail {

void
logMessage(LogLevel level, const std::string& message)
{
    sinkSlot()->write(level, message);
}

void
fatalExit(const std::string& message)
{
    sinkSlot()->write(LogLevel::kFatal, message);
    std::exit(1);
}

void
panicAbort(const std::string& message)
{
    if (ScopedPanicGuard::active())
        throw PanicError(message);
    sinkSlot()->write(LogLevel::kPanic, message);
    std::abort();
}

}  // namespace detail

ScopedPanicGuard::ScopedPanicGuard()
{
    ++panicGuardDepth();
}

ScopedPanicGuard::~ScopedPanicGuard()
{
    --panicGuardDepth();
}

bool
ScopedPanicGuard::active()
{
    return panicGuardDepth() > 0;
}

}  // namespace veal
