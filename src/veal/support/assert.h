#ifndef VEAL_SUPPORT_ASSERT_H_
#define VEAL_SUPPORT_ASSERT_H_

/**
 * @file
 * Internal-invariant assertion macro.  Unlike <cassert>, VEAL_ASSERT is
 * active in all build types: a violated invariant in a simulator silently
 * corrupts every downstream statistic, so we always want the abort.
 */

#include "veal/support/logging.h"

/**
 * Abort (via panic) when @p condition is false.  Extra stream arguments are
 * appended to the diagnostic, e.g.:
 *
 *   VEAL_ASSERT(ii >= 1, "bad II ", ii, " for loop ", loop.name());
 */
#define VEAL_ASSERT(condition, ...)                                        \
    do {                                                                   \
        if (!(condition)) {                                                \
            ::veal::panic("assertion failed: " #condition " at ",          \
                          __FILE__, ":", __LINE__, " ",                    \
                          ::veal::detail::composeMessage(__VA_ARGS__));    \
        }                                                                  \
    } while (false)

#endif  // VEAL_SUPPORT_ASSERT_H_
