#ifndef VEAL_SUPPORT_THREAD_POOL_H_
#define VEAL_SUPPORT_THREAD_POOL_H_

/**
 * @file
 * A fixed-size thread pool plus deterministic parallel-for / parallel-map
 * helpers.
 *
 * Design-space exploration is embarrassingly parallel across
 * (configuration x benchmark) cells, so the sweep harness fans cells out
 * over a ThreadPool.  Determinism is non-negotiable for the paper
 * figures, which leads to three deliberate restrictions:
 *
 *  - No work stealing and no futures: parallelFor() hands out indices
 *    from a shared atomic counter and blocks until every index has run.
 *    Results are stored by index, so output order never depends on
 *    completion order.
 *  - Exceptions propagate deterministically: if several tasks throw, the
 *    exception of the *lowest* index is rethrown to the caller once the
 *    batch has drained (the others are discarded).
 *  - Nested submission is rejected: calling parallelFor()/parallelMap()
 *    or ThreadPool::run() from inside a pool task throws
 *    std::logic_error.  A fixed-size pool with blocking dispatch would
 *    deadlock once every worker waits on a child batch; the sweep
 *    workloads never need nesting, so we forbid it outright instead of
 *    complicating the pool with re-entrant execution.
 *
 * Task bodies must be safe to invoke concurrently from distinct threads
 * for distinct indices; anything mutable they touch must be
 * thread-confined or index-private.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <optional>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace veal {

/** Fixed-size worker pool with blocking, order-preserving dispatch. */
class ThreadPool {
  public:
    /**
     * Spawn the workers.  @p num_threads <= 0 selects defaultThreads().
     * A pool of one worker executes batches serially (in index order),
     * which is the reference behaviour every larger pool must reproduce
     * bit-for-bit.
     */
    explicit ThreadPool(int num_threads = 0);

    /** Joins all workers; pending batches must have drained by now. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    int numThreads() const { return static_cast<int>(workers_.size()); }

    /**
     * Execute @p body(i) for every i in [0, num_tasks) on the workers and
     * block until all complete.  Indices are claimed dynamically, so
     * imbalanced tasks still fill the pool.  Rethrows the lowest-index
     * exception, if any.  Throws std::logic_error when called from a pool
     * worker (see file comment on nested submission).
     */
    void run(int num_tasks, const std::function<void(int)>& body);

    /** True when the calling thread is one of this process's pool workers. */
    static bool onWorkerThread();

    /** std::thread::hardware_concurrency(), clamped to at least 1. */
    static int defaultThreads();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable work_available_;
    std::queue<std::function<void()>> queue_;
    bool stopping_ = false;
};

/** parallelFor(pool, n, body): alias of pool.run() reading like a loop. */
inline void
parallelFor(ThreadPool& pool, int num_tasks,
            const std::function<void(int)>& body)
{
    pool.run(num_tasks, body);
}

namespace detail {

/** Lazily pick fn(item, index) over fn(item) for parallelMap. */
template <typename Fn, typename T,
          bool WithIndex = std::is_invocable_v<Fn&, const T&, int>>
struct MapResult {
    using type = std::invoke_result_t<Fn&, const T&, int>;
};

template <typename Fn, typename T>
struct MapResult<Fn, T, false> {
    using type = std::invoke_result_t<Fn&, const T&>;
};

}  // namespace detail

/**
 * Apply @p fn to every element of @p items on the pool and return the
 * results *in input order*, regardless of completion order.  @p fn may
 * take (const T&) or (const T&, int index).  Empty input returns an empty
 * vector without touching the pool.
 */
template <typename T, typename Fn>
auto
parallelMap(ThreadPool& pool, const std::vector<T>& items, Fn&& fn)
{
    using Result = typename detail::MapResult<Fn, T>::type;
    std::vector<std::optional<Result>> slots(items.size());
    pool.run(static_cast<int>(items.size()), [&](int i) {
        const auto index = static_cast<std::size_t>(i);
        if constexpr (std::is_invocable_v<Fn&, const T&, int>)
            slots[index].emplace(fn(items[index], i));
        else
            slots[index].emplace(fn(items[index]));
    });
    std::vector<Result> results;
    results.reserve(items.size());
    for (auto& slot : slots)
        results.push_back(std::move(*slot));
    return results;
}

}  // namespace veal

#endif  // VEAL_SUPPORT_THREAD_POOL_H_
