#include "veal/support/cost_meter.h"

#include "veal/support/assert.h"

namespace veal {

const char*
toString(TranslationPhase phase)
{
    switch (phase) {
      case TranslationPhase::kLoopAnalysis: return "loop-analysis";
      case TranslationPhase::kCcaMapping: return "cca-mapping";
      case TranslationPhase::kMiiComputation: return "mii";
      case TranslationPhase::kPriority: return "priority";
      case TranslationPhase::kScheduling: return "scheduling";
      case TranslationPhase::kRegisterAssignment: return "register-assignment";
      case TranslationPhase::kCount: break;
    }
    return "unknown";
}

CostMeter::CostMeter() : CostMeter(calibratedWeights()) {}

CostMeter::CostMeter(const Weights& weights) : weights_(weights)
{
    units_.fill(0);
}

void
CostMeter::charge(TranslationPhase phase, std::uint64_t units)
{
    const int index = static_cast<int>(phase);
    VEAL_ASSERT(index >= 0 && index < kNumTranslationPhases);
    units_[index] += units;
}

std::uint64_t
CostMeter::units(TranslationPhase phase) const
{
    return units_[static_cast<int>(phase)];
}

double
CostMeter::instructions(TranslationPhase phase) const
{
    const int index = static_cast<int>(phase);
    return static_cast<double>(units_[index]) *
           weights_.instructions_per_unit[index];
}

double
CostMeter::totalInstructions() const
{
    double total = 0.0;
    for (int i = 0; i < kNumTranslationPhases; ++i) {
        total += static_cast<double>(units_[i]) *
                 weights_.instructions_per_unit[i];
    }
    return total;
}

void
CostMeter::clear()
{
    units_.fill(0);
}

void
CostMeter::add(const CostMeter& other)
{
    for (int i = 0; i < kNumTranslationPhases; ++i)
        units_[i] += other.units_[i];
}

const CostMeter::Weights&
CostMeter::calibratedWeights()
{
    // Calibration procedure (DESIGN.md §2): run the fully dynamic
    // translator over the media/FP suite, record raw work units per phase,
    // then solve for per-unit weights that land the suite average on
    // Figure 8's phase means (~100k instructions/loop; 69% priority, 20%
    // CCA).  bench_fig08_translation_cost reports the resulting split.
    static const Weights weights = {{{
        6.0,    // loop-analysis: per op/edge visited in stream separation
        255.0,  // cca-mapping: per grow-attempt during greedy mapping
        5.5,    // mii: per Bellman-Ford edge relaxation / table update
        147.0,  // priority: per ordering/partition step (dominant phase)
        10.5,   // scheduling: per reservation-table probe
        145.0,  // register-assignment: per operand mapped
    }}};
    return weights;
}

}  // namespace veal
