#include "veal/service/trace.h"

#include <algorithm>
#include <optional>
#include <sstream>

#include "veal/ir/random_loop.h"
#include "veal/support/parse.h"
#include "veal/support/rng.h"

namespace veal {

namespace {

constexpr const char* kTraceHeader = "veal-trace-v1";

std::optional<TranslationMode>
modeByName(const std::string& name)
{
    for (const auto mode :
         {TranslationMode::kStatic, TranslationMode::kFullyDynamic,
          TranslationMode::kFullyDynamicHeight,
          TranslationMode::kHybridStaticCcaPriority}) {
        if (name == toString(mode))
            return mode;
    }
    return std::nullopt;
}

/** Strict decimal parse (digits only, no sign, fits in uint64). */
std::optional<std::uint64_t>
parseU64Token(const std::string& token)
{
    return parseU64Strict(token);
}

std::string
lineError(int line_number, const std::string& message)
{
    return "line " + std::to_string(line_number) + ": " + message;
}

}  // namespace

std::int64_t
ServiceTrace::totalRequests() const
{
    std::int64_t total = 0;
    for (const auto& tick : ticks)
        total += static_cast<std::int64_t>(tick.size());
    return total;
}

int
ServiceTrace::tenantCount() const
{
    int highest = -1;
    for (const auto& tick : ticks) {
        for (const auto& request : tick)
            highest = std::max(highest, request.tenant);
    }
    return highest + 1;
}

std::string
formatTrace(const ServiceTrace& trace)
{
    std::ostringstream os;
    os << kTraceHeader << "\n";
    for (std::size_t t = 0; t < trace.ticks.size(); ++t) {
        os << "tick\n";
        for (const auto& request : trace.ticks[t]) {
            os << "submit tenant=" << request.tenant
               << " seed=" << request.loop_seed
               << " mode=" << toString(request.mode)
               << " iterations=" << request.iterations << "\n";
        }
    }
    return os.str();
}

std::variant<ServiceTrace, std::string>
parseTrace(const std::string& text)
{
    ServiceTrace trace;
    std::istringstream in(text);
    std::string line;
    int line_number = 0;
    bool saw_header = false;
    bool saw_tick = false;

    while (std::getline(in, line)) {
        ++line_number;
        // Trim trailing carriage return (tolerate CRLF traces).
        if (!line.empty() && line.back() == '\r')
            line.pop_back();
        if (line.empty() || line[0] == '#')
            continue;
        if (!saw_header) {
            if (line != kTraceHeader) {
                return lineError(line_number,
                                 "expected header '" +
                                     std::string(kTraceHeader) +
                                     "', got '" + line + "'");
            }
            saw_header = true;
            continue;
        }
        std::istringstream tokens(line);
        std::string word;
        tokens >> word;
        if (word == "tick") {
            std::string extra;
            if (tokens >> extra)
                return lineError(line_number,
                                 "'tick' takes no arguments");
            trace.ticks.emplace_back();
            saw_tick = true;
            continue;
        }
        if (word != "submit") {
            return lineError(line_number,
                             "unknown directive '" + word + "'");
        }
        if (!saw_tick) {
            // Submissions before the first `tick` belong to tick 0.
            trace.ticks.emplace_back();
            saw_tick = true;
        }
        TraceRequest request;
        bool saw_tenant = false;
        bool saw_seed = false;
        std::string pair;
        while (tokens >> pair) {
            const auto eq = pair.find('=');
            if (eq == std::string::npos) {
                return lineError(line_number, "expected key=value, got '" +
                                                  pair + "'");
            }
            const std::string key = pair.substr(0, eq);
            const std::string value = pair.substr(eq + 1);
            if (key == "tenant") {
                const auto parsed = parseU64Token(value);
                if (!parsed.has_value() || *parsed > 1000000ull) {
                    return lineError(line_number,
                                     "bad tenant '" + value + "'");
                }
                request.tenant = static_cast<int>(*parsed);
                saw_tenant = true;
            } else if (key == "seed") {
                const auto parsed = parseU64Token(value);
                if (!parsed.has_value())
                    return lineError(line_number,
                                     "bad seed '" + value + "'");
                request.loop_seed = *parsed;
                saw_seed = true;
            } else if (key == "mode") {
                const auto mode = modeByName(value);
                if (!mode.has_value())
                    return lineError(line_number,
                                     "unknown mode '" + value + "'");
                request.mode = *mode;
            } else if (key == "iterations") {
                const auto parsed = parseU64Token(value);
                if (!parsed.has_value() || *parsed < 1 ||
                    *parsed > 1000000ull) {
                    return lineError(line_number,
                                     "bad iterations '" + value + "'");
                }
                request.iterations = static_cast<std::int64_t>(*parsed);
            } else {
                return lineError(line_number,
                                 "unknown key '" + key + "'");
            }
        }
        if (!saw_tenant || !saw_seed) {
            return lineError(line_number,
                             "submit needs tenant= and seed=");
        }
        trace.ticks.back().push_back(request);
    }
    if (!saw_header)
        return std::string("empty input (missing ") + kTraceHeader +
               " header)";
    return trace;
}

Loop
makeTraceLoop(std::uint64_t loop_seed)
{
    // Two independent streams off one published seed: the same split
    // shape as the fuzzer's (params, loop) derivation, with trace-local
    // salts so a trace seed never aliases a fuzz case.
    Rng params(loop_seed ^ 0x7e5ca11ab1e0ull);
    Rng body(loop_seed ^ 0x5eb0d15eedull);
    return makeStressLoop(params.next(), body.next(), "trace");
}

std::string
traceRequestKey(const TraceRequest& request)
{
    return "seed-" + std::to_string(request.loop_seed) + "/" +
           toString(request.mode);
}

ServiceTrace
generateTrace(const TraceGenOptions& options)
{
    ServiceTrace trace;
    if (options.requests <= 0 || options.tenants <= 0 ||
        options.loop_pool <= 0 || options.tick_size <= 0)
        return trace;

    // The pool's loop seeds are themselves drawn from the generator
    // seed, so two generator seeds disagree on loop *identities*, not
    // just on the request order.  Full 64-bit draws round-trip the
    // formatter/parser since the parser checks overflow instead of
    // capping tokens at 19 digits.
    Rng pool_rng(options.seed ^ 0x9001ull);
    std::vector<std::uint64_t> pool;
    pool.reserve(static_cast<std::size_t>(options.loop_pool));
    for (int i = 0; i < options.loop_pool; ++i)
        pool.push_back(pool_rng.next());

    constexpr TranslationMode kModes[] = {
        TranslationMode::kFullyDynamic,
        TranslationMode::kFullyDynamicHeight,
        TranslationMode::kHybridStaticCcaPriority,
        TranslationMode::kStatic,
    };

    Rng rng(options.seed);
    for (int i = 0; i < options.requests; ++i) {
        if (i % options.tick_size == 0)
            trace.ticks.emplace_back();
        TraceRequest request;
        request.tenant = static_cast<int>(
            rng.nextBelow(static_cast<std::uint64_t>(options.tenants)));
        request.loop_seed = pool[static_cast<std::size_t>(
            rng.nextBelow(static_cast<std::uint64_t>(options.loop_pool)))];
        request.mode = kModes[rng.nextBelow(4)];
        request.iterations = options.iterations;
        trace.ticks.back().push_back(request);
    }
    return trace;
}

}  // namespace veal
