#ifndef VEAL_SERVICE_TRACE_H_
#define VEAL_SERVICE_TRACE_H_

/**
 * @file
 * The versioned request-trace format of the translation service.
 *
 * A trace is the replayable input of a whole multi-tenant service run:
 * the exact sequence of loop-translation requests every tenant submits,
 * grouped into arrival ticks.  The text format (`veal-trace-v1`) is the
 * durable artifact -- CI replays a fixed trace across the shard/thread/
 * batch matrix and byte-compares the outputs -- so it is versioned,
 * strictly parsed (line-numbered errors, unknown keys rejected), and
 * round-trips exactly through format/parse.
 *
 *   veal-trace-v1
 *   # comment
 *   tick
 *   submit tenant=0 seed=42 mode=fully-dynamic iterations=12
 *   submit tenant=1 seed=42
 *   tick
 *   submit tenant=2 seed=7 mode=static
 *
 * `tick` starts a new arrival round (submissions before the first
 * `tick` belong to tick 0); `submit` carries the tenant id, the loop
 * seed (the loop itself is derived via makeTraceLoop(), never stored),
 * and optional mode/iterations (defaults: fully-dynamic, 12).
 */

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "veal/ir/loop.h"
#include "veal/vm/translator.h"

namespace veal {

/** One `submit` line. */
struct TraceRequest {
    int tenant = 0;
    std::uint64_t loop_seed = 0;
    TranslationMode mode = TranslationMode::kFullyDynamic;
    std::int64_t iterations = 12;
};

/** A whole veal-trace-v1 file: requests grouped into arrival ticks. */
struct ServiceTrace {
    std::vector<std::vector<TraceRequest>> ticks;

    /** Total `submit` lines across all ticks. */
    std::int64_t totalRequests() const;

    /** Highest tenant id + 1 (0 for an empty trace). */
    int tenantCount() const;
};

/** Render @p trace in the veal-trace-v1 text format. */
std::string formatTrace(const ServiceTrace& trace);

/**
 * Parse a veal-trace-v1 document; the error alternative is a
 * human-readable message with a 1-based line number.
 */
std::variant<ServiceTrace, std::string> parseTrace(
    const std::string& text);

/**
 * Derive the loop a `submit seed=S` line requests.  A pure function of
 * the seed, drawn from the shared stress family (makeStressLoop), so a
 * trace file fully determines every loop without storing IR text.
 */
Loop makeTraceLoop(std::uint64_t loop_seed);

/**
 * The translation identity of a request: loop seed + mode (tenants
 * share translations; quarantine is tenant-scoped separately).
 */
std::string traceRequestKey(const TraceRequest& request);

/** Knobs of the deterministic trace generator. */
struct TraceGenOptions {
    std::uint64_t seed = 1;

    /** Tenants drawing requests (ids 0 .. tenants-1). */
    int tenants = 4;

    /** Total `submit` lines to generate. */
    int requests = 256;

    /**
     * Distinct loop seeds to draw from.  Small pools create the cache
     * contention the service exists for: coalesced same-tick twins and
     * cross-tenant warm hits.
     */
    int loop_pool = 16;

    /** Submissions per tick (the last tick may be short). */
    int tick_size = 32;

    std::int64_t iterations = 12;
};

/**
 * Generate a random trace: pure function of @p options, loop seeds
 * drawn from a pool, tenants and modes round-robin-randomized.
 */
ServiceTrace generateTrace(const TraceGenOptions& options);

}  // namespace veal

#endif  // VEAL_SERVICE_TRACE_H_
