#include "veal/service/service.h"

#include <algorithm>
#include <array>
#include <iomanip>
#include <sstream>

#include "veal/fault/fault_plan.h"
#include "veal/support/assert.h"
#include "veal/support/rng.h"

namespace veal {

namespace {

constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** FNV-1a fold of one 64-bit value, byte by byte. */
std::uint64_t
fold(std::uint64_t digest, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte) {
        digest ^= (value >> (byte * 8)) & 0xffull;
        digest *= kFnvPrime;
    }
    return digest;
}

/** Fold every field of @p outcome into @p digest (sequence-ordered). */
std::uint64_t
foldOutcome(std::uint64_t digest, const RequestOutcome& outcome)
{
    digest = fold(digest, static_cast<std::uint64_t>(outcome.sequence));
    digest = fold(digest, static_cast<std::uint64_t>(outcome.tenant));
    digest = fold(digest, static_cast<std::uint64_t>(outcome.admission));
    digest = fold(digest, static_cast<std::uint64_t>(outcome.cache));
    digest = fold(digest, outcome.translated_ok ? 1 : 0);
    digest = fold(digest, static_cast<std::uint64_t>(outcome.reject));
    digest = fold(digest, static_cast<std::uint64_t>(outcome.rung));
    digest = fold(digest, static_cast<std::uint64_t>(outcome.ii));
    digest = fold(digest, static_cast<std::uint64_t>(outcome.stage_count));
    digest = fold(digest,
                  static_cast<std::uint64_t>(outcome.translation_cycles));
    digest = fold(digest, static_cast<std::uint64_t>(outcome.cpu_cycles));
    digest = fold(digest,
                  static_cast<std::uint64_t>(outcome.la_first_cycles));
    digest = fold(digest,
                  static_cast<std::uint64_t>(outcome.la_warm_cycles));
    digest = fold(digest, outcome.la_wins ? 1 : 0);
    return digest;
}

void
renderCountMap(std::ostringstream& os, const char* label,
               const std::map<std::string, std::int64_t>& counts)
{
    os << label << ":";
    if (counts.empty()) {
        os << " none";
    } else {
        for (const auto& [name, count] : counts)
            os << " " << name << "=" << count;
    }
    os << "\n";
}

}  // namespace

const char*
toString(AdmissionOutcome outcome)
{
    switch (outcome) {
      case AdmissionOutcome::kAdmitted: return "admitted";
      case AdmissionOutcome::kQueueFull: return "queue-full";
      case AdmissionOutcome::kQuotaExceeded: return "quota-exceeded";
    }
    return "unknown";
}

const char*
toString(CacheOutcome outcome)
{
    switch (outcome) {
      case CacheOutcome::kCold: return "cold";
      case CacheOutcome::kWarm: return "warm";
      case CacheOutcome::kCoalesced: return "coalesced";
      case CacheOutcome::kInvalidated: return "invalidated";
      case CacheOutcome::kQuarantined: return "quarantined";
      case CacheOutcome::kPersisted: return "persisted";
    }
    return "unknown";
}

std::uint64_t
makeServicePlanSeed(std::uint64_t fault_seed, std::int64_t sequence)
{
    // Same index-addressable stream split as the fuzzer's mixSeed, with
    // a service-local salt so a service request never aliases a fuzz
    // case's fault plan.
    Rng rng(fault_seed ^
            (0x9e3779b97f4a7c15ull *
             (static_cast<std::uint64_t>(sequence) + 1)) ^
            0x5e47ull);
    return rng.next();
}

std::string
ServiceReport::render() const
{
    std::ostringstream os;
    os << "veal-serve: ticks=" << ticks << " submitted=" << submitted
       << " admitted=" << admitted << " rejected="
       << (rejected_queue + rejected_quota) << " tenants="
       << tenants.size() << "\n";
    os << "admission: queue-full=" << rejected_queue
       << " quota-exceeded=" << rejected_quota << "\n";
    os << "cache: cold=" << cold << " warm=" << warm << " coalesced="
       << coalesced << " invalidated=" << invalidated << " quarantined="
       << quarantined << " persisted=" << persisted << "\n";
    os << "translate: ok=" << translate_ok << "\n";
    renderCountMap(os, "rejects", rejects);
    renderCountMap(os, "rungs", rungs);
    os << "path: la=" << path_la << " cpu=" << path_cpu << "\n";
    os << "cycles: translation=" << translation_cycles << " cpu="
       << cpu_cycles << " la-first=" << la_first_cycles << " la-warm="
       << la_warm_cycles << "\n";
    os << "tlb: pages=" << tlb_pages << " walks=" << tlb_walks
       << " cycles=" << tlb_cycles << "\n";
    os << "quarantined-pairs=" << quarantined_pairs << "\n";
    // Fleet lines only in fleet mode: a fleetless report stays
    // byte-identical to the pre-fleet service.
    if (fleet_enabled) {
        os << "fleet: backends=" << fleet_backends << " spills="
           << fleet_spills << " cpu-fallback=" << fleet_cpu_fallbacks
           << " scores-computed=" << fleet_scores_computed
           << " scores-persisted=" << fleet_scores_persisted << "\n";
        renderCountMap(os, "fleet-placed", fleet_placed);
    }
    renderCountMap(os, "fault-fired", fault_fired);
    renderCountMap(os, "fault-probes", fault_probes);
    os << std::left << std::setw(8) << "tenant" << std::right
       << std::setw(10) << "submitted" << std::setw(10) << "admitted"
       << std::setw(8) << "rej-q" << std::setw(10) << "rej-quota"
       << std::setw(6) << "cold" << std::setw(6) << "warm"
       << std::setw(6) << "coal" << std::setw(7) << "inval"
       << std::setw(6) << "quar" << std::setw(6) << "pers"
       << std::setw(5) << "ok" << std::setw(5) << "rej"
       << "  digest\n";
    for (const auto& [tenant, stats] : tenants) {
        os << std::left << std::setw(8) << tenant << std::right
           << std::setw(10) << stats.submitted << std::setw(10)
           << stats.admitted << std::setw(8) << stats.rejected_queue
           << std::setw(10) << stats.rejected_quota << std::setw(6)
           << stats.cold << std::setw(6) << stats.warm << std::setw(6)
           << stats.coalesced << std::setw(7) << stats.invalidated
           << std::setw(6) << stats.quarantined << std::setw(6)
           << stats.persisted << std::setw(5)
           << stats.translate_ok << std::setw(5)
           << stats.translate_reject << "  " << std::hex
           << std::setw(16) << std::setfill('0') << stats.digest
           << std::dec << std::setfill(' ') << "\n";
    }
    return os.str();
}

TranslationService::TranslationService(ServiceOptions options,
                                       metrics::Registry* registry)
    : options_(std::move(options)),
      registry_(registry),
      queue_(static_cast<std::size_t>(std::max(1, options_.queue_depth)))
{
    if (!options_.cache_dir.empty()) {
        persistent_ = std::make_unique<persist::PersistentStore>(
            options_.cache_dir, options_.store, registry_);
    }
    const int shards = std::max(1, options_.shards);
    shard_caches_.reserve(static_cast<std::size_t>(shards));
    shard_sims_.reserve(static_cast<std::size_t>(shards));
    for (int s = 0; s < shards; ++s) {
        shard_caches_.push_back(std::make_unique<CodeCache>(
            std::max(1, options_.shard_cache_entries)));
        shard_sims_.push_back(std::make_unique<BatchSimulator>());
    }
    if (options_.fleet.has_value() && options_.fleet->enabled()) {
        scorer_.emplace(*options_.fleet, options_.cpu, options_.tlb,
                        options_.fleet_scoring_iterations);
        steerer_.emplace(*options_.fleet);
        report_.fleet_enabled = true;
        report_.fleet_backends = options_.fleet->size();
    }
}

const LaConfig&
TranslationService::laFor(int backend) const
{
    if (backend < 0 || !fleetEnabled())
        return options_.la;
    VEAL_ASSERT(backend < options_.fleet->size());
    return options_.fleet->backends[static_cast<std::size_t>(backend)].la;
}

AdmissionOutcome
TranslationService::submit(ServiceRequest request)
{
    const std::int64_t sequence = next_sequence_++;
    LogEntry log;
    log.sequence = sequence;
    log.tenant = request.tenant;
    log.key = request.key;

    // Quota first (a hogging tenant is rejected even when the queue has
    // room), then the bounded queue's own capacity.
    if (inflight_[request.tenant] >= options_.tenant_quota) {
        log.admission = AdmissionOutcome::kQuotaExceeded;
    } else if (!queue_.tryPush(Pending{std::move(request), sequence})) {
        log.admission = AdmissionOutcome::kQueueFull;
    } else {
        log.admission = AdmissionOutcome::kAdmitted;
        ++inflight_[log.tenant];
    }
    tick_log_.push_back(log);
    return log.admission;
}

void
TranslationService::drainTick()
{
    ++report_.ticks;
    const std::int64_t epoch = report_.ticks;
    if (registry_ != nullptr)
        registry_->add("service.ticks");

    // Pull this tick's admitted requests back out of the queue.  The
    // queue is FIFO and filled from the sequenced submit() path, so the
    // pop order *is* the sequence order.
    std::vector<Pending> admitted;
    while (auto item = queue_.tryPop())
        admitted.push_back(std::move(*item));

    const int shards = std::max(1, options_.shards);
    const std::size_t batch =
        static_cast<std::size_t>(std::max(1, options_.batch));

    // ---- Phase 1: sequential planning, in sequence order.  Fixes the
    // logical cache taxonomy (which is therefore shard-count invariant)
    // and the fresh-translation work list; performs every warm-tier
    // WRITE of the consult path (invalidations) so the parallel phase
    // below only ever reads.
    struct Job {
        std::size_t admitted_index = 0;
        const Loop* loop = nullptr;
        std::string key;
        TranslationMode mode = TranslationMode::kFullyDynamic;
        std::int64_t iterations = 12;
        std::optional<FaultInjector> injector;
        /** Design point to translate/price against (fleet steering). */
        const LaConfig* la = nullptr;
        int backend = -1;  ///< Fleet backend index (-1: single design).
        // Parallel-phase products.
        LadderOutcome ladder;
        std::optional<ControlImage> image;
        LaInvocationCost la_first;
        LaInvocationCost la_warm;
    };
    struct PlanInfo {
        CacheOutcome cache = CacheOutcome::kCold;
        int job = -1;           ///< Own fresh translation.
        int provider_job = -1;  ///< Coalesced: the provider's job.
        WarmTier::EntryRef warm_entry;
        /** Persisted serve: the store-loaded blob (shared per tick). */
        std::shared_ptr<const persist::PersistedImage> persisted;
        std::optional<FaultInjector> injector;  ///< Warm-verify probes.
        // Fleet steering (all no-ops when --fleet is off).
        int backend = -1;        ///< Serving backend (-1: baseline/CPU).
        bool placed_now = false; ///< Placement minted by this request.
        int spill_rank = 0;      ///< Candidate rank the placement took.
        enum class ScoreSource { kNone, kComputed, kWarm, kPersisted };
        ScoreSource score_source = ScoreSource::kNone;
    };
    std::vector<PlanInfo> plans(admitted.size());
    std::vector<Job> jobs;
    std::map<std::string, int> tick_provider;  // key -> job index.
    // One store load per key per tick: later same-tick requests share
    // the first load's blob (and its hit accounting).
    std::map<std::string, std::shared_ptr<const persist::PersistedImage>>
        tick_persisted;

    for (std::size_t i = 0; i < admitted.size(); ++i) {
        const ServiceRequest& request = admitted[i].request;
        PlanInfo& plan = plans[i];
        const auto qkey = std::make_pair(request.tenant, request.key);
        if (quarantined_.count(qkey) != 0) {
            plan.cache = CacheOutcome::kQuarantined;
            continue;
        }

        // Fleet steering: a key's placement is sticky for the whole
        // run -- minted on first cold scoring (or rehydrated from a
        // persisted blob) and consulted by every later serve.
        std::optional<fleet::Placement> placement;
        if (fleetEnabled())
            placement = steerer_->lookup(request.key);

        bool translate_needed = false;
        if (auto entry = warm_.serve(request.key)) {
            // Warm consult: verify the control image first, exactly as
            // the hardened VM does before a cached dispatch.
            bool corrupted = false;
            if (options_.fault_seed.has_value()) {
                plan.injector.emplace(FaultPlan::sample(
                    makeServicePlanSeed(*options_.fault_seed,
                                        admitted[i].sequence)));
                if (entry->image.has_value() &&
                    plan.injector->probe(FaultSite::kCacheCorruption)) {
                    const auto target = warm_.mutableEntry(request.key);
                    target->image->flipBit(plan.injector->corruptionBit(
                        target->image->words().size() * 32));
                    corrupted = target->image->checksum() !=
                                target->expected_checksum;
                }
            }
            if (!corrupted) {
                plan.cache = CacheOutcome::kWarm;
                plan.warm_entry = std::move(entry);
                plan.backend = plan.warm_entry->backend;
                continue;
            }
            // Checksum mismatch: drop the entry everywhere -- warm
            // tier, shard caches, AND the persistent store (the third
            // owner: leaving the blob would resurrect the image on the
            // next run) -- strike the (tenant, key) pair, and either
            // quarantine it or queue a re-translation for this very
            // request.
            warm_.invalidate(request.key);
            for (const auto& cache : shard_caches_)
                cache->erase(request.key);
            if (persistent_ != nullptr)
                persistent_->invalidate(request.key);
            tick_persisted.erase(request.key);
            const int strikes = ++strikes_[qkey];
            if (registry_ != nullptr) {
                registry_->trace("service", "invalidate", request.key,
                                 strikes);
            }
            if (strikes >= options_.quarantine_strikes) {
                quarantined_.insert(qkey);
                plan.cache = CacheOutcome::kQuarantined;
                continue;
            }
            plan.cache = CacheOutcome::kInvalidated;
            translate_needed = true;
        } else if (auto loaded = [&] {
                       // Persistent consult on a warm-tier miss: one
                       // real load per key per tick, skipped when a
                       // same-tick job is already translating the key.
                       std::shared_ptr<const persist::PersistedImage>
                           blob;
                       if (persistent_ == nullptr)
                           return blob;
                       if (const auto cached =
                               tick_persisted.find(request.key);
                           cached != tick_persisted.end()) {
                           blob = cached->second;
                       } else if (tick_provider.count(request.key) ==
                                  0) {
                           if (auto image =
                                   persistent_->load(request.key)) {
                               blob = std::make_shared<
                                   const persist::PersistedImage>(
                                   std::move(*image));
                               tick_persisted[request.key] = blob;
                           }
                       }
                       // Fleet gate: a blob is only fleet-servable
                       // when it carries scores minted under this
                       // exact fleet AND its translation targets the
                       // backend the steerer picks.  Anything else is
                       // a miss; the cold retranslation overwrites the
                       // blob with freshly-scored v2 contents.
                       if (blob != nullptr && fleetEnabled()) {
                           const auto& s = blob->summary;
                           const bool usable =
                               s.fleet.has_value() &&
                               s.fleet->signature ==
                                   scorer_->signature();
                           if (usable && !placement.has_value()) {
                               auto scores = std::make_shared<
                                   const persist::FleetScoreSet>(
                                   *s.fleet);
                               warm_.publishScores(request.key, scores);
                               placement = steerer_->place(request.key,
                                                           *scores);
                               plan.placed_now = true;
                               plan.spill_rank = placement->spill_rank;
                               plan.score_source =
                                   PlanInfo::ScoreSource::kPersisted;
                           }
                           if (!usable ||
                               placement->backend < 0 ||
                               placement->backend != s.fleet_backend) {
                               blob = nullptr;
                           }
                       }
                       return blob;
                   }()) {
            // Persisted serve: same verify-before-trust discipline as a
            // warm serve.  The blob's FNV checksum already validated on
            // load; the fault layer can still corrupt the image between
            // load and dispatch, which the rotate-XOR image checksum
            // catches.
            bool corrupted = false;
            if (options_.fault_seed.has_value()) {
                plan.injector.emplace(FaultPlan::sample(
                    makeServicePlanSeed(*options_.fault_seed,
                                        admitted[i].sequence)));
                if (!loaded->image_words.empty() &&
                    plan.injector->probe(FaultSite::kCacheCorruption)) {
                    ControlImage probe =
                        ControlImage::fromWords(loaded->image_words);
                    const std::uint32_t expected = probe.checksum();
                    probe.flipBit(plan.injector->corruptionBit(
                        probe.words().size() * 32));
                    corrupted = probe.checksum() != expected;
                }
            }
            if (!corrupted) {
                plan.cache = CacheOutcome::kPersisted;
                plan.persisted = std::move(loaded);
                if (fleetEnabled())
                    plan.backend = plan.persisted->summary.fleet_backend;
                continue;
            }
            // Corrupted persisted image: delete the blob (degrade to a
            // fresh translation, never crash), strike, and follow the
            // same quarantine ladder as a warm corruption.
            persistent_->invalidate(request.key);
            tick_persisted.erase(request.key);
            for (const auto& cache : shard_caches_)
                cache->erase(request.key);
            const int strikes = ++strikes_[qkey];
            if (registry_ != nullptr) {
                registry_->trace("service", "invalidate", request.key,
                                 strikes);
            }
            if (strikes >= options_.quarantine_strikes) {
                quarantined_.insert(qkey);
                plan.cache = CacheOutcome::kQuarantined;
                continue;
            }
            plan.cache = CacheOutcome::kInvalidated;
            translate_needed = true;
        } else if (const auto provider = tick_provider.find(request.key);
                   provider != tick_provider.end()) {
            plan.cache = CacheOutcome::kCoalesced;
            plan.provider_job = provider->second;
            plan.backend =
                jobs[static_cast<std::size_t>(provider->second)].backend;
            continue;
        } else {
            plan.cache = CacheOutcome::kCold;
            if (options_.fault_seed.has_value()) {
                plan.injector.emplace(FaultPlan::sample(
                    makeServicePlanSeed(*options_.fault_seed,
                                        admitted[i].sequence)));
            }
            translate_needed = true;
        }

        VEAL_ASSERT(translate_needed);
        if (fleetEnabled()) {
            // Score-and-place before committing to a translation job.
            // Scores are a pure function of (loop, mode, fleet) at the
            // canonical scoring iteration count, so they are cached in
            // the warm tier's side table and survive invalidations.
            if (!placement.has_value()) {
                WarmTier::ScoreRef scores = warm_.findScores(request.key);
                if (scores == nullptr) {
                    scores =
                        std::make_shared<const persist::FleetScoreSet>(
                            scorer_->score(request.loop, request.mode));
                    warm_.publishScores(request.key, scores);
                    plan.score_source = PlanInfo::ScoreSource::kComputed;
                } else {
                    plan.score_source = PlanInfo::ScoreSource::kWarm;
                }
                placement = steerer_->place(request.key, *scores);
                plan.placed_now = true;
                plan.spill_rank = placement->spill_rank;
            }
            plan.backend = placement->backend;
            if (plan.backend < 0) {
                // Every viable backend is saturated: steer this key to
                // the CPU without burning a translation job.  The
                // reduction accounts it as a fleet CPU fallback.
                continue;
            }
        }
        Job job;
        job.admitted_index = i;
        job.loop = &request.loop;
        job.key = request.key;
        job.mode = request.mode;
        job.iterations = request.iterations;
        job.la = &laFor(plan.backend);
        job.backend = plan.backend;
        job.injector = std::move(plan.injector);
        plan.injector.reset();
        plan.job = static_cast<int>(jobs.size());
        tick_provider[request.key] = plan.job;
        jobs.push_back(std::move(job));
    }

    // ---- Phase 2: parallel shard phase.  Jobs round-robin over shards
    // by job index; every shard touches only its own CodeCache and
    // BatchSimulator, writes only its own jobs' fields and cpu_cycles
    // slots, and reads the warm tier without mutating it.  Everything
    // computed here is a pure function of the planned inputs, and the
    // batch engine's grouping-invariance makes the shard/batch
    // partition of the pricing lanes semantically invisible.
    std::vector<std::int64_t> cpu_cycles(admitted.size(), 0);
    const auto run_shard = [&](int shard) {
        BatchSimulator& sim =
            *shard_sims_[static_cast<std::size_t>(shard)];
        CodeCache& cache =
            *shard_caches_[static_cast<std::size_t>(shard)];

        // (a) Translate this shard's jobs.
        for (std::size_t j = static_cast<std::size_t>(shard);
             j < jobs.size(); j += static_cast<std::size_t>(shards)) {
            Job& job = jobs[j];
            // Physical cache walk: shard-local miss, then the shared
            // warm tier (read-only here; the planning pass already
            // decided this key needs a fresh translation).
            cache.lookup(job.key);
            (void)warm_.find(job.key);
            StaticAnnotations annotations;
            const StaticAnnotations* annotations_ptr = nullptr;
            if (job.mode == TranslationMode::kHybridStaticCcaPriority) {
                annotations =
                    precompileAnnotations(*job.loop, *job.la);
                annotations_ptr = &annotations;
            }
            job.ladder = climbTranslationLadder(
                *job.loop, *job.la, job.mode, annotations_ptr,
                job.injector.has_value() ? &*job.injector : nullptr);
            if (job.ladder.translation.ok) {
                job.image = ControlImage::encode(*job.loop,
                                                 job.ladder.translation);
                cache.insert(job.key);
            }
        }

        // (b) Price this shard's fresh translations (first + warm
        // invocation lanes), in --batch blocks, grouped per backend
        // design point (a batch prices against one LaConfig).  The
        // batch engine's grouping invariance makes both the backend
        // grouping and the block split semantically invisible; without
        // a fleet there is a single group and the blocks are exactly
        // the pre-fleet ones.
        std::map<int, std::vector<std::size_t>> ok_by_backend;
        for (std::size_t j = static_cast<std::size_t>(shard);
             j < jobs.size(); j += static_cast<std::size_t>(shards)) {
            if (jobs[j].ladder.translation.ok)
                ok_by_backend[jobs[j].backend].push_back(j);
        }
        for (const auto& [backend, ok_jobs] : ok_by_backend) {
            const LaConfig& la = laFor(backend);
            for (std::size_t begin = 0; begin < ok_jobs.size();
                 begin += batch) {
                const std::size_t end =
                    std::min(begin + batch, ok_jobs.size());
                std::vector<LaCostRequest> lanes;
                lanes.reserve((end - begin) * 2);
                for (std::size_t k = begin; k < end; ++k) {
                    const auto& tr = jobs[ok_jobs[k]].ladder.translation;
                    VEAL_ASSERT(tr.graph.has_value());
                    LaCostRequest lane;
                    lane.schedule = &tr.schedule;
                    lane.graph = &*tr.graph;
                    lane.analysis = &tr.analysis;
                    lane.registers = &tr.registers;
                    lane.iterations = jobs[ok_jobs[k]].iterations;
                    lane.first_invocation = true;
                    lanes.push_back(lane);
                    lane.first_invocation = false;
                    lanes.push_back(lane);
                }
                const auto costs = sim.acceleratorCostBatch(la, lanes);
                for (std::size_t k = begin; k < end; ++k) {
                    jobs[ok_jobs[k]].la_first = costs[(k - begin) * 2];
                    jobs[ok_jobs[k]].la_warm =
                        costs[(k - begin) * 2 + 1];
                }
            }
        }

        // (c) Price the baseline-CPU path of this shard's slice of the
        // admitted requests, in --batch blocks.
        std::vector<std::size_t> mine;
        for (std::size_t i = static_cast<std::size_t>(shard);
             i < admitted.size(); i += static_cast<std::size_t>(shards))
            mine.push_back(i);
        for (std::size_t begin = 0; begin < mine.size(); begin += batch) {
            const std::size_t end = std::min(begin + batch, mine.size());
            std::vector<CpuSimRequest> lanes;
            lanes.reserve(end - begin);
            for (std::size_t k = begin; k < end; ++k) {
                CpuSimRequest lane;
                lane.loop = &admitted[mine[k]].request.loop;
                lane.iterations = admitted[mine[k]].request.iterations;
                lanes.push_back(lane);
            }
            const auto timings =
                sim.simulateCpuBatch(options_.cpu, lanes);
            for (std::size_t k = begin; k < end; ++k)
                cpu_cycles[mine[k]] = timings[k - begin].total_cycles;
        }
    };
    if (!admitted.empty()) {
        if (options_.threads > 1) {
            if (pool_ == nullptr) {
                pool_ =
                    std::make_unique<ThreadPool>(options_.threads);
            }
            parallelFor(*pool_, shards, run_shard);
        } else {
            for (int shard = 0; shard < shards; ++shard)
                run_shard(shard);
        }
    }

    // ---- Phase 3a: price warm/coalesced serves (their own iteration
    // counts) out of the reduction-owned simulator, in --batch blocks.
    // Summary-backed serves (persisted, or warm entries rehydrated from
    // the store) price analytically through summaryLoopCost(), which is
    // bit-identical to the batch engine for the same translation -- the
    // foundation of the save/reload byte-equality contract.
    struct DeferredLane {
        std::size_t admitted_index = 0;
        const TranslationResult* translation = nullptr;
    };
    // Grouped per backend (one pricing LaConfig per batch); backend -1
    // is the single-design-point group, so a fleetless run prices in
    // exactly the pre-fleet blocks.
    std::map<int, std::vector<DeferredLane>> deferred;
    std::vector<std::int64_t> warm_price(admitted.size(), 0);
    for (std::size_t i = 0; i < admitted.size(); ++i) {
        const PlanInfo& plan = plans[i];
        const TranslationResult* tr = nullptr;
        const persist::TranslationSummary* summary = nullptr;
        if (plan.cache == CacheOutcome::kWarm) {
            if (plan.warm_entry->summaryBacked()) {
                if (plan.warm_entry->summary->ok)
                    summary = &*plan.warm_entry->summary;
            } else if (plan.warm_entry->translation.ok) {
                tr = &plan.warm_entry->translation;
            }
        } else if (plan.cache == CacheOutcome::kPersisted) {
            if (plan.persisted->summary.ok)
                summary = &plan.persisted->summary;
        } else if (plan.cache == CacheOutcome::kCoalesced) {
            const auto& provider =
                jobs[static_cast<std::size_t>(plan.provider_job)];
            if (provider.ladder.translation.ok)
                tr = &provider.ladder.translation;
        }
        if (tr != nullptr) {
            deferred[plan.backend].push_back({i, tr});
        } else if (summary != nullptr) {
            warm_price[i] =
                persist::summaryLoopCost(
                    *summary, laFor(plan.backend),
                    admitted[i].request.iterations,
                    /*first_invocation=*/false)
                    .total();
        }
    }
    for (const auto& [backend, group] : deferred) {
        const LaConfig& la = laFor(backend);
        for (std::size_t begin = 0; begin < group.size();
             begin += batch) {
            const std::size_t end = std::min(begin + batch, group.size());
            std::vector<LaCostRequest> lanes;
            lanes.reserve(end - begin);
            for (std::size_t k = begin; k < end; ++k) {
                const auto& tr = *group[k].translation;
                VEAL_ASSERT(tr.graph.has_value());
                LaCostRequest lane;
                lane.schedule = &tr.schedule;
                lane.graph = &*tr.graph;
                lane.analysis = &tr.analysis;
                lane.registers = &tr.registers;
                lane.iterations =
                    admitted[group[k].admitted_index].request.iterations;
                lane.first_invocation = false;
                lanes.push_back(lane);
            }
            const auto costs =
                reduction_sim_.acceleratorCostBatch(la, lanes);
            for (std::size_t k = begin; k < end; ++k)
                warm_price[group[k].admitted_index] =
                    costs[k - begin].total();
        }
    }

    // ---- Phase 3b: index-ordered reduction over the full submission
    // log (rejections included), in sequence order.  ALL accounting --
    // registry counters, tenant digests, warm-tier publication -- lives
    // here, which is the whole determinism argument: nothing observable
    // depends on how phase 2 was partitioned.
    last_tick_outcomes_.clear();
    std::int64_t audited_cycles = 0;
    std::int64_t charged_cycles = 0;
    std::array<std::int64_t, kNumFaultSites> fired{};
    std::array<std::int64_t, kNumFaultSites> probed{};
    std::size_t admitted_cursor = 0;

    for (const LogEntry& log : tick_log_) {
        RequestOutcome out;
        out.sequence = log.sequence;
        out.tenant = log.tenant;
        out.key = log.key;
        out.admission = log.admission;

        TenantReport& tenant = report_.tenants[log.tenant];
        const std::string tenant_prefix =
            "service.tenant." + std::to_string(log.tenant);
        ++tenant.submitted;
        ++report_.submitted;
        if (registry_ != nullptr) {
            registry_->add("service.requests.submitted");
            registry_->add(tenant_prefix + ".submitted");
        }

        if (log.admission != AdmissionOutcome::kAdmitted) {
            if (log.admission == AdmissionOutcome::kQueueFull) {
                ++tenant.rejected_queue;
                ++report_.rejected_queue;
            } else {
                ++tenant.rejected_quota;
                ++report_.rejected_quota;
            }
            if (registry_ != nullptr) {
                registry_->add(std::string("service.requests.rejected.") +
                               toString(log.admission));
                registry_->add(tenant_prefix + ".rejected");
            }
            tenant.digest = foldOutcome(tenant.digest, out);
            last_tick_outcomes_.push_back(std::move(out));
            continue;
        }

        VEAL_ASSERT(admitted_cursor < admitted.size() &&
                        admitted[admitted_cursor].sequence ==
                            log.sequence,
                    "tick log / queue order diverged");
        const std::size_t i = admitted_cursor++;
        const PlanInfo& plan = plans[i];

        ++tenant.admitted;
        ++report_.admitted;
        if (registry_ != nullptr) {
            registry_->add("service.requests.admitted");
            registry_->add(tenant_prefix + ".admitted");
        }

        out.cache = plan.cache;
        switch (plan.cache) {
          case CacheOutcome::kCold:
            ++tenant.cold;
            ++report_.cold;
            break;
          case CacheOutcome::kWarm:
            ++tenant.warm;
            ++report_.warm;
            break;
          case CacheOutcome::kCoalesced:
            ++tenant.coalesced;
            ++report_.coalesced;
            break;
          case CacheOutcome::kInvalidated:
            ++tenant.invalidated;
            ++report_.invalidated;
            break;
          case CacheOutcome::kQuarantined:
            ++tenant.quarantined;
            ++report_.quarantined;
            break;
          case CacheOutcome::kPersisted:
            ++tenant.persisted;
            ++report_.persisted;
            break;
        }
        if (registry_ != nullptr) {
            registry_->add(std::string("service.cache.") +
                           toString(plan.cache));
        }

        out.backend = plan.backend;
        // Quarantined requests never reach the steerer; everything
        // else in fleet mode either landed on a backend or fell back.
        if (fleetEnabled() &&
            plan.cache != CacheOutcome::kQuarantined) {
            if (out.backend >= 0) {
                const std::string& la_name = laFor(out.backend).name;
                ++report_.fleet_placed[la_name];
                if (registry_ != nullptr)
                    registry_->add("fleet.placed." + la_name);
            } else {
                ++report_.fleet_cpu_fallbacks;
                if (registry_ != nullptr)
                    registry_->add("fleet.cpu_fallback");
            }
            if (plan.placed_now && plan.spill_rank > 0) {
                ++report_.fleet_spills;
                if (registry_ != nullptr)
                    registry_->add("fleet.spills");
            }
            if (plan.score_source ==
                PlanInfo::ScoreSource::kComputed) {
                ++report_.fleet_scores_computed;
                if (registry_ != nullptr)
                    registry_->add("fleet.scores.computed");
            } else if (plan.score_source ==
                       PlanInfo::ScoreSource::kPersisted) {
                ++report_.fleet_scores_persisted;
                if (registry_ != nullptr)
                    registry_->add("fleet.scores.persisted");
            }
        }

        out.cpu_cycles = cpu_cycles[i];
        report_.cpu_cycles += out.cpu_cycles;

        // Resolve the serving translation and charge/publish fresh ones.
        const TranslationResult* tr = nullptr;
        const persist::TranslationSummary* summary = nullptr;
        const bool fresh = plan.job >= 0;
        if (fresh) {
            Job& job = jobs[static_cast<std::size_t>(plan.job)];
            tr = &job.ladder.translation;
            out.rung = job.ladder.rung;

            const auto charge = [&](const TranslationResult& attempt) {
                const bool metered =
                    attempt.mode != TranslationMode::kStatic;
                const auto cycles = static_cast<std::int64_t>(
                    metered ? attempt.meter.totalInstructions() : 0.0);
                charged_cycles += cycles;
                out.translation_cycles += cycles;
                if (registry_ != nullptr && metered) {
                    audited_cycles += metrics::chargePhaseCycles(
                        *registry_, "service.phase_cycles",
                        attempt.meter, 1);
                }
            };
            for (const auto& attempt : job.ladder.failed_attempts)
                charge(attempt);
            charge(job.ladder.translation);

            ++report_.rungs[toString(job.ladder.rung)];
            if (registry_ != nullptr) {
                registry_->add(std::string("service.rung.") +
                               toString(job.ladder.rung));
            }
            // Persist first (the blob captures the pristine image words
            // before the warm tier takes ownership of the image), then
            // publish -- success or negative either way -- at this
            // request's sequence; later ticks serve it from the warm
            // tier, later *runs* from the store.
            if (persistent_ != nullptr) {
                persist::PersistedImage record;
                record.key = job.key;
                record.summary = persist::summarize(job.ladder.translation);
                if (fleetEnabled()) {
                    // v2 blob: carry the chosen backend and the full
                    // score set so the next run rehydrates placements
                    // without re-scoring.
                    record.summary.fleet_backend = job.backend;
                    if (const auto scores = warm_.findScores(job.key))
                        record.summary.fleet = *scores;
                }
                if (job.image.has_value())
                    record.image_words = job.image->words();
                persistent_->save(record);
            }
            warm_.publish(job.key, job.ladder.translation,
                          std::move(job.image), epoch, log.sequence,
                          job.backend);
        } else if (plan.cache == CacheOutcome::kWarm) {
            if (plan.warm_entry->summaryBacked())
                summary = &*plan.warm_entry->summary;
            else
                tr = &plan.warm_entry->translation;
        } else if (plan.cache == CacheOutcome::kPersisted) {
            summary = &plan.persisted->summary;
            // Rehydrate the warm tier once per key: the rest of the run
            // serves from memory (kWarm) instead of re-reading the blob.
            if (warm_.find(log.key) == nullptr) {
                std::optional<ControlImage> image;
                if (!plan.persisted->image_words.empty()) {
                    image = ControlImage::fromWords(
                        plan.persisted->image_words);
                }
                warm_.publishSummary(log.key, *summary, std::move(image),
                                     epoch, log.sequence, plan.backend);
            }
        } else if (plan.cache == CacheOutcome::kCoalesced) {
            const auto& provider =
                jobs[static_cast<std::size_t>(plan.provider_job)];
            tr = &provider.ladder.translation;
            out.rung = provider.ladder.rung;
        }

        if (tr != nullptr) {
            out.translated_ok = tr->ok;
            out.reject = tr->reject;
            if (tr->ok) {
                out.ii = tr->schedule.ii;
                out.stage_count = tr->schedule.stage_count;
            }
        } else if (summary != nullptr) {
            // Summary-backed serve: the persisted scalars carry the
            // exact fields a full result would have reported.
            out.translated_ok = summary->ok;
            out.reject = summary->reject;
            if (summary->ok) {
                out.ii = summary->ii;
                out.stage_count = summary->stage_count;
            }
        }

        if (out.translated_ok) {
            ++tenant.translate_ok;
            ++report_.translate_ok;
            if (registry_ != nullptr) {
                registry_->add("service.translate.ok");
                registry_->observe("service.ii", out.ii);
            }
            if (fresh) {
                const Job& job =
                    jobs[static_cast<std::size_t>(plan.job)];
                out.la_first_cycles = job.la_first.total();
                out.la_warm_cycles = job.la_warm.total();
            } else {
                out.la_warm_cycles = warm_price[i];
            }
            // TLB model (opt-in): page-walk charges ride the LA prices
            // -- execution-side, so translation phase cycles still
            // telescope.  The strides come from the live analysis or
            // the persisted summary; both carry the same values, so
            // cold-run and warm-start pricing agree bit for bit.
            if (options_.tlb.enabled) {
                const std::int64_t iterations =
                    admitted[i].request.iterations;
                TlbCharge first_charge;
                TlbCharge warm_charge;
                if (tr != nullptr) {
                    if (fresh) {
                        first_charge = streamTlbCharge(
                            tr->analysis, options_.tlb, iterations,
                            /*first_invocation=*/true);
                    }
                    warm_charge = streamTlbCharge(
                        tr->analysis, options_.tlb, iterations,
                        /*first_invocation=*/false);
                } else if (summary != nullptr) {
                    warm_charge = streamTlbCharge(
                        summary->load_strides, summary->store_strides,
                        options_.tlb, iterations,
                        /*first_invocation=*/false);
                }
                out.la_first_cycles += first_charge.cycles;
                out.la_warm_cycles += warm_charge.cycles;
                const std::int64_t pages =
                    first_charge.pages + warm_charge.pages;
                const std::int64_t walks =
                    first_charge.walks + warm_charge.walks;
                const std::int64_t cycles =
                    first_charge.cycles + warm_charge.cycles;
                report_.tlb_pages += pages;
                report_.tlb_walks += walks;
                report_.tlb_cycles += cycles;
                if (registry_ != nullptr) {
                    registry_->add("vm.tlb.pages", pages);
                    registry_->add("vm.tlb.walks", walks);
                    registry_->add("vm.tlb.cycles", cycles);
                }
            }
            report_.la_first_cycles += out.la_first_cycles;
            report_.la_warm_cycles += out.la_warm_cycles;
            out.la_wins = out.la_warm_cycles < out.cpu_cycles;
        } else if (plan.cache != CacheOutcome::kQuarantined &&
                   (tr != nullptr || summary != nullptr)) {
            ++tenant.translate_reject;
            ++report_.rejects[toString(out.reject)];
            if (registry_ != nullptr) {
                registry_->add(std::string("service.translate.reject.") +
                               toString(out.reject));
            }
        }
        if (out.la_wins) {
            ++report_.path_la;
        } else {
            ++report_.path_cpu;
        }
        if (registry_ != nullptr) {
            registry_->add(out.la_wins ? "service.path.la"
                                       : "service.path.cpu");
        }

        // Fault taxonomy: this request's injector lives in its job (it
        // translated) or in its plan (warm verify only).
        const FaultInjector* injector = nullptr;
        if (fresh) {
            const auto& job =
                jobs[static_cast<std::size_t>(plan.job)];
            injector =
                job.injector.has_value() ? &*job.injector : nullptr;
        } else if (plan.injector.has_value()) {
            injector = &*plan.injector;
        }
        if (injector != nullptr) {
            for (int site = 0; site < kNumFaultSites; ++site) {
                fired[static_cast<std::size_t>(site)] +=
                    injector->fired(static_cast<FaultSite>(site));
                probed[static_cast<std::size_t>(site)] +=
                    injector->probes(static_cast<FaultSite>(site));
            }
        }

        tenant.digest = foldOutcome(tenant.digest, out);
        last_tick_outcomes_.push_back(std::move(out));
    }
    VEAL_ASSERT(admitted_cursor == admitted.size(),
                "tick log lost admitted requests");

    report_.translation_cycles += charged_cycles;
    if (registry_ != nullptr) {
        registry_->add("service.cycles.translation", charged_cycles);
        registry_->add("service.cycles.cpu_baseline", [&] {
            std::int64_t total = 0;
            for (const auto value : cpu_cycles)
                total += value;
            return total;
        }());
        // The phase split must telescope exactly (the PR-3 contract).
        VEAL_ASSERT(audited_cycles == charged_cycles,
                    "service phase charges diverged: ", audited_cycles,
                    " != ", charged_cycles);
    }
    for (int site = 0; site < kNumFaultSites; ++site) {
        const auto fired_count = fired[static_cast<std::size_t>(site)];
        const auto probe_count = probed[static_cast<std::size_t>(site)];
        const auto* name = toString(static_cast<FaultSite>(site));
        if (fired_count > 0) {
            report_.fault_fired[name] += fired_count;
            if (registry_ != nullptr) {
                registry_->add(std::string("service.fault.fired.") + name,
                               fired_count);
            }
        }
        if (probe_count > 0) {
            report_.fault_probes[name] += probe_count;
            if (registry_ != nullptr) {
                registry_->add(std::string("service.fault.probes.") +
                                   name,
                               probe_count);
            }
        }
    }
    report_.quarantined_pairs =
        static_cast<std::int64_t>(quarantined_.size());

    tick_log_.clear();
    inflight_.clear();
}

const ServiceReport&
TranslationService::run(const ServiceTrace& trace)
{
    // Materialized loops are memoized per seed: traces draw from small
    // pools, so most requests reuse an already-built loop.
    std::map<std::uint64_t, Loop> loops;
    for (const auto& tick : trace.ticks) {
        // Cooperative stop: checked only at tick boundaries, so a
        // stopped run still ends on a fully-accounted tick.
        if (options_.stop != nullptr &&
            options_.stop->load(std::memory_order_relaxed)) {
            shutdown();
            return report_;
        }
        for (const auto& trace_request : tick) {
            auto it = loops.find(trace_request.loop_seed);
            if (it == loops.end()) {
                it = loops
                         .emplace(trace_request.loop_seed,
                                  makeTraceLoop(trace_request.loop_seed))
                         .first;
            }
            ServiceRequest request;
            request.tenant = trace_request.tenant;
            request.loop = it->second;
            request.key = traceRequestKey(trace_request);
            request.mode = trace_request.mode;
            request.iterations = trace_request.iterations;
            submit(std::move(request));
        }
        drainTick();
    }
    return report_;
}

void
TranslationService::flushPersistentStore()
{
    if (persistent_ != nullptr)
        persistent_->flush();
}

void
TranslationService::beginShutdown()
{
    if (shutting_down_)
        return;
    shutting_down_ = true;
    // A closed queue makes every later submit() report kQueueFull --
    // the normal backpressure path, so callers need no new handling --
    // while already-admitted work stays poppable by the drain.
    queue_.close();
    if (registry_ != nullptr)
        registry_->add("service.shutdowns");
}

void
TranslationService::shutdown()
{
    beginShutdown();
    // Drain whatever was admitted (or merely logged as rejected) since
    // the last tick so no submission goes unaccounted...
    if (!tick_log_.empty())
        drainTick();
    // ...and leave the store directory ready for the next process.
    flushPersistentStore();
}

CodeCache::Stats
TranslationService::shardCacheStats(int shard) const
{
    VEAL_ASSERT(shard >= 0 &&
                shard < static_cast<int>(shard_caches_.size()));
    return shard_caches_[static_cast<std::size_t>(shard)]->stats();
}

}  // namespace veal
