#ifndef VEAL_SERVICE_SERVICE_H_
#define VEAL_SERVICE_SERVICE_H_

/**
 * @file
 * Translation-as-a-service: the sharded multi-tenant VM front end.
 *
 * N tenants submit loop-translation requests into a bounded MPMC queue
 * with admission control (reject-with-reason when the queue is full,
 * per-tenant in-flight quotas).  Worker shards drain the queue in
 * ticks: each shard owns a private LRU CodeCache and a reused
 * BatchSimulator, and consults the shared WarmTier on a shard-local
 * miss, so a loop translated by one shard is never re-translated by
 * another in the same epoch.  The PR-4 fault layer is wired through:
 * warm serves checksum their control image first, a corruption probe
 * invalidates + re-translates, and repeated strikes quarantine the
 * (tenant, key) pair to the CPU path -- tenant-scoped, so one tenant's
 * corrupted entry never pins another tenant's loop.
 *
 * Determinism contract (DESIGN.md §14): for a fixed request trace, the
 * rendered report, the metrics registry, the per-tenant digests, and
 * the cache-hit taxonomy are byte-identical at any --shards/--threads/
 * --batch.  Mechanism: every submission gets a sequence number; each
 * tick runs a sequential planning pass (sequence order) that fixes the
 * taxonomy and the translation work-list, a parallel shard phase that
 * only computes pure functions (translate + price), and a sequential
 * index-ordered reduction that does *all* accounting and warm-tier
 * publication in sequence order.  Pricing rides the PR-6 batch engine,
 * whose grouping-invariance guarantee makes shard/batch partitioning
 * semantically invisible.
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "veal/arch/cpu_config.h"
#include "veal/arch/la_config.h"
#include "veal/fault/fault_injector.h"
#include "veal/fleet/fleet.h"
#include "veal/ir/loop.h"
#include "veal/service/trace.h"
#include "veal/sim/batch.h"
#include "veal/sim/tlb_model.h"
#include "veal/support/bounded_queue.h"
#include "veal/support/metrics/metrics.h"
#include "veal/support/thread_pool.h"
#include "veal/vm/code_cache.h"
#include "veal/vm/persist/store.h"
#include "veal/vm/translator.h"
#include "veal/vm/warm_tier.h"

namespace veal {

/** Service configuration (mirrors the veal-serve CLI). */
struct ServiceOptions {
    /** Worker shards, each with a private CodeCache + BatchSimulator. */
    int shards = 1;

    /**
     * Pool width for the parallel shard phase.  <= 1 runs the shards
     * inline on the calling thread (required when the service itself
     * runs on a ThreadPool worker, e.g. veal-fuzz --service cases --
     * nested pool submission is rejected process-wide).  Never affects
     * results.
     */
    int threads = 1;

    /** Pricing lanes per BatchSimulator call.  Never affects results. */
    int batch = 16;

    /** Bounded request queue depth (admission control). */
    int queue_depth = 64;

    /** Per-tenant admitted-in-flight quota per tick; 0 rejects all. */
    int tenant_quota = 8;

    /** Capacity of each shard's private CodeCache. */
    int shard_cache_entries = 16;

    /** Checksum strikes before a (tenant, key) is quarantined. */
    int quarantine_strikes = 2;

    /** Target accelerator (single-design-point mode). */
    LaConfig la = LaConfig::proposed();

    /**
     * Heterogeneous LA fleet (DESIGN.md §17).  When set and non-empty,
     * the planning phase scores every first-sight key against all
     * backends (scores cached in the warm tier, persisted in v2
     * blobs), the FleetSteerer places it under per-backend capacity,
     * and translation + pricing run against the *chosen* backend's
     * LaConfig instead of `la`.  Unset (or empty) is literally today's
     * single-design-point service.
     */
    std::optional<fleet::FleetConfig> fleet;

    /**
     * Canonical iteration count backend scores are computed at.  Keys
     * are scored once (a key's per-request iteration counts vary, its
     * placement must not), so scores use this fixed count.
     */
    std::int64_t fleet_scoring_iterations = 12;

    /** Baseline CPU for pricing the non-accelerated path. */
    CpuConfig cpu = CpuConfig::arm11();

    /**
     * When set, every request arms a FaultInjector with
     * FaultPlan::sample(makeServicePlanSeed(*fault_seed, sequence)),
     * exercising corruption/degradation under concurrency.  The fired
     * taxonomy lands in the report and registry (sequence-ordered, so
     * still byte-identical at any shard/thread/batch count).
     */
    std::optional<std::uint64_t> fault_seed;

    /**
     * Directory of the persistent cross-run code cache; empty disables
     * persistence entirely.  When set, fresh translations are saved as
     * checksummed blobs, warm-tier misses consult the store before
     * translating (CacheOutcome::kPersisted), and checksum
     * invalidations delete the on-disk blob so a restart can never
     * resurrect a dropped image.
     */
    std::string cache_dir;

    /** Persistent-store sizing (used when cache_dir is set). */
    persist::StoreOptions store;

    /**
     * TLB cost model for stream accesses.  Off by default: every
     * report and baseline is bit-identical to the pre-TLB service.
     * When enabled, page-walk charges land in the LA invocation prices
     * (execution-side -- translation phase cycles still telescope) and
     * are metered as vm.tlb.*.
     */
    TlbConfig tlb = TlbConfig::off();

    /**
     * Cooperative stop flag (veal-serve's signal handler sets it).
     * run() checks it between ticks: when it flips, the service stops
     * submitting, drains what is already admitted, flushes the
     * persistent store, and returns early.  Null means never stop.
     */
    const std::atomic<bool>* stop = nullptr;
};

/** Why a submission was (or was not) admitted. */
enum class AdmissionOutcome : int {
    kAdmitted = 0,
    kQueueFull,      ///< Bounded queue had no space.
    kQuotaExceeded,  ///< Tenant hit its in-flight quota.
};

/** Outcome name, e.g. "queue-full". */
const char* toString(AdmissionOutcome outcome);

/**
 * How an admitted request's translation was satisfied.  The taxonomy is
 * *logical* (fixed by the sequential planning pass), so it is invariant
 * under shard count -- shard-private CodeCache hit rates are physical
 * diagnostics exposed separately via shardCacheStats().
 */
enum class CacheOutcome : int {
    kCold = 0,     ///< First sight of the key: translated this tick.
    kWarm,         ///< Served from the warm tier (earlier tick).
    kCoalesced,    ///< Same-tick duplicate: rode another request's job.
    kInvalidated,  ///< Warm image failed its checksum; re-translated.
    kQuarantined,  ///< (tenant, key) is quarantined; CPU path.
    kPersisted,    ///< Served from the persistent store (earlier run).
};

/** Outcome name, e.g. "coalesced". */
const char* toString(CacheOutcome outcome);

/** One materialized submission. */
struct ServiceRequest {
    int tenant = 0;

    /** The loop to translate. */
    Loop loop{"request"};

    /** Translation identity (tenants share; e.g. traceRequestKey()). */
    std::string key;

    TranslationMode mode = TranslationMode::kFullyDynamic;

    /** Iterations per invocation (prices the CPU/LA comparison). */
    std::int64_t iterations = 12;
};

/** Everything the service decided about one submission. */
struct RequestOutcome {
    std::int64_t sequence = 0;
    int tenant = 0;
    std::string key;
    AdmissionOutcome admission = AdmissionOutcome::kAdmitted;

    /** Meaningful for admitted requests only. */
    CacheOutcome cache = CacheOutcome::kCold;

    /** Final translation verdict (kNone while rejected-at-admission). */
    bool translated_ok = false;
    TranslationReject reject = TranslationReject::kNone;

    /** Degradation rung that produced the translation (cold paths). */
    DegradationRung rung = DegradationRung::kNominal;

    int ii = 0;
    int stage_count = 0;

    /** Translation cycles charged to this request (cold paths only). */
    std::int64_t translation_cycles = 0;

    /** Baseline CPU price for this request's iterations. */
    std::int64_t cpu_cycles = 0;

    /** LA prices (0 when not applicable). */
    std::int64_t la_first_cycles = 0;
    std::int64_t la_warm_cycles = 0;

    /** True when the steady-state LA path beats the CPU baseline. */
    bool la_wins = false;

    /**
     * Fleet backend this request ran on (-1: single-design-point mode,
     * quarantined, or steered to the CPU-fallback rung).  NOT folded
     * into the tenant digest, so a one-backend fleet's digests are
     * bit-identical to the fleetless service.
     */
    int backend = -1;
};

/** Per-tenant accumulated results. */
struct TenantReport {
    std::int64_t submitted = 0;
    std::int64_t admitted = 0;
    std::int64_t rejected_queue = 0;
    std::int64_t rejected_quota = 0;
    std::int64_t cold = 0;
    std::int64_t warm = 0;
    std::int64_t coalesced = 0;
    std::int64_t invalidated = 0;
    std::int64_t quarantined = 0;
    std::int64_t persisted = 0;
    std::int64_t translate_ok = 0;
    std::int64_t translate_reject = 0;

    /**
     * FNV-1a fold of every RequestOutcome field, updated in sequence
     * order -- the per-tenant results digest of the determinism
     * contract.  Byte-identical at any shard/thread/batch count.
     */
    std::uint64_t digest = 0xcbf29ce484222325ull;
};

/** Whole-service accumulated results. */
struct ServiceReport {
    std::int64_t ticks = 0;
    std::int64_t submitted = 0;
    std::int64_t admitted = 0;
    std::int64_t rejected_queue = 0;
    std::int64_t rejected_quota = 0;

    std::int64_t cold = 0;
    std::int64_t warm = 0;
    std::int64_t coalesced = 0;
    std::int64_t invalidated = 0;
    std::int64_t quarantined = 0;
    std::int64_t persisted = 0;

    std::int64_t translate_ok = 0;
    std::map<std::string, std::int64_t> rejects;  ///< By reject name.
    std::map<std::string, std::int64_t> rungs;    ///< By rung name.

    std::int64_t path_la = 0;
    std::int64_t path_cpu = 0;

    std::int64_t translation_cycles = 0;
    std::int64_t cpu_cycles = 0;
    std::int64_t la_first_cycles = 0;
    std::int64_t la_warm_cycles = 0;

    /** TLB-model charges folded into the LA prices (0 when disabled). */
    std::int64_t tlb_pages = 0;
    std::int64_t tlb_walks = 0;
    std::int64_t tlb_cycles = 0;

    /** Quarantined (tenant, key) pairs currently in force. */
    std::int64_t quarantined_pairs = 0;

    /** Fault taxonomy summed over every request's injector. */
    std::map<std::string, std::int64_t> fault_fired;
    std::map<std::string, std::int64_t> fault_probes;

    // Fleet steering (all zero / empty when fleet mode is off, and the
    // fleet render lines are omitted entirely -- a fleetless report is
    // byte-identical to the pre-fleet service).
    bool fleet_enabled = false;
    std::int64_t fleet_backends = 0;

    /** Requests served per backend name (traffic-weighted histogram). */
    std::map<std::string, std::int64_t> fleet_placed;

    std::int64_t fleet_spills = 0;         ///< Placements past rank 0.
    std::int64_t fleet_cpu_fallbacks = 0;  ///< Requests on the CPU rung.
    std::int64_t fleet_scores_computed = 0;   ///< Fresh scoring passes.
    std::int64_t fleet_scores_persisted = 0;  ///< Rehydrated from blobs.

    std::map<int, TenantReport> tenants;

    /**
     * Deterministic text report: identical at any shard/thread/batch
     * count (contains no configuration echo of those knobs).
     */
    std::string render() const;
};

/** Per-request fault-plan seed (exposed so tests can replay one). */
std::uint64_t makeServicePlanSeed(std::uint64_t fault_seed,
                                  std::int64_t sequence);

/**
 * The long-running translation front end; see file comment.
 *
 * Thread-safety: submit()/drainTick()/run() are called from one driver
 * thread (the service parallelizes internally); the bounded queue
 * itself is MPMC for callers that want concurrent submission between
 * ticks, but deterministic accounting assumes sequenced submissions.
 */
class TranslationService {
  public:
    explicit TranslationService(ServiceOptions options,
                                metrics::Registry* registry = nullptr);

    /**
     * Submit @p request: assigns the next sequence number, applies the
     * tenant quota, then the bounded queue.  Rejected submissions are
     * still accounted (at the next drainTick(), in sequence order).
     */
    AdmissionOutcome submit(ServiceRequest request);

    /**
     * Drain everything admitted since the last drain as one tick:
     * sequential planning (taxonomy + work-list), parallel shard phase
     * (translate + price), sequential reduction (all accounting).
     */
    void drainTick();

    /**
     * Replay @p trace (submit each tick, drain it) and return report().
     * When options().stop flips mid-replay the remaining ticks are
     * dropped and shutdown() runs instead -- the report then covers a
     * clean prefix of the trace (every admitted request fully drained,
     * store flushed), never a half-accounted tick.
     */
    const ServiceReport& run(const ServiceTrace& trace);

    /**
     * Stop admitting: closes the bounded queue, so every later
     * submit() reports kQueueFull while already-admitted work stays
     * drainable.  Idempotent.
     */
    void beginShutdown();

    /**
     * Graceful shutdown: beginShutdown(), drain the in-flight tick
     * (full accounting, persists included), then flush the store's
     * manifest snapshot.  Idempotent; the service stays readable
     * (report(), stores) afterwards.
     */
    void shutdown();

    /** True once beginShutdown()/shutdown() ran (or the stop flag hit). */
    bool shuttingDown() const { return shutting_down_; }

    const ServiceReport& report() const { return report_; }

    const ServiceOptions& options() const { return options_; }

    /** Outcomes of the most recent tick, in sequence order (tests). */
    const std::vector<RequestOutcome>& lastTickOutcomes() const
    {
        return last_tick_outcomes_;
    }

    // --- Physical diagnostics.  Shard-local cache hit rates depend on
    // the shard count by nature; they are exposed for tests and stderr
    // reporting but never enter the deterministic report or registry.

    CodeCache::Stats shardCacheStats(int shard) const;

    const WarmTier& warmTier() const { return warm_; }

    /** The persistent store, or null when cache_dir is empty. */
    const persist::PersistentStore* persistentStore() const
    {
        return persistent_.get();
    }

    /**
     * Write the store's MANIFEST now (also happens on destruction) --
     * call before handing the cache directory to another process.
     */
    void flushPersistentStore();

  private:
    struct Pending {
        ServiceRequest request;
        std::int64_t sequence = 0;
    };

    /** One submission's accounting stub (all submissions, in order). */
    struct LogEntry {
        std::int64_t sequence = 0;
        int tenant = 0;
        std::string key;
        AdmissionOutcome admission = AdmissionOutcome::kAdmitted;
    };

    ServiceOptions options_;
    metrics::Registry* registry_ = nullptr;

    BoundedQueue<Pending> queue_;
    std::vector<LogEntry> tick_log_;
    std::map<int, int> inflight_;  ///< Tenant -> admitted this tick.
    std::int64_t next_sequence_ = 0;

    WarmTier warm_;
    std::unique_ptr<persist::PersistentStore> persistent_;
    std::vector<std::unique_ptr<CodeCache>> shard_caches_;
    std::vector<std::unique_ptr<BatchSimulator>> shard_sims_;
    BatchSimulator reduction_sim_;

    /** Fleet mode (engaged when options_.fleet is set and non-empty). */
    bool fleetEnabled() const { return scorer_.has_value(); }

    /** The pricing config of @p backend (-1: the single design point). */
    const LaConfig& laFor(int backend) const;

    std::optional<fleet::BackendScorer> scorer_;
    std::optional<fleet::FleetSteerer> steerer_;

    /** Strikes per (tenant, key); quarantine at options_.quarantine_strikes. */
    std::map<std::pair<int, std::string>, int> strikes_;
    std::set<std::pair<int, std::string>> quarantined_;

    std::unique_ptr<ThreadPool> pool_;  ///< Lazy; threads > 1 only.

    bool shutting_down_ = false;

    ServiceReport report_;
    std::vector<RequestOutcome> last_tick_outcomes_;
};

}  // namespace veal

#endif  // VEAL_SERVICE_SERVICE_H_
