#ifndef VEAL_VEAL_H_
#define VEAL_VEAL_H_

/**
 * @file
 * Umbrella header: the complete public API of the VEAL library.
 *
 * Layering (bottom to top):
 *  - veal/support: logging, assertions, RNG, cost metering, tables.
 *  - veal/ir: the loop dataflow IR, analysis, and static transforms.
 *  - veal/arch: loop-accelerator and baseline-CPU configurations.
 *  - veal/cca: greedy CCA subgraph identification.
 *  - veal/sched: MII, priorities, modulo scheduling, register assignment.
 *  - veal/sim: cycle-level CPU model and LA timing model.
 *  - veal/vm: the co-designed virtual machine (translation + code cache).
 *  - veal/workloads: the synthetic MediaBench/SPECfp-like suite.
 *  - veal/fuzz: the differential fuzzing subsystem (oracle, shrinker,
 *    repro corpus, campaign driver).
 */

#include "veal/arch/area.h"
#include "veal/arch/cca_spec.h"
#include "veal/arch/cpu_config.h"
#include "veal/arch/fu.h"
#include "veal/arch/la_config.h"
#include "veal/arch/latency.h"
#include "veal/cca/cca_mapper.h"
#include "veal/fuzz/corpus.h"
#include "veal/fuzz/driver.h"
#include "veal/fuzz/oracle.h"
#include "veal/fuzz/shrinker.h"
#include "veal/ir/loop.h"
#include "veal/ir/loop_analysis.h"
#include "veal/ir/loop_builder.h"
#include "veal/ir/loop_parser.h"
#include "veal/ir/random_loop.h"
#include "veal/ir/transforms.h"
#include "veal/sched/mii.h"
#include "veal/sched/priority.h"
#include "veal/sched/register_alloc.h"
#include "veal/sched/schedule.h"
#include "veal/sched/scheduler.h"
#include "veal/sim/cpu_sim.h"
#include "veal/sim/interpreter.h"
#include "veal/sim/la_executor.h"
#include "veal/sim/la_timing.h"
#include "veal/support/logging.h"
#include "veal/support/table.h"
#include "veal/vm/application.h"
#include "veal/vm/code_cache.h"
#include "veal/vm/control_image.h"
#include "veal/vm/translator.h"
#include "veal/vm/vm.h"
#include "veal/workloads/kernels.h"
#include "veal/workloads/suite.h"

#endif  // VEAL_VEAL_H_
