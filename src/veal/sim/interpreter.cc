#include "veal/sim/interpreter.h"

#include <bit>
#include <cmath>
#include <vector>

#include "veal/support/assert.h"

namespace veal {

namespace {

double
asDouble(std::int64_t bits)
{
    return std::bit_cast<double>(bits);
}

std::int64_t
asBits(double value)
{
    return std::bit_cast<std::int64_t>(value);
}

std::int64_t
shiftAmount(std::int64_t raw)
{
    return raw & 63;
}

/**
 * Integer ALU ops wrap in two's complement, like the modeled datapath.
 * Routing add/sub/mul through uint64 keeps the wraparound well-defined
 * (signed overflow is UB and the fuzz/fault campaigns do overflow).
 */
std::uint64_t
toUnsigned(std::int64_t value)
{
    return static_cast<std::uint64_t>(value);
}

std::int64_t
toSigned(std::uint64_t value)
{
    return static_cast<std::int64_t>(value);
}

}  // namespace

std::int64_t
evaluateOp(Opcode opcode, const std::vector<std::int64_t>& in,
           std::int64_t immediate)
{
    auto arg = [&](std::size_t index) {
        return index < in.size() ? in[index] : 0;
    };
    switch (opcode) {
      case Opcode::kConst: return immediate;
      case Opcode::kLiveIn: return arg(0);  // Bound by the caller.
      case Opcode::kAdd:
        return toSigned(toUnsigned(arg(0)) + toUnsigned(arg(1)));
      case Opcode::kSub:
        return toSigned(toUnsigned(arg(0)) - toUnsigned(arg(1)));
      case Opcode::kMul:
        return toSigned(toUnsigned(arg(0)) * toUnsigned(arg(1)));
      case Opcode::kDiv:
        if (arg(1) == 0)
            return 0;
        if (arg(1) == -1)  // INT64_MIN / -1 overflows; wrap like neg.
            return toSigned(0u - toUnsigned(arg(0)));
        return arg(0) / arg(1);
      case Opcode::kShl:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(arg(0)) << shiftAmount(arg(1)));
      case Opcode::kShr:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(arg(0)) >> shiftAmount(arg(1)));
      case Opcode::kAnd: return arg(0) & arg(1);
      case Opcode::kOr: return arg(0) | arg(1);
      case Opcode::kXor: return arg(0) ^ arg(1);
      case Opcode::kNot: return ~arg(0);
      case Opcode::kCmp: return arg(0) < arg(1) ? 1 : 0;
      case Opcode::kSelect: return arg(0) != 0 ? arg(1) : arg(2);
      case Opcode::kMin: return arg(0) < arg(1) ? arg(0) : arg(1);
      case Opcode::kMax: return arg(0) > arg(1) ? arg(0) : arg(1);
      case Opcode::kAbs:
        return arg(0) < 0 ? toSigned(0u - toUnsigned(arg(0))) : arg(0);
      case Opcode::kFAdd: return asBits(asDouble(arg(0)) +
                                        asDouble(arg(1)));
      case Opcode::kFSub: return asBits(asDouble(arg(0)) -
                                        asDouble(arg(1)));
      case Opcode::kFMul: return asBits(asDouble(arg(0)) *
                                        asDouble(arg(1)));
      case Opcode::kFDiv:
        return asBits(asDouble(arg(1)) == 0.0
                          ? 0.0
                          : asDouble(arg(0)) / asDouble(arg(1)));
      case Opcode::kFSqrt:
        return asBits(asDouble(arg(0)) < 0.0
                          ? 0.0
                          : std::sqrt(asDouble(arg(0))));
      case Opcode::kFCmp: return asDouble(arg(0)) < asDouble(arg(1)) ? 1
                                                                     : 0;
      case Opcode::kFAbs: return asBits(std::fabs(asDouble(arg(0))));
      case Opcode::kItoF: return asBits(static_cast<double>(arg(0)));
      case Opcode::kFtoI: {
        // Out-of-range conversion is UB; the modeled unit saturates
        // NaN/inf/overflow to 0 like the non-finite case.
        const double value = asDouble(arg(0));
        if (!std::isfinite(value) || value < -9223372036854775808.0 ||
            value >= 9223372036854775808.0)
            return 0;
        return static_cast<std::int64_t>(value);
      }
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kBranch:
      case Opcode::kCall:
      case Opcode::kCca:
      case Opcode::kNumOpcodes:
        break;
    }
    panic("evaluateOp: opcode ", toString(opcode),
          " has no scalar semantics");
}

ExecutionResult
interpretLoop(const Loop& loop, const ExecutionInput& input)
{
    VEAL_ASSERT(!loop.verify().has_value(), "malformed loop ",
                loop.name());
    const int n = loop.size();
    const auto order = loop.topologicalOrder();

    ExecutionResult result;
    result.memory = input.memory;

    // Value history: values[op][iteration]; iteration < 0 reads initial.
    int max_distance = 0;
    for (const auto& edge : loop.allEdges())
        max_distance = std::max(max_distance, edge.distance);
    std::vector<std::vector<std::int64_t>> history(
        static_cast<std::size_t>(n));

    auto value_at = [&](OpId id, std::int64_t iteration) -> std::int64_t {
        const Operation& producer = loop.op(id);
        if (producer.opcode == Opcode::kConst)
            return producer.immediate;
        if (producer.opcode == Opcode::kLiveIn) {
            // Loop-invariant: the value "d iterations ago" is the value.
            const auto it = input.live_ins.find(id);
            return it != input.live_ins.end() ? it->second : 0;
        }
        if (iteration < 0) {
            const auto it = input.initial.find(id);
            return it != input.initial.end() ? it->second : 0;
        }
        return history[static_cast<std::size_t>(id)]
                      [static_cast<std::size_t>(iteration)];
    };

    for (std::int64_t iteration = 0; iteration < input.iterations;
         ++iteration) {
        for (const OpId id : order) {
            const Operation& op = loop.op(id);
            std::int64_t value = 0;
            switch (op.opcode) {
              case Opcode::kLiveIn: {
                const auto it = input.live_ins.find(id);
                value = it != input.live_ins.end() ? it->second : 0;
                break;
              }
              case Opcode::kLoad: {
                const std::int64_t address =
                    value_at(op.inputs[0].producer,
                             iteration - op.inputs[0].distance);
                const auto& array = result.memory[op.symbol];
                const auto it = array.find(address);
                value = it != array.end() ? it->second : 0;
                break;
              }
              case Opcode::kStore: {
                const std::int64_t address =
                    value_at(op.inputs[0].producer,
                             iteration - op.inputs[0].distance);
                result.memory[op.symbol][address] =
                    value_at(op.inputs[1].producer,
                             iteration - op.inputs[1].distance);
                break;
              }
              case Opcode::kBranch:
                break;  // Loop control is the trip count here.
              case Opcode::kCall:
                panic("interpretLoop: cannot execute call in ",
                      loop.name());
              default: {
                std::vector<std::int64_t> inputs;
                inputs.reserve(op.inputs.size());
                for (const auto& operand : op.inputs) {
                    inputs.push_back(value_at(
                        operand.producer, iteration - operand.distance));
                }
                value = evaluateOp(op.opcode, inputs, op.immediate);
                break;
              }
            }
            history[static_cast<std::size_t>(id)].push_back(value);
        }
    }

    for (const auto& op : loop.operations()) {
        if (op.is_live_out) {
            result.live_outs[op.id] =
                value_at(op.id, input.iterations - 1);
        }
    }
    return result;
}

}  // namespace veal
