#include "veal/sim/interpreter.h"

#include <bit>
#include <cmath>
#include <vector>

#include "veal/support/assert.h"

namespace veal {

std::int64_t
evaluateOp(Opcode opcode, const std::vector<std::int64_t>& in,
           std::int64_t immediate)
{
    return evaluateOp(opcode, in.data(), in.size(), immediate);
}

ExecutionResult
interpretLoop(const Loop& loop, const ExecutionInput& input)
{
    VEAL_ASSERT(!loop.verify().has_value(), "malformed loop ",
                loop.name());
    const int n = loop.size();
    const auto order = loop.topologicalOrder();

    ExecutionResult result;
    result.memory = input.memory;

    // Value history: values[op][iteration]; iteration < 0 reads initial.
    int max_distance = 0;
    for (const auto& edge : loop.allEdges())
        max_distance = std::max(max_distance, edge.distance);
    std::vector<std::vector<std::int64_t>> history(
        static_cast<std::size_t>(n));

    auto value_at = [&](OpId id, std::int64_t iteration) -> std::int64_t {
        const Operation& producer = loop.op(id);
        if (producer.opcode == Opcode::kConst)
            return producer.immediate;
        if (producer.opcode == Opcode::kLiveIn) {
            // Loop-invariant: the value "d iterations ago" is the value.
            const auto it = input.live_ins.find(id);
            return it != input.live_ins.end() ? it->second : 0;
        }
        if (iteration < 0) {
            const auto it = input.initial.find(id);
            return it != input.initial.end() ? it->second : 0;
        }
        return history[static_cast<std::size_t>(id)]
                      [static_cast<std::size_t>(iteration)];
    };

    for (std::int64_t iteration = 0; iteration < input.iterations;
         ++iteration) {
        for (const OpId id : order) {
            const Operation& op = loop.op(id);
            std::int64_t value = 0;
            switch (op.opcode) {
              case Opcode::kLiveIn: {
                const auto it = input.live_ins.find(id);
                value = it != input.live_ins.end() ? it->second : 0;
                break;
              }
              case Opcode::kLoad: {
                const std::int64_t address =
                    value_at(op.inputs[0].producer,
                             iteration - op.inputs[0].distance);
                const auto& array = result.memory[op.symbol];
                const auto it = array.find(address);
                value = it != array.end() ? it->second : 0;
                break;
              }
              case Opcode::kStore: {
                const std::int64_t address =
                    value_at(op.inputs[0].producer,
                             iteration - op.inputs[0].distance);
                result.memory[op.symbol][address] =
                    value_at(op.inputs[1].producer,
                             iteration - op.inputs[1].distance);
                break;
              }
              case Opcode::kBranch:
                break;  // Loop control is the trip count here.
              case Opcode::kCall:
                panic("interpretLoop: cannot execute call in ",
                      loop.name());
              default: {
                std::vector<std::int64_t> inputs;
                inputs.reserve(op.inputs.size());
                for (const auto& operand : op.inputs) {
                    inputs.push_back(value_at(
                        operand.producer, iteration - operand.distance));
                }
                value = evaluateOp(op.opcode, inputs, op.immediate);
                break;
              }
            }
            history[static_cast<std::size_t>(id)].push_back(value);
        }
    }

    for (const auto& op : loop.operations()) {
        if (op.is_live_out) {
            result.live_outs[op.id] =
                value_at(op.id, input.iterations - 1);
        }
    }
    return result;
}

}  // namespace veal
