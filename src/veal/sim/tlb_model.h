#ifndef VEAL_SIM_TLB_MODEL_H_
#define VEAL_SIM_TLB_MODEL_H_

/**
 * @file
 * Address-translation (TLB) cost model for the LA's stream units.
 *
 * The paper prices streaming memory traffic as fully hidden (la_timing
 * file comment), which holds for *data* latency but not for address
 * translation: AraOS-style measurements show vector/stream units stall
 * on page walks when a stream's working set outruns the TLB.  This
 * model charges exactly that. Per invocation, each stream touches a
 * distinct-page working set determined by its element stride and the
 * iteration count; the first invocation walks every page (cold TLB),
 * and a re-invocation re-walks only the pages the stream TLB could not
 * keep resident.
 *
 * The model is deliberately analytic -- a pure function of (strides,
 * iterations, config) -- so it prices identically from a live
 * `LoopAnalysis` and from a persisted `TranslationSummary`
 * (persist/blob.h), which keeps warm-started service reports
 * byte-identical to in-process runs.
 *
 * Disabled by default (`TlbConfig::off()`): every existing report,
 * golden file, and bench baseline is unchanged unless a caller opts in
 * (`veal-serve --tlb`, the Figure-6 TLB sweep).  Charges are metered as
 * `vm.tlb.*` and are *execution*-side: they never enter the
 * translation-cycle totals, so the PR-3 phase-cycle telescoping
 * contract is untouched.
 */

#include <cstdint>
#include <vector>

#include "veal/ir/loop_analysis.h"

namespace veal {

/** Stream-TLB shape and page-walk pricing. */
struct TlbConfig {
    /** Master switch; off() keeps every charge at zero. */
    bool enabled = false;

    /** Page size backing the streams' address space. */
    std::int64_t page_bytes = 4096;

    /** Stream element width (the LA's scalar cell). */
    std::int64_t element_bytes = 8;

    /** Stream-TLB capacity, in pages, shared across streams. */
    int entries = 32;

    /** Cycles per page walk (miss service time). */
    std::int64_t walk_cycles = 30;

    /** The disabled model (all charges zero). */
    static TlbConfig
    off()
    {
        return TlbConfig{};
    }

    /** The enabled model at its default design point. */
    static TlbConfig
    proposed()
    {
        TlbConfig config;
        config.enabled = true;
        return config;
    }
};

/** One invocation's translation charges. */
struct TlbCharge {
    std::int64_t pages = 0;  ///< Distinct-page working set, all streams.
    std::int64_t walks = 0;  ///< Page walks actually charged.
    std::int64_t cycles = 0; ///< walks * walk_cycles.
};

/**
 * Distinct pages one stream touches over @p iterations iterations at
 * @p stride_elements elements per iteration: the stream sweeps
 * |stride| * (iterations - 1) * element_bytes of address span (capped
 * at one new page per access for sparse strides); a zero stride pins a
 * single page.
 */
std::int64_t streamPageSpan(std::int64_t stride_elements,
                            std::int64_t iterations,
                            const TlbConfig& config);

/**
 * Charge for one invocation over explicit stream strides (loads and
 * stores alike).  @p first_invocation walks the full working set; a
 * re-invocation re-walks only the excess over the TLB's capacity.
 * Zero when the model is disabled.
 */
TlbCharge streamTlbCharge(const std::vector<std::int64_t>& load_strides,
                          const std::vector<std::int64_t>& store_strides,
                          const TlbConfig& config,
                          std::int64_t iterations, bool first_invocation);

/** As above, reading the strides out of @p analysis. */
TlbCharge streamTlbCharge(const LoopAnalysis& analysis,
                          const TlbConfig& config, std::int64_t iterations,
                          bool first_invocation);

}  // namespace veal

#endif  // VEAL_SIM_TLB_MODEL_H_
