#include "veal/sim/reference.h"

#include <algorithm>
#include <vector>

#include "veal/support/assert.h"

// The pre-batch-engine simulators, frozen verbatim from cpu_sim.cc,
// interpreter.cc, and la_timing.cc at the moment the batch engine was
// introduced.  Scalar operation semantics stay shared (veal::evaluateOp)
// -- the oracle freezes the *simulation structure*, not the datapath.
// Do not optimise this file.

namespace veal::reference {

namespace {

/** Number of iterations simulated before extrapolating. */
constexpr int kWarmIterations = 96;
/** Steady-state delta is averaged over this many trailing iterations. */
constexpr int kMeasureWindow = 32;

int
opLatency(const Operation& op, const CpuConfig& config)
{
    if (op.opcode == Opcode::kLoad)
        return config.load_latency;
    if (op.opcode == Opcode::kCall) {
        // A non-inlined call: prologue/epilogue plus the callee body.
        return 20;
    }
    return config.latencies.latency(op.opcode);
}

}  // namespace

CpuLoopTiming
simulateLoopOnCpu(const Loop& loop, const CpuConfig& config,
                  std::int64_t iterations)
{
    VEAL_ASSERT(iterations >= 1, "loop must run at least one iteration");
    const int n = loop.size();
    const auto sim_iters = static_cast<int>(
        std::min<std::int64_t>(iterations, kWarmIterations));

    // finish[iter % window][op]: completion cycle of op in that iteration.
    int max_distance = 1;
    for (const auto& edge : loop.allEdges())
        max_distance = std::max(max_distance, edge.distance);
    const int window = max_distance + 1;
    std::vector<std::int64_t> finish(
        static_cast<std::size_t>(window) * static_cast<std::size_t>(n), 0);

    struct SimOp {
        int id;
        int latency;
        bool is_branch;
        std::uint32_t input_begin;
        std::uint32_t input_end;
    };
    std::vector<SimOp> sim_ops;
    std::vector<std::pair<int, int>> sim_inputs;  // (producer, distance)
    sim_ops.reserve(static_cast<std::size_t>(n));
    for (const auto& op : loop.operations()) {
        if (op.isValueSource())
            continue;  // Constants/live-ins live in registers.
        SimOp sim;
        sim.id = op.id;
        sim.latency = opLatency(op, config);
        sim.is_branch = op.opcode == Opcode::kBranch;
        sim.input_begin = static_cast<std::uint32_t>(sim_inputs.size());
        for (const auto& input : op.inputs) {
            if (!loop.op(input.producer).isValueSource())
                sim_inputs.emplace_back(input.producer, input.distance);
        }
        sim.input_end = static_cast<std::uint32_t>(sim_inputs.size());
        sim_ops.push_back(sim);
    }

    std::int64_t issue_cycle = 0;  // Cycle the next instruction may issue.
    int issued_this_cycle = 0;
    std::int64_t end_of_iteration = 0;
    std::vector<std::int64_t> iteration_end(
        static_cast<std::size_t>(sim_iters), 0);

    for (int iter = 0; iter < sim_iters; ++iter) {
        const auto ring = static_cast<std::size_t>(iter % window);
        std::int64_t* finish_ring =
            finish.data() + ring * static_cast<std::size_t>(n);
        for (const auto& op : sim_ops) {
            std::int64_t ready = issue_cycle;
            for (std::uint32_t i = op.input_begin; i < op.input_end; ++i) {
                const auto& [producer, distance] = sim_inputs[i];
                const int source_iter = iter - distance;
                if (source_iter < 0)
                    continue;  // Value from before the loop: ready.
                const auto src_ring =
                    static_cast<std::size_t>(source_iter % window);
                ready = std::max(
                    ready, finish[src_ring * static_cast<std::size_t>(n) +
                                  static_cast<std::size_t>(producer)]);
            }

            // In-order issue: advance to the operand-ready cycle, then
            // take the next free slot.
            if (ready > issue_cycle) {
                issue_cycle = ready;
                issued_this_cycle = 0;
            }
            if (issued_this_cycle >= config.issue_width) {
                ++issue_cycle;
                issued_this_cycle = 0;
            }
            ++issued_this_cycle;

            const std::int64_t done = issue_cycle + op.latency;
            finish_ring[static_cast<std::size_t>(op.id)] = done;
            if (op.is_branch) {
                // Taken loop-back branch: redirect bubble.
                issue_cycle += 1 + config.branch_penalty;
                issued_this_cycle = 0;
            }
            end_of_iteration = std::max(end_of_iteration, done);
        }
        iteration_end[static_cast<std::size_t>(iter)] = issue_cycle;
    }

    CpuLoopTiming timing;
    if (sim_iters >= kMeasureWindow * 2) {
        const std::int64_t tail =
            iteration_end[static_cast<std::size_t>(sim_iters - 1)] -
            iteration_end[static_cast<std::size_t>(
                sim_iters - 1 - kMeasureWindow)];
        timing.cycles_per_iteration =
            static_cast<double>(tail) / kMeasureWindow;
    } else {
        timing.cycles_per_iteration =
            static_cast<double>(
                iteration_end[static_cast<std::size_t>(sim_iters - 1)]) /
            sim_iters;
    }

    if (iterations <= sim_iters) {
        timing.total_cycles = std::max<std::int64_t>(end_of_iteration, 1);
    } else {
        const double extra =
            timing.cycles_per_iteration *
            static_cast<double>(iterations - sim_iters);
        timing.total_cycles =
            std::max<std::int64_t>(end_of_iteration, 1) +
            static_cast<std::int64_t>(extra);
    }
    return timing;
}

ExecutionResult
interpretLoop(const Loop& loop, const ExecutionInput& input)
{
    VEAL_ASSERT(!loop.verify().has_value(), "malformed loop ",
                loop.name());
    const int n = loop.size();
    const auto order = loop.topologicalOrder();

    ExecutionResult result;
    result.memory = input.memory;

    // Value history: values[op][iteration]; iteration < 0 reads initial.
    int max_distance = 0;
    for (const auto& edge : loop.allEdges())
        max_distance = std::max(max_distance, edge.distance);
    std::vector<std::vector<std::int64_t>> history(
        static_cast<std::size_t>(n));

    auto value_at = [&](OpId id, std::int64_t iteration) -> std::int64_t {
        const Operation& producer = loop.op(id);
        if (producer.opcode == Opcode::kConst)
            return producer.immediate;
        if (producer.opcode == Opcode::kLiveIn) {
            // Loop-invariant: the value "d iterations ago" is the value.
            const auto it = input.live_ins.find(id);
            return it != input.live_ins.end() ? it->second : 0;
        }
        if (iteration < 0) {
            const auto it = input.initial.find(id);
            return it != input.initial.end() ? it->second : 0;
        }
        return history[static_cast<std::size_t>(id)]
                      [static_cast<std::size_t>(iteration)];
    };

    for (std::int64_t iteration = 0; iteration < input.iterations;
         ++iteration) {
        for (const OpId id : order) {
            const Operation& op = loop.op(id);
            std::int64_t value = 0;
            switch (op.opcode) {
              case Opcode::kLiveIn: {
                const auto it = input.live_ins.find(id);
                value = it != input.live_ins.end() ? it->second : 0;
                break;
              }
              case Opcode::kLoad: {
                const std::int64_t address =
                    value_at(op.inputs[0].producer,
                             iteration - op.inputs[0].distance);
                const auto& array = result.memory[op.symbol];
                const auto it = array.find(address);
                value = it != array.end() ? it->second : 0;
                break;
              }
              case Opcode::kStore: {
                const std::int64_t address =
                    value_at(op.inputs[0].producer,
                             iteration - op.inputs[0].distance);
                result.memory[op.symbol][address] =
                    value_at(op.inputs[1].producer,
                             iteration - op.inputs[1].distance);
                break;
              }
              case Opcode::kBranch:
                break;  // Loop control is the trip count here.
              case Opcode::kCall:
                panic("interpretLoop: cannot execute call in ",
                      loop.name());
              default: {
                std::vector<std::int64_t> inputs;
                inputs.reserve(op.inputs.size());
                for (const auto& operand : op.inputs) {
                    inputs.push_back(value_at(
                        operand.producer, iteration - operand.distance));
                }
                value = evaluateOp(op.opcode, inputs, op.immediate);
                break;
              }
            }
            history[static_cast<std::size_t>(id)].push_back(value);
        }
    }

    for (const auto& op : loop.operations()) {
        if (op.is_live_out) {
            result.live_outs[op.id] =
                value_at(op.id, input.iterations - 1);
        }
    }
    return result;
}

LaInvocationCost
acceleratorLoopCost(const Schedule& schedule, const SchedGraph& graph,
                    const LoopAnalysis& analysis,
                    const RegisterAssignment& registers,
                    const LaConfig& config, std::int64_t iterations,
                    bool first_invocation)
{
    VEAL_ASSERT(iterations >= 1);
    LaInvocationCost cost;

    // --- Setup: bus handshake, then memory-mapped configuration writes.
    cost.setup_cycles = config.bus_latency;
    if (first_invocation) {
        // One control word per scheduled FU unit, one per stream context.
        const auto num_streams =
            static_cast<std::int64_t>(analysis.load_streams.size() +
                                      analysis.store_streams.size());
        cost.setup_cycles += graph.numFuUnits() + 2 * num_streams;
    }
    // Scalar live-ins/constants are written into the register file before
    // every invocation (their values may change between invocations).
    std::int64_t live_in_regs = 0;
    for (const int reg : registers.reg_of_source_op)
        live_in_regs += reg >= 0 ? 1 : 0;
    cost.setup_cycles += 2 * live_in_regs;

    // --- Software-pipelined execution.
    cost.pipeline_cycles =
        (iterations - 1) * static_cast<std::int64_t>(schedule.ii) +
        schedule.length;

    // --- Drain: scalar results cross back over the bus.
    std::int64_t live_outs = 0;
    for (const auto& unit : graph.units())
        live_outs += unit.is_live_out ? 1 : 0;
    cost.drain_cycles = config.bus_latency + 2 * live_outs;

    return cost;
}

}  // namespace veal::reference
