#ifndef VEAL_SIM_BATCH_H_
#define VEAL_SIM_BATCH_H_

/**
 * @file
 * Batched data-parallel simulation engine.
 *
 * Campaign drivers (fuzz, faultsim, sweeps) spend their cycles in three
 * per-invocation kernels: the in-order CPU timing model (cpu_sim), the
 * functional interpreter (interpreter), and the LA invocation cost model
 * (la_timing).  All three advance one loop invocation at a time and pay
 * per-call allocation: the interpreter in particular copies the whole
 * sparse MemoryImage and grows one history vector per operation.
 *
 * BatchSimulator restructures them for data-parallel rollouts:
 *
 *  - Structure-of-arrays state: every lane's operations, operands, value
 *    rings, and memory windows live in flat arrays shared across the
 *    batch, compiled once per call from the Loop graphs.
 *  - Arena allocation: the SoA buffers are members, so a simulator that
 *    is reused across batches (one per campaign worker) amortises its
 *    allocations to nearly zero.
 *  - Lane-sequential inner step over shared compiled state: one call
 *    rolls each lane's whole invocation back-to-back through the flat
 *    arrays, so a single worker drives 64+ independent invocations per
 *    call with every lane's working set staying cache-resident while it
 *    runs.  Lanes never interact, so the visit order is a scheduling
 *    choice with no semantic weight.
 *
 * Contract (enforced by tests/sim_batch_equivalence_test.cc and the CI
 * simulation gate): everything modeled is **bit-identical** to the
 * frozen originals in veal/sim/reference.h -- cycle counts and
 * cycles-per-iteration of every lane, architectural memory images and
 * live-outs, and per-phase LA charges -- for any batch width, any lane
 * order within a batch, and any worker count.  Lanes never share
 * mutable state, so grouping is a scheduling choice, not a semantic
 * one.
 *
 * Panics: interpretBatch() mirrors interpretLoop()'s preconditions per
 * lane (the loop verifies and contains no kCall ops), but a violation
 * aborts the whole call.  Callers that need per-lane isolation (the
 * fuzz oracle) screen lanes with interpretable() first and route the
 * rest through the scalar interpreter.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "veal/arch/cpu_config.h"
#include "veal/arch/la_config.h"
#include "veal/ir/loop.h"
#include "veal/ir/loop_analysis.h"
#include "veal/sched/register_alloc.h"
#include "veal/sched/schedule.h"
#include "veal/sim/cpu_sim.h"
#include "veal/sim/interpreter.h"
#include "veal/sim/la_timing.h"

namespace veal {

/** One CPU-timing lane: simulate @p iterations of @p loop. */
struct CpuSimRequest {
    const Loop* loop = nullptr;
    std::int64_t iterations = 1;
};

/**
 * A MemoryImage flattened to two arrays: per-array cell runs, arrays
 * ascending by name and cells ascending by address (the map iteration
 * order).  Campaign drivers that generate inputs for the batch engine
 * hand it the image in this form so compiling a lane walks contiguous
 * memory instead of chasing thousands of map nodes per case.
 */
struct FlatMemoryImage {
    struct Array {
        const std::string* name = nullptr;  ///< Owned by the caller.
        std::size_t cells_begin = 0;        ///< Into cells.
        std::size_t cells_end = 0;
    };
    std::vector<Array> arrays;
    std::vector<std::pair<std::int64_t, std::int64_t>> cells;
};

/** Flatten @p memory (the names must outlive the flat image). */
FlatMemoryImage flattenMemoryImage(const MemoryImage& memory);

/**
 * One functional-execution lane.  @p flat_memory, when set, replaces
 * input->memory as the initial image (the other ExecutionInput fields
 * are still read from @p input); callers that already hold the image
 * flat skip the per-lane map walk entirely.
 */
struct InterpretRequest {
    const Loop* loop = nullptr;
    const ExecutionInput* input = nullptr;
    const FlatMemoryImage* flat_memory = nullptr;
};

/** One LA cost-model lane (all pointees owned by the caller). */
struct LaCostRequest {
    const Schedule* schedule = nullptr;
    const SchedGraph* graph = nullptr;
    const LoopAnalysis* analysis = nullptr;
    const RegisterAssignment* registers = nullptr;
    std::int64_t iterations = 1;
    bool first_invocation = true;
};

/**
 * True when interpretBatch() can take @p loop as a lane: it verifies
 * and has no kCall ops.  Exactly the loops the scalar interpreter would
 * execute without panicking.
 */
bool interpretable(const Loop& loop);

/**
 * Arena-backed results of one interpretBatchFlat() call.
 *
 * This is the batch engine's native output shape: every architectural
 * quantity of every lane, in the exact sequence the scalar
 * ExecutionResult maps would iterate it -- per lane, regions ascending
 * by array name with (address, value) cells ascending by address, then
 * live-outs ascending by op.  Live-outs are flat pairs; a region's
 * cells stay where the engine computed them (dense window + sparse
 * overflow) and are walked in ascending-address order through
 * forEachCell(), so finishing a batch never copies the images at all.
 * Campaign consumers that only read the results in order (digesting,
 * diffing) take this view directly; interpretBatch() is the
 * compatibility wrapper that builds ExecutionResult maps from the same
 * view.  The view aliases the simulator's arenas: it is valid until the
 * next interpretBatch/interpretBatchFlat call on the same simulator.
 */
struct BatchExecView {
    /** One (lane, array) image; walk it with forEachCell(). */
    struct Region {
        const std::string* name = nullptr;
        /** Dense window: values[i] holds address window_lo + i, live
            only where present[i] != 0.  Empty when window_size == 0. */
        const std::int64_t* values = nullptr;
        const std::uint8_t* present = nullptr;
        std::int64_t window_lo = 0;
        std::int64_t window_size = 0;
        /** Cells outside the window, already address-sorted. */
        const std::map<std::int64_t, std::int64_t>* overflow = nullptr;
    };
    /** One lane's spans, index-aligned with the request vector. */
    struct Lane {
        std::size_t region_begin = 0;    ///< Into regions.
        std::size_t region_end = 0;
        std::size_t live_out_begin = 0;  ///< Into live_outs.
        std::size_t live_out_end = 0;
    };
    std::vector<Lane> lanes;
    std::vector<Region> regions;  ///< Ascending by name within a lane.
    /** (op, value), ascending by op within a lane. */
    std::vector<std::pair<OpId, std::int64_t>> live_outs;
};

/**
 * Visit every (address, value) cell of @p region in ascending address
 * order -- exactly the sequence the scalar result map would iterate.
 * Overflow addresses sit outside the window by construction, so the
 * merge is two splits around the dense run.
 */
template <typename Fn>
void
forEachRegionCell(const BatchExecView::Region& region, Fn&& fn)
{
    const auto above = region.overflow->lower_bound(region.window_lo);
    for (auto it = region.overflow->begin(); it != above; ++it)
        fn(it->first, it->second);
    for (std::int64_t i = 0; i < region.window_size; ++i) {
        if (region.present[static_cast<std::size_t>(i)])
            fn(region.window_lo + i,
               region.values[static_cast<std::size_t>(i)]);
    }
    for (auto it = above; it != region.overflow->end(); ++it)
        fn(it->first, it->second);
}

/**
 * The batch engine.  Not thread-safe: one instance per worker.  Reuse
 * an instance across batches to amortise the arena allocations.
 */
class BatchSimulator {
  public:
    BatchSimulator() = default;
    BatchSimulator(const BatchSimulator&) = delete;
    BatchSimulator& operator=(const BatchSimulator&) = delete;

    /**
     * Timing of every lane on @p config, index-aligned with @p lanes.
     * Bit-identical to reference::simulateLoopOnCpu per lane.
     */
    std::vector<CpuLoopTiming> simulateCpuBatch(
        const CpuConfig& config, const std::vector<CpuSimRequest>& lanes);

    /**
     * Architectural results of every lane, index-aligned with @p lanes.
     * Bit-identical to reference::interpretLoop per lane.
     * @pre interpretable(*lane.loop) for every lane -- the compile step
     * panics on kCall, but other malformed-loop shapes are the caller's
     * to screen (the per-lane verify() walk is exactly the kind of
     * per-invocation overhead this engine exists to shed).
     */
    std::vector<ExecutionResult> interpretBatch(
        const std::vector<InterpretRequest>& lanes);

    /**
     * Same execution as interpretBatch(), returned as the flat
     * BatchExecView instead of per-lane ExecutionResult maps.  The view
     * aliases this simulator's arenas and is valid until the next
     * interpret call.  @pre as interpretBatch().
     */
    const BatchExecView& interpretBatchFlat(
        const std::vector<InterpretRequest>& lanes);

    /**
     * Per-phase LA charges of every lane, index-aligned with @p lanes.
     * Bit-identical to reference::acceleratorLoopCost per lane.
     */
    std::vector<LaInvocationCost> acceleratorCostBatch(
        const LaConfig& config, const std::vector<LaCostRequest>& lanes);

  private:
    // ---- CPU-timing SoA arenas.  One CpuOp per non-value-source op of
    // every lane; operand pairs in cpu_inputs_; finish rings and
    // iteration-end rows carved out of flat arenas per lane.

    /** Compiled form of one non-value-source op (mirrors SimOp). */
    struct CpuOp {
        int row_base = 0;  ///< OpId * window, into the finish ring.
        int latency = 0;
        bool is_branch = false;
        std::uint32_t input_begin = 0;
        std::uint32_t input_end = 0;
    };

    /** Per-lane compiled shape + stepping state. */
    struct CpuLane {
        std::uint32_t ops_begin = 0;
        std::uint32_t ops_end = 0;
        std::size_t finish_base = 0;     ///< Into cpu_finish_.
        std::size_t iter_end_base = 0;   ///< Into cpu_iteration_end_.
        int n = 0;                       ///< loop.size().
        /** Finish-ring slots per op: max carried distance + 1, rounded
            up to a power of two so accesses mask instead of dividing. */
        int window = 0;
        int sim_iters = 0;
        std::int64_t iterations = 0;
        // Stepping state (advanced one iteration per pass).
        int iter = 0;
        int issued_this_cycle = 0;
        std::int64_t issue_cycle = 0;
        std::int64_t end_of_iteration = 0;
    };

    // ---- Interpreter SoA arenas.  One ExecInstr per op in topological
    // order; operands pre-resolved (const/live-in values folded, initial
    // values looked up once); value history in a per-lane ring of depth
    // max distance + 1; memory in dense windows with map overflow.

    /** A pre-resolved operand read. */
    struct ExecOperand {
        std::int64_t fixed_value = 0;    ///< kConst/kLiveIn short-circuit.
        std::int64_t initial_value = 0;  ///< Read at negative iterations.
        int row_base = 0;                ///< producer * ring_depth.
        int distance = 0;
        bool fixed = false;
    };

    /** Compiled form of one non-value-source op in topological order.
        kConst/kLiveIn ops compile to nothing: every read of them is
        folded into the operands, so their ring rows are never read. */
    struct ExecInstr {
        enum Kind : std::uint8_t { kLoad, kStore, kBranch, kGeneric };
        Kind kind = kGeneric;
        Opcode opcode = Opcode::kConst;
        int row_base = 0;                ///< OpId * ring_depth.
        int region = 0;                  ///< Memory region (load/store).
        std::int64_t immediate = 0;
        std::uint32_t operand_begin = 0;
        std::uint32_t operand_end = 0;
    };

    /** One (lane, array symbol) memory region. */
    struct ExecRegion {
        const std::string* name = nullptr;
        std::int64_t window_lo = 0;
        std::int64_t window_size = 0;
        std::size_t values_base = 0;     ///< Into exec_mem_values_.
        std::size_t overflow = 0;        ///< Into exec_overflow_.
        bool touched = false;
    };

    /** A pre-resolved live-out read at iteration (iterations - 1). */
    struct ExecLiveOut {
        OpId op = 0;
        ExecOperand read;
    };

    /** Per-lane compiled shape + stepping state. */
    struct ExecLane {
        std::uint32_t instr_begin = 0;
        std::uint32_t instr_end = 0;
        std::uint32_t region_begin = 0;
        std::uint32_t region_end = 0;
        std::uint32_t live_out_begin = 0;
        std::uint32_t live_out_end = 0;
        std::size_t ring_base = 0;       ///< Into exec_ring_.
        /** Ring rows per op: max distance + 1, rounded up to a power of
            two so every access masks instead of dividing. */
        int ring_depth = 0;
        std::int64_t iterations = 0;
        std::int64_t iter = 0;           ///< Next iteration to run.
    };

    /** Compile @p lanes into the SoA arenas and run every iteration. */
    void runExecLanes(const std::vector<InterpretRequest>& lanes);

    /** reference-identical topological order, out of reusable arenas. */
    const std::vector<OpId>& topoOrder(const Loop& loop);

    std::vector<CpuLane> cpu_lanes_;
    std::vector<CpuOp> cpu_ops_;
    std::vector<std::pair<int, int>> cpu_inputs_;
    std::vector<std::int64_t> cpu_finish_;
    std::vector<std::int64_t> cpu_iteration_end_;

    std::vector<ExecLane> exec_lanes_;
    std::vector<ExecInstr> exec_instrs_;
    std::vector<ExecOperand> exec_operands_;
    std::vector<ExecRegion> exec_regions_;
    std::vector<ExecLiveOut> exec_live_outs_;
    /** Grow-only write-before-read arenas: retained storage is reused
        across calls without clearing.  Every ring slot is written
        before it is read (topo order within an iteration, full
        iterations across distances), and window values are only read
        where the per-call present byte is set. */
    std::vector<std::int64_t> exec_ring_;
    std::vector<std::int64_t> exec_mem_values_;
    std::vector<std::uint8_t> exec_mem_present_;
    std::vector<std::map<std::int64_t, std::int64_t>> exec_overflow_;
    std::vector<std::int64_t> exec_scratch_;
    std::vector<std::uint32_t> exec_region_order_;
    BatchExecView exec_view_;

    std::vector<int> topo_in_degree_;
    std::vector<std::uint32_t> topo_succ_offset_;
    std::vector<OpId> topo_succ_;
    std::vector<OpId> topo_ready_;
    std::vector<OpId> topo_order_;
};

/** One-shot convenience: a transient BatchSimulator over @p lanes. */
std::vector<CpuLoopTiming> simulateCpuBatch(
    const CpuConfig& config, const std::vector<CpuSimRequest>& lanes);

/** One-shot convenience: a transient BatchSimulator over @p lanes. */
std::vector<ExecutionResult> interpretBatch(
    const std::vector<InterpretRequest>& lanes);

}  // namespace veal

#endif  // VEAL_SIM_BATCH_H_
