#include "veal/sim/la_executor.h"

#include <algorithm>
#include <vector>

#include "veal/support/assert.h"

namespace veal {

namespace {

/** Per-op value history across iterations. */
class ValueStore {
  public:
    explicit ValueStore(int num_ops) : values_(
        static_cast<std::size_t>(num_ops)) {}

    void
    record(OpId op, std::int64_t iteration, std::int64_t value)
    {
        auto& history = values_[static_cast<std::size_t>(op)];
        VEAL_ASSERT(static_cast<std::int64_t>(history.size()) == iteration,
                    "op ", op, " executed out of iteration order");
        history.push_back(value);
    }

    std::int64_t
    read(OpId op, std::int64_t iteration) const
    {
        const auto& history = values_[static_cast<std::size_t>(op)];
        VEAL_ASSERT(iteration >= 0 &&
                        iteration <
                            static_cast<std::int64_t>(history.size()),
                    "op ", op, " read before it executed (iteration ",
                    iteration, ")");
        return history[static_cast<std::size_t>(iteration)];
    }

    bool
    has(OpId op, std::int64_t iteration) const
    {
        return iteration >= 0 &&
               iteration < static_cast<std::int64_t>(
                               values_[static_cast<std::size_t>(op)]
                                   .size());
    }

  private:
    std::vector<std::vector<std::int64_t>> values_;
};

}  // namespace

ExecutionResult
executeOnAccelerator(const Loop& loop, const TranslationResult& translation,
                     const ExecutionInput& input)
{
    VEAL_ASSERT(translation.ok, "executing a rejected translation of ",
                loop.name());
    VEAL_ASSERT(translation.graph.has_value());
    const SchedGraph& graph = *translation.graph;
    const Schedule& schedule = translation.schedule;
    const LoopAnalysis& analysis = translation.analysis;
    const int ii = schedule.ii;

    ExecutionResult result;
    result.memory = input.memory;
    ValueStore values(loop.size());

    auto initial_of = [&](OpId op) {
        const auto it = input.initial.find(op);
        return it != input.initial.end() ? it->second : 0;
    };
    auto live_in_of = [&](OpId op) {
        const auto it = input.live_ins.find(op);
        return it != input.live_ins.end() ? it->second : 0;
    };
    auto induction_value = [&](const Operation& op,
                               std::int64_t iteration) {
        const Operation& step_op = loop.op(op.inputs[1].producer);
        VEAL_ASSERT(step_op.opcode == Opcode::kConst);
        return initial_of(op.id) + step_op.immediate * (iteration + 1);
    };

    /** Value of a symbolic stream base term (live-in or induction start). */
    auto symbol_value = [&](OpId op) -> std::int64_t {
        const Operation& operation = loop.op(op);
        if (operation.opcode == Opcode::kLiveIn)
            return live_in_of(op);
        if (operation.is_induction) {
            // The affine form's symbol is the value at iteration 0.
            return induction_value(operation, 0);
        }
        panic("unsupported symbolic stream base in ", loop.name());
    };

    /** Element index touched by a memory op at @p iteration. */
    auto stream_address = [&](const Operation& op,
                              std::int64_t iteration) -> std::int64_t {
        const int index =
            analysis.stream_of_op[static_cast<std::size_t>(op.id)];
        VEAL_ASSERT(index >= 0, "memory op without a stream");
        const StreamDescriptor& stream =
            op.opcode == Opcode::kStore
                ? analysis.store_streams[static_cast<std::size_t>(index)]
                : analysis.load_streams[static_cast<std::size_t>(index)];
        std::int64_t address = stream.offset + stream.stride * iteration;
        for (const auto& [symbol, coeff] : stream.base_terms)
            address += coeff * symbol_value(symbol);
        return address;
    };

    /** Read the value of @p operand as seen by @p consumer_issue_cycle. */
    auto read_operand = [&](const Operand& operand, std::int64_t iteration,
                            std::int64_t consumer_issue_cycle,
                            const std::vector<OpId>* group)
        -> std::int64_t {
        const std::int64_t source_iteration =
            iteration - operand.distance;
        const Operation& producer = loop.op(operand.producer);
        if (producer.opcode == Opcode::kConst)
            return producer.immediate;
        if (producer.opcode == Opcode::kLiveIn)
            return live_in_of(producer.id);
        if (source_iteration < 0)
            return initial_of(producer.id);
        if (producer.is_induction)
            return induction_value(producer, source_iteration);

        // Internal CCA-group operand: same atomic issue, already computed.
        if (group != nullptr && operand.distance == 0 &&
            std::find(group->begin(), group->end(), operand.producer) !=
                group->end()) {
            return values.read(producer.id, source_iteration);
        }

        const int producer_unit = graph.unitOf(producer.id);
        VEAL_ASSERT(producer_unit >= 0, "compute input from op ",
                    producer.id, " (", toString(producer.opcode),
                    ") which is not scheduled");
        // Semantic schedule check: the producer's result for that
        // iteration must have completed by our issue cycle.
        const auto& unit =
            graph.units()[static_cast<std::size_t>(producer_unit)];
        const std::int64_t ready =
            schedule.time[static_cast<std::size_t>(producer_unit)] +
            source_iteration * ii + unit.latency;
        VEAL_ASSERT(ready <= consumer_issue_cycle,
                    "schedule reads op ", producer.id, " of iteration ",
                    source_iteration, " at cycle ", consumer_issue_cycle,
                    " but it completes at ", ready);
        return values.read(producer.id, source_iteration);
    };

    // Units in issue-time order within an iteration: with per-iteration
    // processing this is a valid execution order (see header).
    std::vector<int> unit_order(static_cast<std::size_t>(
        graph.numUnits()));
    for (int u = 0; u < graph.numUnits(); ++u)
        unit_order[static_cast<std::size_t>(u)] = u;
    std::sort(unit_order.begin(), unit_order.end(), [&](int a, int b) {
        if (schedule.time[static_cast<std::size_t>(a)] !=
            schedule.time[static_cast<std::size_t>(b)]) {
            return schedule.time[static_cast<std::size_t>(a)] <
                   schedule.time[static_cast<std::size_t>(b)];
        }
        // Loads before stores within a cycle: correct WAR semantics.
        const bool a_store =
            loop.op(graph.units()[static_cast<std::size_t>(a)].ops[0])
                .opcode == Opcode::kStore;
        const bool b_store =
            loop.op(graph.units()[static_cast<std::size_t>(b)].ops[0])
                .opcode == Opcode::kStore;
        if (a_store != b_store)
            return b_store;
        return a < b;
    });

    for (std::int64_t iteration = 0; iteration < input.iterations;
         ++iteration) {
        for (const int u : unit_order) {
            const auto& unit = graph.units()[static_cast<std::size_t>(u)];
            const std::int64_t issue_cycle =
                schedule.time[static_cast<std::size_t>(u)] +
                iteration * ii;
            switch (unit.kind) {
              case UnitKind::kMemory: {
                const Operation& op = loop.op(unit.ops[0]);
                const std::int64_t address =
                    stream_address(op, iteration);
                if (op.opcode == Opcode::kLoad) {
                    const auto& array = result.memory[op.symbol];
                    const auto it = array.find(address);
                    values.record(op.id, iteration,
                                  it != array.end() ? it->second : 0);
                } else {
                    result.memory[op.symbol][address] = read_operand(
                        op.inputs[1], iteration, issue_cycle, nullptr);
                    values.record(op.id, iteration, 0);
                }
                break;
              }
              case UnitKind::kOp: {
                const Operation& op = loop.op(unit.ops[0]);
                std::vector<std::int64_t> inputs;
                inputs.reserve(op.inputs.size());
                for (const auto& operand : op.inputs) {
                    inputs.push_back(read_operand(operand, iteration,
                                                  issue_cycle, nullptr));
                }
                values.record(op.id, iteration,
                              evaluateOp(op.opcode, inputs,
                                         op.immediate));
                break;
              }
              case UnitKind::kCcaGroup: {
                // Atomic subgraph: evaluate members in dependence order
                // (member ids are sorted; iterate to a fixed point over
                // the tiny set).
                std::vector<OpId> pending = unit.ops;
                while (!pending.empty()) {
                    bool progress = false;
                    for (auto it = pending.begin();
                         it != pending.end();) {
                        const Operation& op = loop.op(*it);
                        bool ready = true;
                        for (const auto& operand : op.inputs) {
                            const bool internal =
                                operand.distance == 0 &&
                                std::find(unit.ops.begin(),
                                          unit.ops.end(),
                                          operand.producer) !=
                                    unit.ops.end();
                            if (internal &&
                                !values.has(operand.producer, iteration))
                                ready = false;
                        }
                        if (!ready) {
                            ++it;
                            continue;
                        }
                        std::vector<std::int64_t> inputs;
                        for (const auto& operand : op.inputs) {
                            inputs.push_back(
                                read_operand(operand, iteration,
                                             issue_cycle, &unit.ops));
                        }
                        values.record(op.id, iteration,
                                      evaluateOp(op.opcode, inputs,
                                                 op.immediate));
                        it = pending.erase(it);
                        progress = true;
                    }
                    VEAL_ASSERT(progress,
                                "CCA group has an internal cycle in ",
                                loop.name());
                }
                break;
              }
            }
        }
    }

    for (const auto& op : loop.operations()) {
        if (!op.is_live_out)
            continue;
        if (op.is_induction) {
            result.live_outs[op.id] =
                induction_value(op, input.iterations - 1);
        } else {
            result.live_outs[op.id] =
                values.read(op.id, input.iterations - 1);
        }
    }
    return result;
}

}  // namespace veal
