#include "veal/sim/la_timing.h"

#include <algorithm>

#include "veal/support/assert.h"

namespace veal {

LaInvocationCost
acceleratorLoopCost(const Schedule& schedule, const SchedGraph& graph,
                    const LoopAnalysis& analysis,
                    const RegisterAssignment& registers,
                    const LaConfig& config, std::int64_t iterations,
                    bool first_invocation)
{
    VEAL_ASSERT(iterations >= 1);
    LaInvocationCost cost;

    // --- Setup: bus handshake, then memory-mapped configuration writes.
    cost.setup_cycles = config.bus_latency;
    if (first_invocation) {
        // One control word per scheduled FU unit, one per stream context.
        const auto num_streams =
            static_cast<std::int64_t>(analysis.load_streams.size() +
                                      analysis.store_streams.size());
        cost.setup_cycles += graph.numFuUnits() + 2 * num_streams;
    }
    // Scalar live-ins/constants are written into the register file before
    // every invocation (their values may change between invocations).
    std::int64_t live_in_regs = 0;
    for (const int reg : registers.reg_of_source_op)
        live_in_regs += reg >= 0 ? 1 : 0;
    cost.setup_cycles += 2 * live_in_regs;

    // --- Software-pipelined execution.
    cost.pipeline_cycles =
        (iterations - 1) * static_cast<std::int64_t>(schedule.ii) +
        schedule.length;

    // --- Drain: scalar results cross back over the bus.
    std::int64_t live_outs = 0;
    for (const auto& unit : graph.units())
        live_outs += unit.is_live_out ? 1 : 0;
    cost.drain_cycles = config.bus_latency + 2 * live_outs;

    return cost;
}

}  // namespace veal
