#ifndef VEAL_SIM_INTERPRETER_H_
#define VEAL_SIM_INTERPRETER_H_

/**
 * @file
 * Reference functional semantics for the loop IR.
 *
 * The interpreter executes a loop exactly as the baseline processor
 * would: iterations in order, ops in dependence order, memory through a
 * sparse per-array image.  It is the golden model the functional LA
 * executor (veal/sim/la_executor.h) is checked against: a valid modulo
 * schedule must compute byte-identical memory and scalar results.
 *
 * Values are 64-bit integers; floating-point opcodes operate on doubles
 * carried in the same 64 bits via bit casts, so both engines are exactly
 * deterministic.
 */

#include <bit>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>

#include "veal/ir/loop.h"
#include "veal/support/assert.h"

namespace veal {

/** Sparse memory: element index -> value, per named array. */
using MemoryImage =
    std::map<std::string, std::map<std::int64_t, std::int64_t>>;

/** Everything a loop execution needs. */
struct ExecutionInput {
    MemoryImage memory;

    /** Value of each kLiveIn op (missing entries read as 0). */
    std::map<OpId, std::int64_t> live_ins;

    /**
     * Initial values of loop-carried state: the value op @p id "produced"
     * before the first iteration (iteration -1, -2, ...).  Missing
     * entries read as 0.  Induction variables start at their entry here
     * too (value at iteration -1; the first body iteration sees
     * initial + step).
     */
    std::map<OpId, std::int64_t> initial;

    std::int64_t iterations = 1;
};

/** What a loop execution produced. */
struct ExecutionResult {
    MemoryImage memory;

    /** Final value of every op marked live-out. */
    std::map<OpId, std::int64_t> live_outs;
};

/**
 * Execute @p loop on the reference interpreter.
 * @pre the loop verifies and contains no kCall ops.
 */
ExecutionResult interpretLoop(const Loop& loop, const ExecutionInput& input);

/** Shared scalar semantics of a single operation (used by both engines). */
std::int64_t evaluateOp(Opcode opcode, const std::vector<std::int64_t>&
                        inputs, std::int64_t immediate);

namespace detail {

inline double
opBitsAsDouble(std::int64_t bits)
{
    return std::bit_cast<double>(bits);
}

inline std::int64_t
opDoubleAsBits(double value)
{
    return std::bit_cast<std::int64_t>(value);
}

/**
 * Integer ALU ops wrap in two's complement, like the modeled datapath.
 * Routing add/sub/mul through uint64 keeps the wraparound well-defined
 * (signed overflow is UB and the fuzz/fault campaigns do overflow).
 */
inline std::uint64_t
opToUnsigned(std::int64_t value)
{
    return static_cast<std::uint64_t>(value);
}

inline std::int64_t
opToSigned(std::uint64_t value)
{
    return static_cast<std::int64_t>(value);
}

}  // namespace detail

/**
 * Same semantics over a raw operand span -- the allocation-free entry
 * point the batch engine steps through, inline because it sits on the
 * per-(op, iteration) hot path.  The vector overload delegates here,
 * so there is exactly one copy of the op semantics.
 */
inline std::int64_t
evaluateOp(Opcode opcode, const std::int64_t* in, std::size_t count,
           std::int64_t immediate)
{
    using detail::opBitsAsDouble;
    using detail::opDoubleAsBits;
    using detail::opToSigned;
    using detail::opToUnsigned;
    auto arg = [&](std::size_t index) {
        return index < count ? in[index] : 0;
    };
    auto shiftAmount = [](std::int64_t raw) { return raw & 63; };
    switch (opcode) {
      case Opcode::kConst: return immediate;
      case Opcode::kLiveIn: return arg(0);  // Bound by the caller.
      case Opcode::kAdd:
        return opToSigned(opToUnsigned(arg(0)) + opToUnsigned(arg(1)));
      case Opcode::kSub:
        return opToSigned(opToUnsigned(arg(0)) - opToUnsigned(arg(1)));
      case Opcode::kMul:
        return opToSigned(opToUnsigned(arg(0)) * opToUnsigned(arg(1)));
      case Opcode::kDiv:
        if (arg(1) == 0)
            return 0;
        if (arg(1) == -1)  // INT64_MIN / -1 overflows; wrap like neg.
            return opToSigned(0u - opToUnsigned(arg(0)));
        return arg(0) / arg(1);
      case Opcode::kShl:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(arg(0)) << shiftAmount(arg(1)));
      case Opcode::kShr:
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(arg(0)) >> shiftAmount(arg(1)));
      case Opcode::kAnd: return arg(0) & arg(1);
      case Opcode::kOr: return arg(0) | arg(1);
      case Opcode::kXor: return arg(0) ^ arg(1);
      case Opcode::kNot: return ~arg(0);
      case Opcode::kCmp: return arg(0) < arg(1) ? 1 : 0;
      case Opcode::kSelect: return arg(0) != 0 ? arg(1) : arg(2);
      case Opcode::kMin: return arg(0) < arg(1) ? arg(0) : arg(1);
      case Opcode::kMax: return arg(0) > arg(1) ? arg(0) : arg(1);
      case Opcode::kAbs:
        return arg(0) < 0 ? opToSigned(0u - opToUnsigned(arg(0)))
                          : arg(0);
      case Opcode::kFAdd: return opDoubleAsBits(opBitsAsDouble(arg(0)) +
                                                opBitsAsDouble(arg(1)));
      case Opcode::kFSub: return opDoubleAsBits(opBitsAsDouble(arg(0)) -
                                                opBitsAsDouble(arg(1)));
      case Opcode::kFMul: return opDoubleAsBits(opBitsAsDouble(arg(0)) *
                                                opBitsAsDouble(arg(1)));
      case Opcode::kFDiv:
        return opDoubleAsBits(
            opBitsAsDouble(arg(1)) == 0.0
                ? 0.0
                : opBitsAsDouble(arg(0)) / opBitsAsDouble(arg(1)));
      case Opcode::kFSqrt:
        return opDoubleAsBits(opBitsAsDouble(arg(0)) < 0.0
                                  ? 0.0
                                  : std::sqrt(opBitsAsDouble(arg(0))));
      case Opcode::kFCmp:
        return opBitsAsDouble(arg(0)) < opBitsAsDouble(arg(1)) ? 1 : 0;
      case Opcode::kFAbs:
        return opDoubleAsBits(std::fabs(opBitsAsDouble(arg(0))));
      case Opcode::kItoF:
        return opDoubleAsBits(static_cast<double>(arg(0)));
      case Opcode::kFtoI: {
        // Out-of-range conversion is UB; the modeled unit saturates
        // NaN/inf/overflow to 0 like the non-finite case.
        const double value = opBitsAsDouble(arg(0));
        if (!std::isfinite(value) || value < -9223372036854775808.0 ||
            value >= 9223372036854775808.0)
            return 0;
        return static_cast<std::int64_t>(value);
      }
      case Opcode::kLoad:
      case Opcode::kStore:
      case Opcode::kBranch:
      case Opcode::kCall:
      case Opcode::kCca:
      case Opcode::kNumOpcodes:
        break;
    }
    panic("evaluateOp: opcode ", toString(opcode),
          " has no scalar semantics");
}

}  // namespace veal

#endif  // VEAL_SIM_INTERPRETER_H_
