#ifndef VEAL_SIM_INTERPRETER_H_
#define VEAL_SIM_INTERPRETER_H_

/**
 * @file
 * Reference functional semantics for the loop IR.
 *
 * The interpreter executes a loop exactly as the baseline processor
 * would: iterations in order, ops in dependence order, memory through a
 * sparse per-array image.  It is the golden model the functional LA
 * executor (veal/sim/la_executor.h) is checked against: a valid modulo
 * schedule must compute byte-identical memory and scalar results.
 *
 * Values are 64-bit integers; floating-point opcodes operate on doubles
 * carried in the same 64 bits via bit casts, so both engines are exactly
 * deterministic.
 */

#include <cstdint>
#include <map>
#include <string>

#include "veal/ir/loop.h"

namespace veal {

/** Sparse memory: element index -> value, per named array. */
using MemoryImage =
    std::map<std::string, std::map<std::int64_t, std::int64_t>>;

/** Everything a loop execution needs. */
struct ExecutionInput {
    MemoryImage memory;

    /** Value of each kLiveIn op (missing entries read as 0). */
    std::map<OpId, std::int64_t> live_ins;

    /**
     * Initial values of loop-carried state: the value op @p id "produced"
     * before the first iteration (iteration -1, -2, ...).  Missing
     * entries read as 0.  Induction variables start at their entry here
     * too (value at iteration -1; the first body iteration sees
     * initial + step).
     */
    std::map<OpId, std::int64_t> initial;

    std::int64_t iterations = 1;
};

/** What a loop execution produced. */
struct ExecutionResult {
    MemoryImage memory;

    /** Final value of every op marked live-out. */
    std::map<OpId, std::int64_t> live_outs;
};

/**
 * Execute @p loop on the reference interpreter.
 * @pre the loop verifies and contains no kCall ops.
 */
ExecutionResult interpretLoop(const Loop& loop, const ExecutionInput& input);

/** Shared scalar semantics of a single operation (used by both engines). */
std::int64_t evaluateOp(Opcode opcode, const std::vector<std::int64_t>&
                        inputs, std::int64_t immediate);

}  // namespace veal

#endif  // VEAL_SIM_INTERPRETER_H_
