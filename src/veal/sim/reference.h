#ifndef VEAL_SIM_REFERENCE_H_
#define VEAL_SIM_REFERENCE_H_

/**
 * @file
 * Reference simulation facade: the pre-batching simulators, frozen
 * verbatim.
 *
 * The batch engine in veal/sim/batch.h restructures the CPU timing
 * model and the functional interpreter for data-parallel rollouts
 * (structure-of-arrays state, arena-allocated loop graphs, lane-stepped
 * inner loops) under the contract that everything *modeled* -- cycle
 * counts, per-iteration rates, architectural memory and live-out
 * results, and the per-phase LA invocation charges -- is bit-identical
 * to the one-invocation-at-a-time originals.  This facade keeps those
 * originals alive so the contract is testable: the differential suite
 * (tests/sim_batch_equivalence_test.cc) and veal-bench --mode
 * simulation run both paths on the same cases and assert equality.
 *
 * Nothing here is reachable from the VM or the campaign drivers; it
 * exists only as an oracle and as the baseline the committed
 * BENCH_simulation.json speedup is measured against.  Do not optimise
 * this file.
 */

#include <cstdint>

#include "veal/arch/cpu_config.h"
#include "veal/arch/la_config.h"
#include "veal/ir/loop.h"
#include "veal/ir/loop_analysis.h"
#include "veal/sched/register_alloc.h"
#include "veal/sched/schedule.h"
#include "veal/sim/cpu_sim.h"
#include "veal/sim/interpreter.h"
#include "veal/sim/la_timing.h"

namespace veal::reference {

/** The original scoreboarded in-order CPU timing model. */
CpuLoopTiming simulateLoopOnCpu(const Loop& loop, const CpuConfig& config,
                                std::int64_t iterations);

/** The original map-backed functional interpreter. */
ExecutionResult interpretLoop(const Loop& loop,
                              const ExecutionInput& input);

/** The original per-invocation LA cost model. */
LaInvocationCost acceleratorLoopCost(const Schedule& schedule,
                                     const SchedGraph& graph,
                                     const LoopAnalysis& analysis,
                                     const RegisterAssignment& registers,
                                     const LaConfig& config,
                                     std::int64_t iterations,
                                     bool first_invocation = true);

}  // namespace veal::reference

#endif  // VEAL_SIM_REFERENCE_H_
