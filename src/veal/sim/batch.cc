#include "veal/sim/batch.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "veal/support/assert.h"
#include "veal/support/logging.h"

namespace veal {

namespace {

/** Dense-window headroom around the initial memory image of an array.
    Accesses beyond the pad stay correct through the overflow map; the
    pad only buys dense handling for near-miss strides, so it stays
    small enough that zero-filling and scanning the window is cheap. */
constexpr std::int64_t kWindowPad = 64;

/** Largest dense window one array may claim; sparser images fall back
    to the overflow map entirely. */
constexpr std::int64_t kMaxWindowCells = std::int64_t{1} << 20;

/** Smallest power of two >= @p n, for mask-indexed rings.  A ring
    sized up to a power of two holds the same values at the same
    logical slots (slot i lives at i & (pow2 - 1), still unique for any
    window of `n` consecutive iterations), so widening is invisible to
    the modeled results while turning the per-access modulo into an
    AND. */
int
ringPow2(int n)
{
    int pow2 = 1;
    while (pow2 < n)
        pow2 <<= 1;
    return pow2;
}

/** Identical to the frozen model's per-op latency choice. */
int
cpuOpLatency(const Operation& op, const CpuConfig& config)
{
    if (op.opcode == Opcode::kLoad)
        return config.load_latency;
    if (op.opcode == Opcode::kCall)
        return 20;
    return config.latencies.latency(op.opcode);
}

}  // namespace

FlatMemoryImage
flattenMemoryImage(const MemoryImage& memory)
{
    FlatMemoryImage flat;
    for (const auto& [name, cells] : memory) {
        FlatMemoryImage::Array array;
        array.name = &name;
        array.cells_begin = flat.cells.size();
        flat.cells.insert(flat.cells.end(), cells.begin(), cells.end());
        array.cells_end = flat.cells.size();
        flat.arrays.push_back(array);
    }
    return flat;
}

bool
interpretable(const Loop& loop)
{
    if (loop.verify().has_value())
        return false;
    for (const auto& op : loop.operations()) {
        if (op.opcode == Opcode::kCall)
            return false;
    }
    return true;
}

// ---------------------------------------------------------------------------
// CPU timing

std::vector<CpuLoopTiming>
BatchSimulator::simulateCpuBatch(const CpuConfig& config,
                                 const std::vector<CpuSimRequest>& lanes)
{
    constexpr int kWarmIterations = 96;
    constexpr int kMeasureWindow = 32;

    cpu_lanes_.clear();
    cpu_ops_.clear();
    cpu_inputs_.clear();
    cpu_finish_.clear();
    cpu_iteration_end_.clear();

    // --- Compile: one SoA op table + finish ring per lane.
    for (const auto& request : lanes) {
        const Loop& loop = *request.loop;
        VEAL_ASSERT(request.iterations >= 1,
                    "loop must run at least one iteration");
        CpuLane lane;
        lane.iterations = request.iterations;
        lane.n = loop.size();
        lane.sim_iters = static_cast<int>(std::min<std::int64_t>(
            request.iterations, kWarmIterations));

        int max_distance = 1;
        for (const auto& op : loop.operations()) {
            for (const auto& operand : op.inputs)
                max_distance = std::max(max_distance, operand.distance);
        }
        for (const auto& edge : loop.memoryEdges())
            max_distance = std::max(max_distance, edge.distance);
        lane.window = ringPow2(max_distance + 1);
        lane.finish_base = cpu_finish_.size();
        cpu_finish_.resize(lane.finish_base +
                               static_cast<std::size_t>(lane.window) *
                                   static_cast<std::size_t>(lane.n),
                           0);
        lane.iter_end_base = cpu_iteration_end_.size();
        cpu_iteration_end_.resize(
            lane.iter_end_base + static_cast<std::size_t>(lane.sim_iters),
            0);

        lane.ops_begin = static_cast<std::uint32_t>(cpu_ops_.size());
        for (const auto& op : loop.operations()) {
            if (op.isValueSource())
                continue;
            CpuOp compiled;
            compiled.row_base = op.id * lane.window;
            compiled.latency = cpuOpLatency(op, config);
            compiled.is_branch = op.opcode == Opcode::kBranch;
            compiled.input_begin =
                static_cast<std::uint32_t>(cpu_inputs_.size());
            for (const auto& input : op.inputs) {
                if (!loop.op(input.producer).isValueSource())
                    cpu_inputs_.emplace_back(
                        input.producer * lane.window, input.distance);
            }
            compiled.input_end =
                static_cast<std::uint32_t>(cpu_inputs_.size());
            cpu_ops_.push_back(compiled);
        }
        lane.ops_end = static_cast<std::uint32_t>(cpu_ops_.size());
        cpu_lanes_.push_back(lane);
    }

    // --- Step: run every lane's simulated window back-to-back.  Lanes
    // are independent, so ordering is a scheduling choice; finishing
    // one lane before the next keeps its finish ring and op table
    // cache-resident, and the numbers are exactly what the
    // one-lane-at-a-time model computes.
    for (auto& lane : cpu_lanes_) {
        const int ring_mask = lane.window - 1;
        std::int64_t* finish = cpu_finish_.data() + lane.finish_base;
        for (int iter = 0; iter < lane.sim_iters; ++iter) {
            const auto ring = static_cast<std::size_t>(iter & ring_mask);
            for (std::uint32_t o = lane.ops_begin; o < lane.ops_end;
                 ++o) {
                const CpuOp& op = cpu_ops_[o];
                std::int64_t ready = lane.issue_cycle;
                for (std::uint32_t i = op.input_begin; i < op.input_end;
                     ++i) {
                    const auto& [row_base, distance] = cpu_inputs_[i];
                    const int source_iter = iter - distance;
                    if (source_iter < 0)
                        continue;
                    ready = std::max(
                        ready,
                        finish[static_cast<std::size_t>(row_base) +
                               static_cast<std::size_t>(source_iter &
                                                        ring_mask)]);
                }

                if (ready > lane.issue_cycle) {
                    lane.issue_cycle = ready;
                    lane.issued_this_cycle = 0;
                }
                if (lane.issued_this_cycle >= config.issue_width) {
                    ++lane.issue_cycle;
                    lane.issued_this_cycle = 0;
                }
                ++lane.issued_this_cycle;

                const std::int64_t done = lane.issue_cycle + op.latency;
                finish[static_cast<std::size_t>(op.row_base) + ring] =
                    done;
                if (op.is_branch) {
                    lane.issue_cycle += 1 + config.branch_penalty;
                    lane.issued_this_cycle = 0;
                }
                lane.end_of_iteration =
                    std::max(lane.end_of_iteration, done);
            }
            cpu_iteration_end_[lane.iter_end_base +
                               static_cast<std::size_t>(iter)] =
                lane.issue_cycle;
        }
        lane.iter = lane.sim_iters;
    }

    // --- Finalize: steady-state extrapolation, identical per lane.
    std::vector<CpuLoopTiming> timings;
    timings.reserve(lanes.size());
    for (const auto& lane : cpu_lanes_) {
        const std::int64_t* iteration_end =
            cpu_iteration_end_.data() + lane.iter_end_base;
        CpuLoopTiming timing;
        if (lane.sim_iters >= kMeasureWindow * 2) {
            const std::int64_t tail =
                iteration_end[lane.sim_iters - 1] -
                iteration_end[lane.sim_iters - 1 - kMeasureWindow];
            timing.cycles_per_iteration =
                static_cast<double>(tail) / kMeasureWindow;
        } else {
            timing.cycles_per_iteration =
                static_cast<double>(iteration_end[lane.sim_iters - 1]) /
                lane.sim_iters;
        }
        if (lane.iterations <= lane.sim_iters) {
            timing.total_cycles =
                std::max<std::int64_t>(lane.end_of_iteration, 1);
        } else {
            const double extra =
                timing.cycles_per_iteration *
                static_cast<double>(lane.iterations - lane.sim_iters);
            timing.total_cycles =
                std::max<std::int64_t>(lane.end_of_iteration, 1) +
                static_cast<std::int64_t>(extra);
        }
        timings.push_back(timing);
    }
    return timings;
}

// ---------------------------------------------------------------------------
// Functional interpretation

const std::vector<OpId>&
BatchSimulator::topoOrder(const Loop& loop)
{
    // Kahn's algorithm over the distance-0 edges, always popping the
    // smallest ready id -- the exact order Loop::topologicalOrder()
    // produces, rebuilt out of reusable arenas (CSR successor lists
    // instead of one heap vector per op).
    const int n = loop.size();
    const auto un = static_cast<std::size_t>(n);
    topo_in_degree_.assign(un, 0);
    topo_succ_offset_.assign(un + 1, 0);

    for (const auto& op : loop.operations()) {
        for (const auto& input : op.inputs) {
            if (input.distance == 0)
                ++topo_succ_offset_[
                    static_cast<std::size_t>(input.producer) + 1];
        }
    }
    for (const auto& edge : loop.memoryEdges()) {
        if (edge.distance == 0)
            ++topo_succ_offset_[static_cast<std::size_t>(edge.from) + 1];
    }
    for (std::size_t i = 1; i <= un; ++i)
        topo_succ_offset_[i] += topo_succ_offset_[i - 1];

    topo_succ_.resize(topo_succ_offset_[un]);
    // Second pass fills each op's slice front to back; the offset table
    // is restored by the shift below.
    for (const auto& op : loop.operations()) {
        for (const auto& input : op.inputs) {
            if (input.distance == 0) {
                topo_succ_[topo_succ_offset_[static_cast<std::size_t>(
                    input.producer)]++] = op.id;
                ++topo_in_degree_[static_cast<std::size_t>(op.id)];
            }
        }
    }
    for (const auto& edge : loop.memoryEdges()) {
        if (edge.distance == 0) {
            topo_succ_[topo_succ_offset_[static_cast<std::size_t>(
                edge.from)]++] = edge.to;
            ++topo_in_degree_[static_cast<std::size_t>(edge.to)];
        }
    }
    for (std::size_t i = un; i > 0; --i)
        topo_succ_offset_[i] = topo_succ_offset_[i - 1];
    topo_succ_offset_[0] = 0;

    // Min-heap of ready ids: pop order == "smallest ready id first".
    topo_ready_.clear();
    for (OpId id = 0; id < n; ++id) {
        if (topo_in_degree_[static_cast<std::size_t>(id)] == 0)
            topo_ready_.push_back(id);
    }
    std::make_heap(topo_ready_.begin(), topo_ready_.end(),
                   std::greater<>());

    topo_order_.clear();
    while (!topo_ready_.empty()) {
        std::pop_heap(topo_ready_.begin(), topo_ready_.end(),
                      std::greater<>());
        const OpId id = topo_ready_.back();
        topo_ready_.pop_back();
        topo_order_.push_back(id);
        for (auto s = topo_succ_offset_[static_cast<std::size_t>(id)];
             s < topo_succ_offset_[static_cast<std::size_t>(id) + 1];
             ++s) {
            const OpId succ = topo_succ_[s];
            if (--topo_in_degree_[static_cast<std::size_t>(succ)] == 0) {
                topo_ready_.push_back(succ);
                std::push_heap(topo_ready_.begin(), topo_ready_.end(),
                               std::greater<>());
            }
        }
    }
    VEAL_ASSERT(static_cast<int>(topo_order_.size()) == n,
                "distance-0 cycle in loop ", loop.name());
    return topo_order_;
}

void
BatchSimulator::runExecLanes(const std::vector<InterpretRequest>& lanes)
{
    exec_lanes_.clear();
    exec_instrs_.clear();
    exec_operands_.clear();
    exec_regions_.clear();
    exec_live_outs_.clear();
    exec_overflow_.clear();
    // Ring and window arenas are grow-only (see batch.h): track how
    // much of the retained storage this call uses instead of clearing.
    std::size_t ring_used = 0;
    std::size_t mem_used = 0;

    // --- Compile every lane into the SoA arenas.
    for (const auto& request : lanes) {
        const Loop& loop = *request.loop;
        const ExecutionInput& input = *request.input;

        ExecLane lane;
        lane.iterations = input.iterations;

        int max_distance = 0;
        for (const auto& op : loop.operations()) {
            for (const auto& operand : op.inputs)
                max_distance = std::max(max_distance, operand.distance);
        }
        for (const auto& edge : loop.memoryEdges())
            max_distance = std::max(max_distance, edge.distance);
        lane.ring_depth = ringPow2(max_distance + 1);
        lane.ring_base = ring_used;
        ring_used += static_cast<std::size_t>(loop.size()) *
                     static_cast<std::size_t>(lane.ring_depth);
        if (exec_ring_.size() < ring_used)
            exec_ring_.resize(ring_used);

        // Memory regions: one per array in the initial image (they all
        // appear in the result whether or not the loop touches them),
        // plus one per op-only symbol.  Carving the window for the run
        // [lo, hi] of initial addresses is shared; only the cell walk
        // differs between the flat and the sparse-map input shapes.
        lane.region_begin = static_cast<std::uint32_t>(
            exec_regions_.size());
        const auto carveWindow = [this, &mem_used](ExecRegion& region,
                                                   std::int64_t lo,
                                                   std::int64_t hi)
            -> bool {
            const std::int64_t span = hi - lo + 1 + 2 * kWindowPad;
            if (span > kMaxWindowCells)
                return false;  // Too sparse: overflow map serves it all.
            region.window_lo = lo - kWindowPad;
            region.window_size = span;
            region.values_base = mem_used;
            mem_used += static_cast<std::size_t>(span);
            if (exec_mem_values_.size() < mem_used) {
                exec_mem_values_.resize(mem_used);
                exec_mem_present_.resize(mem_used);
            }
            // Only the present bytes need a per-call reset: values are
            // read solely where present is set (or through overflow).
            std::fill_n(exec_mem_present_.begin() +
                            static_cast<std::ptrdiff_t>(
                                region.values_base),
                        static_cast<std::size_t>(span), 0);
            return true;
        };
        if (request.flat_memory) {
            for (const auto& array : request.flat_memory->arrays) {
                ExecRegion region;
                region.name = array.name;
                region.touched = true;
                region.overflow = exec_overflow_.size();
                exec_overflow_.emplace_back();
                const std::size_t count =
                    array.cells_end - array.cells_begin;
                if (count != 0) {
                    const auto* cells = request.flat_memory->cells.data() +
                                        array.cells_begin;
                    if (carveWindow(region, cells[0].first,
                                    cells[count - 1].first)) {
                        std::int64_t* values =
                            exec_mem_values_.data() + region.values_base;
                        std::uint8_t* present =
                            exec_mem_present_.data() + region.values_base;
                        const std::int64_t window_lo = region.window_lo;
                        for (std::size_t c = 0; c < count; ++c) {
                            const auto at = static_cast<std::size_t>(
                                cells[c].first - window_lo);
                            values[at] = cells[c].second;
                            present[at] = 1;
                        }
                    } else {
                        auto& overflow = exec_overflow_.back();
                        for (std::size_t c = 0; c < count; ++c)
                            overflow.emplace_hint(overflow.end(),
                                                  cells[c].first,
                                                  cells[c].second);
                    }
                }
                exec_regions_.push_back(region);
            }
        } else {
            for (const auto& [name, cells] : input.memory) {
                ExecRegion region;
                region.name = &name;
                region.touched = true;
                region.overflow = exec_overflow_.size();
                exec_overflow_.emplace_back();
                if (!cells.empty()) {
                    if (carveWindow(region, cells.begin()->first,
                                    cells.rbegin()->first)) {
                        std::int64_t* values =
                            exec_mem_values_.data() + region.values_base;
                        std::uint8_t* present =
                            exec_mem_present_.data() + region.values_base;
                        const std::int64_t window_lo = region.window_lo;
                        for (const auto& [address, value] : cells) {
                            const auto at = static_cast<std::size_t>(
                                address - window_lo);
                            values[at] = value;
                            present[at] = 1;
                        }
                    } else {
                        exec_overflow_.back() = cells;
                    }
                }
                exec_regions_.push_back(region);
            }
        }
        const auto regionFor = [&](const std::string& symbol) -> int {
            for (std::uint32_t r = lane.region_begin;
                 r < exec_regions_.size(); ++r) {
                if (*exec_regions_[r].name == symbol)
                    return static_cast<int>(r);
            }
            ExecRegion region;
            // The op's own symbol string outlives the batch (the Loop
            // does), so the region can reference it directly.  A memory
            // op's array joins the result exactly when the op executes
            // at least once.
            region.name = &symbol;
            region.touched = input.iterations >= 1;
            region.overflow = exec_overflow_.size();
            exec_overflow_.emplace_back();
            exec_regions_.push_back(region);
            return static_cast<int>(exec_regions_.size() - 1);
        };

        // Pre-resolve one operand read: const/live-in short-circuit at
        // any iteration; everything else reads the ring, falling back
        // to the initial-state value at negative iterations.
        const auto resolve = [&](const Operand& operand) {
            ExecOperand read;
            const Operation& producer = loop.op(operand.producer);
            if (producer.opcode == Opcode::kConst) {
                read.fixed = true;
                read.fixed_value = producer.immediate;
            } else if (producer.opcode == Opcode::kLiveIn) {
                read.fixed = true;
                const auto it = input.live_ins.find(operand.producer);
                read.fixed_value =
                    it != input.live_ins.end() ? it->second : 0;
            } else {
                read.row_base = operand.producer * lane.ring_depth;
                read.distance = operand.distance;
                const auto it = input.initial.find(operand.producer);
                read.initial_value =
                    it != input.initial.end() ? it->second : 0;
            }
            return read;
        };

        lane.instr_begin = static_cast<std::uint32_t>(
            exec_instrs_.size());
        for (const OpId id : topoOrder(loop)) {
            const Operation& op = loop.op(id);
            // Const/live-in values are folded into every operand that
            // reads them (and into live-outs), so their ring rows are
            // never read: compiling them away skips the dead stores the
            // scalar interpreter performs each iteration.
            if (op.isValueSource())
                continue;
            ExecInstr instr;
            instr.row_base = id * lane.ring_depth;
            instr.opcode = op.opcode;
            instr.immediate = op.immediate;
            switch (op.opcode) {
              case Opcode::kLoad:
                instr.kind = ExecInstr::kLoad;
                instr.region = regionFor(op.symbol);
                break;
              case Opcode::kStore:
                instr.kind = ExecInstr::kStore;
                instr.region = regionFor(op.symbol);
                break;
              case Opcode::kBranch:
                instr.kind = ExecInstr::kBranch;
                break;
              case Opcode::kCall:
                panic("interpretLoop: cannot execute call in ",
                      loop.name());
              default:
                instr.kind = ExecInstr::kGeneric;
                break;
            }
            instr.operand_begin =
                static_cast<std::uint32_t>(exec_operands_.size());
            if (instr.kind != ExecInstr::kBranch) {
                for (const auto& operand : op.inputs)
                    exec_operands_.push_back(resolve(operand));
            }
            instr.operand_end =
                static_cast<std::uint32_t>(exec_operands_.size());
            if (exec_scratch_.size() < op.inputs.size())
                exec_scratch_.resize(op.inputs.size());
            exec_instrs_.push_back(instr);
        }
        lane.instr_end = static_cast<std::uint32_t>(exec_instrs_.size());
        lane.region_end = static_cast<std::uint32_t>(
            exec_regions_.size());

        lane.live_out_begin = static_cast<std::uint32_t>(
            exec_live_outs_.size());
        for (const auto& op : loop.operations()) {
            if (!op.is_live_out)
                continue;
            ExecLiveOut live_out;
            live_out.op = op.id;
            live_out.read = resolve(Operand(op.id, 0));
            exec_live_outs_.push_back(live_out);
        }
        lane.live_out_end = static_cast<std::uint32_t>(
            exec_live_outs_.size());
        exec_lanes_.push_back(lane);
    }

    // One ring/operand read, shared by the step loop and the live-out
    // finalize.
    const auto readAt = [this](const ExecLane& lane,
                               const ExecOperand& read,
                               std::int64_t iteration) -> std::int64_t {
        if (read.fixed)
            return read.fixed_value;
        const std::int64_t source = iteration - read.distance;
        if (source < 0)
            return read.initial_value;
        return exec_ring_[lane.ring_base +
                          static_cast<std::size_t>(read.row_base) +
                          static_cast<std::size_t>(
                              source & (lane.ring_depth - 1))];
    };

    // --- Step: each pass advances every active lane one iteration.
    // The instr/operand/region tables are frozen now, so the inner loop
    // works through raw pointers; only the ring, windows, and overflow
    // maps mutate.
    const ExecInstr* const instrs = exec_instrs_.data();
    const ExecOperand* const operands = exec_operands_.data();
    ExecRegion* const regions = exec_regions_.data();
    std::int64_t* const mem_values = exec_mem_values_.data();
    std::uint8_t* const mem_present = exec_mem_present_.data();
    for (auto& lane : exec_lanes_) {
        // Each lane runs its whole rollout back-to-back: lanes are
        // independent, so iteration order across lanes is a scheduling
        // choice (see the header contract), and finishing one lane
        // before the next keeps its ring, window, and instr tables
        // cache-resident instead of streaming every lane's state
        // through the cache once per iteration.
        std::int64_t* const ring = exec_ring_.data() + lane.ring_base;
        const std::int64_t ring_mask = lane.ring_depth - 1;
        for (std::int64_t iteration = 0; iteration < lane.iterations;
             ++iteration) {
            const auto read = [&](const ExecOperand& rd) -> std::int64_t {
                if (rd.fixed)
                    return rd.fixed_value;
                const std::int64_t source = iteration - rd.distance;
                if (source < 0)
                    return rd.initial_value;
                return ring[static_cast<std::size_t>(rd.row_base) +
                            static_cast<std::size_t>(source & ring_mask)];
            };
            for (std::uint32_t i = lane.instr_begin; i < lane.instr_end;
                 ++i) {
                const ExecInstr& instr = instrs[i];
                std::int64_t value = 0;
                switch (instr.kind) {
                  case ExecInstr::kLoad: {
                    const std::int64_t address =
                        read(operands[instr.operand_begin]);
                    const ExecRegion& region = regions[
                        static_cast<std::size_t>(instr.region)];
                    const std::int64_t offset =
                        address - region.window_lo;
                    if (offset >= 0 && offset < region.window_size) {
                        const auto at = region.values_base +
                                        static_cast<std::size_t>(offset);
                        value = mem_present[at] ? mem_values[at] : 0;
                    } else {
                        const auto& overflow =
                            exec_overflow_[region.overflow];
                        const auto it = overflow.find(address);
                        value = it != overflow.end() ? it->second : 0;
                    }
                    break;
                  }
                  case ExecInstr::kStore: {
                    const std::int64_t address =
                        read(operands[instr.operand_begin]);
                    const std::int64_t stored =
                        read(operands[instr.operand_begin + 1]);
                    const ExecRegion& region = regions[
                        static_cast<std::size_t>(instr.region)];
                    const std::int64_t offset =
                        address - region.window_lo;
                    if (offset >= 0 && offset < region.window_size) {
                        const auto at = region.values_base +
                                        static_cast<std::size_t>(offset);
                        mem_values[at] = stored;
                        mem_present[at] = 1;
                    } else {
                        exec_overflow_[region.overflow][address] =
                            stored;
                    }
                    break;
                  }
                  case ExecInstr::kBranch:
                    break;
                  case ExecInstr::kGeneric: {
                    std::int64_t* scratch = exec_scratch_.data();
                    std::size_t count = 0;
                    for (std::uint32_t o = instr.operand_begin;
                         o < instr.operand_end; ++o) {
                        scratch[count++] = read(operands[o]);
                    }
                    value = evaluateOp(instr.opcode, scratch, count,
                                       instr.immediate);
                    break;
                  }
                }
                ring[static_cast<std::size_t>(instr.row_base) +
                     static_cast<std::size_t>(iteration & ring_mask)] =
                    value;
            }
        }
        lane.iter = lane.iterations;
    }

    // --- Finalize into the view: live-out values, and per-lane region
    // descriptors in exactly the name order the scalar interpreter's
    // result map iterates.  The images themselves stay in the window
    // and overflow arenas; consumers walk them via forEachRegionCell.
    exec_view_.lanes.clear();
    exec_view_.regions.clear();
    exec_view_.live_outs.clear();
    for (const auto& lane : exec_lanes_) {
        BatchExecView::Lane view_lane;
        view_lane.region_begin = exec_view_.regions.size();

        // Result maps are keyed by array name: emit touched regions in
        // ascending-name order (op-only symbols may sort anywhere
        // relative to the initial-image arrays).
        exec_region_order_.clear();
        for (std::uint32_t r = lane.region_begin; r < lane.region_end;
             ++r) {
            if (exec_regions_[r].touched)
                exec_region_order_.push_back(r);
        }
        std::sort(exec_region_order_.begin(), exec_region_order_.end(),
                  [this](std::uint32_t a, std::uint32_t b) {
                      return *exec_regions_[a].name <
                             *exec_regions_[b].name;
                  });

        for (const std::uint32_t r : exec_region_order_) {
            const ExecRegion& region = exec_regions_[r];
            BatchExecView::Region view_region;
            view_region.name = region.name;
            view_region.values =
                exec_mem_values_.data() + region.values_base;
            view_region.present =
                exec_mem_present_.data() + region.values_base;
            view_region.window_lo = region.window_lo;
            view_region.window_size = region.window_size;
            view_region.overflow = &exec_overflow_[region.overflow];
            exec_view_.regions.push_back(view_region);
        }
        view_lane.region_end = exec_view_.regions.size();

        view_lane.live_out_begin = exec_view_.live_outs.size();
        for (std::uint32_t lo = lane.live_out_begin;
             lo < lane.live_out_end; ++lo) {
            const ExecLiveOut& live_out = exec_live_outs_[lo];
            exec_view_.live_outs.emplace_back(
                live_out.op,
                readAt(lane, live_out.read, lane.iterations - 1));
        }
        view_lane.live_out_end = exec_view_.live_outs.size();
        exec_view_.lanes.push_back(view_lane);
    }
}

const BatchExecView&
BatchSimulator::interpretBatchFlat(
    const std::vector<InterpretRequest>& lanes)
{
    runExecLanes(lanes);
    return exec_view_;
}

std::vector<ExecutionResult>
BatchSimulator::interpretBatch(const std::vector<InterpretRequest>& lanes)
{
    runExecLanes(lanes);

    // Materialize the view as the scalar result maps.  Every walk is
    // ascending, so every insert is an end-hinted O(1) one.
    std::vector<ExecutionResult> results;
    results.reserve(lanes.size());
    for (const auto& lane : exec_view_.lanes) {
        ExecutionResult result;
        for (std::size_t r = lane.region_begin; r < lane.region_end;
             ++r) {
            const BatchExecView::Region& region = exec_view_.regions[r];
            auto& cells =
                result.memory
                    .emplace_hint(result.memory.end(), *region.name,
                                  std::map<std::int64_t, std::int64_t>())
                    ->second;
            forEachRegionCell(region,
                              [&cells](std::int64_t address,
                                       std::int64_t value) {
                                  cells.emplace_hint(cells.end(), address,
                                                     value);
                              });
        }
        for (std::size_t lo = lane.live_out_begin;
             lo < lane.live_out_end; ++lo) {
            result.live_outs.emplace_hint(
                result.live_outs.end(), exec_view_.live_outs[lo].first,
                exec_view_.live_outs[lo].second);
        }
        results.push_back(std::move(result));
    }
    return results;
}

// ---------------------------------------------------------------------------
// LA cost model

std::vector<LaInvocationCost>
BatchSimulator::acceleratorCostBatch(
    const LaConfig& config, const std::vector<LaCostRequest>& lanes)
{
    // The cost model is pure arithmetic over the compiled artifacts, so
    // batching it is a fan-out; it rides along so campaign code has one
    // entry point per simulation kernel.
    std::vector<LaInvocationCost> costs;
    costs.reserve(lanes.size());
    for (const auto& request : lanes) {
        costs.push_back(acceleratorLoopCost(
            *request.schedule, *request.graph, *request.analysis,
            *request.registers, config, request.iterations,
            request.first_invocation));
    }
    return costs;
}

std::vector<CpuLoopTiming>
simulateCpuBatch(const CpuConfig& config,
                 const std::vector<CpuSimRequest>& lanes)
{
    BatchSimulator simulator;
    return simulator.simulateCpuBatch(config, lanes);
}

std::vector<ExecutionResult>
interpretBatch(const std::vector<InterpretRequest>& lanes)
{
    BatchSimulator simulator;
    return simulator.interpretBatch(lanes);
}

}  // namespace veal
