#ifndef VEAL_SIM_LA_TIMING_H_
#define VEAL_SIM_LA_TIMING_H_

/**
 * @file
 * Execution-time model for a translated loop running on the LA.
 *
 * An invocation pays: the system-bus handshake (paper: fixed 10 cycles),
 * control/configuration transfer over the memory-mapped interface, scalar
 * live-in copies, the software-pipelined execution itself
 * ((iterations - 1) * II + schedule length), and the scalar result drain.
 * Streaming memory traffic is fully decoupled and hidden (paper §2.1/§4.3:
 * "this latency is largely irrelevant given the streaming nature of the
 * target applications").
 */

#include <cstdint>

#include "veal/arch/la_config.h"
#include "veal/ir/loop_analysis.h"
#include "veal/sched/register_alloc.h"
#include "veal/sched/schedule.h"

namespace veal {

/** Per-invocation cost breakdown on the accelerator. */
struct LaInvocationCost {
    std::int64_t setup_cycles = 0;    ///< Bus + config + live-in copies.
    std::int64_t pipeline_cycles = 0; ///< Prologue + kernel + epilogue.
    std::int64_t drain_cycles = 0;    ///< Bus + live-out copies.

    std::int64_t
    total() const
    {
        return setup_cycles + pipeline_cycles + drain_cycles;
    }
};

/**
 * Cycles for one invocation of a translated loop running @p iterations
 * iterations.  @p first_invocation adds the control-transfer cost; a
 * loop re-invoked while its control is still loaded skips it.
 */
LaInvocationCost acceleratorLoopCost(const Schedule& schedule,
                                     const SchedGraph& graph,
                                     const LoopAnalysis& analysis,
                                     const RegisterAssignment& registers,
                                     const LaConfig& config,
                                     std::int64_t iterations,
                                     bool first_invocation = true);

}  // namespace veal

#endif  // VEAL_SIM_LA_TIMING_H_
