#ifndef VEAL_SIM_CPU_SIM_H_
#define VEAL_SIM_CPU_SIM_H_

/**
 * @file
 * Cycle-level in-order CPU model for the baseline processor.
 *
 * Models a scoreboarded in-order pipeline: instructions issue strictly in
 * program order, up to issue_width per cycle, stalling on RAW hazards
 * (including loop-carried ones) until source values are ready.  The
 * loop-back branch costs a redirect bubble each iteration.  This is the
 * machine the paper's speedups are measured against (ARM11-like at one
 * issue; the 2-/4-issue comparison bars use the same model, wider).
 */

#include <cstdint>

#include "veal/arch/cpu_config.h"
#include "veal/ir/loop.h"

namespace veal {

/** Timing of one loop executed on the in-order CPU. */
struct CpuLoopTiming {
    /** Total cycles for the full trip count. */
    std::int64_t total_cycles = 0;

    /** Steady-state cycles per iteration. */
    double cycles_per_iteration = 0.0;
};

/**
 * Simulate @p iterations of @p loop on @p config.
 *
 * The pipeline is simulated cycle-accurately for enough iterations to
 * reach steady state, then extrapolated (loops are by construction
 * periodic, so the extrapolation is exact once the schedule repeats).
 */
CpuLoopTiming simulateLoopOnCpu(const Loop& loop, const CpuConfig& config,
                                std::int64_t iterations);

}  // namespace veal

#endif  // VEAL_SIM_CPU_SIM_H_
