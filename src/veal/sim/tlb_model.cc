#include "veal/sim/tlb_model.h"

#include <algorithm>
#include <cstdlib>

#include "veal/support/assert.h"

namespace veal {

std::int64_t
streamPageSpan(std::int64_t stride_elements, std::int64_t iterations,
               const TlbConfig& config)
{
    VEAL_ASSERT(iterations >= 1);
    VEAL_ASSERT(config.page_bytes >= 1 && config.element_bytes >= 1);
    if (stride_elements == 0)
        return 1;  // A pinned reference lives on one page.
    const std::int64_t stride_bytes =
        std::abs(stride_elements) * config.element_bytes;
    // Contiguous span of an affine access sequence, in pages; a stride
    // wider than a page cannot touch more than one new page per
    // iteration, hence the cap.
    const std::int64_t span_pages =
        (stride_bytes * (iterations - 1)) / config.page_bytes + 1;
    return std::min(iterations, span_pages);
}

TlbCharge
streamTlbCharge(const std::vector<std::int64_t>& load_strides,
                const std::vector<std::int64_t>& store_strides,
                const TlbConfig& config, std::int64_t iterations,
                bool first_invocation)
{
    TlbCharge charge;
    if (!config.enabled)
        return charge;
    for (const std::int64_t stride : load_strides)
        charge.pages += streamPageSpan(stride, iterations, config);
    for (const std::int64_t stride : store_strides)
        charge.pages += streamPageSpan(stride, iterations, config);
    if (first_invocation) {
        // Cold TLB: every page of the working set walks once.
        charge.walks = charge.pages;
    } else {
        // Re-invocation: the TLB kept `entries` pages resident; only
        // the excess re-walks.
        charge.walks = std::max<std::int64_t>(
            0, charge.pages - static_cast<std::int64_t>(config.entries));
    }
    charge.cycles = charge.walks * config.walk_cycles;
    return charge;
}

TlbCharge
streamTlbCharge(const LoopAnalysis& analysis, const TlbConfig& config,
                std::int64_t iterations, bool first_invocation)
{
    if (!config.enabled)
        return TlbCharge{};
    std::vector<std::int64_t> load_strides;
    load_strides.reserve(analysis.load_streams.size());
    for (const auto& stream : analysis.load_streams)
        load_strides.push_back(stream.stride);
    std::vector<std::int64_t> store_strides;
    store_strides.reserve(analysis.store_streams.size());
    for (const auto& stream : analysis.store_streams)
        store_strides.push_back(stream.stride);
    return streamTlbCharge(load_strides, store_strides, config, iterations,
                           first_invocation);
}

}  // namespace veal
