#include "veal/sim/cpu_sim.h"

#include <algorithm>
#include <vector>

#include "veal/support/assert.h"

namespace veal {

namespace {

/** Number of iterations simulated before extrapolating. */
constexpr int kWarmIterations = 96;
/** Steady-state delta is averaged over this many trailing iterations. */
constexpr int kMeasureWindow = 32;

int
opLatency(const Operation& op, const CpuConfig& config)
{
    if (op.opcode == Opcode::kLoad)
        return config.load_latency;
    if (op.opcode == Opcode::kCall) {
        // A non-inlined call: prologue/epilogue plus the callee body.
        return 20;
    }
    return config.latencies.latency(op.opcode);
}

}  // namespace

CpuLoopTiming
simulateLoopOnCpu(const Loop& loop, const CpuConfig& config,
                  std::int64_t iterations)
{
    VEAL_ASSERT(iterations >= 1, "loop must run at least one iteration");
    const int n = loop.size();
    const auto sim_iters = static_cast<int>(
        std::min<std::int64_t>(iterations, kWarmIterations));

    // finish[iter % window][op]: completion cycle of op in that iteration.
    int max_distance = 1;
    for (const auto& edge : loop.allEdges())
        max_distance = std::max(max_distance, edge.distance);
    const int window = max_distance + 1;
    std::vector<std::int64_t> finish(
        static_cast<std::size_t>(window) * static_cast<std::size_t>(n), 0);

    // The iteration loop replays the same op stream kWarmIterations times;
    // resolve latencies, value-source inputs, and branch-ness once instead
    // of per replay.  Same arithmetic per op, so identical timing.
    struct SimOp {
        int id;
        int latency;
        bool is_branch;
        std::uint32_t input_begin;
        std::uint32_t input_end;
    };
    std::vector<SimOp> sim_ops;
    std::vector<std::pair<int, int>> sim_inputs;  // (producer, distance)
    sim_ops.reserve(static_cast<std::size_t>(n));
    for (const auto& op : loop.operations()) {
        if (op.isValueSource())
            continue;  // Constants/live-ins live in registers.
        SimOp sim;
        sim.id = op.id;
        sim.latency = opLatency(op, config);
        sim.is_branch = op.opcode == Opcode::kBranch;
        sim.input_begin = static_cast<std::uint32_t>(sim_inputs.size());
        for (const auto& input : op.inputs) {
            if (!loop.op(input.producer).isValueSource())
                sim_inputs.emplace_back(input.producer, input.distance);
        }
        sim.input_end = static_cast<std::uint32_t>(sim_inputs.size());
        sim_ops.push_back(sim);
    }

    std::int64_t issue_cycle = 0;  // Cycle the next instruction may issue.
    int issued_this_cycle = 0;
    std::int64_t end_of_iteration = 0;
    std::vector<std::int64_t> iteration_end(
        static_cast<std::size_t>(sim_iters), 0);

    for (int iter = 0; iter < sim_iters; ++iter) {
        const auto ring = static_cast<std::size_t>(iter % window);
        std::int64_t* finish_ring =
            finish.data() + ring * static_cast<std::size_t>(n);
        for (const auto& op : sim_ops) {
            std::int64_t ready = issue_cycle;
            for (std::uint32_t i = op.input_begin; i < op.input_end; ++i) {
                const auto& [producer, distance] = sim_inputs[i];
                const int source_iter = iter - distance;
                if (source_iter < 0)
                    continue;  // Value from before the loop: ready.
                const auto src_ring =
                    static_cast<std::size_t>(source_iter % window);
                ready = std::max(
                    ready, finish[src_ring * static_cast<std::size_t>(n) +
                                  static_cast<std::size_t>(producer)]);
            }

            // In-order issue: advance to the operand-ready cycle, then
            // take the next free slot.
            if (ready > issue_cycle) {
                issue_cycle = ready;
                issued_this_cycle = 0;
            }
            if (issued_this_cycle >= config.issue_width) {
                ++issue_cycle;
                issued_this_cycle = 0;
            }
            ++issued_this_cycle;

            const std::int64_t done = issue_cycle + op.latency;
            finish_ring[static_cast<std::size_t>(op.id)] = done;
            if (op.is_branch) {
                // Taken loop-back branch: redirect bubble.
                issue_cycle += 1 + config.branch_penalty;
                issued_this_cycle = 0;
            }
            end_of_iteration = std::max(end_of_iteration, done);
        }
        iteration_end[static_cast<std::size_t>(iter)] = issue_cycle;
    }

    CpuLoopTiming timing;
    if (sim_iters >= kMeasureWindow * 2) {
        const std::int64_t tail =
            iteration_end[static_cast<std::size_t>(sim_iters - 1)] -
            iteration_end[static_cast<std::size_t>(
                sim_iters - 1 - kMeasureWindow)];
        timing.cycles_per_iteration =
            static_cast<double>(tail) / kMeasureWindow;
    } else {
        timing.cycles_per_iteration =
            static_cast<double>(
                iteration_end[static_cast<std::size_t>(sim_iters - 1)]) /
            sim_iters;
    }

    if (iterations <= sim_iters) {
        timing.total_cycles = std::max<std::int64_t>(end_of_iteration, 1);
    } else {
        const double extra =
            timing.cycles_per_iteration *
            static_cast<double>(iterations - sim_iters);
        timing.total_cycles =
            std::max<std::int64_t>(end_of_iteration, 1) +
            static_cast<std::int64_t>(extra);
    }
    return timing;
}

}  // namespace veal
