#ifndef VEAL_SIM_LA_EXECUTOR_H_
#define VEAL_SIM_LA_EXECUTOR_H_

/**
 * @file
 * Functional execution of a translated loop on the accelerator model.
 *
 * The executor walks the modulo schedule cycle by cycle: every unit
 * issues iteration k at cycle time[u] + k * II, reads its operands from
 * producer units (enforcing that each value has actually completed by
 * then -- a semantic check of the schedule, not just a structural one),
 * streams loads/stores through the address generators' affine patterns,
 * and retires scalar live-outs at the end.
 *
 * Together with veal/sim/interpreter.h this forms a co-simulation rig:
 * for any valid translation, the LA must produce byte-identical memory
 * and live-out results to the reference interpreter.
 *
 * Thread-safety: executeOnAccelerator() is a pure function of its
 * arguments (no globals, no caches); concurrent sweep threads may
 * execute distinct translations freely as long as each TranslationResult
 * stays thread-confined while being built.
 */

#include "veal/sim/interpreter.h"
#include "veal/vm/translator.h"

namespace veal {

/**
 * Execute @p translation (which must be ok) for @p input.iterations
 * iterations.  Panics if the schedule ever reads a value that has not
 * completed -- that would be a modulo-scheduling bug.
 */
ExecutionResult executeOnAccelerator(const Loop& loop,
                                     const TranslationResult& translation,
                                     const ExecutionInput& input);

}  // namespace veal

#endif  // VEAL_SIM_LA_EXECUTOR_H_
