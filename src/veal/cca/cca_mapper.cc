#include "veal/cca/cca_mapper.h"

#include <algorithm>
#include <set>

#include "veal/fault/fault_injector.h"
#include "veal/ir/scc.h"
#include "veal/support/assert.h"

namespace veal {

namespace {

/**
 * Working state for growing one subgraph.  All constraint checks operate
 * on the tentative member set.
 */
class GroupGrower {
  public:
    GroupGrower(const Loop& loop, const LoopAnalysis& analysis,
                const CcaSpec& spec, const LatencyModel& latencies,
                const std::vector<int>& scc_of, const std::vector<int>&
                scc_size, const std::vector<int>& group_of, CostMeter* meter)
        : loop_(loop), analysis_(analysis), spec_(spec),
          latencies_(latencies), scc_of_(scc_of), scc_size_(scc_size),
          group_of_(group_of), meter_(meter), uses_(loop.useLists())
    {}

    /** Attempt to grow a maximal legal group from @p seed. */
    std::vector<OpId>
    grow(OpId seed)
    {
        members_ = {seed};
        bool grew = true;
        while (grew) {
            grew = false;
            // Collect the distance-0 dataflow neighbourhood of the group.
            std::set<OpId> frontier;
            for (const OpId member : members_) {
                const Operation& op = loop_.op(member);
                for (const auto& input : op.inputs) {
                    if (input.distance == 0)
                        frontier.insert(input.producer);
                }
                for (const auto& use :
                     uses_[static_cast<std::size_t>(member)]) {
                    if (use.distance == 0)
                        frontier.insert(use.producer);
                }
            }
            for (const OpId candidate : frontier) {
                if (charge(1); !eligible(candidate))
                    continue;
                members_.push_back(candidate);
                std::sort(members_.begin(), members_.end());
                if (legal()) {
                    grew = true;
                } else {
                    members_.erase(std::find(members_.begin(),
                                             members_.end(), candidate));
                }
            }
        }
        repairRecurrences(seed);
        // Repair may have removed interior members, which can break
        // convexity or the port counts; shrink until legal again.
        while (members_.size() >= 2 && !legal()) {
            const OpId victim =
                members_.back() == seed
                    ? members_.front()
                    : members_.back();
            if (victim == seed) {
                members_.clear();
                break;
            }
            members_.erase(
                std::find(members_.begin(), members_.end(), victim));
        }
        return members_;
    }

  private:
    void
    charge(std::uint64_t units)
    {
        if (meter_ != nullptr)
            meter_->charge(TranslationPhase::kCcaMapping, units);
    }

    bool
    inGroup(OpId id) const
    {
        return std::binary_search(members_.begin(), members_.end(), id);
    }

    /** Basic per-op eligibility, before group-level constraints. */
    bool
    eligible(OpId id) const
    {
        if (inGroup(id))
            return false;
        if (group_of_[static_cast<std::size_t>(id)] != -1)
            return false;  // Already claimed by an earlier group.
        const Operation& op = loop_.op(id);
        if (analysis_.roles[static_cast<std::size_t>(id)] !=
            OpRole::kCompute) {
            return false;
        }
        return spec_.supports(op.opcode);
    }

    /**
     * Group-level legality: port counts, row structure, convexity.
     * Recurrence legality is repaired after growth completes (a partially
     * grown chain may be temporarily illegal).
     */
    bool
    legal()
    {
        charge(static_cast<std::uint64_t>(members_.size()));
        if (static_cast<int>(members_.size()) > spec_.max_ops)
            return false;
        return portsOk() && rowsOk() && convex();
    }

    bool
    portsOk() const
    {
        // Inputs: distinct external (producer, distance) values consumed.
        std::set<std::pair<OpId, int>> external_inputs;
        int outputs = 0;
        for (const OpId member : members_) {
            const Operation& op = loop_.op(member);
            for (const auto& input : op.inputs) {
                if (input.distance != 0 || !inGroup(input.producer))
                    external_inputs.insert({input.producer, input.distance});
            }
            bool escapes = op.is_live_out;
            for (const auto& use : uses_[static_cast<std::size_t>(member)]) {
                if (use.distance != 0 || !inGroup(use.producer)) {
                    escapes = true;
                    break;
                }
            }
            if (escapes)
                ++outputs;
        }
        return static_cast<int>(external_inputs.size()) <=
                   spec_.num_inputs &&
               outputs <= spec_.num_outputs;
    }

    /**
     * Row assignment must fit the CCA's structure.  An op needs a row
     * strictly below its in-group producers' rows, but values pass
     * through unused rows on the inter-row interconnect, so rows can be
     * skipped (e.g. two dependent adds use rows 1 and 3, bypassing the
     * logic-only row 2).  Greedy minimal-row assignment in dependence
     * order; fails when capability or width runs out.
     */
    bool
    rowsOk() const
    {
        auto index_of = [&](OpId id) {
            return static_cast<std::size_t>(
                std::lower_bound(members_.begin(), members_.end(), id) -
                members_.begin());
        };
        std::vector<int> row(members_.size(), -1);
        std::vector<int> width(static_cast<std::size_t>(spec_.num_rows),
                               0);
        // Members are sorted by id; ids respect distance-0 topology only
        // loosely, so iterate to a fixed point (groups are tiny).
        bool progress = true;
        std::size_t assigned = 0;
        while (progress && assigned < members_.size()) {
            progress = false;
            for (const OpId member : members_) {
                if (row[index_of(member)] != -1)
                    continue;
                const Operation& op = loop_.op(member);
                int min_row = 0;
                bool ready = true;
                for (const auto& input : op.inputs) {
                    if (input.distance != 0 || !inGroup(input.producer))
                        continue;
                    const int producer_row =
                        row[index_of(input.producer)];
                    if (producer_row == -1) {
                        ready = false;
                        break;
                    }
                    min_row = std::max(min_row, producer_row + 1);
                }
                if (!ready)
                    continue;
                const CcaOpClass cls = opcodeInfo(op.opcode).cca_class;
                int chosen = -1;
                for (int r = min_row; r < spec_.num_rows; ++r) {
                    if (spec_.rowSupports(r, cls) &&
                        width[static_cast<std::size_t>(r)] <
                            spec_.row_width[static_cast<std::size_t>(r)]) {
                        chosen = r;
                        break;
                    }
                }
                if (chosen == -1)
                    return false;
                row[index_of(member)] = chosen;
                ++width[static_cast<std::size_t>(chosen)];
                ++assigned;
                progress = true;
            }
        }
        return assigned == members_.size();
    }

    /**
     * Atomicity feasibility: collapsing the members into one node (and
     * every previously-formed group into its own node) must leave the
     * distance-0 dependence graph acyclic.  This subsumes convexity (a
     * path that leaves and re-enters the group is a cycle through it) and
     * also rejects mutually-feeding group pairs, which would deadlock two
     * atomic CCA issues.
     */
    bool
    convex() const
    {
        // Cluster id: current group = -2; existing groups = -(3 + index);
        // everything else = its own op id.
        auto cluster_of = [&](OpId id) {
            if (inGroup(id))
                return -2;
            const int group = group_of_[static_cast<std::size_t>(id)];
            return group >= 0 ? -(3 + group) : id;
        };

        // DFS from the current cluster's successors; reaching the current
        // cluster again is a cycle.  Other clusters were acyclic before
        // this group grew, so only cycles through -2 can appear.
        std::set<int> visited;
        std::vector<int> worklist;
        for (const OpId member : members_) {
            for (const auto& use :
                 uses_[static_cast<std::size_t>(member)]) {
                if (use.distance == 0 && !inGroup(use.producer))
                    worklist.push_back(cluster_of(use.producer));
            }
        }
        while (!worklist.empty()) {
            const int cluster = worklist.back();
            worklist.pop_back();
            if (cluster == -2)
                return false;  // Re-entered the group: cycle.
            if (!visited.insert(cluster).second)
                continue;
            // Expand: successors of every op in this cluster.
            for (const auto& op : loop_.operations()) {
                if (cluster_of(op.id) != cluster)
                    continue;
                for (const auto& use :
                     uses_[static_cast<std::size_t>(op.id)]) {
                    if (use.distance == 0)
                        worklist.push_back(cluster_of(use.producer));
                }
            }
        }
        return true;
    }

    /**
     * Drop members whose inclusion would lengthen a recurrence: for every
     * dependence cycle (SCC) the group touches, the members in that SCC
     * must (a) be connected through intra-group edges and (b) have a total
     * latency of at least the CCA latency.  Otherwise collapsing replaces
     * a shorter path with the CCA's full latency (paper's 7/10 example).
     */
    void
    repairRecurrences(OpId seed)
    {
        bool removed = true;
        while (removed && !members_.empty()) {
            removed = false;
            charge(static_cast<std::uint64_t>(members_.size()));
            std::set<int> sccs;
            for (const OpId member : members_) {
                const int scc = scc_of_[static_cast<std::size_t>(member)];
                if (scc_size_[static_cast<std::size_t>(scc)] > 1)
                    sccs.insert(scc);
            }
            for (const int scc : sccs) {
                std::vector<OpId> in_scc;
                int total_latency = 0;
                for (const OpId member : members_) {
                    if (scc_of_[static_cast<std::size_t>(member)] == scc) {
                        in_scc.push_back(member);
                        total_latency +=
                            latencies_.latency(loop_.op(member).opcode);
                    }
                }
                if (total_latency >= spec_.latency &&
                    connectedWithin(in_scc)) {
                    continue;
                }
                // Remove the SCC member least connected to the group.
                const OpId victim = in_scc.back();
                members_.erase(
                    std::find(members_.begin(), members_.end(), victim));
                removed = true;
                if (victim == seed) {
                    members_.clear();
                    return;
                }
                break;
            }
        }
    }

    /** Are @p subset members one component via intra-group edges? */
    bool
    connectedWithin(const std::vector<OpId>& subset) const
    {
        if (subset.size() <= 1)
            return true;
        std::set<OpId> seen{subset.front()};
        std::vector<OpId> worklist{subset.front()};
        auto in_subset = [&](OpId id) {
            return std::find(subset.begin(), subset.end(), id) !=
                   subset.end();
        };
        while (!worklist.empty()) {
            const OpId id = worklist.back();
            worklist.pop_back();
            const Operation& op = loop_.op(id);
            for (const auto& input : op.inputs) {
                if (input.distance == 0 && in_subset(input.producer) &&
                    seen.insert(input.producer).second) {
                    worklist.push_back(input.producer);
                }
            }
            for (const auto& use : uses_[static_cast<std::size_t>(id)]) {
                if (use.distance == 0 && in_subset(use.producer) &&
                    seen.insert(use.producer).second) {
                    worklist.push_back(use.producer);
                }
            }
        }
        return seen.size() == subset.size();
    }

    const Loop& loop_;
    const LoopAnalysis& analysis_;
    const CcaSpec& spec_;
    const LatencyModel& latencies_;
    const std::vector<int>& scc_of_;
    const std::vector<int>& scc_size_;
    const std::vector<int>& group_of_;
    CostMeter* meter_;
    std::vector<std::vector<Operand>> uses_;
    std::vector<OpId> members_;
};

}  // namespace

CcaMapping
emptyCcaMapping(const Loop& loop)
{
    CcaMapping mapping;
    mapping.group_of_op.assign(static_cast<std::size_t>(loop.size()), -1);
    return mapping;
}

CcaMapping
mapToCca(const Loop& loop, const LoopAnalysis& analysis, const CcaSpec& spec,
         const LatencyModel& latencies, CostMeter* meter,
         FaultInjector* faults)
{
    CcaMapping mapping = emptyCcaMapping(loop);

    // Injection site: one probe per mapping run.  A fired probe aborts
    // subgraph identification; the caller sees fault_failed and rejects.
    if (faults != nullptr && faults->probe(FaultSite::kCcaMapping)) {
        mapping.fault_failed = true;
        return mapping;
    }

    const int n = loop.size();

    // Recurrence structure for the "don't lengthen a cycle" rule.
    std::vector<std::pair<int, int>> edges;
    for (const auto& edge : loop.allEdges())
        edges.emplace_back(edge.from, edge.to);
    const auto components = stronglyConnectedComponents(n, edges);
    std::vector<int> scc_of(static_cast<std::size_t>(n), 0);
    std::vector<int> scc_size(components.size(), 0);
    for (std::size_t c = 0; c < components.size(); ++c) {
        scc_size[c] = static_cast<int>(components[c].size());
        for (const int member : components[c])
            scc_of[static_cast<std::size_t>(member)] = static_cast<int>(c);
    }
    // Self loops (distance >= 1) make a singleton SCC a real recurrence.
    for (const auto& edge : loop.allEdges()) {
        if (edge.from == edge.to) {
            const int scc = scc_of[static_cast<std::size_t>(edge.from)];
            scc_size[static_cast<std::size_t>(scc)] =
                std::max(scc_size[static_cast<std::size_t>(scc)], 2);
        }
    }

    GroupGrower grower(loop, analysis, spec, latencies, scc_of, scc_size,
                       mapping.group_of_op, meter);

    // Paper: "seed ops are examined in numerical order ... the algorithm
    // still selects each operation as a seed at most once".
    for (OpId seed = 0; seed < n; ++seed) {
        if (meter != nullptr)
            meter->charge(TranslationPhase::kCcaMapping, 1);
        if (mapping.group_of_op[static_cast<std::size_t>(seed)] != -1)
            continue;
        if (analysis.roles[static_cast<std::size_t>(seed)] !=
            OpRole::kCompute) {
            continue;
        }
        if (!spec.supports(loop.op(seed).opcode))
            continue;
        auto members = grower.grow(seed);
        if (members.size() < 2)
            continue;  // A singleton gains nothing over an integer unit.
        const int group_index = static_cast<int>(mapping.groups.size());
        for (const OpId member : members)
            mapping.group_of_op[static_cast<std::size_t>(member)] =
                group_index;
        mapping.groups.push_back(CcaGroup{std::move(members)});
    }
    return mapping;
}

}  // namespace veal
