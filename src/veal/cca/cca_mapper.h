#ifndef VEAL_CCA_CCA_MAPPER_H_
#define VEAL_CCA_CCA_MAPPER_H_

/**
 * @file
 * Greedy CCA subgraph identification (paper §4.1, "CCA Mapping").
 *
 * Optimal subgraph selection is NP-complete, so the translator uses the
 * paper's greedy scheme: examine seed ops in numerical order, recursively
 * grow each seed along dataflow edges while the subgraph stays executable
 * on the CCA, and never grow across a merge that would lengthen a
 * dependence recurrence (the op-7/op-10 example in Figure 5).
 */

#include <vector>

#include "veal/arch/cca_spec.h"
#include "veal/arch/latency.h"
#include "veal/ir/loop.h"
#include "veal/ir/loop_analysis.h"
#include "veal/support/cost_meter.h"

namespace veal {

class FaultInjector;

/** One collapsed subgraph: executes atomically as a single CCA op. */
struct CcaGroup {
    /** Member ops, ascending.  Always >= 2 members. */
    std::vector<OpId> members;
};

/** Result of CCA subgraph identification for one loop. */
struct CcaMapping {
    /** Identified groups; empty when the machine has no CCA. */
    std::vector<CcaGroup> groups;

    /** Per-op group index, or -1. */
    std::vector<int> group_of_op;

    /**
     * An injected FaultSite::kCcaMapping fault aborted the mapping (the
     * groups are empty).  The translator turns this into a
     * TranslationReject::kCcaMapping so the VM's degradation ladder can
     * retry with CCA subgraphs disabled.
     */
    bool fault_failed = false;

    /** Ops covered by groups (for the Figure 8 style statistics). */
    int
    coveredOps() const
    {
        int count = 0;
        for (const auto& group : groups)
            count += static_cast<int>(group.members.size());
        return count;
    }
};

/**
 * Run greedy CCA mapping.
 *
 * @param loop      a verified loop.
 * @param analysis  roles from analyzeLoop(); only kCompute ops map.
 * @param spec      the CCA design present in the target LA.
 * @param latencies accelerator latencies (for the recurrence rule).
 * @param meter     optional cost meter charged under kCcaMapping.
 * @param faults    optional injector probed once per call at
 *        FaultSite::kCcaMapping; a fired probe returns an empty mapping
 *        with fault_failed set.
 */
CcaMapping mapToCca(const Loop& loop, const LoopAnalysis& analysis,
                    const CcaSpec& spec, const LatencyModel& latencies,
                    CostMeter* meter = nullptr,
                    FaultInjector* faults = nullptr);

/** An empty mapping (used when the LA has no CCA). */
CcaMapping emptyCcaMapping(const Loop& loop);

}  // namespace veal

#endif  // VEAL_CCA_CCA_MAPPER_H_
