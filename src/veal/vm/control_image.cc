#include "veal/vm/control_image.h"

#include <map>

#include "veal/support/assert.h"

namespace veal {

namespace {

constexpr std::uint32_t kMagic = 0x5645414c;  // "VEAL"

std::uint32_t
low32(std::int64_t value)
{
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(value));
}

std::uint32_t
high32(std::int64_t value)
{
    return static_cast<std::uint32_t>(static_cast<std::uint64_t>(value) >>
                                      32);
}

/** Operand routing kinds, including the loop-control broadcast. */
enum OperandKind : std::uint32_t {
    kSrcRegister = 0,
    kSrcBypass = 1,
    kSrcFifo = 2,
    kSrcLiteral = 3,
    kSrcControl = 4,  ///< Induction value broadcast by loop control.
};

std::uint32_t
rotl32(std::uint32_t value, unsigned amount)
{
    amount %= 32;
    if (amount == 0)
        return value;
    return (value << amount) | (value >> (32 - amount));
}

}  // namespace

ControlImage
ControlImage::fromWords(std::vector<std::uint32_t> words)
{
    ControlImage image;
    image.words_ = std::move(words);
    return image;
}

std::uint32_t
ControlImage::checksum() const
{
    std::uint32_t sum = 0x9e3779b9u;
    for (std::size_t i = 0; i < words_.size(); ++i)
        sum ^= rotl32(words_[i], static_cast<unsigned>(i % 32)) + 1;
    return sum;
}

void
ControlImage::flipBit(std::size_t bit_index)
{
    VEAL_ASSERT(bit_index < words_.size() * 32,
                "flip beyond the image: bit ", bit_index);
    words_[bit_index / 32] ^= 1u << (bit_index % 32);
}

ControlImage
ControlImage::encode(const Loop& loop, const TranslationResult& translation)
{
    VEAL_ASSERT(translation.ok, "encoding a rejected translation of ",
                loop.name());
    VEAL_ASSERT(translation.graph.has_value());
    const SchedGraph& graph = *translation.graph;
    const Schedule& schedule = translation.schedule;
    const LoopAnalysis& analysis = translation.analysis;
    const RegisterAssignment& registers = translation.registers;

    ControlImage image;
    auto& words = image.words_;

    // Literal pool (deduped constants), filled on demand.
    std::vector<std::int64_t> literals;
    std::map<std::int64_t, std::uint32_t> literal_index;
    auto intern_literal = [&](std::int64_t value) {
        const auto it = literal_index.find(value);
        if (it != literal_index.end())
            return it->second;
        const auto index = static_cast<std::uint32_t>(literals.size());
        literals.push_back(value);
        literal_index.emplace(value, index);
        return index;
    };

    /** Routing descriptor for one operand. */
    auto encode_operand = [&](const Operand& operand) -> std::uint32_t {
        const Operation& producer = loop.op(operand.producer);
        std::uint32_t kind = kSrcControl;
        std::uint32_t index = 0;
        if (producer.opcode == Opcode::kConst) {
            kind = kSrcLiteral;
            index = intern_literal(producer.immediate);
        } else if (producer.opcode == Opcode::kLiveIn) {
            kind = kSrcRegister;
            const int reg = registers.reg_of_source_op[
                static_cast<std::size_t>(producer.id)];
            index = reg >= 0 ? static_cast<std::uint32_t>(reg) : 0xfff;
        } else if (producer.opcode == Opcode::kLoad) {
            kind = kSrcFifo;
            index = static_cast<std::uint32_t>(
                analysis.stream_of_op[static_cast<std::size_t>(
                    producer.id)]);
        } else if (producer.is_induction) {
            kind = kSrcControl;
            index = static_cast<std::uint32_t>(producer.id) & 0xfff;
        } else {
            const int unit = graph.unitOf(producer.id);
            VEAL_ASSERT(unit >= 0, "operand from unscheduled op ",
                        producer.id);
            const int reg =
                registers.reg_of_unit[static_cast<std::size_t>(unit)];
            if (reg >= 0) {
                kind = kSrcRegister;
                index = static_cast<std::uint32_t>(reg);
            } else {
                kind = kSrcBypass;
                index = static_cast<std::uint32_t>(unit);
            }
        }
        return kind | (index & 0xfff) << 8 |
               (static_cast<std::uint32_t>(operand.distance) & 0xff)
                   << 24;
    };

    // --- Control store entries (built before the header so counts are
    // known; spliced after).
    std::vector<std::uint32_t> body;
    std::uint32_t num_entries = 0;
    for (const auto& unit : graph.units()) {
        if (unit.fu == FuClass::kNone)
            continue;
        ++num_entries;
        const auto u = static_cast<std::size_t>(unit.id);
        const int reg = registers.reg_of_unit[u];
        body.push_back(static_cast<std::uint32_t>(unit.fu) |
                       static_cast<std::uint32_t>(
                           schedule.fu_instance[u] & 0xff)
                           << 4 |
                       static_cast<std::uint32_t>(schedule.cycleOf(
                           unit.id)) << 12 |
                       static_cast<std::uint32_t>(schedule.stageOf(
                           unit.id) & 0xf)
                           << 20 |
                       static_cast<std::uint32_t>(unit.ops.size() & 0xff)
                           << 24);
        body.push_back(reg >= 0 ? static_cast<std::uint32_t>(reg) : 0xff);
        for (const OpId member : unit.ops) {
            const Operation& op = loop.op(member);
            body.push_back(static_cast<std::uint32_t>(op.opcode) |
                           static_cast<std::uint32_t>(op.inputs.size())
                               << 8);
            for (const auto& operand : op.inputs)
                body.push_back(encode_operand(operand));
        }
    }

    // --- Stream configurations.
    std::vector<std::uint32_t> stream_words;
    auto encode_stream = [&](const StreamDescriptor& stream) {
        stream_words.push_back(low32(stream.offset));
        stream_words.push_back(high32(stream.offset));
        stream_words.push_back(low32(stream.stride));
        stream_words.push_back(high32(stream.stride));
        stream_words.push_back(
            static_cast<std::uint32_t>(stream.base_terms.size()));
        for (const auto& [symbol, coeff] : stream.base_terms) {
            const Operation& op = loop.op(symbol);
            std::uint32_t reg = 0xff;
            if (op.opcode == Opcode::kLiveIn) {
                const int index = registers.reg_of_source_op[
                    static_cast<std::size_t>(symbol)];
                if (index >= 0)
                    reg = static_cast<std::uint32_t>(index);
            }
            stream_words.push_back(
                reg | (static_cast<std::uint32_t>(coeff) & 0xffff) << 16);
        }
    };
    for (const auto& stream : analysis.load_streams)
        encode_stream(stream);
    for (const auto& stream : analysis.store_streams)
        encode_stream(stream);

    // --- Register initialisation map (live-ins and constants).
    std::vector<std::uint32_t> init_words;
    std::uint32_t num_inits = 0;
    for (const auto& op : loop.operations()) {
        if (!op.isValueSource())
            continue;
        const int reg =
            registers.reg_of_source_op[static_cast<std::size_t>(op.id)];
        if (reg < 0)
            continue;
        ++num_inits;
        const bool is_literal = op.opcode == Opcode::kConst;
        const std::uint32_t payload =
            is_literal ? intern_literal(op.immediate)
                       : static_cast<std::uint32_t>(op.id);
        init_words.push_back(static_cast<std::uint32_t>(reg) |
                             (is_literal ? 1u : 0u) << 8 | payload << 16);
    }

    // --- Assemble: header, literal pool, entries, streams, inits.
    words.push_back(kMagic);
    words.push_back(static_cast<std::uint32_t>(schedule.ii) |
                    static_cast<std::uint32_t>(schedule.stage_count) << 8 |
                    num_entries << 16);
    words.push_back(
        static_cast<std::uint32_t>(analysis.load_streams.size()) |
        static_cast<std::uint32_t>(analysis.store_streams.size()) << 8 |
        num_inits << 16 |
        static_cast<std::uint32_t>(literals.size()) << 24);
    for (const std::int64_t literal : literals) {
        words.push_back(low32(literal));
        words.push_back(high32(literal));
    }
    words.insert(words.end(), body.begin(), body.end());
    words.insert(words.end(), stream_words.begin(), stream_words.end());
    words.insert(words.end(), init_words.begin(), init_words.end());
    return image;
}

DecodedControlImage
ControlImage::decode() const
{
    DecodedControlImage decoded;
    VEAL_ASSERT(words_.size() >= 3 && words_[0] == kMagic,
                "bad control image header");
    decoded.ii = static_cast<int>(words_[1] & 0xff);
    decoded.stage_count = static_cast<int>((words_[1] >> 8) & 0xff);
    const auto num_entries = (words_[1] >> 16) & 0xffff;
    decoded.num_load_streams = static_cast<int>(words_[2] & 0xff);
    decoded.num_store_streams = static_cast<int>((words_[2] >> 8) & 0xff);
    decoded.num_register_inits =
        static_cast<int>((words_[2] >> 16) & 0xff);
    decoded.num_literals = static_cast<int>((words_[2] >> 24) & 0xff);

    std::size_t cursor = 3 + 2 * static_cast<std::size_t>(
                                     decoded.num_literals);
    for (std::uint32_t e = 0; e < num_entries; ++e) {
        VEAL_ASSERT(cursor + 1 < words_.size(), "truncated control image");
        const std::uint32_t head = words_[cursor++];
        ControlEntry entry;
        entry.fu_class = static_cast<std::uint8_t>(head & 0xf);
        entry.fu_instance = static_cast<std::uint8_t>((head >> 4) & 0xff);
        entry.slot = static_cast<std::uint8_t>((head >> 12) & 0xff);
        entry.stage = static_cast<std::uint8_t>((head >> 20) & 0xf);
        entry.num_ops = static_cast<std::uint8_t>((head >> 24) & 0xff);
        entry.dest_register =
            static_cast<std::uint8_t>(words_[cursor++] & 0xff);
        for (int op = 0; op < entry.num_ops; ++op) {
            VEAL_ASSERT(cursor < words_.size(), "truncated entry");
            const std::uint32_t op_word = words_[cursor++];
            cursor += (op_word >> 8) & 0xff;  // Skip operand words.
        }
        decoded.entries.push_back(entry);
    }
    VEAL_ASSERT(cursor <= words_.size(), "truncated control image");
    return decoded;
}

}  // namespace veal
