#ifndef VEAL_VM_CODE_CACHE_H_
#define VEAL_VM_CODE_CACHE_H_

/**
 * @file
 * The software-managed code cache holding translated loop control
 * (paper §4.2/§4.3: 16 entries, LRU, ~48 KB for the proposed LA).
 */

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace veal {

namespace metrics {
class Registry;
}  // namespace metrics

/**
 * LRU cache of translated-loop identities.
 *
 * Thread-safety: none by design -- even lookup() mutates recency and
 * statistics.  A CodeCache models the software cache of *one* VM
 * instance, so the parallel sweep engine keeps each instance confined to
 * the thread evaluating that cell; never share one across threads.
 */
class CodeCache {
  public:
    /** What insert() actually did (re-inserts are legal, not silent). */
    enum class InsertOutcome {
        kInserted,   ///< New entry (possibly after evicting the LRU one).
        kRefreshed,  ///< Key was already resident; recency touched only.
    };

    /** Accounting snapshot, consumed by the metrics registry. */
    struct Stats {
        std::int64_t hits = 0;
        std::int64_t misses = 0;
        std::int64_t evictions = 0;
        int size = 0;
        int capacity = 0;
    };

    /** @param capacity maximum number of resident translations (>= 1). */
    explicit CodeCache(int capacity);

    /**
     * Look up @p key; a hit refreshes its recency.  A miss does *not*
     * insert -- call insert() once the translation completes.
     */
    bool lookup(const std::string& key);

    /**
     * Insert @p key, evicting the least recently used entry if full.
     * Re-inserting a resident key is a recency refresh (kRefreshed) and
     * never evicts; the return value makes the distinction auditable.
     */
    InsertOutcome insert(const std::string& key);

    /**
     * As insert(); when an eviction occurs and @p evicted_key is
     * non-null, the evicted key is written there so the owner can drop
     * the entry's payload (the hardened VM stores control images beside
     * the cache and must not leak them past eviction; the persistent
     * store must delete the blob so a restart cannot resurrect it).
     *
     * Contract: @p evicted_key is *always* written -- cleared to empty
     * on every non-evicting path (kRefreshed, or an insert with spare
     * capacity).  Callers may therefore reuse one buffer across calls;
     * a stale key left over from a previous insert must never be
     * mistaken for a fresh eviction, or the owner would drop a live
     * payload and later serve (or crash on) a resident key without one.
     */
    InsertOutcome insert(const std::string& key,
                         std::string* evicted_key);

    /**
     * Drop @p key (checksum invalidation); true when it was resident.
     * Not an eviction -- the entry is removed because its payload is no
     * longer trustworthy, so the eviction counter is untouched.
     */
    bool erase(const std::string& key);

    /** Number of resident entries. */
    int size() const { return static_cast<int>(entries_.size()); }

    int capacity() const { return capacity_; }

    std::int64_t hits() const { return hits_; }
    std::int64_t misses() const { return misses_; }
    std::int64_t evictions() const { return evictions_; }

    Stats stats() const;

    /** Add this cache's Stats as "<prefix>.hits" etc. into @p registry. */
    void recordInto(metrics::Registry& registry,
                    const std::string& prefix) const;

    /** Drop everything and reset statistics (evictions included). */
    void clear();

  private:
    int capacity_;
    std::list<std::string> lru_;  ///< Front = most recent.
    std::unordered_map<std::string, std::list<std::string>::iterator>
        entries_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
    std::int64_t evictions_ = 0;
};

}  // namespace veal

#endif  // VEAL_VM_CODE_CACHE_H_
