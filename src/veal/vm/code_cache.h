#ifndef VEAL_VM_CODE_CACHE_H_
#define VEAL_VM_CODE_CACHE_H_

/**
 * @file
 * The software-managed code cache holding translated loop control
 * (paper §4.2/§4.3: 16 entries, LRU, ~48 KB for the proposed LA).
 */

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>

namespace veal {

/**
 * LRU cache of translated-loop identities.
 *
 * Thread-safety: none by design -- even lookup() mutates recency and
 * statistics.  A CodeCache models the software cache of *one* VM
 * instance, so the parallel sweep engine keeps each instance confined to
 * the thread evaluating that cell; never share one across threads.
 */
class CodeCache {
  public:
    /** @param capacity maximum number of resident translations (>= 1). */
    explicit CodeCache(int capacity);

    /**
     * Look up @p key; a hit refreshes its recency.  A miss does *not*
     * insert -- call insert() once the translation completes.
     */
    bool lookup(const std::string& key);

    /** Insert @p key, evicting the least recently used entry if full. */
    void insert(const std::string& key);

    /** Number of resident entries. */
    int size() const { return static_cast<int>(entries_.size()); }

    int capacity() const { return capacity_; }

    std::int64_t hits() const { return hits_; }
    std::int64_t misses() const { return misses_; }

    /** Drop everything and reset statistics. */
    void clear();

  private:
    int capacity_;
    std::list<std::string> lru_;  ///< Front = most recent.
    std::unordered_map<std::string, std::list<std::string>::iterator>
        entries_;
    std::int64_t hits_ = 0;
    std::int64_t misses_ = 0;
};

}  // namespace veal

#endif  // VEAL_VM_CODE_CACHE_H_
