#include "veal/vm/persist/blob.h"

#include "veal/support/assert.h"

namespace veal::persist {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** FNV-1a over a byte range. */
std::uint64_t
fnv1a(const std::uint8_t* data, std::size_t size)
{
    std::uint64_t digest = kFnvOffset;
    for (std::size_t i = 0; i < size; ++i) {
        digest ^= data[i];
        digest *= kFnvPrime;
    }
    return digest;
}

void
appendU32(std::vector<std::uint8_t>& out, std::uint32_t value)
{
    for (int byte = 0; byte < 4; ++byte)
        out.push_back(static_cast<std::uint8_t>(value >> (byte * 8)));
}

void
appendU64(std::vector<std::uint8_t>& out, std::uint64_t value)
{
    for (int byte = 0; byte < 8; ++byte)
        out.push_back(static_cast<std::uint8_t>(value >> (byte * 8)));
}

void
appendI64(std::vector<std::uint8_t>& out, std::int64_t value)
{
    appendU64(out, static_cast<std::uint64_t>(value));
}

/** Bounds-checked little-endian reader; ok() goes false, never UB. */
class Reader {
  public:
    Reader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    bool
    ok() const
    {
        return ok_;
    }

    std::size_t
    remaining() const
    {
        return size_ - cursor_;
    }

    std::uint32_t
    u32()
    {
        if (!take(4))
            return 0;
        std::uint32_t value = 0;
        for (int byte = 0; byte < 4; ++byte) {
            value |= static_cast<std::uint32_t>(data_[cursor_ + byte])
                     << (byte * 8);
        }
        cursor_ += 4;
        return value;
    }

    std::uint64_t
    u64()
    {
        if (!take(8))
            return 0;
        std::uint64_t value = 0;
        for (int byte = 0; byte < 8; ++byte) {
            value |= static_cast<std::uint64_t>(data_[cursor_ + byte])
                     << (byte * 8);
        }
        cursor_ += 8;
        return value;
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    std::string
    bytes(std::size_t count)
    {
        if (!take(count))
            return {};
        std::string value(reinterpret_cast<const char*>(data_ + cursor_),
                          count);
        cursor_ += count;
        return value;
    }

  private:
    bool
    take(std::size_t count)
    {
        if (!ok_ || size_ - cursor_ < count) {
            ok_ = false;
            return false;
        }
        return true;
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t cursor_ = 0;
    bool ok_ = true;
};

/** Enum range guards: a checksummed-but-hostile blob stays typed. */
bool
validReject(std::int32_t value)
{
    return value >= static_cast<std::int32_t>(TranslationReject::kNone) &&
           value <=
               static_cast<std::int32_t>(TranslationReject::kBudgetExhausted);
}

bool
validMode(std::int32_t value)
{
    return value >= static_cast<std::int32_t>(TranslationMode::kStatic) &&
           value <= static_cast<std::int32_t>(
                        TranslationMode::kHybridStaticCcaPriority);
}

}  // namespace

const char*
toString(BlobError error)
{
    switch (error) {
      case BlobError::kTruncated: return "truncated";
      case BlobError::kBadMagic: return "bad-magic";
      case BlobError::kVersionSkew: return "version-skew";
      case BlobError::kChecksum: return "checksum";
      case BlobError::kMalformed: return "malformed";
      case BlobError::kIoError: return "io-error";
    }
    return "unknown";
}

TranslationSummary
summarize(const TranslationResult& translation)
{
    TranslationSummary summary;
    summary.ok = translation.ok;
    summary.reject = translation.reject;
    summary.mode = translation.mode;
    if (!translation.ok)
        return summary;

    summary.ii = translation.schedule.ii;
    summary.stage_count = translation.schedule.stage_count;
    summary.length = translation.schedule.length;
    VEAL_ASSERT(translation.graph.has_value(),
                "ok translation without a graph");
    summary.fu_units = translation.graph->numFuUnits();
    for (const int reg : translation.registers.reg_of_source_op)
        summary.live_in_regs += reg >= 0 ? 1 : 0;
    for (const auto& unit : translation.graph->units())
        summary.live_outs += unit.is_live_out ? 1 : 0;
    summary.load_strides.reserve(translation.analysis.load_streams.size());
    for (const auto& stream : translation.analysis.load_streams)
        summary.load_strides.push_back(stream.stride);
    summary.store_strides.reserve(
        translation.analysis.store_streams.size());
    for (const auto& stream : translation.analysis.store_streams)
        summary.store_strides.push_back(stream.stride);
    return summary;
}

LaInvocationCost
summaryLoopCost(const TranslationSummary& summary, const LaConfig& config,
                std::int64_t iterations, bool first_invocation)
{
    VEAL_ASSERT(summary.ok, "pricing a rejected summary");
    VEAL_ASSERT(iterations >= 1);
    // Mirrors acceleratorLoopCost() term by term; the differential test
    // in persist_blob_test pins the bit-equality.
    LaInvocationCost cost;
    cost.setup_cycles = config.bus_latency;
    if (first_invocation) {
        const auto num_streams = static_cast<std::int64_t>(
            summary.load_strides.size() + summary.store_strides.size());
        cost.setup_cycles += summary.fu_units + 2 * num_streams;
    }
    cost.setup_cycles += 2 * static_cast<std::int64_t>(summary.live_in_regs);
    cost.pipeline_cycles =
        (iterations - 1) * static_cast<std::int64_t>(summary.ii) +
        summary.length;
    cost.drain_cycles =
        config.bus_latency + 2 * static_cast<std::int64_t>(summary.live_outs);
    return cost;
}

std::vector<std::uint8_t>
encodeBlob(const PersistedImage& image)
{
    // Payload first; the header (magic, version, checksum-of-payload)
    // goes in front so corruption anywhere in the payload is caught by
    // one FNV pass and header damage by the magic/version fields.
    std::vector<std::uint8_t> payload;
    const TranslationSummary& s = image.summary;
    appendU32(payload, static_cast<std::uint32_t>(image.key.size()));
    for (const char c : image.key)
        payload.push_back(static_cast<std::uint8_t>(c));
    appendU32(payload, s.ok ? 1u : 0u);
    appendU32(payload, static_cast<std::uint32_t>(s.reject));
    appendU32(payload, static_cast<std::uint32_t>(s.mode));
    appendU32(payload, static_cast<std::uint32_t>(s.ii));
    appendU32(payload, static_cast<std::uint32_t>(s.stage_count));
    appendU32(payload, static_cast<std::uint32_t>(s.length));
    appendU32(payload, static_cast<std::uint32_t>(s.fu_units));
    appendU32(payload, static_cast<std::uint32_t>(s.live_in_regs));
    appendU32(payload, static_cast<std::uint32_t>(s.live_outs));
    appendU32(payload, static_cast<std::uint32_t>(s.load_strides.size()));
    for (const std::int64_t stride : s.load_strides)
        appendI64(payload, stride);
    appendU32(payload, static_cast<std::uint32_t>(s.store_strides.size()));
    for (const std::int64_t stride : s.store_strides)
        appendI64(payload, stride);
    appendU32(payload,
              static_cast<std::uint32_t>(image.image_words.size()));
    for (const std::uint32_t word : image.image_words)
        appendU32(payload, word);

    // Fleet section (version 2 only): appended after the v1 payload so
    // every v1 field keeps its offset.  Blobs without fleet scores stay
    // version 1 and byte-identical to the PR-8 encoder.
    if (s.fleet.has_value()) {
        const FleetScoreSet& fleet = *s.fleet;
        appendU32(payload, static_cast<std::uint32_t>(s.fleet_backend));
        appendU64(payload, fleet.signature);
        appendI64(payload, fleet.scoring_iterations);
        appendI64(payload, fleet.cpu_cycles);
        appendU32(payload,
                  static_cast<std::uint32_t>(fleet.backends.size()));
        for (const FleetBackendScore& score : fleet.backends) {
            appendU32(payload, score.ok ? 1u : 0u);
            appendU32(payload, static_cast<std::uint32_t>(score.reject));
            appendU32(payload, static_cast<std::uint32_t>(score.ii));
            appendU32(payload,
                      static_cast<std::uint32_t>(score.stage_count));
            appendI64(payload, score.first_cycles);
            appendI64(payload, score.warm_cycles);
        }
    }

    std::vector<std::uint8_t> blob;
    blob.reserve(payload.size() + 16);
    appendU32(blob, kBlobMagic);
    appendU32(blob,
              s.fleet.has_value() ? kBlobVersionFleet : kBlobVersion);
    appendU64(blob, fnv1a(payload.data(), payload.size()));
    blob.insert(blob.end(), payload.begin(), payload.end());
    return blob;
}

std::variant<PersistedImage, BlobError>
decodeBlob(const std::uint8_t* data, std::size_t size)
{
    if (size < 16)
        return BlobError::kTruncated;
    Reader header(data, 16);
    if (header.u32() != kBlobMagic)
        return BlobError::kBadMagic;
    const std::uint32_t version = header.u32();
    if (version != kBlobVersion && version != kBlobVersionFleet)
        return BlobError::kVersionSkew;
    const std::uint64_t expected = header.u64();
    const std::uint8_t* payload = data + 16;
    const std::size_t payload_size = size - 16;
    if (fnv1a(payload, payload_size) != expected)
        return BlobError::kChecksum;

    Reader in(payload, payload_size);
    PersistedImage image;
    const std::uint32_t key_size = in.u32();
    if (!in.ok() || key_size > in.remaining())
        return BlobError::kTruncated;
    image.key = in.bytes(key_size);
    TranslationSummary& s = image.summary;
    const std::uint32_t ok_flag = in.u32();
    const auto reject = static_cast<std::int32_t>(in.u32());
    const auto mode = static_cast<std::int32_t>(in.u32());
    s.ii = static_cast<std::int32_t>(in.u32());
    s.stage_count = static_cast<std::int32_t>(in.u32());
    s.length = static_cast<std::int32_t>(in.u32());
    s.fu_units = static_cast<std::int32_t>(in.u32());
    s.live_in_regs = static_cast<std::int32_t>(in.u32());
    s.live_outs = static_cast<std::int32_t>(in.u32());
    const std::uint32_t num_load = in.u32();
    if (!in.ok() || static_cast<std::size_t>(num_load) * 8 > in.remaining())
        return BlobError::kTruncated;
    s.load_strides.reserve(num_load);
    for (std::uint32_t i = 0; i < num_load; ++i)
        s.load_strides.push_back(in.i64());
    const std::uint32_t num_store = in.u32();
    if (!in.ok() ||
        static_cast<std::size_t>(num_store) * 8 > in.remaining())
        return BlobError::kTruncated;
    s.store_strides.reserve(num_store);
    for (std::uint32_t i = 0; i < num_store; ++i)
        s.store_strides.push_back(in.i64());
    const std::uint32_t num_words = in.u32();
    if (!in.ok() ||
        static_cast<std::size_t>(num_words) * 4 > in.remaining())
        return BlobError::kTruncated;
    image.image_words.reserve(num_words);
    for (std::uint32_t i = 0; i < num_words; ++i)
        image.image_words.push_back(in.u32());
    if (!in.ok())
        return BlobError::kTruncated;
    if (version == kBlobVersionFleet) {
        s.fleet_backend = static_cast<std::int32_t>(in.u32());
        FleetScoreSet fleet;
        fleet.signature = in.u64();
        fleet.scoring_iterations = in.i64();
        fleet.cpu_cycles = in.i64();
        const std::uint32_t num_backends = in.u32();
        if (!in.ok() ||
            static_cast<std::size_t>(num_backends) * 32 > in.remaining())
            return BlobError::kTruncated;
        fleet.backends.reserve(num_backends);
        for (std::uint32_t i = 0; i < num_backends; ++i) {
            FleetBackendScore score;
            const std::uint32_t score_ok = in.u32();
            const auto score_reject = static_cast<std::int32_t>(in.u32());
            score.ii = static_cast<std::int32_t>(in.u32());
            score.stage_count = static_cast<std::int32_t>(in.u32());
            score.first_cycles = in.i64();
            score.warm_cycles = in.i64();
            if (!in.ok())
                return BlobError::kTruncated;
            if (score_ok > 1 || !validReject(score_reject))
                return BlobError::kMalformed;
            score.ok = score_ok == 1;
            score.reject = static_cast<TranslationReject>(score_reject);
            if (score.ok && (score.ii < 1 || score.stage_count < 1 ||
                             score.first_cycles < 0 ||
                             score.warm_cycles < 0))
                return BlobError::kMalformed;
            fleet.backends.push_back(score);
        }
        if (fleet.scoring_iterations < 1 || fleet.cpu_cycles < 0)
            return BlobError::kMalformed;
        if (s.fleet_backend < -1 ||
            s.fleet_backend >=
                static_cast<std::int32_t>(fleet.backends.size()))
            return BlobError::kMalformed;
        s.fleet = std::move(fleet);
    }
    if (!in.ok())
        return BlobError::kTruncated;
    if (in.remaining() != 0)
        return BlobError::kMalformed;  // Checksummed trailing garbage.

    if (ok_flag > 1 || !validReject(reject) || !validMode(mode))
        return BlobError::kMalformed;
    s.ok = ok_flag == 1;
    s.reject = static_cast<TranslationReject>(reject);
    s.mode = static_cast<TranslationMode>(mode);
    if (s.ok && image.image_words.empty())
        return BlobError::kMalformed;  // Successful entries carry code.
    if (!s.ok && !image.image_words.empty())
        return BlobError::kMalformed;
    if (s.ok && (s.ii < 1 || s.stage_count < 1 || s.length < 0 ||
                 s.fu_units < 0 || s.live_in_regs < 0 || s.live_outs < 0))
        return BlobError::kMalformed;
    return image;
}

}  // namespace veal::persist
